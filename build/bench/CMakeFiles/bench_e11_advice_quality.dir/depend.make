# Empty dependencies file for bench_e11_advice_quality.
# This may be replaced when dependencies are built.
