file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_advice_quality.dir/bench_e11_advice_quality.cc.o"
  "CMakeFiles/bench_e11_advice_quality.dir/bench_e11_advice_quality.cc.o.d"
  "bench_e11_advice_quality"
  "bench_e11_advice_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_advice_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
