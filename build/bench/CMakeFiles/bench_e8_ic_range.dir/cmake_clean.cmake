file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_ic_range.dir/bench_e8_ic_range.cc.o"
  "CMakeFiles/bench_e8_ic_range.dir/bench_e8_ic_range.cc.o.d"
  "bench_e8_ic_range"
  "bench_e8_ic_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_ic_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
