# Empty dependencies file for bench_e8_ic_range.
# This may be replaced when dependencies are built.
