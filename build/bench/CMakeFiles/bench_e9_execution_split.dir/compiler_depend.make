# Empty compiler generated dependencies file for bench_e9_execution_split.
# This may be replaced when dependencies are built.
