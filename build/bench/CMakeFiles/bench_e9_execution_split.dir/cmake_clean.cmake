file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_execution_split.dir/bench_e9_execution_split.cc.o"
  "CMakeFiles/bench_e9_execution_split.dir/bench_e9_execution_split.cc.o.d"
  "bench_e9_execution_split"
  "bench_e9_execution_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_execution_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
