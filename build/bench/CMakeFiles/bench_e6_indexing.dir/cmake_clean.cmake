file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_indexing.dir/bench_e6_indexing.cc.o"
  "CMakeFiles/bench_e6_indexing.dir/bench_e6_indexing.cc.o.d"
  "bench_e6_indexing"
  "bench_e6_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
