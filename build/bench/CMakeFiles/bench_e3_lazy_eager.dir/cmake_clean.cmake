file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_lazy_eager.dir/bench_e3_lazy_eager.cc.o"
  "CMakeFiles/bench_e3_lazy_eager.dir/bench_e3_lazy_eager.cc.o.d"
  "bench_e3_lazy_eager"
  "bench_e3_lazy_eager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_lazy_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
