# Empty compiler generated dependencies file for bench_e3_lazy_eager.
# This may be replaced when dependencies are built.
