# Empty dependencies file for bench_e1_caching.
# This may be replaced when dependencies are built.
