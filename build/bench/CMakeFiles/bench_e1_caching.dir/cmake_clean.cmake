file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_caching.dir/bench_e1_caching.cc.o"
  "CMakeFiles/bench_e1_caching.dir/bench_e1_caching.cc.o.d"
  "bench_e1_caching"
  "bench_e1_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
