file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_subsumption.dir/bench_e2_subsumption.cc.o"
  "CMakeFiles/bench_e2_subsumption.dir/bench_e2_subsumption.cc.o.d"
  "bench_e2_subsumption"
  "bench_e2_subsumption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_subsumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
