# Empty dependencies file for bench_e10_parallelism.
# This may be replaced when dependencies are built.
