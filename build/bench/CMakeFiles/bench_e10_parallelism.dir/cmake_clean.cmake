file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_parallelism.dir/bench_e10_parallelism.cc.o"
  "CMakeFiles/bench_e10_parallelism.dir/bench_e10_parallelism.cc.o.d"
  "bench_e10_parallelism"
  "bench_e10_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
