# Empty dependencies file for bench_e4_prefetch.
# This may be replaced when dependencies are built.
