file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_prefetch.dir/bench_e4_prefetch.cc.o"
  "CMakeFiles/bench_e4_prefetch.dir/bench_e4_prefetch.cc.o.d"
  "bench_e4_prefetch"
  "bench_e4_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
