file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_generalization.dir/bench_e5_generalization.cc.o"
  "CMakeFiles/bench_e5_generalization.dir/bench_e5_generalization.cc.o.d"
  "bench_e5_generalization"
  "bench_e5_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
