# Empty compiler generated dependencies file for bench_e5_generalization.
# This may be replaced when dependencies are built.
