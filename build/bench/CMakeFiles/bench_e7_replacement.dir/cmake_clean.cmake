file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_replacement.dir/bench_e7_replacement.cc.o"
  "CMakeFiles/bench_e7_replacement.dir/bench_e7_replacement.cc.o.d"
  "bench_e7_replacement"
  "bench_e7_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
