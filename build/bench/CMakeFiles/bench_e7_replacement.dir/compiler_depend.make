# Empty compiler generated dependencies file for bench_e7_replacement.
# This may be replaced when dependencies are built.
