# Empty dependencies file for supplier_expert.
# This may be replaced when dependencies are built.
