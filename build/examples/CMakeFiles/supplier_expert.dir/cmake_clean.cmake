file(REMOVE_RECURSE
  "CMakeFiles/supplier_expert.dir/supplier_expert.cpp.o"
  "CMakeFiles/supplier_expert.dir/supplier_expert.cpp.o.d"
  "supplier_expert"
  "supplier_expert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplier_expert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
