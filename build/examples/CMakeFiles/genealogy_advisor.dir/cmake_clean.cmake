file(REMOVE_RECURSE
  "CMakeFiles/genealogy_advisor.dir/genealogy_advisor.cpp.o"
  "CMakeFiles/genealogy_advisor.dir/genealogy_advisor.cpp.o.d"
  "genealogy_advisor"
  "genealogy_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genealogy_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
