# Empty dependencies file for genealogy_advisor.
# This may be replaced when dependencies are built.
