# Empty compiler generated dependencies file for graph_analyst.
# This may be replaced when dependencies are built.
