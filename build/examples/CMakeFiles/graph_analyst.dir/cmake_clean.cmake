file(REMOVE_RECURSE
  "CMakeFiles/graph_analyst.dir/graph_analyst.cpp.o"
  "CMakeFiles/graph_analyst.dir/graph_analyst.cpp.o.d"
  "graph_analyst"
  "graph_analyst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_analyst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
