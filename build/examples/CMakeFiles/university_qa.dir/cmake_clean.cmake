file(REMOVE_RECURSE
  "CMakeFiles/university_qa.dir/university_qa.cpp.o"
  "CMakeFiles/university_qa.dir/university_qa.cpp.o.d"
  "university_qa"
  "university_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
