# Empty dependencies file for university_qa.
# This may be replaced when dependencies are built.
