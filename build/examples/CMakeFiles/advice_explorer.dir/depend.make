# Empty dependencies file for advice_explorer.
# This may be replaced when dependencies are built.
