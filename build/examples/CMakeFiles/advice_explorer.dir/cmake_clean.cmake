file(REMOVE_RECURSE
  "CMakeFiles/advice_explorer.dir/advice_explorer.cpp.o"
  "CMakeFiles/advice_explorer.dir/advice_explorer.cpp.o.d"
  "advice_explorer"
  "advice_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advice_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
