# Empty dependencies file for bom_navigator.
# This may be replaced when dependencies are built.
