file(REMOVE_RECURSE
  "CMakeFiles/bom_navigator.dir/bom_navigator.cpp.o"
  "CMakeFiles/bom_navigator.dir/bom_navigator.cpp.o.d"
  "bom_navigator"
  "bom_navigator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bom_navigator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
