# Empty dependencies file for braid_shell.
# This may be replaced when dependencies are built.
