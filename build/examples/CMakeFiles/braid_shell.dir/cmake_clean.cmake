file(REMOVE_RECURSE
  "CMakeFiles/braid_shell.dir/braid_shell.cpp.o"
  "CMakeFiles/braid_shell.dir/braid_shell.cpp.o.d"
  "braid_shell"
  "braid_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/braid_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
