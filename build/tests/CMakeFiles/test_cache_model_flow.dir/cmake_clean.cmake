file(REMOVE_RECURSE
  "CMakeFiles/test_cache_model_flow.dir/test_cache_model_flow.cc.o"
  "CMakeFiles/test_cache_model_flow.dir/test_cache_model_flow.cc.o.d"
  "test_cache_model_flow"
  "test_cache_model_flow.pdb"
  "test_cache_model_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_model_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
