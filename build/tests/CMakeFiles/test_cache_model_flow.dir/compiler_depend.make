# Empty compiler generated dependencies file for test_cache_model_flow.
# This may be replaced when dependencies are built.
