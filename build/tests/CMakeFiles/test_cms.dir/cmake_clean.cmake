file(REMOVE_RECURSE
  "CMakeFiles/test_cms.dir/test_cms.cc.o"
  "CMakeFiles/test_cms.dir/test_cms.cc.o.d"
  "test_cms"
  "test_cms.pdb"
  "test_cms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
