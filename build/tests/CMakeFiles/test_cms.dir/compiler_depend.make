# Empty compiler generated dependencies file for test_cms.
# This may be replaced when dependencies are built.
