# Empty dependencies file for test_execution_monitor.
# This may be replaced when dependencies are built.
