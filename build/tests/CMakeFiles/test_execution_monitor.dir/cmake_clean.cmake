file(REMOVE_RECURSE
  "CMakeFiles/test_execution_monitor.dir/test_execution_monitor.cc.o"
  "CMakeFiles/test_execution_monitor.dir/test_execution_monitor.cc.o.d"
  "test_execution_monitor"
  "test_execution_monitor.pdb"
  "test_execution_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_execution_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
