# Empty compiler generated dependencies file for test_dbms.
# This may be replaced when dependencies are built.
