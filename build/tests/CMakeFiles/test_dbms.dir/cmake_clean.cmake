file(REMOVE_RECURSE
  "CMakeFiles/test_dbms.dir/test_dbms.cc.o"
  "CMakeFiles/test_dbms.dir/test_dbms.cc.o.d"
  "test_dbms"
  "test_dbms.pdb"
  "test_dbms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
