file(REMOVE_RECURSE
  "CMakeFiles/test_ie.dir/test_ie.cc.o"
  "CMakeFiles/test_ie.dir/test_ie.cc.o.d"
  "test_ie"
  "test_ie.pdb"
  "test_ie[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
