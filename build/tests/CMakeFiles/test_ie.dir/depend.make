# Empty dependencies file for test_ie.
# This may be replaced when dependencies are built.
