# Empty dependencies file for test_braid.
# This may be replaced when dependencies are built.
