file(REMOVE_RECURSE
  "CMakeFiles/test_braid.dir/test_braid.cc.o"
  "CMakeFiles/test_braid.dir/test_braid.cc.o.d"
  "test_braid"
  "test_braid.pdb"
  "test_braid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_braid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
