file(REMOVE_RECURSE
  "CMakeFiles/test_negation.dir/test_negation.cc.o"
  "CMakeFiles/test_negation.dir/test_negation.cc.o.d"
  "test_negation"
  "test_negation.pdb"
  "test_negation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_negation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
