
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_negation.cc" "tests/CMakeFiles/test_negation.dir/test_negation.cc.o" "gcc" "tests/CMakeFiles/test_negation.dir/test_negation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/braid_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/braid_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ie/CMakeFiles/braid_ie.dir/DependInfo.cmake"
  "/root/repo/build/src/cms/CMakeFiles/braid_cms.dir/DependInfo.cmake"
  "/root/repo/build/src/dbms/CMakeFiles/braid_dbms.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/braid_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/advice/CMakeFiles/braid_advice.dir/DependInfo.cmake"
  "/root/repo/build/src/caql/CMakeFiles/braid_caql.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/braid_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/braid_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/braid_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
