file(REMOVE_RECURSE
  "CMakeFiles/test_path_fidelity.dir/test_path_fidelity.cc.o"
  "CMakeFiles/test_path_fidelity.dir/test_path_fidelity.cc.o.d"
  "test_path_fidelity"
  "test_path_fidelity.pdb"
  "test_path_fidelity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
