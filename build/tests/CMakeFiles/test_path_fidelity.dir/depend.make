# Empty dependencies file for test_path_fidelity.
# This may be replaced when dependencies are built.
