file(REMOVE_RECURSE
  "CMakeFiles/test_representations.dir/test_representations.cc.o"
  "CMakeFiles/test_representations.dir/test_representations.cc.o.d"
  "test_representations"
  "test_representations.pdb"
  "test_representations[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_representations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
