# Empty compiler generated dependencies file for test_representations.
# This may be replaced when dependencies are built.
