file(REMOVE_RECURSE
  "CMakeFiles/test_caql.dir/test_caql.cc.o"
  "CMakeFiles/test_caql.dir/test_caql.cc.o.d"
  "test_caql"
  "test_caql.pdb"
  "test_caql[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_caql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
