# Empty dependencies file for test_caql.
# This may be replaced when dependencies are built.
