# Empty compiler generated dependencies file for test_advice.
# This may be replaced when dependencies are built.
