file(REMOVE_RECURSE
  "CMakeFiles/test_advice.dir/test_advice.cc.o"
  "CMakeFiles/test_advice.dir/test_advice.cc.o.d"
  "test_advice"
  "test_advice.pdb"
  "test_advice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_advice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
