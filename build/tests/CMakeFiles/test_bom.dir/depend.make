# Empty dependencies file for test_bom.
# This may be replaced when dependencies are built.
