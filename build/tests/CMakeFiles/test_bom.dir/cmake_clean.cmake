file(REMOVE_RECURSE
  "CMakeFiles/test_bom.dir/test_bom.cc.o"
  "CMakeFiles/test_bom.dir/test_bom.cc.o.d"
  "test_bom"
  "test_bom.pdb"
  "test_bom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
