# Empty compiler generated dependencies file for test_subsumption.
# This may be replaced when dependencies are built.
