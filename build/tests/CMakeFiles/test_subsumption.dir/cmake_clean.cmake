file(REMOVE_RECURSE
  "CMakeFiles/test_subsumption.dir/test_subsumption.cc.o"
  "CMakeFiles/test_subsumption.dir/test_subsumption.cc.o.d"
  "test_subsumption"
  "test_subsumption.pdb"
  "test_subsumption[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subsumption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
