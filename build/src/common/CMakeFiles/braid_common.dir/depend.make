# Empty dependencies file for braid_common.
# This may be replaced when dependencies are built.
