file(REMOVE_RECURSE
  "CMakeFiles/braid_common.dir/status.cc.o"
  "CMakeFiles/braid_common.dir/status.cc.o.d"
  "CMakeFiles/braid_common.dir/strings.cc.o"
  "CMakeFiles/braid_common.dir/strings.cc.o.d"
  "libbraid_common.a"
  "libbraid_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/braid_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
