file(REMOVE_RECURSE
  "libbraid_common.a"
)
