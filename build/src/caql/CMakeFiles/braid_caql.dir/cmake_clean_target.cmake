file(REMOVE_RECURSE
  "libbraid_caql.a"
)
