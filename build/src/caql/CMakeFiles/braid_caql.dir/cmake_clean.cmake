file(REMOVE_RECURSE
  "CMakeFiles/braid_caql.dir/caql_query.cc.o"
  "CMakeFiles/braid_caql.dir/caql_query.cc.o.d"
  "libbraid_caql.a"
  "libbraid_caql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/braid_caql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
