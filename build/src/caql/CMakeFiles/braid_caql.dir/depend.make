# Empty dependencies file for braid_caql.
# This may be replaced when dependencies are built.
