
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/atom.cc" "src/logic/CMakeFiles/braid_logic.dir/atom.cc.o" "gcc" "src/logic/CMakeFiles/braid_logic.dir/atom.cc.o.d"
  "/root/repo/src/logic/knowledge_base.cc" "src/logic/CMakeFiles/braid_logic.dir/knowledge_base.cc.o" "gcc" "src/logic/CMakeFiles/braid_logic.dir/knowledge_base.cc.o.d"
  "/root/repo/src/logic/parser.cc" "src/logic/CMakeFiles/braid_logic.dir/parser.cc.o" "gcc" "src/logic/CMakeFiles/braid_logic.dir/parser.cc.o.d"
  "/root/repo/src/logic/rule.cc" "src/logic/CMakeFiles/braid_logic.dir/rule.cc.o" "gcc" "src/logic/CMakeFiles/braid_logic.dir/rule.cc.o.d"
  "/root/repo/src/logic/substitution.cc" "src/logic/CMakeFiles/braid_logic.dir/substitution.cc.o" "gcc" "src/logic/CMakeFiles/braid_logic.dir/substitution.cc.o.d"
  "/root/repo/src/logic/term.cc" "src/logic/CMakeFiles/braid_logic.dir/term.cc.o" "gcc" "src/logic/CMakeFiles/braid_logic.dir/term.cc.o.d"
  "/root/repo/src/logic/unify.cc" "src/logic/CMakeFiles/braid_logic.dir/unify.cc.o" "gcc" "src/logic/CMakeFiles/braid_logic.dir/unify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/braid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/braid_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
