file(REMOVE_RECURSE
  "libbraid_logic.a"
)
