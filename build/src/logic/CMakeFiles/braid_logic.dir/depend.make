# Empty dependencies file for braid_logic.
# This may be replaced when dependencies are built.
