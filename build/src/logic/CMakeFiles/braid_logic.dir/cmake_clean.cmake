file(REMOVE_RECURSE
  "CMakeFiles/braid_logic.dir/atom.cc.o"
  "CMakeFiles/braid_logic.dir/atom.cc.o.d"
  "CMakeFiles/braid_logic.dir/knowledge_base.cc.o"
  "CMakeFiles/braid_logic.dir/knowledge_base.cc.o.d"
  "CMakeFiles/braid_logic.dir/parser.cc.o"
  "CMakeFiles/braid_logic.dir/parser.cc.o.d"
  "CMakeFiles/braid_logic.dir/rule.cc.o"
  "CMakeFiles/braid_logic.dir/rule.cc.o.d"
  "CMakeFiles/braid_logic.dir/substitution.cc.o"
  "CMakeFiles/braid_logic.dir/substitution.cc.o.d"
  "CMakeFiles/braid_logic.dir/term.cc.o"
  "CMakeFiles/braid_logic.dir/term.cc.o.d"
  "CMakeFiles/braid_logic.dir/unify.cc.o"
  "CMakeFiles/braid_logic.dir/unify.cc.o.d"
  "libbraid_logic.a"
  "libbraid_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/braid_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
