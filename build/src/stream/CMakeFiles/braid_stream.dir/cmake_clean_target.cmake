file(REMOVE_RECURSE
  "libbraid_stream.a"
)
