
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/stream_ops.cc" "src/stream/CMakeFiles/braid_stream.dir/stream_ops.cc.o" "gcc" "src/stream/CMakeFiles/braid_stream.dir/stream_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/braid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/braid_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
