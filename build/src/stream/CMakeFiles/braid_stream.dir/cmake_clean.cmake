file(REMOVE_RECURSE
  "CMakeFiles/braid_stream.dir/stream_ops.cc.o"
  "CMakeFiles/braid_stream.dir/stream_ops.cc.o.d"
  "libbraid_stream.a"
  "libbraid_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/braid_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
