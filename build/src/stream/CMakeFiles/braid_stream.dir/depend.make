# Empty dependencies file for braid_stream.
# This may be replaced when dependencies are built.
