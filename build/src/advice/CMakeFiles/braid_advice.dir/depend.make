# Empty dependencies file for braid_advice.
# This may be replaced when dependencies are built.
