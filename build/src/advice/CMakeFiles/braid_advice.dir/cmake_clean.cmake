file(REMOVE_RECURSE
  "CMakeFiles/braid_advice.dir/advice.cc.o"
  "CMakeFiles/braid_advice.dir/advice.cc.o.d"
  "CMakeFiles/braid_advice.dir/path_expr.cc.o"
  "CMakeFiles/braid_advice.dir/path_expr.cc.o.d"
  "CMakeFiles/braid_advice.dir/path_tracker.cc.o"
  "CMakeFiles/braid_advice.dir/path_tracker.cc.o.d"
  "CMakeFiles/braid_advice.dir/view_spec.cc.o"
  "CMakeFiles/braid_advice.dir/view_spec.cc.o.d"
  "libbraid_advice.a"
  "libbraid_advice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/braid_advice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
