file(REMOVE_RECURSE
  "libbraid_advice.a"
)
