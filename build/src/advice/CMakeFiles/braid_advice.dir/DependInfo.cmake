
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/advice/advice.cc" "src/advice/CMakeFiles/braid_advice.dir/advice.cc.o" "gcc" "src/advice/CMakeFiles/braid_advice.dir/advice.cc.o.d"
  "/root/repo/src/advice/path_expr.cc" "src/advice/CMakeFiles/braid_advice.dir/path_expr.cc.o" "gcc" "src/advice/CMakeFiles/braid_advice.dir/path_expr.cc.o.d"
  "/root/repo/src/advice/path_tracker.cc" "src/advice/CMakeFiles/braid_advice.dir/path_tracker.cc.o" "gcc" "src/advice/CMakeFiles/braid_advice.dir/path_tracker.cc.o.d"
  "/root/repo/src/advice/view_spec.cc" "src/advice/CMakeFiles/braid_advice.dir/view_spec.cc.o" "gcc" "src/advice/CMakeFiles/braid_advice.dir/view_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/braid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/braid_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/caql/CMakeFiles/braid_caql.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/braid_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
