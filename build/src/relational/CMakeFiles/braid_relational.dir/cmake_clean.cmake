file(REMOVE_RECURSE
  "CMakeFiles/braid_relational.dir/index.cc.o"
  "CMakeFiles/braid_relational.dir/index.cc.o.d"
  "CMakeFiles/braid_relational.dir/operators.cc.o"
  "CMakeFiles/braid_relational.dir/operators.cc.o.d"
  "CMakeFiles/braid_relational.dir/predicate.cc.o"
  "CMakeFiles/braid_relational.dir/predicate.cc.o.d"
  "CMakeFiles/braid_relational.dir/relation.cc.o"
  "CMakeFiles/braid_relational.dir/relation.cc.o.d"
  "CMakeFiles/braid_relational.dir/schema.cc.o"
  "CMakeFiles/braid_relational.dir/schema.cc.o.d"
  "CMakeFiles/braid_relational.dir/value.cc.o"
  "CMakeFiles/braid_relational.dir/value.cc.o.d"
  "libbraid_relational.a"
  "libbraid_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/braid_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
