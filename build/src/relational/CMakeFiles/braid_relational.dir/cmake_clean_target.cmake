file(REMOVE_RECURSE
  "libbraid_relational.a"
)
