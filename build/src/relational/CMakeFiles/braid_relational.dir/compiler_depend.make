# Empty compiler generated dependencies file for braid_relational.
# This may be replaced when dependencies are built.
