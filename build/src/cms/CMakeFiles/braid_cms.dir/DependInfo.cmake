
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cms/advice_manager.cc" "src/cms/CMakeFiles/braid_cms.dir/advice_manager.cc.o" "gcc" "src/cms/CMakeFiles/braid_cms.dir/advice_manager.cc.o.d"
  "/root/repo/src/cms/cache_element.cc" "src/cms/CMakeFiles/braid_cms.dir/cache_element.cc.o" "gcc" "src/cms/CMakeFiles/braid_cms.dir/cache_element.cc.o.d"
  "/root/repo/src/cms/cache_manager.cc" "src/cms/CMakeFiles/braid_cms.dir/cache_manager.cc.o" "gcc" "src/cms/CMakeFiles/braid_cms.dir/cache_manager.cc.o.d"
  "/root/repo/src/cms/cache_model.cc" "src/cms/CMakeFiles/braid_cms.dir/cache_model.cc.o" "gcc" "src/cms/CMakeFiles/braid_cms.dir/cache_model.cc.o.d"
  "/root/repo/src/cms/cms.cc" "src/cms/CMakeFiles/braid_cms.dir/cms.cc.o" "gcc" "src/cms/CMakeFiles/braid_cms.dir/cms.cc.o.d"
  "/root/repo/src/cms/execution_monitor.cc" "src/cms/CMakeFiles/braid_cms.dir/execution_monitor.cc.o" "gcc" "src/cms/CMakeFiles/braid_cms.dir/execution_monitor.cc.o.d"
  "/root/repo/src/cms/planner.cc" "src/cms/CMakeFiles/braid_cms.dir/planner.cc.o" "gcc" "src/cms/CMakeFiles/braid_cms.dir/planner.cc.o.d"
  "/root/repo/src/cms/query_processor.cc" "src/cms/CMakeFiles/braid_cms.dir/query_processor.cc.o" "gcc" "src/cms/CMakeFiles/braid_cms.dir/query_processor.cc.o.d"
  "/root/repo/src/cms/remote_interface.cc" "src/cms/CMakeFiles/braid_cms.dir/remote_interface.cc.o" "gcc" "src/cms/CMakeFiles/braid_cms.dir/remote_interface.cc.o.d"
  "/root/repo/src/cms/subsumption.cc" "src/cms/CMakeFiles/braid_cms.dir/subsumption.cc.o" "gcc" "src/cms/CMakeFiles/braid_cms.dir/subsumption.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/braid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/braid_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/braid_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/caql/CMakeFiles/braid_caql.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/braid_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/advice/CMakeFiles/braid_advice.dir/DependInfo.cmake"
  "/root/repo/build/src/dbms/CMakeFiles/braid_dbms.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
