file(REMOVE_RECURSE
  "CMakeFiles/braid_cms.dir/advice_manager.cc.o"
  "CMakeFiles/braid_cms.dir/advice_manager.cc.o.d"
  "CMakeFiles/braid_cms.dir/cache_element.cc.o"
  "CMakeFiles/braid_cms.dir/cache_element.cc.o.d"
  "CMakeFiles/braid_cms.dir/cache_manager.cc.o"
  "CMakeFiles/braid_cms.dir/cache_manager.cc.o.d"
  "CMakeFiles/braid_cms.dir/cache_model.cc.o"
  "CMakeFiles/braid_cms.dir/cache_model.cc.o.d"
  "CMakeFiles/braid_cms.dir/cms.cc.o"
  "CMakeFiles/braid_cms.dir/cms.cc.o.d"
  "CMakeFiles/braid_cms.dir/execution_monitor.cc.o"
  "CMakeFiles/braid_cms.dir/execution_monitor.cc.o.d"
  "CMakeFiles/braid_cms.dir/planner.cc.o"
  "CMakeFiles/braid_cms.dir/planner.cc.o.d"
  "CMakeFiles/braid_cms.dir/query_processor.cc.o"
  "CMakeFiles/braid_cms.dir/query_processor.cc.o.d"
  "CMakeFiles/braid_cms.dir/remote_interface.cc.o"
  "CMakeFiles/braid_cms.dir/remote_interface.cc.o.d"
  "CMakeFiles/braid_cms.dir/subsumption.cc.o"
  "CMakeFiles/braid_cms.dir/subsumption.cc.o.d"
  "libbraid_cms.a"
  "libbraid_cms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/braid_cms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
