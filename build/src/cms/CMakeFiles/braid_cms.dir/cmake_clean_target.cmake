file(REMOVE_RECURSE
  "libbraid_cms.a"
)
