# Empty compiler generated dependencies file for braid_cms.
# This may be replaced when dependencies are built.
