# Empty compiler generated dependencies file for braid_baselines.
# This may be replaced when dependencies are built.
