file(REMOVE_RECURSE
  "CMakeFiles/braid_baselines.dir/coupling_modes.cc.o"
  "CMakeFiles/braid_baselines.dir/coupling_modes.cc.o.d"
  "libbraid_baselines.a"
  "libbraid_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/braid_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
