file(REMOVE_RECURSE
  "libbraid_baselines.a"
)
