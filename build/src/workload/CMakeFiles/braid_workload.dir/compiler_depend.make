# Empty compiler generated dependencies file for braid_workload.
# This may be replaced when dependencies are built.
