file(REMOVE_RECURSE
  "libbraid_workload.a"
)
