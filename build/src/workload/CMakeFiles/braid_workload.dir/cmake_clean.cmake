file(REMOVE_RECURSE
  "CMakeFiles/braid_workload.dir/generators.cc.o"
  "CMakeFiles/braid_workload.dir/generators.cc.o.d"
  "CMakeFiles/braid_workload.dir/loader.cc.o"
  "CMakeFiles/braid_workload.dir/loader.cc.o.d"
  "libbraid_workload.a"
  "libbraid_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/braid_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
