file(REMOVE_RECURSE
  "CMakeFiles/braid_dbms.dir/database.cc.o"
  "CMakeFiles/braid_dbms.dir/database.cc.o.d"
  "CMakeFiles/braid_dbms.dir/executor.cc.o"
  "CMakeFiles/braid_dbms.dir/executor.cc.o.d"
  "CMakeFiles/braid_dbms.dir/remote_dbms.cc.o"
  "CMakeFiles/braid_dbms.dir/remote_dbms.cc.o.d"
  "CMakeFiles/braid_dbms.dir/sql.cc.o"
  "CMakeFiles/braid_dbms.dir/sql.cc.o.d"
  "libbraid_dbms.a"
  "libbraid_dbms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/braid_dbms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
