file(REMOVE_RECURSE
  "libbraid_dbms.a"
)
