# Empty dependencies file for braid_dbms.
# This may be replaced when dependencies are built.
