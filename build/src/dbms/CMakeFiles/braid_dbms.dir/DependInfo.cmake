
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbms/database.cc" "src/dbms/CMakeFiles/braid_dbms.dir/database.cc.o" "gcc" "src/dbms/CMakeFiles/braid_dbms.dir/database.cc.o.d"
  "/root/repo/src/dbms/executor.cc" "src/dbms/CMakeFiles/braid_dbms.dir/executor.cc.o" "gcc" "src/dbms/CMakeFiles/braid_dbms.dir/executor.cc.o.d"
  "/root/repo/src/dbms/remote_dbms.cc" "src/dbms/CMakeFiles/braid_dbms.dir/remote_dbms.cc.o" "gcc" "src/dbms/CMakeFiles/braid_dbms.dir/remote_dbms.cc.o.d"
  "/root/repo/src/dbms/sql.cc" "src/dbms/CMakeFiles/braid_dbms.dir/sql.cc.o" "gcc" "src/dbms/CMakeFiles/braid_dbms.dir/sql.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/braid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/braid_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
