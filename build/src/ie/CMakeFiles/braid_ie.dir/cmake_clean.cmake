file(REMOVE_RECURSE
  "CMakeFiles/braid_ie.dir/compiled_strategy.cc.o"
  "CMakeFiles/braid_ie.dir/compiled_strategy.cc.o.d"
  "CMakeFiles/braid_ie.dir/inference_engine.cc.o"
  "CMakeFiles/braid_ie.dir/inference_engine.cc.o.d"
  "CMakeFiles/braid_ie.dir/interpreted_strategy.cc.o"
  "CMakeFiles/braid_ie.dir/interpreted_strategy.cc.o.d"
  "CMakeFiles/braid_ie.dir/path_creator.cc.o"
  "CMakeFiles/braid_ie.dir/path_creator.cc.o.d"
  "CMakeFiles/braid_ie.dir/problem_graph.cc.o"
  "CMakeFiles/braid_ie.dir/problem_graph.cc.o.d"
  "CMakeFiles/braid_ie.dir/shaper.cc.o"
  "CMakeFiles/braid_ie.dir/shaper.cc.o.d"
  "CMakeFiles/braid_ie.dir/view_specifier.cc.o"
  "CMakeFiles/braid_ie.dir/view_specifier.cc.o.d"
  "libbraid_ie.a"
  "libbraid_ie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/braid_ie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
