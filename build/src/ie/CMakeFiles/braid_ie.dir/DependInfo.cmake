
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ie/compiled_strategy.cc" "src/ie/CMakeFiles/braid_ie.dir/compiled_strategy.cc.o" "gcc" "src/ie/CMakeFiles/braid_ie.dir/compiled_strategy.cc.o.d"
  "/root/repo/src/ie/inference_engine.cc" "src/ie/CMakeFiles/braid_ie.dir/inference_engine.cc.o" "gcc" "src/ie/CMakeFiles/braid_ie.dir/inference_engine.cc.o.d"
  "/root/repo/src/ie/interpreted_strategy.cc" "src/ie/CMakeFiles/braid_ie.dir/interpreted_strategy.cc.o" "gcc" "src/ie/CMakeFiles/braid_ie.dir/interpreted_strategy.cc.o.d"
  "/root/repo/src/ie/path_creator.cc" "src/ie/CMakeFiles/braid_ie.dir/path_creator.cc.o" "gcc" "src/ie/CMakeFiles/braid_ie.dir/path_creator.cc.o.d"
  "/root/repo/src/ie/problem_graph.cc" "src/ie/CMakeFiles/braid_ie.dir/problem_graph.cc.o" "gcc" "src/ie/CMakeFiles/braid_ie.dir/problem_graph.cc.o.d"
  "/root/repo/src/ie/shaper.cc" "src/ie/CMakeFiles/braid_ie.dir/shaper.cc.o" "gcc" "src/ie/CMakeFiles/braid_ie.dir/shaper.cc.o.d"
  "/root/repo/src/ie/view_specifier.cc" "src/ie/CMakeFiles/braid_ie.dir/view_specifier.cc.o" "gcc" "src/ie/CMakeFiles/braid_ie.dir/view_specifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/braid_common.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/braid_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/caql/CMakeFiles/braid_caql.dir/DependInfo.cmake"
  "/root/repo/build/src/advice/CMakeFiles/braid_advice.dir/DependInfo.cmake"
  "/root/repo/build/src/cms/CMakeFiles/braid_cms.dir/DependInfo.cmake"
  "/root/repo/build/src/dbms/CMakeFiles/braid_dbms.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/braid_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/braid_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
