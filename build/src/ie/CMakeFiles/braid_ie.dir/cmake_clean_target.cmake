file(REMOVE_RECURSE
  "libbraid_ie.a"
)
