# Empty dependencies file for braid_ie.
# This may be replaced when dependencies are built.
