#include "cms/load_controller.h"

namespace braid::cms {

const char* ShedKindName(ShedKind kind) {
  switch (kind) {
    case ShedKind::kPrefetch:
      return "prefetch";
    case ShedKind::kGeneralization:
      return "generalize";
    case ShedKind::kIntermediate:
      return "intermediate";
  }
  return "?";
}

LoadController::LoadController(LoadControlPolicy policy,
                               std::function<size_t()> queue_depth)
    : policy_(policy),
      queue_depth_(std::move(queue_depth)),
      rejected_(&obs::MetricsRegistry::Global().counter(
          "load.rejected_sessions")),
      shed_prefetch_(
          &obs::MetricsRegistry::Global().counter("load.shed_prefetch")),
      shed_generalize_(
          &obs::MetricsRegistry::Global().counter("load.shed_generalize")),
      shed_intermediate_(&obs::MetricsRegistry::Global().counter(
          "load.shed_intermediate")) {}

bool LoadController::AdmitQuery() {
  if (!policy_.enabled) return true;
  if (queue_depth_() < policy_.admission_queue_bound) return true;
  rejected_->Increment();
  return false;
}

bool LoadController::ShouldShed() const {
  if (!policy_.enabled) return false;
  if (queue_depth_() > policy_.shed_queue_depth) return true;
  if (policy_.foreground_slo_ms > 0 &&
      ForegroundEwmaMs() > policy_.foreground_slo_ms) {
    return true;
  }
  return false;
}

void LoadController::CountShed(ShedKind kind) {
  switch (kind) {
    case ShedKind::kPrefetch:
      shed_prefetch_->Increment();
      return;
    case ShedKind::kGeneralization:
      shed_generalize_->Increment();
      return;
    case ShedKind::kIntermediate:
      shed_intermediate_->Increment();
      return;
  }
}

void LoadController::OnForegroundLatency(double measured_ms) {
  if (measured_ms < 0) measured_ms = 0;
  MutexLock lock(&ewma_mu_);
  if (!ewma_primed_) {
    ewma_ms_ = measured_ms;
    ewma_primed_ = true;
    return;
  }
  ewma_ms_ += policy_.ewma_alpha * (measured_ms - ewma_ms_);
}

double LoadController::ForegroundEwmaMs() const {
  MutexLock lock(&ewma_mu_);
  return ewma_ms_;
}

uint64_t LoadController::shed_count(ShedKind kind) const {
  switch (kind) {
    case ShedKind::kPrefetch:
      return shed_prefetch_->value();
    case ShedKind::kGeneralization:
      return shed_generalize_->value();
    case ShedKind::kIntermediate:
      return shed_intermediate_->value();
  }
  return 0;
}

}  // namespace braid::cms
