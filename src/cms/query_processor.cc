#include "cms/query_processor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_set>

#include "common/strings.h"
#include "exec/parallel_ops.h"
#include "relational/index.h"

namespace braid::cms {

namespace {

using caql::CaqlQuery;
using logic::Atom;
using logic::Term;

void Charge(LocalWork* work, size_t tuples) {
  if (work != nullptr) work->tuples_processed += tuples;
}

/// Column index of variable `name` in a binding relation, or nullopt.
std::optional<size_t> VarColumn(const rel::Relation& r,
                                const std::string& name) {
  return r.schema().ColumnIndex(name);
}

/// All variables of `atom` are columns of `r`.
bool VarsBound(const rel::Relation& r, const Atom& atom) {
  for (const Term& t : atom.args) {
    if (t.is_variable() && !VarColumn(r, t.var_name()).has_value()) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<rel::Relation> QueryProcessor::BindAtom(const Atom& atom,
                                               const rel::Relation& source,
                                               LocalWork* work) {
  if (atom.arity() != source.schema().size()) {
    return Status::InvalidArgument(
        StrCat("atom ", atom.ToString(), " arity does not match source ",
               source.name(), " arity ", source.schema().size()));
  }
  // Selections: constants, and repeated variables.
  std::vector<rel::PredicatePtr> preds;
  std::map<std::string, size_t> first_pos;
  std::vector<size_t> out_cols;
  std::vector<std::string> out_names;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const Term& t = atom.args[i];
    if (t.is_constant()) {
      preds.push_back(
          rel::Predicate::ColumnConst(i, rel::CompareOp::kEq, t.value()));
      continue;
    }
    auto [it, inserted] = first_pos.emplace(t.var_name(), i);
    if (inserted) {
      out_cols.push_back(i);
      out_names.push_back(t.var_name());
    } else {
      preds.push_back(
          rel::Predicate::ColumnColumn(it->second, rel::CompareOp::kEq, i));
    }
  }
  Charge(work, source.NumTuples());
  rel::Relation filtered =
      preds.empty() ? source : rel::Select(source, *rel::Predicate::And(preds));
  rel::Relation projected = rel::Project(filtered, out_cols);
  // Rename columns to variable names.
  std::vector<rel::Column> cols;
  for (size_t i = 0; i < out_names.size(); ++i) {
    cols.push_back(rel::Column{out_names[i], rel::ValueType::kNull});
  }
  rel::Relation out(atom.predicate, rel::Schema(std::move(cols)));
  out.mutable_tuples() = std::move(projected.mutable_tuples());
  return out;
}

rel::Relation QueryProcessor::NaturalJoin(const rel::Relation& left,
                                          const rel::Relation& right,
                                          LocalWork* work,
                                          const exec::ExecContext* ctx) {
  // Shared column names become join keys.
  std::vector<rel::JoinKey> keys;
  std::vector<bool> right_shared(right.schema().size(), false);
  for (size_t rc = 0; rc < right.schema().size(); ++rc) {
    auto lc = left.schema().ColumnIndex(right.schema().column(rc).name);
    if (lc.has_value()) {
      keys.push_back(rel::JoinKey{*lc, rc});
      right_shared[rc] = true;
    }
  }
  rel::Relation joined = ctx != nullptr
                             ? exec::HashJoin(*ctx, left, right, keys)
                             : rel::HashJoin(left, right, keys);
  Charge(work, left.NumTuples() + right.NumTuples() + joined.NumTuples());
  // Drop the right-side duplicates of shared columns.
  std::vector<size_t> keep;
  for (size_t i = 0; i < left.schema().size(); ++i) keep.push_back(i);
  for (size_t rc = 0; rc < right.schema().size(); ++rc) {
    if (!right_shared[rc]) keep.push_back(left.schema().size() + rc);
  }
  rel::Relation out = ctx != nullptr ? exec::Project(*ctx, joined, keep)
                                     : rel::Project(joined, keep);
  out.set_name(StrCat(left.name(), "*", right.name()));
  return out;
}

Result<rel::Relation> QueryProcessor::ApplyComparison(
    const rel::Relation& input, const Atom& comparison, LocalWork* work) {
  if (!comparison.IsComparison()) {
    return Status::InvalidArgument(
        StrCat(comparison.ToString(), " is not a comparison"));
  }
  auto resolve = [&input](const Term& t)
      -> Result<std::pair<bool, size_t>> {  // (is_column, col) — constants
                                            // signalled by is_column=false
    if (t.is_constant()) return std::make_pair(false, size_t{0});
    auto col = VarColumn(input, t.var_name());
    if (!col.has_value()) {
      return Status::FailedPrecondition(
          StrCat("variable ", t.var_name(), " not bound"));
    }
    return std::make_pair(true, *col);
  };
  BRAID_ASSIGN_OR_RETURN(auto lhs, resolve(comparison.args[0]));
  BRAID_ASSIGN_OR_RETURN(auto rhs, resolve(comparison.args[1]));
  rel::PredicatePtr pred;
  const rel::CompareOp op = comparison.comparison_op();
  if (lhs.first && rhs.first) {
    pred = rel::Predicate::ColumnColumn(lhs.second, op, rhs.second);
  } else if (lhs.first) {
    pred = rel::Predicate::ColumnConst(lhs.second, op,
                                       comparison.args[1].value());
  } else if (rhs.first) {
    pred = rel::Predicate::ColumnConst(rhs.second, rel::ReverseCompareOp(op),
                                       comparison.args[0].value());
  } else {
    // Ground comparison: keep all rows or none.
    const bool holds = rel::EvalCompare(op, comparison.args[0].value(),
                                        comparison.args[1].value());
    if (holds) return input;
    rel::Relation empty(input.name(), input.schema());
    return empty;
  }
  Charge(work, input.NumTuples());
  return rel::Select(input, *pred);
}

Result<rel::Relation> QueryProcessor::ApplyEvaluable(
    const rel::Relation& input, const Atom& evaluable, LocalWork* work) {
  const std::string& fn = evaluable.predicate;
  const size_t result_pos = evaluable.arity() - 1;
  // Input arguments must be bound.
  std::vector<std::optional<size_t>> cols(evaluable.arity());
  for (size_t i = 0; i < evaluable.arity(); ++i) {
    const Term& t = evaluable.args[i];
    if (t.is_variable()) {
      cols[i] = VarColumn(input, t.var_name());
      if (i != result_pos && !cols[i].has_value()) {
        return Status::FailedPrecondition(
            StrCat("evaluable input ", t.var_name(), " not bound"));
      }
    }
  }

  auto arg_value = [&](size_t i, const rel::Tuple& row) -> rel::Value {
    const Term& t = evaluable.args[i];
    if (t.is_constant()) return t.value();
    return row[*cols[i]];
  };
  auto compute = [&fn](const rel::Value& a,
                       const rel::Value& b) -> Result<rel::Value> {
    if (!a.IsNumeric() || !b.IsNumeric()) {
      return Status::InvalidArgument("evaluable arguments must be numeric");
    }
    const double x = a.NumericValue();
    const double y = b.NumericValue();
    double r = 0;
    if (fn == "plus") r = x + y;
    else if (fn == "minus") r = x - y;
    else if (fn == "times") r = x * y;
    else if (fn == "div") {
      if (y == 0) return Status::InvalidArgument("division by zero");
      r = x / y;
    } else {
      return Status::InvalidArgument(StrCat("unknown evaluable ", fn));
    }
    // Preserve integer typing when both inputs are ints and the result is
    // integral.
    if (a.type() == rel::ValueType::kInt && b.type() == rel::ValueType::kInt &&
        r == static_cast<double>(static_cast<int64_t>(r))) {
      return rel::Value::Int(static_cast<int64_t>(r));
    }
    return rel::Value::Double(r);
  };
  auto compute_unary = [&fn](const rel::Value& a) -> Result<rel::Value> {
    if (!a.IsNumeric()) {
      return Status::InvalidArgument("evaluable argument must be numeric");
    }
    if (fn == "abs") {
      if (a.type() == rel::ValueType::kInt) {
        return rel::Value::Int(a.AsInt() < 0 ? -a.AsInt() : a.AsInt());
      }
      return rel::Value::Double(std::abs(a.AsDouble()));
    }
    return Status::InvalidArgument(StrCat("unknown evaluable ", fn));
  };

  const Term& result_term = evaluable.args[result_pos];
  const bool result_bound =
      result_term.is_constant() ||
      (result_term.is_variable() && cols[result_pos].has_value());

  rel::Schema out_schema = input.schema();
  if (!result_bound) {
    out_schema.AddColumn(
        rel::Column{result_term.var_name(), rel::ValueType::kNull});
  }
  rel::Relation out(input.name(), out_schema);
  Charge(work, input.NumTuples());
  for (const rel::Tuple& row : input.tuples()) {
    Result<rel::Value> computed =
        evaluable.arity() == 3
            ? compute(arg_value(0, row), arg_value(1, row))
            : compute_unary(arg_value(0, row));
    if (!computed.ok()) return computed.status();
    if (result_bound) {
      const rel::Value expected = result_term.is_constant()
                                      ? result_term.value()
                                      : row[*cols[result_pos]];
      if (*computed == expected) out.AppendUnchecked(row);
    } else {
      rel::Tuple extended = row;
      extended.push_back(std::move(*computed));
      out.AppendUnchecked(std::move(extended));
    }
  }
  return out;
}

Result<rel::Relation> QueryProcessor::ProjectHead(const rel::Relation& input,
                                                  const CaqlQuery& query) {
  std::vector<rel::Column> cols;
  struct HeadSource {
    bool is_column;
    size_t column;
    rel::Value constant;
  };
  std::vector<HeadSource> sources;
  for (const Term& t : query.head_args) {
    cols.push_back(rel::Column{t.ToString(), rel::ValueType::kNull});
    if (t.is_constant()) {
      sources.push_back(HeadSource{false, 0, t.value()});
      continue;
    }
    auto col = VarColumn(input, t.var_name());
    if (!col.has_value()) {
      return Status::FailedPrecondition(
          StrCat("head variable ", t.var_name(), " not bound by the body"));
    }
    sources.push_back(HeadSource{true, *col, rel::Value()});
  }
  rel::Relation out(query.name.empty() ? "result" : query.name,
                    rel::Schema(std::move(cols)));
  for (const rel::Tuple& row : input.tuples()) {
    rel::Tuple t;
    t.reserve(sources.size());
    for (const HeadSource& s : sources) {
      t.push_back(s.is_column ? row[s.column] : s.constant);
    }
    out.AppendUnchecked(std::move(t));
  }
  return out;
}

Result<rel::Relation> QueryProcessor::Evaluate(const CaqlQuery& query,
                                               const AtomResolver& resolver,
                                               LocalWork* work) {
  BRAID_RETURN_IF_ERROR(query.Validate());
  const std::vector<Atom> rel_atoms = query.RelationAtoms();

  // Convert each relation atom into a binding relation.
  std::vector<rel::Relation> bindings;
  for (const Atom& atom : rel_atoms) {
    std::shared_ptr<const rel::Relation> source = resolver(atom);
    if (source == nullptr) {
      return Status::NotFound(
          StrCat("no local source for ", atom.ToString()));
    }
    BRAID_ASSIGN_OR_RETURN(rel::Relation b, BindAtom(atom, *source, work));
    bindings.push_back(std::move(b));
  }
  // Negated literals become anti bindings over their positive form.
  std::vector<rel::Relation> anti;
  for (const Atom& atom : query.NegatedAtoms()) {
    const Atom positive = atom.Positive();
    std::shared_ptr<const rel::Relation> source = resolver(positive);
    if (source == nullptr) {
      return Status::NotFound(
          StrCat("no local source for ", atom.ToString()));
    }
    BRAID_ASSIGN_OR_RETURN(rel::Relation b, BindAtom(positive, *source, work));
    anti.push_back(std::move(b));
  }
  return Assemble(query, std::move(bindings), query.ComparisonAtoms(),
                  query.EvaluableAtoms(), work, std::move(anti));
}

rel::Relation QueryProcessor::AntiJoin(const rel::Relation& input,
                                       const rel::Relation& anti,
                                       LocalWork* work) {
  // Shared column names are the anti-join key.
  std::vector<size_t> in_cols, anti_cols;
  for (size_t ac = 0; ac < anti.schema().size(); ++ac) {
    auto ic = input.schema().ColumnIndex(anti.schema().column(ac).name);
    if (ic.has_value()) {
      in_cols.push_back(*ic);
      anti_cols.push_back(ac);
    }
  }
  Charge(work, input.NumTuples() + anti.NumTuples());
  rel::Relation out(input.name(), input.schema());
  if (in_cols.empty()) {
    // Disjoint: the negated literal is an independent existence test.
    if (anti.empty()) out.mutable_tuples() = input.tuples();
    return out;
  }
  std::unordered_set<rel::Tuple, rel::TupleHash> anti_keys;
  anti_keys.reserve(anti.NumTuples());
  for (const rel::Tuple& t : anti.tuples()) {
    rel::Tuple key;
    key.reserve(anti_cols.size());
    for (size_t c : anti_cols) key.push_back(t[c]);
    anti_keys.insert(std::move(key));
  }
  for (const rel::Tuple& t : input.tuples()) {
    rel::Tuple key;
    key.reserve(in_cols.size());
    for (size_t c : in_cols) key.push_back(t[c]);
    if (anti_keys.count(key) == 0) out.AppendUnchecked(t);
  }
  return out;
}

Result<rel::Relation> QueryProcessor::Assemble(
    const CaqlQuery& query, std::vector<rel::Relation> bindings,
    const std::vector<Atom>& comparisons, const std::vector<Atom>& evaluables,
    LocalWork* work, std::vector<rel::Relation> anti_bindings,
    const exec::ExecContext* ctx, const AssemblyObserver* observer) {
  std::vector<bool> comp_done(comparisons.size(), false);
  std::vector<bool> eval_done(evaluables.size(), false);
  // Join order and applied comparisons, reported to the observer.
  std::vector<size_t> bound_order;
  auto applied_comps = [&comp_done] {
    std::vector<size_t> out;
    for (size_t ci = 0; ci < comp_done.size(); ++ci) {
      if (comp_done[ci]) out.push_back(ci);
    }
    return out;
  };

  rel::Relation current;
  if (bindings.empty()) {
    // Pure built-in query (validated to be ground): start from a single
    // empty tuple.
    current = rel::Relation("unit", rel::Schema());
    current.AppendUnchecked(rel::Tuple{});
  } else {
    // Greedy ordering: start from the smallest binding relation; then join
    // the relation sharing a variable with the current result (smallest
    // first); fall back to the smallest disconnected one.
    std::vector<bool> used(bindings.size(), false);
    size_t start = 0;
    for (size_t i = 1; i < bindings.size(); ++i) {
      if (bindings[i].NumTuples() < bindings[start].NumTuples()) start = i;
    }
    current = std::move(bindings[start]);
    used[start] = true;
    bound_order.push_back(start);
    for (size_t joined = 1; joined < bindings.size(); ++joined) {
      int best = -1;
      bool best_connected = false;
      for (size_t i = 0; i < bindings.size(); ++i) {
        if (used[i]) continue;
        bool connected = false;
        for (const rel::Column& c : bindings[i].schema().columns()) {
          if (current.schema().ColumnIndex(c.name).has_value()) {
            connected = true;
            break;
          }
        }
        if (best < 0 || (connected && !best_connected) ||
            (connected == best_connected &&
             bindings[i].NumTuples() <
                 bindings[static_cast<size_t>(best)].NumTuples())) {
          best = static_cast<int>(i);
          best_connected = connected;
        }
      }
      current =
          NaturalJoin(current, bindings[static_cast<size_t>(best)], work, ctx);
      used[static_cast<size_t>(best)] = true;
      bound_order.push_back(static_cast<size_t>(best));

      // Eagerly apply any now-applicable comparisons to shrink
      // intermediates.
      for (size_t ci = 0; ci < comparisons.size(); ++ci) {
        if (comp_done[ci] || !VarsBound(current, comparisons[ci])) continue;
        BRAID_ASSIGN_OR_RETURN(current,
                               ApplyComparison(current, comparisons[ci], work));
        comp_done[ci] = true;
      }
      if (observer != nullptr && observer->on_join_stage != nullptr) {
        observer->on_join_stage(bound_order, applied_comps(), current);
      }
    }
  }

  // Anti bindings (negated literals): applied once every positive
  // variable is bound — safety guarantees their variables come from
  // positive atoms, so this point suffices.
  for (const rel::Relation& anti : anti_bindings) {
    current = AntiJoin(current, anti, work);
  }

  // Evaluables: repeat until no progress (outputs of one may feed another).
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t ei = 0; ei < evaluables.size(); ++ei) {
      if (eval_done[ei]) continue;
      const Atom& ev = evaluables[ei];
      // Check input args bound.
      bool inputs_bound = true;
      for (size_t i = 0; i + 1 < ev.arity(); ++i) {
        if (ev.args[i].is_variable() &&
            !VarColumn(current, ev.args[i].var_name()).has_value()) {
          inputs_bound = false;
          break;
        }
      }
      if (!inputs_bound) continue;
      BRAID_ASSIGN_OR_RETURN(current, ApplyEvaluable(current, ev, work));
      eval_done[ei] = true;
      progress = true;
      // Newly bound result variables may enable pending comparisons.
      for (size_t ci = 0; ci < comparisons.size(); ++ci) {
        if (comp_done[ci] || !VarsBound(current, comparisons[ci])) continue;
        BRAID_ASSIGN_OR_RETURN(current,
                               ApplyComparison(current, comparisons[ci], work));
        comp_done[ci] = true;
      }
    }
  }
  for (size_t ei = 0; ei < evaluables.size(); ++ei) {
    if (!eval_done[ei]) {
      return Status::FailedPrecondition(
          StrCat("evaluable ", evaluables[ei].ToString(),
                 " has unbound inputs"));
    }
  }
  bool trailing_comp = false;
  for (size_t ci = 0; ci < comparisons.size(); ++ci) {
    if (comp_done[ci]) continue;
    BRAID_ASSIGN_OR_RETURN(current,
                           ApplyComparison(current, comparisons[ci], work));
    comp_done[ci] = true;
    trailing_comp = true;
  }
  // The residual-filtered relation is a sound conjunctive view only when
  // nothing but joins and comparisons produced it.
  if (observer != nullptr && observer->on_residual_stage != nullptr &&
      trailing_comp && anti_bindings.empty() && evaluables.empty() &&
      !bindings.empty()) {
    observer->on_residual_stage(applied_comps(), current);
  }

  BRAID_ASSIGN_OR_RETURN(rel::Relation projected,
                         ProjectHead(current, query));
  if (query.distinct) {
    Charge(work, projected.NumTuples());
    rel::Relation deduped = ctx != nullptr ? exec::Distinct(*ctx, projected)
                                           : rel::Distinct(projected);
    deduped.set_name(projected.name());
    return deduped;
  }
  return projected;
}

rel::Relation QueryProcessor::TransitiveClosure(const rel::Relation& edges,
                                                size_t from_col, size_t to_col,
                                                LocalWork* work) {
  rel::Relation result("closure", rel::Schema::FromNames({"from", "to"}));
  std::unordered_set<rel::Tuple, rel::TupleHash> seen;

  std::vector<rel::Tuple> delta;
  for (const rel::Tuple& e : edges.tuples()) {
    rel::Tuple pair{e[from_col], e[to_col]};
    if (seen.insert(pair).second) {
      result.AppendUnchecked(pair);
      delta.push_back(std::move(pair));
    }
  }
  Charge(work, edges.NumTuples());

  // Index edges by source for the semi-naive join.
  rel::HashIndex by_from(edges, from_col);
  while (!delta.empty()) {
    std::vector<rel::Tuple> next_delta;
    for (const rel::Tuple& pair : delta) {
      for (size_t row : by_from.Lookup(pair[1])) {
        Charge(work, 1);
        rel::Tuple extended{pair[0], edges.tuple(row)[to_col]};
        if (seen.insert(extended).second) {
          result.AppendUnchecked(extended);
          next_delta.push_back(std::move(extended));
        }
      }
    }
    delta = std::move(next_delta);
  }
  return result;
}

}  // namespace braid::cms
