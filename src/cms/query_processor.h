#ifndef BRAID_CMS_QUERY_PROCESSOR_H_
#define BRAID_CMS_QUERY_PROCESSOR_H_

#include <functional>
#include <memory>

#include "caql/caql_query.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "relational/operators.h"
#include "relational/relation.h"

namespace braid::cms {

/// Work counters for local (cache) execution, used for simulated local
/// cost: one unit per intermediate tuple materialized or examined.
struct LocalWork {
  size_t tuples_processed = 0;
};

/// Observes the stages of `QueryProcessor::Assemble` so the Execution
/// Monitor can offer intermediate relations to the cache as they are
/// produced. `bound` holds indices into the `bindings` vector (in join
/// order, the start relation first) and `comps` indices into the
/// `comparisons` vector that have been applied to `current` so far.
/// Callbacks run on the assembling thread; `current` is only valid for
/// the duration of the call.
struct AssemblyObserver {
  /// After each pairwise join in the positive join loop (and the eager
  /// comparisons it enabled). Not fired for the lone start relation.
  std::function<void(const std::vector<size_t>& bound,
                     const std::vector<size_t>& comps,
                     const rel::Relation& current)>
      on_join_stage;
  /// Once after the trailing residual comparisons, before the head
  /// projection — only for pure PSJ assemblies (no anti bindings, no
  /// evaluables) where at least one trailing comparison actually ran
  /// (otherwise it would duplicate the last join stage).
  std::function<void(const std::vector<size_t>& comps,
                     const rel::Relation& current)>
      on_residual_stage;
};

/// The Query Processor: "an integral component of the Cache Manager,
/// performs the actual DBMS-like operations (i.e., joins, selects,
/// aggregation, indexing, etc.) on the cache elements" (paper §5).
///
/// Evaluation works over *binding relations*: relations whose columns are
/// named after query variables. Sources (cache-element extensions, remote
/// results) are converted into binding relations, natural-joined on shared
/// variable names, filtered by comparison atoms, extended/checked by
/// evaluable atoms, and finally projected onto the query head. The CMS
/// also supports operations the remote DBMS lacks — aggregation over
/// cached data and a transitive-closure fixed-point operator used by the
/// compiled inference strategy.
class QueryProcessor {
 public:
  /// Maps a relation atom to a locally available source relation (a cached
  /// base-relation copy or element extension) or nullptr.
  using AtomResolver =
      std::function<std::shared_ptr<const rel::Relation>(const logic::Atom&)>;

  /// Fully evaluates a conjunctive CAQL query from local sources. Every
  /// relation atom must resolve. Returns the head projection.
  static Result<rel::Relation> Evaluate(const caql::CaqlQuery& query,
                                        const AtomResolver& resolver,
                                        LocalWork* work);

  /// Joins pre-computed binding relations (columns named by query
  /// variables), applies the given comparison and evaluable atoms as their
  /// variables become bound, applies each anti binding (rows with a match
  /// in an anti binding on its shared columns are removed — the NOT of
  /// CAQL), and projects onto the query head. This is the assembly step
  /// the Execution Monitor runs over plan-source outputs. With a non-null
  /// `ctx`, the joins, projections, and the final duplicate elimination
  /// run morsel-parallel on large inputs (results are unchanged; see
  /// `exec::` operator contracts). A non-null `observer` is notified after
  /// each join stage and the final residual filter (intermediate-result
  /// capture; see AssemblyObserver).
  static Result<rel::Relation> Assemble(
      const caql::CaqlQuery& query, std::vector<rel::Relation> bindings,
      const std::vector<logic::Atom>& comparisons,
      const std::vector<logic::Atom>& evaluables, LocalWork* work,
      std::vector<rel::Relation> anti_bindings = {},
      const exec::ExecContext* ctx = nullptr,
      const AssemblyObserver* observer = nullptr);

  /// Anti-join: rows of `input` with no counterpart in `anti` agreeing on
  /// every column name the two share. With no shared columns the result
  /// is `input` when `anti` is empty and the empty relation otherwise.
  static rel::Relation AntiJoin(const rel::Relation& input,
                                const rel::Relation& anti, LocalWork* work);

  /// Converts one atom occurrence plus its source relation into a binding
  /// relation: constant arguments become selections, repeated variables
  /// become equality selections, and the output columns are the atom's
  /// distinct variables in first-occurrence order.
  static Result<rel::Relation> BindAtom(const logic::Atom& atom,
                                        const rel::Relation& source,
                                        LocalWork* work);

  /// Natural join on identically named columns (cross product when none
  /// are shared). Right-side duplicates of shared columns are dropped.
  /// With a non-null `ctx` the join and projection are morsel-parallel.
  static rel::Relation NaturalJoin(const rel::Relation& left,
                                   const rel::Relation& right, LocalWork* work,
                                   const exec::ExecContext* ctx = nullptr);

  /// Applies a comparison atom; every variable must name a column.
  static Result<rel::Relation> ApplyComparison(const rel::Relation& input,
                                               const logic::Atom& comparison,
                                               LocalWork* work);

  /// Applies an evaluable atom (plus/minus/times/div/abs). Input arguments
  /// must be bound (columns or constants); the result argument either
  /// binds a new column or, if already bound, acts as a filter.
  static Result<rel::Relation> ApplyEvaluable(const rel::Relation& input,
                                              const logic::Atom& evaluable,
                                              LocalWork* work);

  /// Projects a binding relation onto the query head (constants in the
  /// head become literal columns). Column names in the result are the
  /// head terms' renderings.
  static Result<rel::Relation> ProjectHead(const rel::Relation& input,
                                           const caql::CaqlQuery& query);

  /// Transitive closure of an edge relation — the CMS's fixed-point
  /// operator (§2: "second-order templates along with specialized
  /// operators (e.g., a fixed point operator)"). Semi-naive evaluation.
  static rel::Relation TransitiveClosure(const rel::Relation& edges,
                                         size_t from_col, size_t to_col,
                                         LocalWork* work);
};

}  // namespace braid::cms

#endif  // BRAID_CMS_QUERY_PROCESSOR_H_
