#include "cms/cache_manager.h"

#include <algorithm>
#include <limits>

namespace braid::cms {

bool CacheManager::Insert(CacheElementPtr element) {
  const size_t size = element->ByteSize();
  if (size > budget_bytes_) {
    ++stats_.rejected_too_large;
    return false;
  }
  element->stats().created_seq = clock_;
  element->stats().last_used_seq = clock_;
  const size_t current = model_.TotalBytes();
  if (current + size > budget_bytes_) {
    MakeRoom(current + size - budget_bytes_, element->id());
  }
  model_.Register(std::move(element));
  ++stats_.insertions;
  return true;
}

void CacheManager::Touch(const std::string& id) {
  CacheElementPtr e = model_.Find(id);
  if (e == nullptr) return;
  e->stats().last_used_seq = clock_;
  ++e->stats().hits;
}

void CacheManager::MakeRoom(size_t needed, const std::string& exclude) {
  while (needed > 0) {
    // Victim selection: elements not predicted within the horizon first,
    // then by farthest predicted distance, then least recently used.
    CacheElementPtr victim;
    // Rank: (protected, distance, last_used). Larger rank = better victim.
    auto rank = [this](const CacheElement& e) {
      std::optional<size_t> dist;
      if (advisor_) dist = advisor_(e);
      const bool is_protected = dist.has_value() && *dist < horizon_;
      const size_t d =
          dist.has_value() ? *dist : std::numeric_limits<size_t>::max();
      return std::make_tuple(is_protected ? 0 : 1, d,
                             std::numeric_limits<uint64_t>::max() -
                                 e.stats().last_used_seq);
    };
    for (const auto& [id, e] : model_.elements()) {
      if (id == exclude) continue;
      if (victim == nullptr || rank(*e) > rank(*victim)) victim = e;
    }
    if (victim == nullptr) return;  // Nothing evictable.
    const size_t freed = victim->ByteSize();
    model_.Remove(victim->id());
    ++stats_.evictions;
    needed = freed >= needed ? 0 : needed - freed;
  }
}

}  // namespace braid::cms
