#include "cms/cache_manager.h"

#include <algorithm>
#include <limits>
#include <tuple>
#include <vector>

#include "obs/metrics.h"

namespace braid::cms {

bool CacheManager::Insert(CacheElementPtr element) {
  BRAID_SINGLE_THREAD(sequence_);
  const size_t size = element->ByteSize();
  if (size > budget_bytes_) {
    ++stats_.rejected_too_large;
    obs::MetricsRegistry::Global().counter("cache.rejected_too_large")
        .Increment();
    return false;
  }
  element->stats().created_seq = clock_;
  element->stats().last_used_seq = clock_;
  const size_t current = model_.TotalBytes();
  if (current + size > budget_bytes_) {
    MakeRoom(current + size - budget_bytes_, element->id());
  }
  model_.Register(std::move(element));
  ++stats_.insertions;
  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("cache.insertions").Increment();
  registry.gauge("cache.resident_bytes")
      .Set(static_cast<int64_t>(model_.TotalBytes()));
  return true;
}

void CacheManager::Touch(const std::string& id) {
  BRAID_SINGLE_THREAD(sequence_);
  CacheElementPtr e = model_.Find(id);
  if (e == nullptr) return;
  e->stats().last_used_seq = clock_;
  ++e->stats().hits;
  obs::MetricsRegistry::Global().counter("cache.touches").Increment();
}

void CacheManager::MakeRoom(size_t needed, const std::string& exclude) {
  if (needed == 0) return;
  auto& registry = obs::MetricsRegistry::Global();

  // Victim ordering: elements not predicted within the horizon first,
  // then by farthest predicted distance, then least recently used, with
  // the element id as a final tie-break so eviction order is fully
  // deterministic. The advisor's prediction (an NFA reachability search)
  // is the expensive part, so it is consulted exactly once per element
  // per pass — evicting a victim changes no other element's rank, which
  // makes one ranking pass sufficient for the whole batch.
  struct Candidate {
    std::tuple<int, size_t, uint64_t> rank;
    CacheElementPtr element;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(model_.elements().size());
  for (const auto& [id, e] : model_.elements()) {
    if (id == exclude) continue;
    std::optional<size_t> dist;
    if (advisor_) {
      dist = advisor_(*e);
      registry.counter("cache.advisor_calls").Increment();
    }
    const bool is_protected = dist.has_value() && *dist < horizon_;
    const size_t d =
        dist.has_value() ? *dist : std::numeric_limits<size_t>::max();
    candidates.push_back(
        {std::make_tuple(is_protected ? 0 : 1, d,
                         std::numeric_limits<uint64_t>::max() -
                             e->stats().last_used_seq),
         e});
  }
  // Best victims first (larger rank = better victim).
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.rank != b.rank) return a.rank > b.rank;
              return a.element->id() < b.element->id();
            });

  for (const Candidate& c : candidates) {
    if (needed == 0) break;
    const size_t freed = c.element->ByteSize();
    model_.Remove(c.element->id());
    ++stats_.evictions;
    registry.counter("cache.evictions").Increment();
    needed = freed >= needed ? 0 : needed - freed;
  }
  registry.gauge("cache.resident_bytes")
      .Set(static_cast<int64_t>(model_.TotalBytes()));
}

}  // namespace braid::cms
