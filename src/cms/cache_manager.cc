#include "cms/cache_manager.h"

#include <algorithm>
#include <limits>
#include <map>
#include <tuple>
#include <utility>

#include "cms/load_controller.h"
#include "obs/metrics.h"

namespace braid::cms {

bool CacheManager::Insert(CacheElementPtr element) {
  const size_t size = element->ByteSize();
  if (size > budget_bytes_) {
    stats_.rejected_too_large.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Global().counter("cache.rejected_too_large")
        .Increment();
    return false;
  }
  const uint64_t now = clock();
  element->stats().created_seq.store(now, std::memory_order_relaxed);
  element->stats().last_used_seq.store(now, std::memory_order_relaxed);
  const std::string id = element->id();
  const size_t current = model_.TotalBytes();
  if (current + size > budget_bytes_) {
    MakeRoom(current + size - budget_bytes_, id);
  }
  model_.Register(std::move(element));
  stats_.insertions.fetch_add(1, std::memory_order_relaxed);
  // Concurrent inserts each pre-evict for their own projection, but two
  // installs can still land together; whichever re-checks last pulls the
  // footprint back under budget (the invariant holds whenever no Insert
  // is mid-flight).
  const size_t after = model_.TotalBytes();
  if (after > budget_bytes_) {
    MakeRoom(after - budget_bytes_, id);
  }
  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("cache.insertions").Increment();
  registry.gauge("cache.resident_bytes")
      .Set(static_cast<int64_t>(model_.TotalBytes()));
  return true;
}

void CacheManager::Touch(const std::string& id) {
  CacheElementPtr e = model_.Find(id);
  if (e == nullptr) return;
  e->stats().last_used_seq.store(clock(), std::memory_order_relaxed);
  e->stats().hits.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::Global().counter("cache.touches").Increment();
}

IntermediateVerdict CacheManager::JudgeIntermediate(
    size_t bytes, size_t tuples, double recompute_ms,
    std::optional<size_t> predicted_distance, double local_per_tuple_ms) {
  // Under overload, installing an intermediate (copy + insert + possible
  // eviction pass) spends exactly the capacity foreground queries are
  // queueing for; shed it before running the cost model.
  if (load_controller_ != nullptr && load_controller_->ShouldShed()) {
    IntermediateVerdict shed;
    shed.reason = "shed-overload";
    load_controller_->CountShed(ShedKind::kIntermediate);
    stats_.intermediates_rejected.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Global().counter("intermediate.rejected")
        .Increment();
    return shed;
  }
  IntermediateVerdict v;
  // Cost: every reuse pays at least one scan of the footprint; keeping an
  // intermediate that is cheaper to recompute than to scan is pure loss.
  v.cost_ms = static_cast<double>(tuples) * local_per_tuple_ms;
  // Benefit: recomputation cost scaled by predicted reuse. Advice within
  // the replacement horizon means a near-certain reuse; beyond it the
  // probability decays with distance; no prediction defaults to a coin
  // flip (the advisor only models the producing view's own recurrence —
  // cross-query subexpression sharing is exactly what it cannot see).
  double reuse = 0.5;
  if (predicted_distance.has_value()) {
    reuse = *predicted_distance <= horizon_
                ? 1.0
                : static_cast<double>(horizon_ + 1) /
                      static_cast<double>(*predicted_distance + 1);
  }
  v.benefit_ms = reuse * recompute_ms;
  if (bytes > intermediate_budget_bytes_) {
    v.reason = "oversized";
  } else if (v.benefit_ms <= v.cost_ms) {
    v.reason = "low-benefit";
  } else {
    v.admit = true;
    v.reason = "admit";
  }
  auto& registry = obs::MetricsRegistry::Global();
  if (v.admit) {
    stats_.intermediates_admitted.fetch_add(1, std::memory_order_relaxed);
    registry.counter("intermediate.admitted").Increment();
  } else {
    stats_.intermediates_rejected.fetch_add(1, std::memory_order_relaxed);
    registry.counter("intermediate.rejected").Increment();
  }
  return v;
}

size_t CacheManager::DerivedBytes() const {
  size_t total = 0;
  for (const auto& [id, e] : model_.elements()) {
    if (e->is_derived()) total += e->ByteSize();
  }
  return total;
}

void CacheManager::MakeRoomDerived(size_t needed, const std::string& exclude) {
  if (needed == 0) return;
  auto& registry = obs::MetricsRegistry::Global();
  // LRU among derived elements only; no advisor consultation — the slice
  // budget is a hard bound, and intermediates are reconstructible.
  struct Candidate {
    uint64_t last_used;
    CacheElementPtr element;
  };
  std::vector<Candidate> candidates;
  for (const auto& [id, e] : model_.elements()) {
    if (!e->is_derived() || id == exclude) continue;
    candidates.push_back(
        {e->stats().last_used_seq.load(std::memory_order_relaxed), e});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.last_used != b.last_used) return a.last_used < b.last_used;
              return a.element->id() < b.element->id();
            });
  for (const Candidate& c : candidates) {
    if (needed == 0) break;
    const size_t freed = model_.Remove(c.element->id());
    if (freed == 0) continue;
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    stats_.intermediates_evicted.fetch_add(1, std::memory_order_relaxed);
    registry.counter("cache.evictions").Increment();
    registry.counter("intermediate.evicted").Increment();
    needed = freed >= needed ? 0 : needed - freed;
  }
}

bool CacheManager::InsertIntermediate(CacheElementPtr element) {
  const size_t size = element->ByteSize();
  if (size > intermediate_budget_bytes_) {
    stats_.rejected_too_large.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Intermediates never grow past their slice: make room among derived
  // elements first, then take the ordinary insert path (whose global
  // budget check ranks any remaining derived elements as first victims).
  const size_t derived = DerivedBytes();
  if (derived + size > intermediate_budget_bytes_) {
    MakeRoomDerived(derived + size - intermediate_budget_bytes_,
                    element->id());
  }
  return Insert(std::move(element));
}

void CacheManager::MakeRoom(size_t needed, const std::string& exclude) {
  if (needed == 0) return;
  auto& registry = obs::MetricsRegistry::Global();

  ReplacementAdvisor advisor;
  {
    MutexLock lock(&advisor_mu_);
    advisor = advisor_;
  }

  // Victim ordering: derived intermediates before anything else (they are
  // reconstructible stage results, never allowed to displace advised
  // views), then elements not predicted within the horizon, then farthest
  // predicted distance, then least recently used, with the element id as
  // a final tie-break so eviction order is fully deterministic. The
  // advisor's prediction (an NFA reachability search) is the expensive
  // part, so it is consulted exactly once per element per pass — evicting
  // a victim changes no other element's rank, which makes one ranking
  // pass sufficient for the whole batch. The candidate set is a snapshot;
  // a concurrently removed element simply frees no bytes when its turn
  // comes.
  struct Candidate {
    std::tuple<int, int, size_t, uint64_t> rank;
    CacheElementPtr element;
  };
  const std::map<std::string, CacheElementPtr> resident = model_.elements();
  std::vector<Candidate> candidates;
  candidates.reserve(resident.size());
  for (const auto& [id, e] : resident) {
    if (id == exclude) continue;
    std::optional<size_t> dist;
    if (advisor) {
      dist = advisor(*e);
      registry.counter("cache.advisor_calls").Increment();
    }
    const bool is_protected = dist.has_value() && *dist < horizon_;
    const size_t d =
        dist.has_value() ? *dist : std::numeric_limits<size_t>::max();
    candidates.push_back(
        {std::make_tuple(e->is_derived() ? 1 : 0, is_protected ? 0 : 1, d,
                         std::numeric_limits<uint64_t>::max() -
                             e->stats().last_used_seq.load(
                                 std::memory_order_relaxed)),
         e});
  }
  // Best victims first (larger rank = better victim).
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.rank != b.rank) return a.rank > b.rank;
              return a.element->id() < b.element->id();
            });

  for (const Candidate& c : candidates) {
    if (needed == 0) break;
    // Remove locks exactly one stripe and reports the bytes actually
    // freed (0 when a concurrent pass already evicted this element).
    const size_t freed = model_.Remove(c.element->id());
    if (freed == 0) continue;
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    registry.counter("cache.evictions").Increment();
    if (c.element->is_derived()) {
      stats_.intermediates_evicted.fetch_add(1, std::memory_order_relaxed);
      registry.counter("intermediate.evicted").Increment();
    }
    needed = freed >= needed ? 0 : needed - freed;
  }
  registry.gauge("cache.resident_bytes")
      .Set(static_cast<int64_t>(model_.TotalBytes()));
}

}  // namespace braid::cms
