#include "cms/prefetcher.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <utility>

#include "cms/query_processor.h"
#include "common/strings.h"

namespace braid::cms {

Prefetcher::Prefetcher(exec::ThreadPool* pool, RemoteDbmsInterface* rdi,
                       double local_per_tuple_ms, size_t max_inflight,
                       obs::Tracer* tracer)
    : pool_(pool),
      rdi_(rdi),
      local_per_tuple_ms_(local_per_tuple_ms),
      max_inflight_(max_inflight),
      tracer_(tracer),
      issued_(&obs::MetricsRegistry::Global().counter("prefetch.issued")),
      joined_(&obs::MetricsRegistry::Global().counter("prefetch.joined")),
      join_wait_ms_(
          &obs::MetricsRegistry::Global().histogram("prefetch.join_wait_ms")) {}

Prefetcher::~Prefetcher() {
  CancelAll();
  Drain();  // discard: the owner is gone, there is nowhere to install
}

bool Prefetcher::Launch(PrefetchJob job) {
  std::shared_ptr<Entry> entry;
  {
    MutexLock lock(&mu_);
    if (inflight_.size() >= max_inflight_) return false;
    if (inflight_.count(job.canonical_key) > 0) return false;
    entry = std::make_shared<Entry>();
    entry->job = std::move(job);
    inflight_[entry->job.canonical_key] = entry;
  }
  issued_->Increment();
  // The registry lock must NOT be held across Submit: with zero workers
  // the pool runs the task inline, and RunJob re-acquires the lock to
  // deliver its result.
  if (pool_ != nullptr) {
    std::future<void> done = pool_->Submit([this, entry] { RunJob(entry); });
    MutexLock lock(&mu_);
    // Park the future so Drain can join task epilogues; prune the ones
    // already settled so the vector stays bounded by the in-flight cap.
    futures_.erase(
        std::remove_if(futures_.begin(), futures_.end(),
                       [](std::future<void>& f) {
                         return !f.valid() ||
                                f.wait_for(std::chrono::seconds(0)) ==
                                    std::future_status::ready;
                       }),
        futures_.end());
    futures_.push_back(std::move(done));
  } else {
    RunJob(entry);
  }
  return true;
}

bool Prefetcher::InFlight(const std::string& canonical_key) const {
  MutexLock lock(&mu_);
  return inflight_.count(canonical_key) > 0;
}

bool Prefetcher::PendingForViewLocked(const std::string& view_id) const {
  for (const auto& [key, entry] : inflight_) {
    if (entry->job.view_id == view_id) return true;
  }
  return false;
}

bool Prefetcher::PendingForSessionLocked(uint64_t session_id) const {
  for (const auto& [key, entry] : inflight_) {
    if (entry->job.session_id == session_id) return true;
  }
  return false;
}

void Prefetcher::WaitStep() {
  if (pool_ != nullptr && pool_->HelpOne()) return;
  MutexLock lock(&mu_);
  // Bounded wait instead of a bare Wait: a job may finish (and notify)
  // between the caller's predicate check and this acquisition, and new
  // inner work may appear on the pool queue that only this thread can
  // run when every worker is parked in a session task.
  cv_.WaitFor(mu_, std::chrono::milliseconds(1));
}

bool Prefetcher::InFlightForView(const std::string& view_id) const {
  MutexLock lock(&mu_);
  return PendingForViewLocked(view_id);
}

size_t Prefetcher::NumInFlight() const {
  MutexLock lock(&mu_);
  return inflight_.size();
}

bool Prefetcher::Join(const std::string& canonical_key) {
  const auto start = std::chrono::steady_clock::now();
  {
    MutexLock lock(&mu_);
    if (inflight_.count(canonical_key) == 0) return false;
  }
  obs::SpanScope span(tracer_, "prefetch.join");
  span.Annotate("key", canonical_key);
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (inflight_.count(canonical_key) == 0) break;
    }
    WaitStep();
  }
  joined_->Increment();
  join_wait_ms_->Observe(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count());
  return true;
}

bool Prefetcher::JoinView(const std::string& view_id) {
  const auto start = std::chrono::steady_clock::now();
  {
    MutexLock lock(&mu_);
    if (!PendingForViewLocked(view_id)) return false;
  }
  obs::SpanScope span(tracer_, "prefetch.join");
  span.Annotate("view", view_id);
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (!PendingForViewLocked(view_id)) break;
    }
    WaitStep();
  }
  joined_->Increment();
  join_wait_ms_->Observe(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count());
  return true;
}

std::vector<Prefetcher::Completed> Prefetcher::Harvest() {
  MutexLock lock(&mu_);
  return std::exchange(completed_, {});
}

void Prefetcher::SettleFutures() {
  // Join outside the lock: a future is ready only once its task lambda
  // has fully returned, so afterwards no task is still inside RunJob's
  // epilogue touching the registry.
  std::vector<std::future<void>> waits;
  {
    MutexLock lock(&mu_);
    waits = std::exchange(futures_, {});
  }
  for (std::future<void>& f : waits) {
    if (f.valid()) f.wait();
  }
}

std::vector<Prefetcher::Completed> Prefetcher::Drain() {
  // Entries join the registry before their task is submitted, so this
  // predicate cannot miss a launched job. Help-drain while waiting: a
  // queued job may only ever run on this thread when the workers are all
  // occupied by session tasks.
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (inflight_.empty()) break;
    }
    WaitStep();
  }
  SettleFutures();
  MutexLock lock(&mu_);
  return std::exchange(completed_, {});
}

std::vector<Prefetcher::Completed> Prefetcher::DrainSession(
    uint64_t session_id) {
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (!PendingForSessionLocked(session_id)) break;
    }
    WaitStep();
  }
  MutexLock lock(&mu_);
  return std::exchange(completed_, {});
}

void Prefetcher::CancelAll() {
  MutexLock lock(&mu_);
  for (auto& [key, entry] : inflight_) {
    entry->cancelled.store(true, std::memory_order_relaxed);
  }
}

void Prefetcher::CancelSession(uint64_t session_id) {
  MutexLock lock(&mu_);
  for (auto& [key, entry] : inflight_) {
    if (entry->job.session_id == session_id) {
      entry->cancelled.store(true, std::memory_order_relaxed);
    }
  }
}

void Prefetcher::RunJob(const std::shared_ptr<Entry>& entry) {
  PrefetchOutcome outcome = Execute(entry->job, entry->cancelled);
  MutexLock lock(&mu_);
  Completed done;
  done.cancelled = entry->cancelled.load(std::memory_order_relaxed);
  // Copy the key before the job moves into the completion record.
  const std::string key = entry->job.canonical_key;
  done.job = std::move(entry->job);
  done.outcome = std::move(outcome);
  completed_.push_back(std::move(done));
  inflight_.erase(key);
  cv_.NotifyAll();
}

PrefetchOutcome Prefetcher::Execute(const PrefetchJob& job,
                                    const std::atomic<bool>& cancelled) {
  PrefetchOutcome outcome;
  obs::SpanScope root(tracer_, "prefetch");
  root.Annotate("view", job.view_id);
  root.Annotate("query", job.query.ToString());

  const Plan& plan = job.plan;
  const size_t num_positive = plan.sources.size();
  const size_t num_total = num_positive + plan.anti_sources.size();
  auto source_at = [&plan, num_positive](size_t i) -> const PlanSource& {
    return i < num_positive ? plan.sources[i]
                            : plan.anti_sources[i - num_positive];
  };

  // Fetch serially on this pool thread — a prefetch task never submits
  // sub-tasks to the pool (a task blocking on sibling tasks can deadlock
  // a saturated pool) and never touches the cache, so admission only
  // hands it all-remote plans.
  double remote_ms = 0;
  std::vector<rel::Relation> materialized(num_total);
  for (size_t i = 0; i < num_total; ++i) {
    const PlanSource& source = source_at(i);
    if (source.kind != PlanSource::Kind::kRemote) {
      outcome.status = Status::FailedPrecondition(
          "prefetch job contains a cache-element source");
      return outcome;
    }
    if (cancelled.load(std::memory_order_relaxed)) {
      outcome.status = Status::FailedPrecondition("prefetch cancelled");
      return outcome;
    }
    obs::SpanScope span(tracer_, "prefetch.fetch", root.id());
    span.Annotate("subquery", source.remote_query.name);
    Result<RemoteFetch> fetch =
        rdi_->Fetch(source.remote_query, source.remote_vars);
    if (!fetch.ok()) {
      outcome.status = fetch.status();
      return outcome;
    }
    span.SetModeledMs(fetch->cost.total_ms);
    remote_ms += fetch->cost.total_ms;
    materialized[i] = std::move(fetch->bindings);
  }

  std::vector<rel::Relation> bindings(
      std::make_move_iterator(materialized.begin()),
      std::make_move_iterator(materialized.begin() + num_positive));
  std::vector<rel::Relation> anti_bindings(
      std::make_move_iterator(materialized.begin() + num_positive),
      std::make_move_iterator(materialized.end()));

  LocalWork work;
  Result<rel::Relation> assembled = QueryProcessor::Assemble(
      plan.query, std::move(bindings), plan.residual_comparisons,
      plan.evaluables, &work, std::move(anti_bindings), /*ctx=*/nullptr);
  if (!assembled.ok()) {
    outcome.status = assembled.status();
    return outcome;
  }
  outcome.result = std::move(*assembled);
  outcome.modeled_ms =
      remote_ms + work.tuples_processed * local_per_tuple_ms_;
  root.SetModeledMs(outcome.modeled_ms);
  return outcome;
}

}  // namespace braid::cms
