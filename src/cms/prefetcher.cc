#include "cms/prefetcher.h"

#include <chrono>
#include <iterator>
#include <utility>

#include "cms/query_processor.h"
#include "common/strings.h"

namespace braid::cms {

Prefetcher::Prefetcher(exec::ThreadPool* pool, RemoteDbmsInterface* rdi,
                       double local_per_tuple_ms, size_t max_inflight,
                       obs::Tracer* tracer)
    : pool_(pool),
      rdi_(rdi),
      local_per_tuple_ms_(local_per_tuple_ms),
      max_inflight_(max_inflight),
      tracer_(tracer),
      issued_(&obs::MetricsRegistry::Global().counter("prefetch.issued")),
      joined_(&obs::MetricsRegistry::Global().counter("prefetch.joined")),
      join_wait_ms_(
          &obs::MetricsRegistry::Global().histogram("prefetch.join_wait_ms")) {}

Prefetcher::~Prefetcher() {
  CancelAll();
  Drain();  // discard: the owner is gone, there is nowhere to install
}

bool Prefetcher::Launch(PrefetchJob job) {
  std::shared_ptr<Entry> entry;
  {
    MutexLock lock(&mu_);
    if (inflight_.size() >= max_inflight_) return false;
    if (inflight_.count(job.canonical_key) > 0) return false;
    entry = std::make_shared<Entry>();
    entry->job = std::move(job);
    inflight_[entry->job.canonical_key] = entry;
  }
  issued_->Increment();
  // The registry lock must NOT be held across Submit: with zero workers
  // the pool runs the task inline, and RunJob re-acquires the lock to
  // deliver its result.
  if (pool_ != nullptr) {
    std::future<void> done = pool_->Submit([this, entry] { RunJob(entry); });
    MutexLock lock(&mu_);
    // The task may already have finished (inline execution or a fast pool
    // thread) and erased the entry; parking the future on the shared Entry
    // keeps it reachable for Drain either way.
    entry->pool_future = std::move(done);
  } else {
    RunJob(entry);
  }
  return true;
}

bool Prefetcher::InFlight(const std::string& canonical_key) const {
  MutexLock lock(&mu_);
  return inflight_.count(canonical_key) > 0;
}

bool Prefetcher::PendingForViewLocked(const std::string& view_id) const {
  for (const auto& [key, entry] : inflight_) {
    if (entry->job.view_id == view_id) return true;
  }
  return false;
}

bool Prefetcher::InFlightForView(const std::string& view_id) const {
  MutexLock lock(&mu_);
  return PendingForViewLocked(view_id);
}

size_t Prefetcher::NumInFlight() const {
  MutexLock lock(&mu_);
  return inflight_.size();
}

bool Prefetcher::Join(const std::string& canonical_key) {
  const auto start = std::chrono::steady_clock::now();
  MutexLock lock(&mu_);
  if (inflight_.count(canonical_key) == 0) return false;
  obs::SpanScope span(tracer_, "prefetch.join");
  span.Annotate("key", canonical_key);
  while (inflight_.count(canonical_key) > 0) cv_.Wait(mu_);
  joined_->Increment();
  join_wait_ms_->Observe(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count());
  return true;
}

bool Prefetcher::JoinView(const std::string& view_id) {
  const auto start = std::chrono::steady_clock::now();
  MutexLock lock(&mu_);
  if (!PendingForViewLocked(view_id)) return false;
  obs::SpanScope span(tracer_, "prefetch.join");
  span.Annotate("view", view_id);
  while (PendingForViewLocked(view_id)) cv_.Wait(mu_);
  joined_->Increment();
  join_wait_ms_->Observe(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count());
  return true;
}

std::vector<Prefetcher::Completed> Prefetcher::Harvest() {
  MutexLock lock(&mu_);
  return std::exchange(completed_, {});
}

std::vector<Prefetcher::Completed> Prefetcher::Drain() {
  // Wait on the pool futures outside the lock: a future is ready only
  // once its task lambda has fully returned, so after this loop no task
  // can still be inside RunJob touching the registry.
  std::vector<std::future<void>> waits;
  {
    MutexLock lock(&mu_);
    for (auto& [key, entry] : inflight_) {
      if (entry->pool_future.valid()) {
        waits.push_back(std::move(entry->pool_future));
      }
    }
  }
  for (std::future<void>& f : waits) f.wait();
  MutexLock lock(&mu_);
  // Backstop for entries whose future had not been parked yet (Launch
  // racing with Drain): RunJob's erase + notify wakes this up.
  while (!inflight_.empty()) cv_.Wait(mu_);
  return std::exchange(completed_, {});
}

void Prefetcher::CancelAll() {
  MutexLock lock(&mu_);
  for (auto& [key, entry] : inflight_) {
    entry->cancelled.store(true, std::memory_order_relaxed);
  }
}

void Prefetcher::RunJob(const std::shared_ptr<Entry>& entry) {
  PrefetchOutcome outcome = Execute(entry->job, entry->cancelled);
  MutexLock lock(&mu_);
  Completed done;
  done.cancelled = entry->cancelled.load(std::memory_order_relaxed);
  // Copy the key before the job moves into the completion record.
  const std::string key = entry->job.canonical_key;
  done.job = std::move(entry->job);
  done.outcome = std::move(outcome);
  completed_.push_back(std::move(done));
  inflight_.erase(key);
  cv_.NotifyAll();
}

PrefetchOutcome Prefetcher::Execute(const PrefetchJob& job,
                                    const std::atomic<bool>& cancelled) {
  PrefetchOutcome outcome;
  obs::SpanScope root(tracer_, "prefetch");
  root.Annotate("view", job.view_id);
  root.Annotate("query", job.query.ToString());

  const Plan& plan = job.plan;
  const size_t num_positive = plan.sources.size();
  const size_t num_total = num_positive + plan.anti_sources.size();
  auto source_at = [&plan, num_positive](size_t i) -> const PlanSource& {
    return i < num_positive ? plan.sources[i]
                            : plan.anti_sources[i - num_positive];
  };

  // Fetch serially on this pool thread — a prefetch task never submits
  // sub-tasks to the pool (a task blocking on sibling tasks can deadlock
  // a saturated pool) and never touches the cache, so admission only
  // hands it all-remote plans.
  double remote_ms = 0;
  std::vector<rel::Relation> materialized(num_total);
  for (size_t i = 0; i < num_total; ++i) {
    const PlanSource& source = source_at(i);
    if (source.kind != PlanSource::Kind::kRemote) {
      outcome.status = Status::FailedPrecondition(
          "prefetch job contains a cache-element source");
      return outcome;
    }
    if (cancelled.load(std::memory_order_relaxed)) {
      outcome.status = Status::FailedPrecondition("prefetch cancelled");
      return outcome;
    }
    obs::SpanScope span(tracer_, "prefetch.fetch", root.id());
    span.Annotate("subquery", source.remote_query.name);
    Result<RemoteFetch> fetch =
        rdi_->Fetch(source.remote_query, source.remote_vars);
    if (!fetch.ok()) {
      outcome.status = fetch.status();
      return outcome;
    }
    span.SetModeledMs(fetch->cost.total_ms);
    remote_ms += fetch->cost.total_ms;
    materialized[i] = std::move(fetch->bindings);
  }

  std::vector<rel::Relation> bindings(
      std::make_move_iterator(materialized.begin()),
      std::make_move_iterator(materialized.begin() + num_positive));
  std::vector<rel::Relation> anti_bindings(
      std::make_move_iterator(materialized.begin() + num_positive),
      std::make_move_iterator(materialized.end()));

  LocalWork work;
  Result<rel::Relation> assembled = QueryProcessor::Assemble(
      plan.query, std::move(bindings), plan.residual_comparisons,
      plan.evaluables, &work, std::move(anti_bindings), /*ctx=*/nullptr);
  if (!assembled.ok()) {
    outcome.status = assembled.status();
    return outcome;
  }
  outcome.result = std::move(*assembled);
  outcome.modeled_ms =
      remote_ms + work.tuples_processed * local_per_tuple_ms_;
  root.SetModeledMs(outcome.modeled_ms);
  return outcome;
}

}  // namespace braid::cms
