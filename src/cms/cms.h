#ifndef BRAID_CMS_CMS_H_
#define BRAID_CMS_CMS_H_

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "advice/advice.h"
#include "cms/advice_manager.h"
#include "cms/cache_manager.h"
#include "cms/execution_monitor.h"
#include "cms/load_controller.h"
#include "cms/planner.h"
#include "cms/prefetcher.h"
#include "cms/query_processor.h"
#include "cms/remote_interface.h"
#include "cms/session.h"
#include "cms/session_scheduler.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dbms/remote_dbms.h"
#include "exec/exec_context.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"
#include "stream/stream_ops.h"

namespace braid::cms {

/// Policy switchboard for the CMS. Each flag corresponds to one of the
/// paper's techniques, so experiments can ablate them independently; the
/// baseline coupling modes of §1 are specific settings (see
/// `src/baselines`).
struct CmsConfig {
  size_t cache_budget_bytes = 8ull << 20;
  bool enable_caching = true;        // off = loose coupling
  bool enable_subsumption = true;    // off = exact-match reuse only
  /// Subsumption candidates via the semantic catalog (DESIGN.md §11); off
  /// = linear predicate-index scan (the pre-catalog baseline, kept for the
  /// scaling bench and the differential on/off configuration).
  bool enable_catalog = true;
  /// Cap on complete containment mappings the subsumption search collects
  /// per element before truncating (surfaced on the `subsumption` span and
  /// the `subsumption.truncations` counter when hit).
  size_t max_subsumption_mappings = kDefaultMaxSubsumptionMappings;
  bool single_relation_only = false; // CERI86-style: cache base relations only
  bool enable_advice = true;
  bool enable_prefetch = true;
  /// Prefetches run as background pool tasks, overlapping the IE's think
  /// time; off = the pre-pipeline behaviour of executing them inline on
  /// the session's thread. Only all-remote prefetch plans go async, and a
  /// null pool degrades to inline execution.
  bool prefetch_async = true;
  /// Background prefetches in flight at once; further admitted candidates
  /// are reconsidered after a later query.
  size_t prefetch_max_inflight = 4;
  bool enable_generalization = true;
  bool enable_indexing = true;
  bool enable_lazy = true;
  bool enable_parallel = true;
  size_t replacement_horizon = 4;    // advice-protection window (queries)
  double local_per_tuple_ms = 0.002; // workstation per-tuple cost
  /// Intermediate-result caching (DESIGN.md §12): offer the eager plan's
  /// DAG stages (per-source binding relations, join fragments, the
  /// residual-filtered relation) to a cost-based admission gate, so later
  /// queries sharing a subplan reuse the stage through subsumption instead
  /// of recomputing it.
  bool enable_intermediates = true;
  /// Fraction of the cache budget derived intermediates may occupy; the
  /// slice keeps intermediates from starving advised views (they are also
  /// the first eviction victims globally).
  double intermediate_budget_fraction = 0.25;

  /// Worker threads of the execution engine's pool (the calling thread
  /// always participates in morsel loops, so total parallelism is
  /// num_threads + 1). 0 = one less than the hardware concurrency, at
  /// least 1. Only consulted when enable_parallel is set; with parallel
  /// execution off the CMS runs poolless and fully serial. Concurrent
  /// sessions ride the same pool: size it at least to the number of
  /// sessions expected to run at once (their queries mostly block on the
  /// modeled remote link, so workers >> cores is normal and cheap).
  size_t num_threads = 0;
  /// Operator inputs below this many tuples skip the morsel machinery.
  size_t parallel_threshold = 4096;

  /// Overload policy (DESIGN.md §13). With load control on, QueryAsync
  /// refuses new queries with kOverloaded once `admission_queue_bound`
  /// queries are waiting on the scheduler, and speculative work
  /// (prefetch, generalization, intermediate admission) is shed while
  /// more than `shed_queue_depth` queries wait or — when
  /// `foreground_slo_ms` > 0 — while the foreground latency average
  /// exceeds that SLO. The defaults are far above anything a closed-loop
  /// workload produces; only open-loop traffic past the service rate
  /// reaches them.
  bool enable_load_control = true;
  size_t admission_queue_bound = 4096;
  size_t shed_queue_depth = 64;
  double foreground_slo_ms = 0;
};

/// How a query was answered.
enum class CacheOutcome {
  kExact,       // identical cached result
  kFullLocal,   // derived entirely from cached data via subsumption
  kLazy,        // generator over cached data
  kPartial,     // cached data plus a remote subquery
  kRemote,      // entirely from the remote DBMS
};

const char* CacheOutcomeName(CacheOutcome outcome);

/// A query answer: materialized relation and/or a stream over it. For lazy
/// answers `relation` is null and the stream is a generator that computes
/// tuples on demand from cached data.
struct CmsAnswer {
  std::shared_ptr<const rel::Relation> relation;
  stream::TupleStreamPtr stream;
  bool lazy = false;
  CacheOutcome outcome = CacheOutcome::kRemote;
  double response_ms = 0;
};

/// The Cache Management System (paper §5): a main-memory relational store
/// between the inference engine and the remote DBMS. Accepts advice and
/// CAQL queries, reuses cached views via subsumption, splits residual work
/// between the local Query Processor and the remote DBMS, and streams
/// results back to the IE.
///
/// The CMS is usable without any advice and by clients other than the IE
/// (paper §3) — every advice-driven behaviour degrades to a default.
///
/// ## Sessions and concurrency
///
/// One CMS serves N independent IE sessions against one shared cache.
/// OpenSession creates a `CmsSession` (its own advice, tracker, metrics);
/// queries run either synchronously — `Query(session, q)`, one caller
/// thread per session — or through the session scheduler (`QueryAsync`),
/// which multiplexes sessions over the execution pool with a fair
/// per-session FIFO and serializes each session's queries. The shared
/// components (striped cache, planner, monitor, prefetcher, remote link)
/// are all concurrency-safe; per-session state needs no lock because at
/// most one query of a session runs at a time. Do not mix QueryAsync with
/// concurrent synchronous calls on the *same* session.
///
/// The no-argument Query/metrics/BeginSession entry points operate on a
/// built-in default session, preserving the single-session API.
class Cms {
 public:
  Cms(dbms::RemoteDbms* remote, CmsConfig config);

  /// Opens an independent session with its own advice and metrics. The
  /// returned pointer stays valid until CloseSession (Cms owns it).
  CmsSession* OpenSession(advice::AdviceSet advice = advice::AdviceSet{});

  /// Closes `session`: cancels its in-flight prefetches, waits them out,
  /// installs salvageable completions, and destroys the session. The
  /// caller must have no query of the session in flight. Closing the
  /// default session or a null/unknown pointer is a no-op.
  void CloseSession(CmsSession* session);

  /// (Re)starts the default session: installs advice (ignored when advice
  /// is disabled) and resets the tracker; the default session's in-flight
  /// prefetches are cancelled and waited out first (their predictions
  /// died with the old advice).
  void BeginSession(advice::AdviceSet advice);

  /// Answers one IE query on `session`. Synchronous; a session's queries
  /// must not overlap (use one caller thread per session, or QueryAsync).
  Result<CmsAnswer> Query(CmsSession& session, const caql::CaqlQuery& query);

  /// Answers one IE query on the default session.
  Result<CmsAnswer> Query(const caql::CaqlQuery& query);

  /// Queues `query` on the session scheduler. Queries of one session run
  /// FIFO, one at a time; distinct sessions run concurrently on the pool
  /// (round-robin when it is oversubscribed). Poolless CMS degrades to
  /// synchronous execution inside this call.
  ///
  /// Admission control: when the scheduler already holds
  /// `admission_queue_bound` waiting queries, the future resolves
  /// immediately to kOverloaded — the query is never queued, never
  /// executed, and safe to retry after backing off.
  std::future<Result<CmsAnswer>> QueryAsync(CmsSession& session,
                                            const caql::CaqlQuery& query);

  /// Completion hook for one scheduled query, invoked on the executing
  /// thread right before the future resolves (for a refused query: on the
  /// caller's thread, inside QueryAsync). Lets open-loop load harnesses
  /// timestamp completions without a thread parked per in-flight future.
  /// The callback must be cheap and must not call back into this CMS.
  using QueryCallback = std::function<void(const Result<CmsAnswer>&)>;

  /// QueryAsync with a completion callback (`done` may be null).
  std::future<Result<CmsAnswer>> QueryAsync(CmsSession& session,
                                            const caql::CaqlQuery& query,
                                            QueryCallback done);

  /// Waits until every scheduled query has completed.
  void DrainSessions();

  /// CMS-only aggregation service (the remote DML has no aggregates):
  /// evaluates `query` on the default session, then groups by the named
  /// head variables and applies the aggregate to `agg_var`.
  Result<rel::Relation> Aggregate(const caql::CaqlQuery& query,
                                  const std::vector<std::string>& group_by,
                                  rel::AggFn fn, const std::string& agg_var);

  /// Answers `query` ordered by the named head variables. When the answer
  /// is a cached extension, the sorted copy is kept as a co-existing
  /// alternative representation of the element (paper §5.2) and reused by
  /// later sorted requests; "the case where alternative sortings are
  /// required" then costs one sort total, not one per use.
  Result<rel::Relation> QuerySorted(const caql::CaqlQuery& query,
                                    const std::vector<std::string>& order_by);

  /// CAQL's OR: answers the union of several conjunctive branches (the
  /// disjunctive queries a compiling IE's DAPs contain, §2). Every branch
  /// must have the same head arity; each branch benefits from the cache
  /// independently. With `distinct`, duplicates across branches collapse
  /// (SETOF over the union).
  Result<rel::Relation> QueryUnion(
      const std::vector<caql::CaqlQuery>& branches, bool distinct = false);

  /// CMS-only fixed-point service: the transitive closure of the base
  /// relation `edge_predicate` (arity 2). The closure is cached under a
  /// dedicated predicate name and reused on later calls.
  Result<rel::Relation> TransitiveClosure(const std::string& edge_predicate);

  /// Schema (and statistics) of the remote database — the path by which
  /// the IE reads schema information "via the CMS" (paper §3).
  const dbms::Database& RemoteSchema() const { return remote_->database(); }

  CacheManager& cache() { return cache_; }
  const CacheManager& cache() const { return cache_; }
  /// Default session's advice manager (tests; quiescent use only).
  AdviceManager& advice_manager() {
    return default_session_->advice_manager_unlocked();
  }
  const CmsConfig& config() const { return config_; }

  /// Default session's metrics (quiescent use, like any session metrics).
  CmsMetrics& metrics() { return default_session_->metrics(); }
  void ResetMetrics() { default_session_->ResetMetrics(); }

  /// Waits for every in-flight background prefetch and installs the
  /// completed results into the cache (credited to the default session).
  /// Benches and tests call this before reading prefetch metrics or
  /// asserting on cache contents; query processing itself never needs it
  /// (results are harvested at the next Query / joined on demand).
  void DrainPrefetches();

  /// Background prefetches currently executing or queued on the pool.
  size_t prefetches_in_flight() const {
    return prefetcher_ != nullptr ? prefetcher_->NumInFlight() : 0;
  }

  /// Scheduled queries not yet running: intra-session backlog on the
  /// scheduler plus dispatched session tasks waiting in the pool queue —
  /// the load controller's primary signal.
  size_t QueuedQueries() const {
    return scheduler_->NumQueued() +
           (pool_ != nullptr ? pool_->NumQueuedSession() : 0);
  }

  /// The overload policy engine (tests and load harnesses read its
  /// counters and latency average; always non-null).
  LoadController& load_controller() { return *load_controller_; }
  const LoadController& load_controller() const { return *load_controller_; }

  /// Per-query span recorder: every Query() records a `query` root span
  /// with `advice`, `plan` (nesting `subsumption`), `prep`, `fetch`, and
  /// `assembly` children, carrying both measured wall time and modeled
  /// simulated cost. Spans accumulate across queries (all sessions; the
  /// tracer is internally locked); callers inspect or export
  /// (`tracer().WriteJson(...)`, `tracer().PrettyTree()`) and may
  /// `tracer().Clear()` between queries.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

  /// Execution policy for operators run on behalf of this CMS (null pool
  /// when parallel execution is disabled).
  exec::ExecContext exec_context() const {
    return exec::ExecContext{pool_.get(), config_.parallel_threshold};
  }

 private:
  struct EagerExec {
    rel::Relation result;
    double response_ms = 0;
    bool any_element_source = false;
    bool fully_local = false;
  };

  /// Plans and eagerly executes `query` (no caching of the result here).
  /// Spans are recorded into `tracer_` under `parent` when nonzero.
  Result<EagerExec> ExecuteEager(CmsSession& session,
                                 const caql::CaqlQuery& query,
                                 obs::SpanId parent = 0);

  /// Caches `result` as a materialized element defined by `definition`,
  /// subject to the caching policy; builds advised indexes using
  /// `session`'s consumer annotations. Returns the element id or "" when
  /// not cached.
  std::string CacheResult(CmsSession& session,
                          const caql::CaqlQuery& definition,
                          rel::Relation result,
                          const std::string& origin_view);

  /// Generalization decision + execution (step 1 of §5.3): if advice says
  /// the constants of `query` will vary across a recurring view, execute
  /// the all-variable generalization and cache it. Charges the cost to the
  /// current response time. Returns true if a generalization was cached.
  Result<bool> MaybeGeneralize(CmsSession& session,
                               const caql::CaqlQuery& query,
                               const std::string& view_id,
                               double* response_ms, obs::SpanId parent = 0);

  /// Prefetch: execute predicted-next views (in generalized form) whose
  /// data is not yet locally derivable, ranked by the path tracker's
  /// predicted distance. With `prefetch_async`, admitted all-remote
  /// candidates launch as background pool tasks tagged with the session;
  /// costs accrue to prefetch_ms, not to any query's response. Under
  /// overload the whole pass is shed (counted once per pass). `parent`
  /// parents the shed span when nonzero.
  void MaybePrefetch(CmsSession& session, const std::string& current_view,
                     obs::SpanId parent = 0);

  /// Counts one acted-on shed decision and records a `shed` span under
  /// `parent` carrying the kind and the queue depth that triggered it.
  void RecordShed(ShedKind kind, obs::SpanId parent);

  /// Answers `query` from an exact materialized cache element if present;
  /// fills `answer` and returns true on a hit (shared by the fast path
  /// and the post-join re-probe).
  bool TryAnswerExact(CmsSession& session, const caql::CaqlQuery& query,
                      obs::SpanId parent, CmsAnswer* answer);

  /// Installs harvested background-prefetch results into the (striped,
  /// concurrency-safe) cache and settles their metrics. Completions may
  /// belong to any session; they are credited to the harvesting one.
  void InstallCompletedPrefetches(CmsSession& session,
                                  std::vector<Prefetcher::Completed> done);

  /// Estimated bytes of the result of `query` if fetched remotely.
  double EstimateResultBytes(const caql::CaqlQuery& query) const;

  /// True if the caching policy admits an element with this definition.
  bool CachingPolicyAdmits(const caql::CaqlQuery& definition) const;

  dbms::RemoteDbms* remote_;
  CmsConfig config_;
  CacheManager cache_;
  RemoteDbmsInterface rdi_;
  QueryPlanner planner_;
  std::unique_ptr<exec::ThreadPool> pool_;  // before monitor_: it borrows it
  ExecutionMonitor monitor_;
  obs::Tracer tracer_;

  /// Session registry. The replacement advisor walks it (min predicted
  /// distance across all open sessions), so it is locked; the default
  /// session (index 0, id 0) lives for the whole CMS.
  ///
  /// Lock order: `sessions_mu_` → per-session `advice_mu_` only. Never
  /// acquired with any cache stripe lock held (the cache calls the
  /// advisor lock-free), and nothing below it calls back into the cache.
  mutable Mutex sessions_mu_;
  std::vector<std::unique_ptr<CmsSession>> sessions_
      BRAID_GUARDED_BY(sessions_mu_);
  uint64_t next_session_id_ BRAID_GUARDED_BY(sessions_mu_) = 1;
  CmsSession* default_session_;  // == sessions_[0].get(), set once

  /// Declared before prefetcher_/scheduler_ (so destroyed after them):
  /// queries drained during scheduler teardown still consult it. Its
  /// queue-depth provider reads scheduler_, which is only dereferenced at
  /// query time — never during construction or after scheduler teardown
  /// completes.
  std::unique_ptr<LoadController> load_controller_;

  /// Declared after the components their tasks use: destroyed first, so
  /// teardown drains scheduled queries, then cancels and waits out
  /// background prefetches, while pool, RDI and tracer are still alive.
  std::unique_ptr<Prefetcher> prefetcher_;
  std::unique_ptr<SessionScheduler> scheduler_;
};

}  // namespace braid::cms

#endif  // BRAID_CMS_CMS_H_
