#ifndef BRAID_CMS_SESSION_SCHEDULER_H_
#define BRAID_CMS_SESSION_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace braid::cms {

/// Multiplexes N independent sessions' queries over the shared execution
/// pool, fairly. Each session has a FIFO queue and at most one query of a
/// session runs at a time — the per-session serialization the CMS query
/// path relies on (a session's metrics and admission memo are unlocked).
/// Across sessions, dispatch is round-robin over the sessions that have
/// queued work, so one chatty session cannot starve the others.
///
/// Tasks run on the pool as *session-class* tasks (ThreadPool::TaskClass::
/// kSession): workers prefer inner tasks, and a session task that blocks
/// on inner work (fetches, prefetch joins) help-drains the inner queue, so
/// saturating the pool with sessions cannot deadlock it. With a null pool
/// the scheduler degrades to running each task inline in Enqueue.
///
/// Lock order: `mu_` is a leaf; it is never held while a task runs.
class SessionScheduler {
 public:
  explicit SessionScheduler(exec::ThreadPool* pool);
  /// Waits for all queued and running tasks.
  ~SessionScheduler();

  SessionScheduler(const SessionScheduler&) = delete;
  SessionScheduler& operator=(const SessionScheduler&) = delete;

  /// Queues `task` for `session_id`. Tasks of one session run in FIFO
  /// order, one at a time; the caller typically captures a promise to get
  /// the result back.
  void Enqueue(uint64_t session_id, std::function<void()> task);

  /// Blocks until every queued task has run and every running task has
  /// finished. New Enqueues during a Drain prolong it.
  void Drain();

  /// Sessions with a task currently running.
  size_t NumActive() const;
  /// Tasks waiting in session queues (excludes running ones).
  size_t NumQueued() const;

 private:
  /// Pops the next task to run, honouring round-robin fairness, or
  /// returns false. On true, `*session_out`'s flag is already marked
  /// running.
  bool NextLocked(uint64_t* session_out, std::function<void()>* task_out)
      BRAID_REQUIRES(mu_);

  /// Submits (or, poolless, runs inline) the task and its completion
  /// epilogue.
  void Dispatch(uint64_t session_id, std::function<void()> task);

  /// Completion epilogue: clears the running flag and dispatches the next
  /// ready task, if any.
  void OnDone(uint64_t session_id);

  void UpdateGauges() BRAID_REQUIRES(mu_);

  exec::ThreadPool* pool_;

  mutable Mutex mu_;
  CondVar cv_;
  /// Per-session FIFO of queued tasks (absent key = nothing queued).
  std::map<uint64_t, std::deque<std::function<void()>>> queues_
      BRAID_GUARDED_BY(mu_);
  /// Round-robin order over sessions with queued work and no running task.
  std::deque<uint64_t> ready_ BRAID_GUARDED_BY(mu_);
  /// Sessions with a task currently running.
  std::map<uint64_t, bool> running_ BRAID_GUARDED_BY(mu_);
  size_t num_running_ BRAID_GUARDED_BY(mu_) = 0;
  size_t num_queued_ BRAID_GUARDED_BY(mu_) = 0;

  obs::Gauge* active_gauge_;
  obs::Gauge* queued_gauge_;
};

}  // namespace braid::cms

#endif  // BRAID_CMS_SESSION_SCHEDULER_H_
