#ifndef BRAID_CMS_LOAD_CONTROLLER_H_
#define BRAID_CMS_LOAD_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace braid::cms {

/// Knobs of the overload policy (mirrored from CmsConfig). The defaults
/// are sized for production traffic: unit workloads (a handful of
/// sessions, one query in flight each) never hit them, while an open-loop
/// generator pushing past the service rate does within a few hundred ms.
struct LoadControlPolicy {
  bool enabled = true;
  /// Scheduled-but-not-running queries beyond which new QueryAsync calls
  /// are refused with kOverloaded instead of queued (bounded queueing:
  /// beyond this point added queue depth only adds latency, never
  /// goodput).
  size_t admission_queue_bound = 4096;
  /// Queue depth beyond which speculative work (prefetch, generalization,
  /// intermediate admission) is shed. Speculation spends pool capacity to
  /// hide *future* latency; under overload that capacity is exactly what
  /// foreground queries are queueing for, so speculation yields first.
  size_t shed_queue_depth = 64;
  /// When > 0: also shed speculative work while the exponentially
  /// weighted moving average of foreground latency (enqueue to
  /// completion, measured ms) exceeds this bound — a signal that catches
  /// overload from slow queries before the queue itself grows.
  double foreground_slo_ms = 0;
  /// Smoothing factor of that moving average in (0, 1]; higher reacts
  /// faster.
  double ewma_alpha = 0.2;
};

/// Shed/admission decisions split by what was shed, for counters and
/// tests.
enum class ShedKind { kPrefetch, kGeneralization, kIntermediate };

const char* ShedKindName(ShedKind kind);

/// Central overload policy of the CMS (DESIGN.md §13): watches the
/// session scheduler's queue depth and the measured foreground latency,
/// and decides (a) whether a new scheduled query may be admitted at all
/// and (b) whether speculative work should be shed right now. Decisions
/// are advisory snapshots — the queue can move between the check and the
/// action — which is sound because shedding never changes answers, only
/// costs, and admission refusal is a clean kOverloaded the client retries.
///
/// Thread safety: fully concurrent. Counters are registry-backed
/// (lock-free); the latency average sits behind a leaf mutex; the queue
/// depth is read through the injected provider (the scheduler's own
/// locked counter). Never calls back into the cache or scheduler other
/// than through that provider.
class LoadController {
 public:
  /// `queue_depth` reports the scheduler's queued (not yet running)
  /// query count; it must be callable from any thread and must not call
  /// back into the controller.
  LoadController(LoadControlPolicy policy,
                 std::function<size_t()> queue_depth);

  LoadController(const LoadController&) = delete;
  LoadController& operator=(const LoadController&) = delete;

  /// Admission control for one scheduled query. False means the caller
  /// must refuse with kOverloaded (counted on `load.rejected_sessions`);
  /// the query is never silently dropped and never queued.
  bool AdmitQuery();

  /// True while speculative work should be shed (queue depth or SLO
  /// signal). Callers that act on a true verdict report it via
  /// CountShed so counters match decisions one to one.
  bool ShouldShed() const;

  /// Records one acted-on shed decision (surfaced as
  /// `load.shed_{prefetch,generalize,intermediate}`).
  void CountShed(ShedKind kind);

  /// Feeds one completed foreground query's enqueue-to-completion
  /// latency into the moving average.
  void OnForegroundLatency(double measured_ms);

  double ForegroundEwmaMs() const;
  size_t QueueDepth() const { return queue_depth_(); }
  const LoadControlPolicy& policy() const { return policy_; }

  /// Lifetime totals (also published on the obs registry).
  uint64_t rejected_queries() const {
    return rejected_->value();
  }
  uint64_t shed_count(ShedKind kind) const;

 private:
  const LoadControlPolicy policy_;
  const std::function<size_t()> queue_depth_;

  /// Leaf mutex for the latency average; everything else is lock-free.
  mutable Mutex ewma_mu_;
  double ewma_ms_ BRAID_GUARDED_BY(ewma_mu_) = 0;
  bool ewma_primed_ BRAID_GUARDED_BY(ewma_mu_) = false;

  // Registry-owned handles (process lifetime).
  obs::Counter* rejected_;
  obs::Counter* shed_prefetch_;
  obs::Counter* shed_generalize_;
  obs::Counter* shed_intermediate_;
};

}  // namespace braid::cms

#endif  // BRAID_CMS_LOAD_CONTROLLER_H_
