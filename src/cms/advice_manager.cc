#include "cms/advice_manager.h"

#include "logic/unify.h"

namespace braid::cms {

void AdviceManager::BeginSession(advice::AdviceSet advice) {
  advice_ = std::move(advice);
  has_advice_ = true;
  queries_seen_ = 0;
  tracker_.reset();
  if (advice_.path_expression != nullptr) {
    tracker_ = std::make_unique<advice::PathTracker>(advice_.path_expression);
  }
}

void AdviceManager::OnQuery(const std::string& view_id) {
  ++queries_seen_;
  if (tracker_ != nullptr && !view_id.empty()) {
    tracker_->Advance(view_id);
  }
}

std::set<std::string> AdviceManager::PrefetchCandidates() const {
  if (tracker_ == nullptr) return {};
  return tracker_->PredictNext();
}

bool AdviceManager::ShouldCacheResult(const std::string& view_id) const {
  if (tracker_ == nullptr || view_id.empty()) return true;
  // Cache unless the tracker proves the view cannot appear again.
  return tracker_->MinDistanceTo(view_id).has_value();
}

std::vector<std::string> AdviceManager::IndexHints(
    const std::string& view_id) const {
  const advice::ViewSpec* view = FindView(view_id);
  if (view == nullptr) return {};
  return view->ConsumerVariables();
}

bool AdviceManager::LazyHint(const std::string& view_id) const {
  const advice::ViewSpec* view = FindView(view_id);
  if (view == nullptr) return false;
  return view->AllProducers();
}

std::optional<size_t> AdviceManager::PredictedDistance(
    const std::string& view_id) const {
  if (tracker_ == nullptr || view_id.empty()) return std::nullopt;
  return tracker_->MinDistanceTo(view_id);
}

bool AdviceManager::ShouldGeneralize(const std::string& view_id,
                                     const caql::CaqlQuery& instance) const {
  if (!has_advice_) return false;
  // Trigger 1: the view may recur — the general form will answer the later
  // instances with different constants.
  if (tracker_ != nullptr && !view_id.empty() &&
      tracker_->MinDistanceTo(view_id).has_value()) {
    return true;
  }
  // Trigger 2: another view specification contains a more general
  // occurrence of one of the instance's constant-bearing atoms (the
  // paper's b1(X,Y)-in-d3 subsumes b1(c1,Y) example).
  for (const logic::Atom& q_atom : instance.RelationAtoms()) {
    if (q_atom.IsGround() || q_atom.Variables().size() == q_atom.arity()) {
      // Only atoms mixing constants and variables benefit.
      if (q_atom.Variables().size() == q_atom.arity()) continue;
    }
    for (const advice::ViewSpec& other : advice_.view_specs) {
      if (other.id == view_id) continue;
      for (const logic::Atom& o_atom : other.body) {
        if (o_atom.predicate != q_atom.predicate ||
            o_atom.arity() != q_atom.arity()) {
          continue;
        }
        auto match = logic::MatchOneWay(o_atom, q_atom);
        if (!match.has_value()) continue;
        // Strictly more general: some constant of q_atom maps to a
        // variable of o_atom.
        for (size_t i = 0; i < q_atom.arity(); ++i) {
          if (q_atom.args[i].is_constant() && o_atom.args[i].is_variable()) {
            return true;
          }
        }
      }
    }
  }
  return false;
}

bool AdviceManager::SessionRelevant(const std::string& predicate) const {
  if (!has_advice_) return false;
  for (const std::string& b : advice_.base_relations) {
    if (b == predicate) return true;
  }
  return false;
}

size_t AdviceManager::tracker_mispredictions() const {
  return tracker_ == nullptr ? 0 : tracker_->mispredictions();
}

}  // namespace braid::cms
