#include "cms/session_scheduler.h"

#include <chrono>
#include <utility>

namespace braid::cms {

SessionScheduler::SessionScheduler(exec::ThreadPool* pool)
    : pool_(pool),
      active_gauge_(&obs::MetricsRegistry::Global().gauge("sessions.active")),
      queued_gauge_(&obs::MetricsRegistry::Global().gauge("sessions.queued")) {}

SessionScheduler::~SessionScheduler() { Drain(); }

void SessionScheduler::UpdateGauges() {
  active_gauge_->Set(static_cast<int64_t>(num_running_));
  queued_gauge_->Set(static_cast<int64_t>(num_queued_));
}

void SessionScheduler::Enqueue(uint64_t session_id,
                               std::function<void()> task) {
  if (pool_ == nullptr) {
    // Poolless (serial CMS): degrade to synchronous execution. The FIFO
    // and one-at-a-time guarantees hold trivially on the caller's thread.
    task();
    return;
  }
  uint64_t next_session = 0;
  std::function<void()> next_task;
  bool dispatch = false;
  {
    MutexLock lock(&mu_);
    queues_[session_id].push_back(std::move(task));
    ++num_queued_;
    if (!running_[session_id]) ready_.push_back(session_id);
    dispatch = NextLocked(&next_session, &next_task);
    UpdateGauges();
  }
  if (dispatch) Dispatch(next_session, std::move(next_task));
}

bool SessionScheduler::NextLocked(uint64_t* session_out,
                                  std::function<void()>* task_out) {
  while (!ready_.empty()) {
    const uint64_t sid = ready_.front();
    ready_.pop_front();
    if (running_[sid]) continue;  // raced: became running since queued
    auto it = queues_.find(sid);
    if (it == queues_.end() || it->second.empty()) continue;
    *session_out = sid;
    *task_out = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) queues_.erase(it);
    running_[sid] = true;
    ++num_running_;
    --num_queued_;
    return true;
  }
  return false;
}

void SessionScheduler::Dispatch(uint64_t session_id,
                                std::function<void()> task) {
  // The pool's session class keeps workers preferring inner tasks and
  // pairs with help-draining waits inside the query path.
  pool_->Submit(
      [this, session_id, task = std::move(task)] {
        task();
        OnDone(session_id);
      },
      exec::ThreadPool::TaskClass::kSession);
}

void SessionScheduler::OnDone(uint64_t session_id) {
  uint64_t next_session = 0;
  std::function<void()> next_task;
  bool dispatch = false;
  {
    MutexLock lock(&mu_);
    running_.erase(session_id);
    --num_running_;
    // The finished session re-queues at the back: round-robin fairness.
    auto it = queues_.find(session_id);
    if (it != queues_.end() && !it->second.empty()) {
      ready_.push_back(session_id);
    }
    dispatch = NextLocked(&next_session, &next_task);
    UpdateGauges();
    cv_.NotifyAll();
  }
  if (dispatch) Dispatch(next_session, std::move(next_task));
}

void SessionScheduler::Drain() {
  if (pool_ == nullptr) return;
  // The waiter may itself be holding pool capacity hostage, so help run
  // queued *inner* tasks while waiting (session tasks themselves always
  // run on workers; with >= 1 worker they make progress because their
  // blocking waits help-drain too).
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (num_running_ == 0 && num_queued_ == 0) return;
    }
    if (!pool_->HelpOne()) {
      MutexLock lock(&mu_);
      if (num_running_ == 0 && num_queued_ == 0) return;
      cv_.WaitFor(mu_, std::chrono::milliseconds(1));
    }
  }
}

size_t SessionScheduler::NumActive() const {
  MutexLock lock(&mu_);
  return num_running_;
}

size_t SessionScheduler::NumQueued() const {
  MutexLock lock(&mu_);
  return num_queued_;
}

}  // namespace braid::cms
