#ifndef BRAID_CMS_SUBSUMPTION_H_
#define BRAID_CMS_SUBSUMPTION_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "caql/caql_query.h"
#include "relational/predicate.h"

namespace braid::cms {

/// One residual selection to apply to a cache element's extension so that
/// it yields (a component of) the query: either column-op-constant (a
/// query constant matched a definition variable) or column = column (two
/// definition variables matched the same query variable).
struct ResidualSelection {
  size_t column = 0;
  rel::CompareOp op = rel::CompareOp::kEq;
  bool rhs_is_column = false;
  size_t rhs_column = 0;
  rel::Value constant;
};

/// The result of a successful subsumption test: how a cache element's
/// extension can be used to derive a component of a query (paper §5.3.2).
struct SubsumptionMatch {
  /// Indices into the query's RelationAtoms() list covered by the element.
  std::vector<size_t> covered;
  /// For every query variable the rest of the plan needs, the element
  /// extension column (position within the element's head) that carries it.
  std::map<std::string, size_t> var_to_column;
  /// Selections to apply to the element extension.
  std::vector<ResidualSelection> selections;
  /// True if every relation atom of the query is covered.
  bool full = false;

  std::string ToString() const;
};

/// Default for SubsumptionOptions::max_mappings and the corresponding
/// CmsConfig knob.
inline constexpr size_t kDefaultMaxSubsumptionMappings = 1024;

/// Caps on the containment-mapping search. The mapping count is factorial
/// in the worst case (self-join-heavy queries), so the search stops after
/// `max_mappings` complete assignments; hitting the cap is recorded on the
/// process-wide `subsumption.truncations` counter and in SubsumptionInfo
/// so a silently-forced remote fetch stays diagnosable.
struct SubsumptionOptions {
  size_t max_mappings = kDefaultMaxSubsumptionMappings;
};

/// What the search did, for traces and tests.
struct SubsumptionInfo {
  /// True when the mapping search hit max_mappings and may have dropped a
  /// viable mapping.
  bool truncated = false;
};

/// Tests whether the cached view defined by `element_def` subsumes (can be
/// used to derive) a component of `query`, and if so derives the residual
/// operations.
///
/// Both queries are restricted to the PSJ class (conjunctions of relation
/// atoms and comparisons; cf. [LARS85]). The algorithm searches for a
/// containment mapping θ from the element definition onto the query:
/// every relation atom of the definition must map (via one-directional
/// term matching — query constants may match definition variables, never
/// the reverse) onto some relation atom of the query, consistently. The
/// image of the mapping is the covered component. Definition comparison
/// atoms must be implied by the query's comparisons (otherwise the element
/// is more restrictive and unusable — step 2 of the paper's sketch).
/// Definitions containing evaluable functions require an exact match
/// (identical canonical form), per §5.3.2.
///
/// Returns nullopt when no usable mapping exists. When several mappings
/// exist, the one covering the most query atoms (breaking ties by fewest
/// residual selections) is returned.
std::optional<SubsumptionMatch> ComputeSubsumption(
    const caql::CaqlQuery& element_def, const caql::CaqlQuery& query,
    const SubsumptionOptions& options = {}, SubsumptionInfo* info = nullptr);

/// All usable matches, at most one per distinct covered-atom set (the best
/// by fewest residual selections), ordered by descending coverage. The
/// planner uses this so a single cached element can serve several
/// components of one query (e.g. both sides of a self-join).
std::vector<SubsumptionMatch> ComputeSubsumptionAll(
    const caql::CaqlQuery& element_def, const caql::CaqlQuery& query,
    const SubsumptionOptions& options = {}, SubsumptionInfo* info = nullptr);

/// True if `implied` (a comparison atom, possibly ground) is a logical
/// consequence of the conjunction of `known` comparison atoms together
/// with arithmetic evaluation. Handles ground evaluation, syntactic
/// identity (also reversed with a flipped operator), and single-variable
/// interval reasoning (e.g. X < 3 implies X < 5, X = 2 implies X <= 2).
bool ComparisonImplied(const std::vector<logic::Atom>& known,
                       const logic::Atom& implied);

/// Numeric interval implication for comparisons over a shared variable:
/// does "X known_op a" imply "X implied_op b"? Sound (never claims an
/// implication that can fail) but deliberately conservative at integer
/// boundaries — property-tested against brute-force evaluation. Exposed
/// so the semantic catalog's range pre-filter reuses exactly the
/// reasoning the mapping search applies.
bool IntervalImplies(rel::CompareOp known_op, const rel::Value& a,
                     rel::CompareOp implied_op, const rel::Value& b);

}  // namespace braid::cms

#endif  // BRAID_CMS_SUBSUMPTION_H_
