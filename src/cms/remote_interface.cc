#include "cms/remote_interface.h"

#include <map>

#include "common/strings.h"
#include "obs/metrics.h"

namespace braid::cms {

namespace {

using caql::CaqlQuery;
using logic::Atom;
using logic::Term;

}  // namespace

Result<dbms::SqlQuery> RemoteDbmsInterface::Translate(
    const CaqlQuery& query, const std::vector<std::string>& needed_vars)
    const {
  if (!query.EvaluableAtoms().empty()) {
    return Status::Unimplemented(
        "remote DBMS does not support evaluable functions");
  }
  const std::vector<Atom> atoms = query.RelationAtoms();
  if (atoms.empty()) {
    return Status::InvalidArgument("remote query has no relation atoms");
  }

  dbms::SqlQuery sql;
  // Occurrences of each variable: (table position, column).
  std::map<std::string, std::vector<dbms::ColRef>> occurrences;

  const dbms::Database& db = remote_->database();
  for (size_t ti = 0; ti < atoms.size(); ++ti) {
    const Atom& atom = atoms[ti];
    const rel::Relation* table = db.GetTable(atom.predicate);
    if (table == nullptr) {
      return Status::NotFound(
          StrCat("base relation ", atom.predicate, " not in remote schema"));
    }
    if (table->schema().size() != atom.arity()) {
      return Status::InvalidArgument(
          StrCat("atom ", atom.ToString(), " arity mismatch with table ",
                 atom.predicate));
    }
    sql.from.push_back(atom.predicate);
    for (size_t ci = 0; ci < atom.args.size(); ++ci) {
      const Term& t = atom.args[ci];
      if (t.is_constant()) {
        dbms::Condition cond;
        cond.lhs = dbms::ColRef{ti, ci};
        cond.op = rel::CompareOp::kEq;
        cond.rhs_is_column = false;
        cond.constant = t.value();
        sql.where.push_back(std::move(cond));
      } else {
        occurrences[t.var_name()].push_back(dbms::ColRef{ti, ci});
      }
    }
  }

  // Equality chains for repeated variables.
  for (const auto& [var, occs] : occurrences) {
    for (size_t i = 1; i < occs.size(); ++i) {
      dbms::Condition cond;
      cond.lhs = occs[i - 1];
      cond.op = rel::CompareOp::kEq;
      cond.rhs_is_column = true;
      cond.rhs_col = occs[i];
      sql.where.push_back(std::move(cond));
    }
  }

  // Comparison atoms.
  for (const Atom& comp : query.ComparisonAtoms()) {
    const Term& lhs = comp.args[0];
    const Term& rhs = comp.args[1];
    if (lhs.is_constant() && rhs.is_constant()) {
      // Ground: statically true comparisons vanish; statically false ones
      // are unsatisfiable — represent with an impossible condition on the
      // first table's first column (a = a AND a != a shape is overkill;
      // use two contradictory constants).
      if (rel::EvalCompare(comp.comparison_op(), lhs.value(), rhs.value())) {
        continue;
      }
      dbms::Condition c1;
      c1.lhs = dbms::ColRef{0, 0};
      c1.op = rel::CompareOp::kEq;
      c1.rhs_is_column = false;
      c1.constant = rel::Value::Int(0);
      dbms::Condition c2 = c1;
      c2.op = rel::CompareOp::kNe;
      sql.where.push_back(c1);
      sql.where.push_back(c2);
      continue;
    }
    auto occ_of = [&occurrences](const Term& t) -> const dbms::ColRef* {
      auto it = occurrences.find(t.var_name());
      return it == occurrences.end() ? nullptr : &it->second.front();
    };
    if (lhs.is_variable() && rhs.is_variable()) {
      const dbms::ColRef* lo = occ_of(lhs);
      const dbms::ColRef* ro = occ_of(rhs);
      if (lo == nullptr || ro == nullptr) {
        return Status::InvalidArgument(
            StrCat("comparison ", comp.ToString(),
                   " references variable outside the remote subquery"));
      }
      dbms::Condition cond;
      cond.lhs = *lo;
      cond.op = comp.comparison_op();
      cond.rhs_is_column = true;
      cond.rhs_col = *ro;
      sql.where.push_back(std::move(cond));
    } else {
      const bool lhs_is_var = lhs.is_variable();
      const Term& var = lhs_is_var ? lhs : rhs;
      const Term& constant = lhs_is_var ? rhs : lhs;
      const dbms::ColRef* occ = occ_of(var);
      if (occ == nullptr) {
        return Status::InvalidArgument(
            StrCat("comparison ", comp.ToString(),
                   " references variable outside the remote subquery"));
      }
      dbms::Condition cond;
      cond.lhs = *occ;
      cond.op = lhs_is_var ? comp.comparison_op()
                           : rel::ReverseCompareOp(comp.comparison_op());
      cond.rhs_is_column = false;
      cond.constant = constant.value();
      sql.where.push_back(std::move(cond));
    }
  }

  // SELECT list. An empty needed set (pure existence check) selects the
  // first column so the tuple count survives the round trip.
  if (needed_vars.empty()) {
    sql.select.push_back(dbms::ColRef{0, 0});
  }
  for (const std::string& var : needed_vars) {
    auto it = occurrences.find(var);
    if (it == occurrences.end()) {
      return Status::InvalidArgument(
          StrCat("needed variable ", var, " does not occur in the subquery"));
    }
    sql.select.push_back(it->second.front());
  }
  return sql;
}

Result<RemoteFetch> RemoteDbmsInterface::Fetch(
    const CaqlQuery& query, const std::vector<std::string>& needed_vars) {
  // Counts every fetch issued through the RDI, from the foreground
  // thread, the monitor's concurrent fetch tasks, and prefetch tasks
  // alike — the counter the fetch-exactly-once tests assert on. Fetch is
  // thread-safe: Translate is const over the immutable remote schema and
  // Execute guards its statistics internally.
  obs::MetricsRegistry::Global().counter("remote.fetches").Increment();
  BRAID_ASSIGN_OR_RETURN(dbms::SqlQuery sql, Translate(query, needed_vars));
  BRAID_ASSIGN_OR_RETURN(dbms::RemoteResult result, remote_->Execute(sql));

  // Rename result columns to the requested variable names, carrying the
  // remote base-table column types through: sql.select[i] is the first
  // occurrence of needed_vars[i], so its table/column pair resolves the
  // variable's declared type in the remote schema.
  const dbms::Database& db = remote_->database();
  std::vector<rel::Column> cols;
  cols.reserve(needed_vars.size());
  for (size_t i = 0; i < needed_vars.size(); ++i) {
    rel::ValueType type = rel::ValueType::kNull;
    const dbms::ColRef& ref = sql.select[i];
    if (const rel::Relation* table = db.GetTable(sql.from[ref.table])) {
      type = table->schema().column(ref.column).type;
    }
    cols.push_back(rel::Column{needed_vars[i], type});
  }
  rel::Relation bindings("remote", rel::Schema(std::move(cols)));
  if (needed_vars.empty()) {
    // Existence check: keep the tuple count, drop the placeholder column.
    bindings.mutable_tuples().assign(result.relation.NumTuples(),
                                     rel::Tuple{});
  } else {
    bindings.mutable_tuples() = std::move(result.relation.mutable_tuples());
  }
  return RemoteFetch{std::move(bindings), result.cost};
}

Result<std::unique_ptr<stream::BufferedRemoteStream>>
RemoteDbmsInterface::FetchStream(const CaqlQuery& query,
                                 const std::vector<std::string>& needed_vars) {
  BRAID_ASSIGN_OR_RETURN(RemoteFetch fetch, Fetch(query, needed_vars));
  stream::RemoteStreamTiming timing;
  timing.server_ms = fetch.cost.server_ms;
  timing.msg_latency_ms = remote_->network().msg_latency_ms;
  timing.per_tuple_ms = remote_->network().per_tuple_ms;
  timing.buffer_tuples = remote_->network().buffer_tuples;
  timing.pipelining = remote_->network().pipelining;
  return std::make_unique<stream::BufferedRemoteStream>(
      std::make_shared<rel::Relation>(std::move(fetch.bindings)), timing);
}

}  // namespace braid::cms
