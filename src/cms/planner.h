#ifndef BRAID_CMS_PLANNER_H_
#define BRAID_CMS_PLANNER_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "caql/caql_query.h"
#include "cms/cache_model.h"
#include "cms/subsumption.h"
#include "common/status.h"
#include "dbms/remote_dbms.h"
#include "obs/trace.h"

namespace braid::cms {

class LoadController;

/// One independent input of a plan: either a cache element (with the
/// subsumption match describing the residual operations) or a remote
/// subquery. Sources are independent and may execute in parallel — the
/// cache-side sources on the workstation while the remote subquery runs on
/// the database server (paper §5: "Support for parallel execution of
/// subqueries on both the CMS and the remote DBMS").
struct PlanSource {
  enum class Kind { kElement, kRemote };
  Kind kind = Kind::kElement;

  // kElement:
  std::string element_id;
  /// Pin on the element taken at plan time. Extensions are immutable and
  /// shared_ptr-held, so a concurrent eviction cannot invalidate a plan
  /// mid-execution: the plan reads its pinned element, the cache just
  /// stops advertising it. (Empty only in hand-built plans; executors
  /// fall back to a model lookup by id.)
  CacheElementPtr element;
  SubsumptionMatch match;

  // kRemote:
  caql::CaqlQuery remote_query;
  std::vector<std::string> remote_vars;  // bindings to ship back

  std::string ToString() const;
};

/// An executable plan: a set of independent sources whose binding
/// relations are joined, filtered by the residual comparisons, extended by
/// the evaluable atoms, anti-joined against the negated literals' sources,
/// and projected onto the query head.
struct Plan {
  caql::CaqlQuery query;
  std::vector<PlanSource> sources;
  /// One source per negated literal, fetching the positive form; applied
  /// as an anti-join during assembly (CAQL's NOT — the remote DML cannot
  /// express it, so it always executes on the CMS).
  std::vector<PlanSource> anti_sources;
  std::vector<logic::Atom> residual_comparisons;
  std::vector<logic::Atom> evaluables;
  bool fully_local = false;

  std::string ToString() const;
};

/// Planner policy knobs (subset of the CMS configuration).
struct PlannerConfig {
  /// When false, cached data is only reused through the facade's
  /// exact-match path; the planner sends everything remote.
  bool enable_subsumption = true;
  /// When true, subsumption candidates come from the semantic catalog
  /// (signature pre-filtering, sublinear in cache size); when false, the
  /// planner scans the predicate index — the linear baseline the catalog
  /// bench and the difftest on/off configuration compare against.
  bool use_catalog = true;
  /// Cap on complete containment mappings examined per element
  /// (CmsConfig::max_subsumption_mappings).
  size_t max_subsumption_mappings = kDefaultMaxSubsumptionMappings;
};

/// The Query Planner/Optimizer (paper §5.3). Step 1 (choosing the query to
/// evaluate, including generalization) happens in the CMS facade with the
/// Advice Manager; this class implements step 2 (identify relevant cache
/// elements via subsumption, using the cache model's predicate index) and
/// step 3 (divide the query into a partially ordered set of subqueries for
/// the Cache Manager and the remote DBMS, choosing among overlapping
/// elements by cost).
class QueryPlanner {
 public:
  QueryPlanner(const CacheModel* model, const dbms::RemoteDbms* remote,
               PlannerConfig config)
      : model_(model), remote_(remote), config_(config) {}

  /// Step 2: all materialized cache elements that can derive a component
  /// of `query`, with their matches. With a tracer, the probe is recorded
  /// as a `subsumption` span (annotated with the match count) under
  /// `parent`.
  std::vector<std::pair<CacheElementPtr, SubsumptionMatch>> RelevantElements(
      const caql::CaqlQuery& query, obs::Tracer* tracer = nullptr,
      obs::SpanId parent = 0) const;

  /// Steps 2+3: builds an executable plan for `query`. The tracer, when
  /// given, records a `plan` span with a nested `subsumption` span.
  Result<Plan> PlanQuery(const caql::CaqlQuery& query,
                         obs::Tracer* tracer = nullptr,
                         obs::SpanId parent = 0) const;

 private:
  /// Subsumption candidate retrieval: the semantic catalog when
  /// `use_catalog` is set, else a linear sweep of the predicate index.
  std::vector<CacheElementPtr> CandidateElements(
      const caql::CaqlQuery& query, CatalogLookupStats* stats) const;

  const CacheModel* model_;
  const dbms::RemoteDbms* remote_;
  PlannerConfig config_;
};

/// Verdict of the speculative-admission rule shared by query
/// generalization (§5.3.1) and prefetching (§4.2.2): whether the
/// generalized form of a view is worth executing ahead of need.
enum class SpeculativeAdmission {
  kAdmit,          // execute it
  kAlreadyCached,  // the general form is already materialized
  kFullyLocal,     // derivable from cached data — no remote work to hide
  kTooLarge,       // estimated result exceeds half the cache budget
  kUnplannable,    // the planner cannot build a plan for it
  kShedOverload,   // the load controller is shedding speculative work
};

const char* SpeculativeAdmissionName(SpeculativeAdmission verdict);

/// The single definition of speculative admission control: the overload
/// check (DESIGN.md §13 — under load, speculation yields its pool
/// capacity to foreground queries before anything else is considered),
/// the already-cached probe, the size cap against `cache_budget_bytes /
/// 2`, and — for prefetching, which only pays off when there is remote
/// latency to hide — the fully-local skip. `estimated_result_bytes` is
/// invoked lazily, after the cheap cache probe. On kAdmit with a non-null
/// `plan_out`, the plan computed for the fully-local check is handed back
/// so callers do not plan the same query twice. `load`, when non-null, is
/// consulted first and short-circuits everything (the verdict must stay
/// cheap exactly when the system is busiest); callers acting on
/// kShedOverload report it via LoadController::CountShed.
SpeculativeAdmission JudgeSpeculative(
    const CacheModel& model, const QueryPlanner& planner,
    const caql::CaqlQuery& general,
    const std::function<double()>& estimated_result_bytes,
    size_t cache_budget_bytes, bool skip_if_fully_local,
    Plan* plan_out = nullptr, const LoadController* load = nullptr);

}  // namespace braid::cms

#endif  // BRAID_CMS_PLANNER_H_
