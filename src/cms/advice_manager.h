#ifndef BRAID_CMS_ADVICE_MANAGER_H_
#define BRAID_CMS_ADVICE_MANAGER_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "advice/advice.h"
#include "advice/path_tracker.h"
#include "caql/caql_query.h"

namespace braid::cms {

/// The Advice Manager (paper Fig. 5): holds the advice received from the IE
/// at session start, tracks the session's position in the path expression,
/// and answers the planning questions of §4.2 — prefetching, result
/// caching, replacement priority, attribute indexing, lazy-vs-eager, and
/// query generalization. All answers degrade gracefully when a piece of
/// advice is absent (the CMS functions without advice; paper §3).
class AdviceManager {
 public:
  AdviceManager() = default;

  /// Installs the advice for a new session, resetting the tracker.
  void BeginSession(advice::AdviceSet advice);

  bool has_advice() const { return has_advice_; }
  const advice::AdviceSet& advice() const { return advice_; }

  /// Records the arrival of an IE query against `view_id`, advancing the
  /// path tracker.
  void OnQuery(const std::string& view_id);

  /// View ids that may be requested next (prefetch candidates), given the
  /// current tracker position. Empty without a path expression.
  std::set<std::string> PrefetchCandidates() const;

  /// Whether the result of a query against `view_id` is worth caching:
  /// true unless the path expression proves the view cannot recur ("It may
  /// also choose not to cache the relation if there are no other predicted
  /// requests for it", §4.2.1).
  bool ShouldCacheResult(const std::string& view_id) const;

  /// Head variables of the view annotated as consumers — the "prime
  /// candidates for indexing" (§4.2.1).
  std::vector<std::string> IndexHints(const std::string& view_id) const;

  /// True when the §5.3.3 guideline selects lazy evaluation: every
  /// annotated head variable is a producer.
  bool LazyHint(const std::string& view_id) const;

  /// Minimum predicted distance (in queries) until `view_id` may be
  /// requested again; nullopt when unknown or impossible. Drives
  /// replacement decisions.
  std::optional<size_t> PredictedDistance(const std::string& view_id) const;

  /// The simplest form of advice (§4.2): is `predicate` in the session's
  /// relevant-base-relation list? "Even this simplest form of advice will
  /// provide the CMS with significant knowledge about an AI query" — the
  /// cache manager uses it to prefer evicting session-irrelevant elements.
  bool SessionRelevant(const std::string& predicate) const;

  /// Whether a constant-bound instance of `view_id` should be generalized
  /// before remote execution (§5.3.1): the view may recur (so the general
  /// form will be reused with other constants), or another view spec
  /// contains a more general occurrence of one of its atoms.
  bool ShouldGeneralize(const std::string& view_id,
                        const caql::CaqlQuery& instance) const;

  const advice::ViewSpec* FindView(const std::string& id) const {
    return advice_.FindView(id);
  }

  size_t queries_seen() const { return queries_seen_; }
  size_t tracker_mispredictions() const;

 private:
  advice::AdviceSet advice_;
  bool has_advice_ = false;
  std::unique_ptr<advice::PathTracker> tracker_;
  size_t queries_seen_ = 0;
};

}  // namespace braid::cms

#endif  // BRAID_CMS_ADVICE_MANAGER_H_
