#ifndef BRAID_CMS_CACHE_MANAGER_H_
#define BRAID_CMS_CACHE_MANAGER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cms/cache_model.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace braid::cms {

/// Counters published by the cache manager.
struct CacheManagerStats {
  size_t insertions = 0;
  size_t evictions = 0;
  size_t rejected_too_large = 0;
};

/// Returns the advice-predicted minimum distance (in queries) until the
/// element may be needed again, or nullopt when there is no prediction.
/// Provided by the Advice Manager; plain LRU is used when absent.
using ReplacementAdvisor =
    std::function<std::optional<size_t>(const CacheElement&)>;

/// Owns the cache within a byte budget and implements replacement: LRU
/// order "which may be modified due to advice" (paper §5.4). When advice
/// predicts an element will be needed within the replacement horizon it is
/// protected; among the rest, the victim is the element predicted farthest
/// in the future, breaking ties by least recent use.
class CacheManager {
 public:
  CacheManager(size_t budget_bytes, size_t replacement_horizon)
      : budget_bytes_(budget_bytes), horizon_(replacement_horizon) {}

  CacheModel& model() {
    BRAID_SINGLE_THREAD(sequence_);
    return model_;
  }
  const CacheModel& model() const {
    BRAID_SINGLE_THREAD(sequence_);
    return model_;
  }

  void set_replacement_advisor(ReplacementAdvisor advisor) {
    BRAID_SINGLE_THREAD(sequence_);
    advisor_ = std::move(advisor);
  }

  /// Advances the logical clock (call once per IE query).
  void Tick() {
    BRAID_SINGLE_THREAD(sequence_);
    ++clock_;
  }
  uint64_t clock() const {
    BRAID_SINGLE_THREAD(sequence_);
    return clock_;
  }

  /// Inserts `element`, evicting as needed. Returns false if the element
  /// alone exceeds the budget (it is not cached).
  bool Insert(CacheElementPtr element);

  /// Marks a use of the element for LRU purposes.
  void Touch(const std::string& id);

  size_t budget_bytes() const { return budget_bytes_; }
  const CacheManagerStats& stats() const {
    BRAID_SINGLE_THREAD(sequence_);
    return stats_;
  }

 private:
  /// Evicts elements until at least `needed` bytes are free (or nothing
  /// evictable remains). `exclude` is never evicted. Callers hold the
  /// sequence capability (every public entry point checks it).
  void MakeRoom(size_t needed, const std::string& exclude)
      BRAID_REQUIRES(sequence_);

  /// Single-threaded by design, like the CacheModel it owns: all mutation
  /// happens on the foreground CMS thread (prefetch results install
  /// foreground-side). Checked at runtime; see DESIGN.md §"Concurrency
  /// contract".
  mutable SequenceChecker sequence_;
  CacheModel model_ BRAID_GUARDED_BY(sequence_);
  const size_t budget_bytes_;  // immutable after construction
  const size_t horizon_;       // immutable after construction
  uint64_t clock_ BRAID_GUARDED_BY(sequence_) = 0;
  ReplacementAdvisor advisor_ BRAID_GUARDED_BY(sequence_);
  CacheManagerStats stats_ BRAID_GUARDED_BY(sequence_);
};

}  // namespace braid::cms

#endif  // BRAID_CMS_CACHE_MANAGER_H_
