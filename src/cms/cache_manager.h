#ifndef BRAID_CMS_CACHE_MANAGER_H_
#define BRAID_CMS_CACHE_MANAGER_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cms/cache_model.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace braid::cms {

class LoadController;

/// Counters published by the cache manager. Atomics: concurrent sessions
/// insert and evict in parallel; each field is independently monotone.
struct CacheManagerStats {
  std::atomic<size_t> insertions{0};
  std::atomic<size_t> evictions{0};
  std::atomic<size_t> rejected_too_large{0};
  /// Derived intermediates through the cost-based admission gate.
  std::atomic<size_t> intermediates_admitted{0};
  std::atomic<size_t> intermediates_rejected{0};
  std::atomic<size_t> intermediates_evicted{0};
};

/// Verdict of the cost-based admission gate for a derived intermediate
/// (see JudgeIntermediate): benefit = predicted reuse × modeled
/// recomputation cost, against the per-use cost of its tuple footprint.
struct IntermediateVerdict {
  bool admit = false;
  double benefit_ms = 0;
  double cost_ms = 0;
  /// "admit", "oversized" (exceeds the intermediate budget slice),
  /// "low-benefit", or "shed-overload" (the load controller is shedding
  /// speculative work; the stage is recomputable, so dropping it costs
  /// only a possible future recomputation).
  const char* reason = "";
};

/// Returns the advice-predicted minimum distance (in queries) until the
/// element may be needed again, or nullopt when there is no prediction.
/// Provided by the Advice Manager; plain LRU is used when absent. Must be
/// callable from any session thread and must not call back into the cache
/// (MakeRoom invokes it while an eviction pass is in progress).
using ReplacementAdvisor =
    std::function<std::optional<size_t>(const CacheElement&)>;

/// Owns the cache within a byte budget and implements replacement: LRU
/// order "which may be modified due to advice" (paper §5.4). When advice
/// predicts an element will be needed within the replacement horizon it is
/// protected; among the rest, the victim is the element predicted farthest
/// in the future, breaking ties by least recent use.
///
/// Thread safety: fully concurrent. The model is striped (see CacheModel);
/// the logical clock and stats are atomics; the advisor is swapped under a
/// small leaf mutex and copied per eviction pass. `MakeRoom` is
/// stripe-aware: candidates are collected and ranked from snapshots with
/// no lock held, and each eviction locks exactly one stripe (via
/// CacheModel::Remove), so an eviction pass never blocks reads or installs
/// on other stripes.
class CacheManager {
 public:
  /// `intermediate_budget_fraction` bounds the slice of the budget derived
  /// intermediates may occupy (CmsConfig knob), so intermediates never
  /// starve advised views.
  CacheManager(size_t budget_bytes, size_t replacement_horizon,
               double intermediate_budget_fraction = 0.25)
      : budget_bytes_(budget_bytes),
        horizon_(replacement_horizon),
        intermediate_budget_bytes_(static_cast<size_t>(
            static_cast<double>(budget_bytes) *
            std::clamp(intermediate_budget_fraction, 0.0, 1.0))) {}

  CacheModel& model() { return model_; }
  const CacheModel& model() const { return model_; }

  void set_replacement_advisor(ReplacementAdvisor advisor) {
    MutexLock lock(&advisor_mu_);
    advisor_ = std::move(advisor);
  }

  /// Installs the overload policy consulted by JudgeIntermediate (may be
  /// null — standalone cache-manager tests). Set once before concurrent
  /// use; the controller must outlive the cache manager.
  void set_load_controller(LoadController* controller) {
    load_controller_ = controller;
  }

  /// Advances the logical clock (call once per IE query).
  void Tick() { clock_.fetch_add(1, std::memory_order_acq_rel); }
  uint64_t clock() const { return clock_.load(std::memory_order_acquire); }

  /// Inserts `element`, evicting as needed. Returns false if the element
  /// alone exceeds the budget (it is not cached). Safe to call from any
  /// session thread; when concurrent inserts overshoot the budget, the
  /// post-install re-check evicts back under it before returning.
  bool Insert(CacheElementPtr element);

  /// Marks a use of the element for LRU purposes.
  void Touch(const std::string& id);

  /// Cost-based admission for a derived intermediate of `bytes` footprint
  /// and `tuples` rows that took `recompute_ms` (modeled) to produce.
  /// Benefit: the recomputation cost scaled by predicted reuse — 1 when
  /// advice predicts recurrence within the replacement horizon, decaying
  /// with distance beyond it, 0.5 with no prediction. Cost: the per-use
  /// price of the footprint (one scan of its tuples). Admit when benefit
  /// exceeds cost and the footprint fits the intermediate budget slice.
  /// Counts every verdict (intermediates_admitted / intermediates_rejected
  /// and the `intermediate.*` counters).
  IntermediateVerdict JudgeIntermediate(size_t bytes, size_t tuples,
                                        double recompute_ms,
                                        std::optional<size_t> predicted_distance,
                                        double local_per_tuple_ms);

  /// Installs a derived element (`element->is_derived()` must be set).
  /// Keeps the derived slice within its budget by first evicting other
  /// derived elements (least recently used first), then inserts normally.
  bool InsertIntermediate(CacheElementPtr element);

  /// Bytes currently held by derived elements (a stripe-snapshot walk).
  size_t DerivedBytes() const;

  size_t budget_bytes() const { return budget_bytes_; }
  size_t intermediate_budget_bytes() const {
    return intermediate_budget_bytes_;
  }
  const CacheManagerStats& stats() const { return stats_; }

 private:
  /// Evicts elements until at least `needed` bytes are free (or nothing
  /// evictable remains). `exclude` is never evicted. Holds at most one
  /// stripe lock at a time and no lock while ranking or consulting the
  /// advisor.
  void MakeRoom(size_t needed, const std::string& exclude);

  /// Evicts derived elements only (least recently used first) until at
  /// least `needed` bytes of the derived slice are free.
  void MakeRoomDerived(size_t needed, const std::string& exclude);

  CacheModel model_;
  const size_t budget_bytes_;  // immutable after construction
  const size_t horizon_;       // immutable after construction
  const size_t intermediate_budget_bytes_;  // immutable after construction
  std::atomic<uint64_t> clock_{0};

  /// Leaf mutex for advisor replacement; MakeRoom copies the advisor out
  /// and calls it without holding this (the advisor takes session locks).
  mutable Mutex advisor_mu_;
  ReplacementAdvisor advisor_ BRAID_GUARDED_BY(advisor_mu_);
  LoadController* load_controller_ = nullptr;  // set once, pre-concurrency
  CacheManagerStats stats_;
};

}  // namespace braid::cms

#endif  // BRAID_CMS_CACHE_MANAGER_H_
