#include "cms/execution_monitor.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <iterator>
#include <map>

#include "common/strings.h"
#include "exec/parallel_ops.h"

namespace braid::cms {

namespace {

using logic::Atom;
using logic::Term;

/// Builds a predicate over a (possibly concatenated) schema for a
/// comparison atom, resolving variables by first-occurrence column name.
Result<rel::PredicatePtr> ComparisonPredicate(const rel::Schema& schema,
                                              const Atom& comp) {
  auto col_of = [&schema](const Term& t) -> std::optional<size_t> {
    if (t.is_constant()) return std::nullopt;
    return schema.ColumnIndex(t.var_name());
  };
  const Term& lhs = comp.args[0];
  const Term& rhs = comp.args[1];
  auto lc = col_of(lhs);
  auto rc = col_of(rhs);
  const rel::CompareOp op = comp.comparison_op();
  if (lhs.is_variable() && !lc.has_value()) {
    return Status::FailedPrecondition(
        StrCat("variable ", lhs.var_name(), " unbound in lazy pipeline"));
  }
  if (rhs.is_variable() && !rc.has_value()) {
    return Status::FailedPrecondition(
        StrCat("variable ", rhs.var_name(), " unbound in lazy pipeline"));
  }
  if (lc.has_value() && rc.has_value()) {
    return rel::Predicate::ColumnColumn(*lc, op, *rc);
  }
  if (lc.has_value()) {
    return rel::Predicate::ColumnConst(*lc, op, rhs.value());
  }
  if (rc.has_value()) {
    return rel::Predicate::ColumnConst(*rc, rel::ReverseCompareOp(op),
                                       lhs.value());
  }
  // Ground comparison.
  if (rel::EvalCompare(op, lhs.value(), rhs.value())) {
    return rel::Predicate::True();
  }
  return rel::Predicate::Not(rel::Predicate::True());
}

}  // namespace

Result<rel::Relation> ExecutionMonitor::MaterializeElementSource(
    const PlanSource& source, LocalWork* work) {
  // Prefer the pin taken at plan time: a concurrent session's eviction
  // between planning and execution must not fail this plan (the pinned
  // extension is immutable and stays alive through the shared_ptr).
  CacheElementPtr element = source.element != nullptr
                                ? source.element
                                : cache_->model().Find(source.element_id);
  if (element == nullptr || !element->is_materialized()) {
    return Status::NotFound(
        StrCat("cache element ", source.element_id, " vanished"));
  }
  cache_->Touch(source.element_id);
  const std::shared_ptr<const rel::Relation>& ext = element->extension();

  // Apply residual selections, using a hash index for the first
  // column-equals-constant selection when one exists.
  rel::Relation selected;
  const SubsumptionMatch& match = source.match;
  size_t index_sel = match.selections.size();
  for (size_t i = 0; i < match.selections.size(); ++i) {
    const ResidualSelection& s = match.selections[i];
    if (!s.rhs_is_column && s.op == rel::CompareOp::kEq &&
        element->index(s.column) != nullptr) {
      index_sel = i;
      break;
    }
  }
  std::vector<rel::PredicatePtr> preds;
  for (size_t i = 0; i < match.selections.size(); ++i) {
    if (i == index_sel) continue;
    const ResidualSelection& s = match.selections[i];
    preds.push_back(s.rhs_is_column
                        ? rel::Predicate::ColumnColumn(s.column, s.op,
                                                       s.rhs_column)
                        : rel::Predicate::ColumnConst(s.column, s.op,
                                                      s.constant));
  }
  rel::PredicatePtr pred =
      preds.empty() ? rel::Predicate::True() : rel::Predicate::And(preds);

  selected = rel::Relation(element->id(), ext->schema());
  if (index_sel < match.selections.size()) {
    const ResidualSelection& s = match.selections[index_sel];
    auto index = element->index(s.column);
    const std::vector<size_t>& rows = index->Lookup(s.constant);
    if (work != nullptr) work->tuples_processed += rows.size();
    for (size_t row : rows) {
      const rel::Tuple& t = ext->tuple(row);
      if (pred->Eval(t)) selected.AppendUnchecked(t);
    }
  } else {
    // Full scan of the extension: the hot cache-side preparation path,
    // morsel-parallel over large extensions (the simulated cost charged
    // stays the serial tuple count — parallelism is a wall-clock win).
    if (work != nullptr) work->tuples_processed += ext->NumTuples();
    selected.mutable_tuples() =
        std::move(exec::Select(exec_ctx_, *ext, *pred).mutable_tuples());
  }

  // Project the needed variables, naming columns after them and carrying
  // the extension's declared column types into the projected schema (a
  // kNull stamp here would discard type information the assembly joins
  // and downstream consumers can use).
  std::vector<size_t> cols;
  std::vector<rel::Column> names;
  for (const auto& [var, col] : match.var_to_column) {
    cols.push_back(col);
    names.push_back(rel::Column{var, ext->schema().column(col).type});
  }
  rel::Relation projected = exec::Project(exec_ctx_, selected, cols);
  rel::Relation out(element->id(), rel::Schema(std::move(names)));
  out.mutable_tuples() = std::move(projected.mutable_tuples());
  return out;
}

Result<ExecutionOutcome> ExecutionMonitor::ExecutePlan(const Plan& plan,
                                                       obs::Tracer* tracer,
                                                       obs::SpanId parent) {
  ExecutionOutcome outcome;
  LocalWork prep_work;

  // Positive and anti sources (negated literals; the latter applied as
  // anti-joins during assembly) share one materialization pass, indexed
  // over the concatenation so remote results land in deterministic
  // plan-source order regardless of completion order.
  const size_t num_positive = plan.sources.size();
  const size_t num_total = num_positive + plan.anti_sources.size();
  auto source_at = [&plan, num_positive](size_t i) -> const PlanSource& {
    return i < num_positive ? plan.sources[i]
                            : plan.anti_sources[i - num_positive];
  };

  // Launch every remote subquery as a pool task before any cache-side
  // work, so the fetches are in flight while this thread prepares the
  // element sources — the paper's §5 parallelism made physical.
  const bool concurrent_remote = parallel_ && exec_ctx_.pool != nullptr &&
                                 exec_ctx_.pool->num_workers() > 0;
  std::vector<std::future<Result<RemoteFetch>>> fetches(num_total);
  if (concurrent_remote) {
    for (size_t i = 0; i < num_total; ++i) {
      const PlanSource& source = source_at(i);
      if (source.kind != PlanSource::Kind::kRemote) continue;
      // The fetch span is recorded on the pool thread that runs the
      // task, with the plan's span as parent — the Tracer is thread-safe
      // precisely for this.
      fetches[i] = exec_ctx_.pool->Submit([this, &source, tracer, parent] {
        obs::SpanScope span(tracer, "fetch", parent);
        span.Annotate("subquery", source.remote_query.name);
        Result<RemoteFetch> fetch =
            rdi_->Fetch(source.remote_query, source.remote_vars);
        if (fetch.ok()) span.SetModeledMs(fetch->cost.total_ms);
        return fetch;
      });
    }
  }

  // Cache-side preparation on the calling thread. Errors are deferred, not
  // returned, until every in-flight fetch has been joined — a pool task
  // holds references into `plan`, which must outlive it.
  Status first_error = Status::Ok();
  std::vector<rel::Relation> materialized(num_total);
  obs::SpanId prep_id = 0;
  {
    obs::SpanScope prep(tracer, "prep", parent);
    prep_id = prep.id();
    for (size_t i = 0; i < num_total; ++i) {
      const PlanSource& source = source_at(i);
      if (source.kind != PlanSource::Kind::kElement) continue;
      Result<rel::Relation> b = MaterializeElementSource(source, &prep_work);
      if (!b.ok()) {
        if (first_error.ok()) first_error = b.status();
        continue;
      }
      materialized[i] = std::move(*b);
    }
  }

  // Join the fetches (or run them now, serially). The modeled remote
  // time on the critical path is the slowest single fetch when they
  // overlap, the serialized sum when they do not — charging the sum
  // under `parallel_` would model two overlapped fetches as if they ran
  // back to back, which bench E10b's measured wall clock disproves.
  double max_fetch_ms = 0;
  for (size_t i = 0; i < num_total; ++i) {
    const PlanSource& source = source_at(i);
    if (source.kind != PlanSource::Kind::kRemote) continue;
    Result<RemoteFetch> fetch = [&]() -> Result<RemoteFetch> {
      if (concurrent_remote) {
        // Help-drain while waiting: when every pool worker is occupied by
        // a session task, the fetch we submitted may still be queued —
        // running inner tasks here guarantees progress instead of
        // deadlocking the saturated pool.
        while (fetches[i].wait_for(std::chrono::seconds(0)) ==
               std::future_status::timeout) {
          if (!exec_ctx_.pool->HelpOne()) {
            fetches[i].wait_for(std::chrono::microseconds(500));
          }
        }
        return fetches[i].get();
      }
      obs::SpanScope span(tracer, "fetch", parent);
      span.Annotate("subquery", source.remote_query.name);
      Result<RemoteFetch> f =
          rdi_->Fetch(source.remote_query, source.remote_vars);
      if (f.ok()) span.SetModeledMs(f->cost.total_ms);
      return f;
    }();
    if (!fetch.ok()) {
      if (first_error.ok()) first_error = fetch.status();
      continue;
    }
    outcome.remote_ms += fetch->cost.total_ms;
    max_fetch_ms = std::max(max_fetch_ms, fetch->cost.total_ms);
    ++outcome.remote_queries;
    materialized[i] = std::move(fetch->bindings);
  }
  if (!first_error.ok()) return first_error;
  outcome.remote_critical_ms = parallel_ ? max_fetch_ms : outcome.remote_ms;

  std::vector<rel::Relation> bindings(
      std::make_move_iterator(materialized.begin()),
      std::make_move_iterator(materialized.begin() + num_positive));
  std::vector<rel::Relation> anti_bindings(
      std::make_move_iterator(materialized.begin() + num_positive),
      std::make_move_iterator(materialized.end()));

  LocalWork assembly_work;
  {
    obs::SpanScope assembly(tracer, "assembly", parent);
    BRAID_ASSIGN_OR_RETURN(
        outcome.result,
        QueryProcessor::Assemble(plan.query, std::move(bindings),
                                 plan.residual_comparisons, plan.evaluables,
                                 &assembly_work, std::move(anti_bindings),
                                 &exec_ctx_));
    assembly.SetModeledMs(assembly_work.tuples_processed *
                          local_per_tuple_ms_);
  }

  const double prep_ms = prep_work.tuples_processed * local_per_tuple_ms_;
  const double assembly_ms =
      assembly_work.tuples_processed * local_per_tuple_ms_;
  if (tracer != nullptr && prep_id != 0) {
    tracer->SetModeledMs(prep_id, prep_ms);
  }
  outcome.local_ms = prep_ms + assembly_ms;
  outcome.work.tuples_processed =
      prep_work.tuples_processed + assembly_work.tuples_processed;
  // Cache-side preparation overlaps the remote subqueries when parallel
  // execution is enabled — and the fetches overlap each other, so only
  // the slowest one sits on the critical path; final assembly needs both
  // inputs and follows serially either way.
  outcome.response_ms =
      (parallel_ ? std::max(outcome.remote_critical_ms, prep_ms)
                 : outcome.remote_ms + prep_ms) +
      assembly_ms;
  return outcome;
}

Result<stream::TupleStreamPtr> ExecutionMonitor::BuildLazyStream(
    const Plan& plan) {
  if (!plan.fully_local) {
    return Status::FailedPrecondition(
        "lazy evaluation requires all data in the cache");
  }
  if (!plan.evaluables.empty()) {
    return Status::Unimplemented("lazy evaluation with evaluable functions");
  }
  if (!plan.anti_sources.empty()) {
    return Status::Unimplemented("lazy evaluation with negation");
  }
  for (const Term& t : plan.query.head_args) {
    if (!t.is_variable()) {
      return Status::Unimplemented("lazy evaluation with constant head");
    }
  }
  if (plan.sources.empty()) {
    return Status::FailedPrecondition("lazy plan has no sources");
  }

  // Prepare binding relations eagerly (cheap residual selections).
  LocalWork prep;
  std::vector<std::shared_ptr<rel::Relation>> bindings;
  for (const PlanSource& source : plan.sources) {
    BRAID_ASSIGN_OR_RETURN(rel::Relation b,
                           MaterializeElementSource(source, &prep));
    bindings.push_back(std::make_shared<rel::Relation>(std::move(b)));
  }
  // Order: smallest first, then connected.
  std::sort(bindings.begin(), bindings.end(),
            [](const auto& a, const auto& b) {
              return a->NumTuples() < b->NumTuples();
            });

  stream::TupleStreamPtr pipeline =
      std::make_unique<stream::ScanStream>(bindings.front());
  for (size_t i = 1; i < bindings.size(); ++i) {
    const std::shared_ptr<rel::Relation>& right = bindings[i];
    // Join keys: columns of `right` whose names already occur on the left.
    std::vector<rel::JoinKey> keys;
    for (size_t rc = 0; rc < right->schema().size(); ++rc) {
      auto lc = pipeline->schema().ColumnIndex(right->schema().column(rc).name);
      if (lc.has_value()) keys.push_back(rel::JoinKey{*lc, rc});
    }
    std::shared_ptr<const rel::HashIndex> index;
    if (!keys.empty()) {
      index = std::make_shared<rel::HashIndex>(*right, keys[0].right_col);
    }
    pipeline = std::make_unique<stream::IndexJoinStream>(
        std::move(pipeline), right, std::move(keys), std::move(index));
  }

  // Residual comparisons.
  if (!plan.residual_comparisons.empty()) {
    std::vector<rel::PredicatePtr> preds;
    for (const Atom& comp : plan.residual_comparisons) {
      BRAID_ASSIGN_OR_RETURN(rel::PredicatePtr p,
                             ComparisonPredicate(pipeline->schema(), comp));
      preds.push_back(std::move(p));
    }
    pipeline = std::make_unique<stream::SelectStream>(
        std::move(pipeline), rel::Predicate::And(std::move(preds)));
  }

  // Head projection.
  std::vector<size_t> head_cols;
  for (const Term& t : plan.query.head_args) {
    auto col = pipeline->schema().ColumnIndex(t.var_name());
    if (!col.has_value()) {
      return Status::FailedPrecondition(
          StrCat("head variable ", t.var_name(), " unbound in lazy plan"));
    }
    head_cols.push_back(*col);
  }
  pipeline = std::make_unique<stream::ProjectStream>(std::move(pipeline),
                                                     std::move(head_cols));
  if (plan.query.distinct) {
    // SETOF: duplicate suppression stays lazy too.
    pipeline = std::make_unique<stream::DistinctStream>(std::move(pipeline));
  }
  return pipeline;
}

}  // namespace braid::cms
