#include "cms/execution_monitor.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <iterator>
#include <map>

#include "common/strings.h"
#include "exec/parallel_ops.h"

namespace braid::cms {

namespace {

using logic::Atom;
using logic::Term;

/// Builds a predicate over a (possibly concatenated) schema for a
/// comparison atom, resolving variables by first-occurrence column name.
Result<rel::PredicatePtr> ComparisonPredicate(const rel::Schema& schema,
                                              const Atom& comp) {
  auto col_of = [&schema](const Term& t) -> std::optional<size_t> {
    if (t.is_constant()) return std::nullopt;
    return schema.ColumnIndex(t.var_name());
  };
  const Term& lhs = comp.args[0];
  const Term& rhs = comp.args[1];
  auto lc = col_of(lhs);
  auto rc = col_of(rhs);
  const rel::CompareOp op = comp.comparison_op();
  if (lhs.is_variable() && !lc.has_value()) {
    return Status::FailedPrecondition(
        StrCat("variable ", lhs.var_name(), " unbound in lazy pipeline"));
  }
  if (rhs.is_variable() && !rc.has_value()) {
    return Status::FailedPrecondition(
        StrCat("variable ", rhs.var_name(), " unbound in lazy pipeline"));
  }
  if (lc.has_value() && rc.has_value()) {
    return rel::Predicate::ColumnColumn(*lc, op, *rc);
  }
  if (lc.has_value()) {
    return rel::Predicate::ColumnConst(*lc, op, rhs.value());
  }
  if (rc.has_value()) {
    return rel::Predicate::ColumnConst(*rc, rel::ReverseCompareOp(op),
                                       lhs.value());
  }
  // Ground comparison.
  if (rel::EvalCompare(op, lhs.value(), rhs.value())) {
    return rel::Predicate::True();
  }
  return rel::Predicate::Not(rel::Predicate::True());
}

/// Synthesizes the derived view definition a stage computed: head = the
/// stage relation's columns (query variables) in column order, body = the
/// atoms that produced it. Every stage view shares one name so
/// structurally identical intermediates from different queries collapse
/// to one canonical key, and is BAGOF — binding relations carry bag
/// multiplicities, so the view can serve queries of either semantics
/// through subsumption (a SETOF definition could not serve BAGOF).
caql::CaqlQuery StageView(const rel::Schema& schema, std::vector<Atom> body) {
  caql::CaqlQuery view;
  view.name = "$i";
  for (const rel::Column& c : schema.columns()) {
    view.head_args.push_back(Term::Var(c.name));
  }
  view.body = std::move(body);
  view.distinct = false;
  return view;
}

}  // namespace

Result<rel::Relation> ExecutionMonitor::MaterializeElementSource(
    const PlanSource& source, LocalWork* work) {
  // Prefer the pin taken at plan time: a concurrent session's eviction
  // between planning and execution must not fail this plan (the pinned
  // extension is immutable and stays alive through the shared_ptr).
  CacheElementPtr element = source.element != nullptr
                                ? source.element
                                : cache_->model().Find(source.element_id);
  if (element == nullptr || !element->is_materialized()) {
    return Status::NotFound(
        StrCat("cache element ", source.element_id, " vanished"));
  }
  cache_->Touch(source.element_id);
  const std::shared_ptr<const rel::Relation>& ext = element->extension();

  // Apply residual selections, using a hash index for the first
  // column-equals-constant selection when one exists.
  rel::Relation selected;
  const SubsumptionMatch& match = source.match;
  size_t index_sel = match.selections.size();
  for (size_t i = 0; i < match.selections.size(); ++i) {
    const ResidualSelection& s = match.selections[i];
    if (!s.rhs_is_column && s.op == rel::CompareOp::kEq &&
        element->index(s.column) != nullptr) {
      index_sel = i;
      break;
    }
  }
  std::vector<rel::PredicatePtr> preds;
  for (size_t i = 0; i < match.selections.size(); ++i) {
    if (i == index_sel) continue;
    const ResidualSelection& s = match.selections[i];
    preds.push_back(s.rhs_is_column
                        ? rel::Predicate::ColumnColumn(s.column, s.op,
                                                       s.rhs_column)
                        : rel::Predicate::ColumnConst(s.column, s.op,
                                                      s.constant));
  }
  rel::PredicatePtr pred =
      preds.empty() ? rel::Predicate::True() : rel::Predicate::And(preds);

  selected = rel::Relation(element->id(), ext->schema());
  if (index_sel < match.selections.size()) {
    const ResidualSelection& s = match.selections[index_sel];
    auto index = element->index(s.column);
    const std::vector<size_t>& rows = index->Lookup(s.constant);
    if (work != nullptr) work->tuples_processed += rows.size();
    for (size_t row : rows) {
      const rel::Tuple& t = ext->tuple(row);
      if (pred->Eval(t)) selected.AppendUnchecked(t);
    }
  } else {
    // Full scan of the extension: the hot cache-side preparation path,
    // morsel-parallel over large extensions (the simulated cost charged
    // stays the serial tuple count — parallelism is a wall-clock win).
    if (work != nullptr) work->tuples_processed += ext->NumTuples();
    selected.mutable_tuples() =
        std::move(exec::Select(exec_ctx_, *ext, *pred).mutable_tuples());
  }

  // Project the needed variables, naming columns after them and carrying
  // the extension's declared column types into the projected schema (a
  // kNull stamp here would discard type information the assembly joins
  // and downstream consumers can use).
  std::vector<size_t> cols;
  std::vector<rel::Column> names;
  for (const auto& [var, col] : match.var_to_column) {
    cols.push_back(col);
    names.push_back(rel::Column{var, ext->schema().column(col).type});
  }
  rel::Relation projected = exec::Project(exec_ctx_, selected, cols);
  rel::Relation out(element->id(), rel::Schema(std::move(names)));
  out.mutable_tuples() = std::move(projected.mutable_tuples());
  return out;
}

Result<ExecutionOutcome> ExecutionMonitor::ExecutePlan(const Plan& plan,
                                                       obs::Tracer* tracer,
                                                       obs::SpanId parent,
                                                       IntermediateSink* sink) {
  ExecutionOutcome outcome;
  LocalWork prep_work;
  // Per-source modeled recomputation cost (remote fetch cost, or element
  // preparation work), feeding the stage offers below.
  std::vector<double> source_cost_ms(plan.sources.size() +
                                     plan.anti_sources.size());

  // Positive and anti sources (negated literals; the latter applied as
  // anti-joins during assembly) share one materialization pass, indexed
  // over the concatenation so remote results land in deterministic
  // plan-source order regardless of completion order.
  const size_t num_positive = plan.sources.size();
  const size_t num_total = num_positive + plan.anti_sources.size();
  auto source_at = [&plan, num_positive](size_t i) -> const PlanSource& {
    return i < num_positive ? plan.sources[i]
                            : plan.anti_sources[i - num_positive];
  };

  // Launch every remote subquery as a pool task before any cache-side
  // work, so the fetches are in flight while this thread prepares the
  // element sources — the paper's §5 parallelism made physical.
  const bool concurrent_remote = parallel_ && exec_ctx_.pool != nullptr &&
                                 exec_ctx_.pool->num_workers() > 0;
  std::vector<std::future<Result<RemoteFetch>>> fetches(num_total);
  if (concurrent_remote) {
    for (size_t i = 0; i < num_total; ++i) {
      const PlanSource& source = source_at(i);
      if (source.kind != PlanSource::Kind::kRemote) continue;
      // The fetch span is recorded on the pool thread that runs the
      // task, with the plan's span as parent — the Tracer is thread-safe
      // precisely for this.
      fetches[i] = exec_ctx_.pool->Submit([this, &source, tracer, parent] {
        obs::SpanScope span(tracer, "fetch", parent);
        span.Annotate("subquery", source.remote_query.name);
        Result<RemoteFetch> fetch =
            rdi_->Fetch(source.remote_query, source.remote_vars);
        if (fetch.ok()) span.SetModeledMs(fetch->cost.total_ms);
        return fetch;
      });
    }
  }

  // Cache-side preparation on the calling thread. Errors are deferred, not
  // returned, until every in-flight fetch has been joined — a pool task
  // holds references into `plan`, which must outlive it.
  Status first_error = Status::Ok();
  std::vector<rel::Relation> materialized(num_total);
  obs::SpanId prep_id = 0;
  {
    obs::SpanScope prep(tracer, "prep", parent);
    prep_id = prep.id();
    for (size_t i = 0; i < num_total; ++i) {
      const PlanSource& source = source_at(i);
      if (source.kind != PlanSource::Kind::kElement) continue;
      LocalWork source_work;
      Result<rel::Relation> b = MaterializeElementSource(source, &source_work);
      prep_work.tuples_processed += source_work.tuples_processed;
      source_cost_ms[i] = source_work.tuples_processed * local_per_tuple_ms_;
      if (!b.ok()) {
        if (first_error.ok()) first_error = b.status();
        continue;
      }
      materialized[i] = std::move(*b);
    }
  }

  // Join the fetches (or run them now, serially). The modeled remote
  // time on the critical path is the slowest single fetch when they
  // overlap, the serialized sum when they do not — charging the sum
  // under `parallel_` would model two overlapped fetches as if they ran
  // back to back, which bench E10b's measured wall clock disproves.
  double max_fetch_ms = 0;
  for (size_t i = 0; i < num_total; ++i) {
    const PlanSource& source = source_at(i);
    if (source.kind != PlanSource::Kind::kRemote) continue;
    Result<RemoteFetch> fetch = [&]() -> Result<RemoteFetch> {
      if (concurrent_remote) {
        // Help-drain while waiting: when every pool worker is occupied by
        // a session task, the fetch we submitted may still be queued —
        // running inner tasks here guarantees progress instead of
        // deadlocking the saturated pool.
        while (fetches[i].wait_for(std::chrono::seconds(0)) ==
               std::future_status::timeout) {
          if (!exec_ctx_.pool->HelpOne()) {
            fetches[i].wait_for(std::chrono::microseconds(500));
          }
        }
        return fetches[i].get();
      }
      obs::SpanScope span(tracer, "fetch", parent);
      span.Annotate("subquery", source.remote_query.name);
      Result<RemoteFetch> f =
          rdi_->Fetch(source.remote_query, source.remote_vars);
      if (f.ok()) span.SetModeledMs(f->cost.total_ms);
      return f;
    }();
    if (!fetch.ok()) {
      if (first_error.ok()) first_error = fetch.status();
      continue;
    }
    outcome.remote_ms += fetch->cost.total_ms;
    max_fetch_ms = std::max(max_fetch_ms, fetch->cost.total_ms);
    ++outcome.remote_queries;
    source_cost_ms[i] = fetch->cost.total_ms;
    materialized[i] = std::move(fetch->bindings);
  }
  if (!first_error.ok()) return first_error;
  outcome.remote_critical_ms = parallel_ ? max_fetch_ms : outcome.remote_ms;

  // Stage capture: the atoms each positive source computes (the covered
  // query atoms for an element source, the shipped subquery body — with
  // its pushed comparisons — for a remote one). Negated sources are
  // excluded throughout: stage views are positive conjunctions.
  const std::vector<Atom> rel_atoms = plan.query.RelationAtoms();
  // An element source's binding relation is additionally restricted by the
  // element definition's own comparison atoms — the match was only legal
  // because *this* query's comparisons imply them, but a later query
  // served from the stage need not imply them. Rewrite those comparisons
  // into query variables through the match's column mapping so the stage
  // view states exactly what the relation holds; when the restriction
  // cannot be expressed (comparison over a projected-away column, or a
  // SETOF element whose extension lost bag multiplicities) the source is
  // tainted and no stage built from it is offered.
  std::vector<std::vector<Atom>> source_comps(num_positive);
  std::vector<bool> source_tainted(num_positive, false);
  if (sink != nullptr) {
    for (size_t i = 0; i < num_positive; ++i) {
      const PlanSource& source = plan.sources[i];
      if (source.kind != PlanSource::Kind::kElement) continue;
      CacheElementPtr element = source.element != nullptr
                                    ? source.element
                                    : cache_->model().Find(source.element_id);
      if (element == nullptr || element->definition().distinct) {
        source_tainted[i] = true;
        continue;
      }
      const caql::CaqlQuery& def = element->definition();
      std::map<size_t, std::string> col_to_var;
      for (const auto& [var, col] : source.match.var_to_column) {
        col_to_var[col] = var;
      }
      for (const Atom& comp : def.body) {
        if (!comp.IsComparison()) continue;
        Atom rewritten = comp;
        bool expressible = true;
        for (Term& t : rewritten.args) {
          if (!t.is_variable()) continue;
          std::string mapped;
          for (size_t c = 0; c < def.head_args.size() && mapped.empty();
               ++c) {
            if (!def.head_args[c].is_variable() ||
                def.head_args[c].var_name() != t.var_name()) {
              continue;
            }
            auto it = col_to_var.find(c);
            if (it != col_to_var.end()) mapped = it->second;
          }
          if (mapped.empty()) {
            expressible = false;
            break;
          }
          t = Term::Var(std::move(mapped));
        }
        if (!expressible) {
          source_tainted[i] = true;
          break;
        }
        source_comps[i].push_back(std::move(rewritten));
      }
    }
  }
  auto atoms_of = [&plan, &rel_atoms, &source_comps](size_t i) {
    const PlanSource& source = plan.sources[i];
    if (source.kind == PlanSource::Kind::kRemote) {
      return source.remote_query.body;
    }
    std::vector<Atom> atoms;
    for (size_t qi : source.match.covered) atoms.push_back(rel_atoms[qi]);
    atoms.insert(atoms.end(), source_comps[i].begin(), source_comps[i].end());
    return atoms;
  };
  if (sink != nullptr) {
    for (size_t i = 0; i < num_positive; ++i) {
      const PlanSource& source = plan.sources[i];
      if (materialized[i].schema().size() == 0 || source_tainted[i]) continue;
      StageOffer offer;
      offer.label = source.kind == PlanSource::Kind::kRemote
                        ? StrCat("bind:remote:", i)
                        : StrCat("bind:", source.element_id);
      offer.view = StageView(materialized[i].schema(), atoms_of(i));
      offer.recompute_ms = source_cost_ms[i];
      offer.from_remote = source.kind == PlanSource::Kind::kRemote;
      sink->Offer(offer, materialized[i]);
    }
  }

  std::vector<rel::Relation> bindings(
      std::make_move_iterator(materialized.begin()),
      std::make_move_iterator(materialized.begin() + num_positive));
  std::vector<rel::Relation> anti_bindings(
      std::make_move_iterator(materialized.begin() + num_positive),
      std::make_move_iterator(materialized.end()));

  LocalWork assembly_work;
  // Join fragments and the residual-filtered relation, offered as they are
  // produced. A stage's view body is the union of its constituent sources'
  // atoms plus every comparison applied so far; its recomputation cost is
  // the sum of those sources' costs plus the assembly work to date.
  AssemblyObserver stage_observer;
  auto offer_fragment = [&](const char* label_prefix,
                            const std::vector<size_t>& bound,
                            const std::vector<size_t>& comps,
                            const rel::Relation& current) {
    if (current.schema().size() == 0) return;
    for (size_t bi : bound) {
      if (source_tainted[bi]) return;
    }
    StageOffer offer;
    offer.label = StrCat(label_prefix, bound.size());
    std::vector<Atom> body;
    double cost = assembly_work.tuples_processed * local_per_tuple_ms_;
    for (size_t bi : bound) {
      std::vector<Atom> atoms = atoms_of(bi);
      body.insert(body.end(), std::make_move_iterator(atoms.begin()),
                  std::make_move_iterator(atoms.end()));
      cost += source_cost_ms[bi];
      offer.from_remote |=
          plan.sources[bi].kind == PlanSource::Kind::kRemote;
    }
    for (size_t ci : comps) body.push_back(plan.residual_comparisons[ci]);
    offer.view = StageView(current.schema(), std::move(body));
    offer.recompute_ms = cost;
    sink->Offer(offer, current);
  };
  if (sink != nullptr) {
    stage_observer.on_join_stage = [&](const std::vector<size_t>& bound,
                                       const std::vector<size_t>& comps,
                                       const rel::Relation& current) {
      offer_fragment("join:", bound, comps, current);
    };
    stage_observer.on_residual_stage = [&](const std::vector<size_t>& comps,
                                           const rel::Relation& current) {
      std::vector<size_t> all(num_positive);
      for (size_t i = 0; i < num_positive; ++i) all[i] = i;
      offer_fragment("residual:", all, comps, current);
    };
  }
  {
    obs::SpanScope assembly(tracer, "assembly", parent);
    BRAID_ASSIGN_OR_RETURN(
        outcome.result,
        QueryProcessor::Assemble(plan.query, std::move(bindings),
                                 plan.residual_comparisons, plan.evaluables,
                                 &assembly_work, std::move(anti_bindings),
                                 &exec_ctx_,
                                 sink != nullptr ? &stage_observer : nullptr));
    assembly.SetModeledMs(assembly_work.tuples_processed *
                          local_per_tuple_ms_);
  }

  const double prep_ms = prep_work.tuples_processed * local_per_tuple_ms_;
  const double assembly_ms =
      assembly_work.tuples_processed * local_per_tuple_ms_;
  if (tracer != nullptr && prep_id != 0) {
    tracer->SetModeledMs(prep_id, prep_ms);
  }
  outcome.local_ms = prep_ms + assembly_ms;
  outcome.work.tuples_processed =
      prep_work.tuples_processed + assembly_work.tuples_processed;
  // Cache-side preparation overlaps the remote subqueries when parallel
  // execution is enabled — and the fetches overlap each other, so only
  // the slowest one sits on the critical path; final assembly needs both
  // inputs and follows serially either way.
  outcome.response_ms =
      (parallel_ ? std::max(outcome.remote_critical_ms, prep_ms)
                 : outcome.remote_ms + prep_ms) +
      assembly_ms;
  return outcome;
}

Result<stream::TupleStreamPtr> ExecutionMonitor::BuildLazyStream(
    const Plan& plan) {
  if (!plan.fully_local) {
    return Status::FailedPrecondition(
        "lazy evaluation requires all data in the cache");
  }
  if (!plan.evaluables.empty()) {
    return Status::Unimplemented("lazy evaluation with evaluable functions");
  }
  if (!plan.anti_sources.empty()) {
    return Status::Unimplemented("lazy evaluation with negation");
  }
  for (const Term& t : plan.query.head_args) {
    if (!t.is_variable()) {
      return Status::Unimplemented("lazy evaluation with constant head");
    }
  }
  if (plan.sources.empty()) {
    return Status::FailedPrecondition("lazy plan has no sources");
  }

  // Prepare binding relations eagerly (cheap residual selections).
  LocalWork prep;
  std::vector<std::shared_ptr<rel::Relation>> bindings;
  for (const PlanSource& source : plan.sources) {
    BRAID_ASSIGN_OR_RETURN(rel::Relation b,
                           MaterializeElementSource(source, &prep));
    bindings.push_back(std::make_shared<rel::Relation>(std::move(b)));
  }
  // Order: smallest first, then connected.
  std::sort(bindings.begin(), bindings.end(),
            [](const auto& a, const auto& b) {
              return a->NumTuples() < b->NumTuples();
            });

  stream::TupleStreamPtr pipeline =
      std::make_unique<stream::ScanStream>(bindings.front());
  for (size_t i = 1; i < bindings.size(); ++i) {
    const std::shared_ptr<rel::Relation>& right = bindings[i];
    // Join keys: columns of `right` whose names already occur on the left.
    std::vector<rel::JoinKey> keys;
    for (size_t rc = 0; rc < right->schema().size(); ++rc) {
      auto lc = pipeline->schema().ColumnIndex(right->schema().column(rc).name);
      if (lc.has_value()) keys.push_back(rel::JoinKey{*lc, rc});
    }
    std::shared_ptr<const rel::HashIndex> index;
    if (!keys.empty()) {
      index = std::make_shared<rel::HashIndex>(*right, keys[0].right_col);
    }
    pipeline = std::make_unique<stream::IndexJoinStream>(
        std::move(pipeline), right, std::move(keys), std::move(index));
  }

  // Residual comparisons.
  if (!plan.residual_comparisons.empty()) {
    std::vector<rel::PredicatePtr> preds;
    for (const Atom& comp : plan.residual_comparisons) {
      BRAID_ASSIGN_OR_RETURN(rel::PredicatePtr p,
                             ComparisonPredicate(pipeline->schema(), comp));
      preds.push_back(std::move(p));
    }
    pipeline = std::make_unique<stream::SelectStream>(
        std::move(pipeline), rel::Predicate::And(std::move(preds)));
  }

  // Head projection.
  std::vector<size_t> head_cols;
  for (const Term& t : plan.query.head_args) {
    auto col = pipeline->schema().ColumnIndex(t.var_name());
    if (!col.has_value()) {
      return Status::FailedPrecondition(
          StrCat("head variable ", t.var_name(), " unbound in lazy plan"));
    }
    head_cols.push_back(*col);
  }
  pipeline = std::make_unique<stream::ProjectStream>(std::move(pipeline),
                                                     std::move(head_cols));
  if (plan.query.distinct) {
    // SETOF: duplicate suppression stays lazy too.
    pipeline = std::make_unique<stream::DistinctStream>(std::move(pipeline));
  }
  return pipeline;
}

}  // namespace braid::cms
