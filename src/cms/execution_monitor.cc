#include "cms/execution_monitor.h"

#include <algorithm>
#include <map>

#include "common/strings.h"

namespace braid::cms {

namespace {

using logic::Atom;
using logic::Term;

/// Builds a predicate over a (possibly concatenated) schema for a
/// comparison atom, resolving variables by first-occurrence column name.
Result<rel::PredicatePtr> ComparisonPredicate(const rel::Schema& schema,
                                              const Atom& comp) {
  auto col_of = [&schema](const Term& t) -> std::optional<size_t> {
    if (t.is_constant()) return std::nullopt;
    return schema.ColumnIndex(t.var_name());
  };
  const Term& lhs = comp.args[0];
  const Term& rhs = comp.args[1];
  auto lc = col_of(lhs);
  auto rc = col_of(rhs);
  const rel::CompareOp op = comp.comparison_op();
  if (lhs.is_variable() && !lc.has_value()) {
    return Status::FailedPrecondition(
        StrCat("variable ", lhs.var_name(), " unbound in lazy pipeline"));
  }
  if (rhs.is_variable() && !rc.has_value()) {
    return Status::FailedPrecondition(
        StrCat("variable ", rhs.var_name(), " unbound in lazy pipeline"));
  }
  if (lc.has_value() && rc.has_value()) {
    return rel::Predicate::ColumnColumn(*lc, op, *rc);
  }
  if (lc.has_value()) {
    return rel::Predicate::ColumnConst(*lc, op, rhs.value());
  }
  if (rc.has_value()) {
    return rel::Predicate::ColumnConst(*rc, rel::ReverseCompareOp(op),
                                       lhs.value());
  }
  // Ground comparison.
  if (rel::EvalCompare(op, lhs.value(), rhs.value())) {
    return rel::Predicate::True();
  }
  return rel::Predicate::Not(rel::Predicate::True());
}

}  // namespace

Result<rel::Relation> ExecutionMonitor::MaterializeElementSource(
    const PlanSource& source, LocalWork* work) {
  CacheElementPtr element = cache_->model().Find(source.element_id);
  if (element == nullptr || !element->is_materialized()) {
    return Status::NotFound(
        StrCat("cache element ", source.element_id, " vanished"));
  }
  cache_->Touch(source.element_id);
  const std::shared_ptr<const rel::Relation>& ext = element->extension();

  // Apply residual selections, using a hash index for the first
  // column-equals-constant selection when one exists.
  rel::Relation selected;
  const SubsumptionMatch& match = source.match;
  size_t index_sel = match.selections.size();
  for (size_t i = 0; i < match.selections.size(); ++i) {
    const ResidualSelection& s = match.selections[i];
    if (!s.rhs_is_column && s.op == rel::CompareOp::kEq &&
        element->index(s.column) != nullptr) {
      index_sel = i;
      break;
    }
  }
  std::vector<rel::PredicatePtr> preds;
  for (size_t i = 0; i < match.selections.size(); ++i) {
    if (i == index_sel) continue;
    const ResidualSelection& s = match.selections[i];
    preds.push_back(s.rhs_is_column
                        ? rel::Predicate::ColumnColumn(s.column, s.op,
                                                       s.rhs_column)
                        : rel::Predicate::ColumnConst(s.column, s.op,
                                                      s.constant));
  }
  rel::PredicatePtr pred =
      preds.empty() ? rel::Predicate::True() : rel::Predicate::And(preds);

  selected = rel::Relation(element->id(), ext->schema());
  if (index_sel < match.selections.size()) {
    const ResidualSelection& s = match.selections[index_sel];
    auto index = element->index(s.column);
    const std::vector<size_t>& rows = index->Lookup(s.constant);
    if (work != nullptr) work->tuples_processed += rows.size();
    for (size_t row : rows) {
      const rel::Tuple& t = ext->tuple(row);
      if (pred->Eval(t)) selected.AppendUnchecked(t);
    }
  } else {
    if (work != nullptr) work->tuples_processed += ext->NumTuples();
    for (const rel::Tuple& t : ext->tuples()) {
      if (pred->Eval(t)) selected.AppendUnchecked(t);
    }
  }

  // Project the needed variables and name columns after them.
  std::vector<size_t> cols;
  std::vector<rel::Column> names;
  for (const auto& [var, col] : match.var_to_column) {
    cols.push_back(col);
    names.push_back(rel::Column{var, rel::ValueType::kNull});
  }
  rel::Relation projected = rel::Project(selected, cols);
  rel::Relation out(element->id(), rel::Schema(std::move(names)));
  out.mutable_tuples() = std::move(projected.mutable_tuples());
  return out;
}

Result<ExecutionOutcome> ExecutionMonitor::ExecutePlan(const Plan& plan) {
  ExecutionOutcome outcome;
  LocalWork prep_work;

  std::vector<rel::Relation> bindings;
  for (const PlanSource& source : plan.sources) {
    if (source.kind == PlanSource::Kind::kElement) {
      BRAID_ASSIGN_OR_RETURN(rel::Relation b,
                             MaterializeElementSource(source, &prep_work));
      bindings.push_back(std::move(b));
    } else {
      BRAID_ASSIGN_OR_RETURN(
          RemoteFetch fetch,
          rdi_->Fetch(source.remote_query, source.remote_vars));
      outcome.remote_ms += fetch.cost.total_ms;
      ++outcome.remote_queries;
      bindings.push_back(std::move(fetch.bindings));
    }
  }

  // Anti sources (negated literals): fetched like positive sources but
  // applied as anti-joins during assembly.
  std::vector<rel::Relation> anti_bindings;
  for (const PlanSource& source : plan.anti_sources) {
    if (source.kind == PlanSource::Kind::kElement) {
      BRAID_ASSIGN_OR_RETURN(rel::Relation b,
                             MaterializeElementSource(source, &prep_work));
      anti_bindings.push_back(std::move(b));
    } else {
      BRAID_ASSIGN_OR_RETURN(
          RemoteFetch fetch,
          rdi_->Fetch(source.remote_query, source.remote_vars));
      outcome.remote_ms += fetch.cost.total_ms;
      ++outcome.remote_queries;
      anti_bindings.push_back(std::move(fetch.bindings));
    }
  }

  LocalWork assembly_work;
  BRAID_ASSIGN_OR_RETURN(
      outcome.result,
      QueryProcessor::Assemble(plan.query, std::move(bindings),
                               plan.residual_comparisons, plan.evaluables,
                               &assembly_work, std::move(anti_bindings)));

  const double prep_ms = prep_work.tuples_processed * local_per_tuple_ms_;
  const double assembly_ms =
      assembly_work.tuples_processed * local_per_tuple_ms_;
  outcome.local_ms = prep_ms + assembly_ms;
  outcome.work.tuples_processed =
      prep_work.tuples_processed + assembly_work.tuples_processed;
  // Cache-side preparation overlaps the remote subquery when parallel
  // execution is enabled; final assembly needs both inputs.
  outcome.response_ms =
      (parallel_ ? std::max(outcome.remote_ms, prep_ms)
                 : outcome.remote_ms + prep_ms) +
      assembly_ms;
  return outcome;
}

Result<stream::TupleStreamPtr> ExecutionMonitor::BuildLazyStream(
    const Plan& plan) {
  if (!plan.fully_local) {
    return Status::FailedPrecondition(
        "lazy evaluation requires all data in the cache");
  }
  if (!plan.evaluables.empty()) {
    return Status::Unimplemented("lazy evaluation with evaluable functions");
  }
  if (!plan.anti_sources.empty()) {
    return Status::Unimplemented("lazy evaluation with negation");
  }
  for (const Term& t : plan.query.head_args) {
    if (!t.is_variable()) {
      return Status::Unimplemented("lazy evaluation with constant head");
    }
  }
  if (plan.sources.empty()) {
    return Status::FailedPrecondition("lazy plan has no sources");
  }

  // Prepare binding relations eagerly (cheap residual selections).
  LocalWork prep;
  std::vector<std::shared_ptr<rel::Relation>> bindings;
  for (const PlanSource& source : plan.sources) {
    BRAID_ASSIGN_OR_RETURN(rel::Relation b,
                           MaterializeElementSource(source, &prep));
    bindings.push_back(std::make_shared<rel::Relation>(std::move(b)));
  }
  // Order: smallest first, then connected.
  std::sort(bindings.begin(), bindings.end(),
            [](const auto& a, const auto& b) {
              return a->NumTuples() < b->NumTuples();
            });

  stream::TupleStreamPtr pipeline =
      std::make_unique<stream::ScanStream>(bindings.front());
  for (size_t i = 1; i < bindings.size(); ++i) {
    const std::shared_ptr<rel::Relation>& right = bindings[i];
    // Join keys: columns of `right` whose names already occur on the left.
    std::vector<rel::JoinKey> keys;
    for (size_t rc = 0; rc < right->schema().size(); ++rc) {
      auto lc = pipeline->schema().ColumnIndex(right->schema().column(rc).name);
      if (lc.has_value()) keys.push_back(rel::JoinKey{*lc, rc});
    }
    std::shared_ptr<const rel::HashIndex> index;
    if (!keys.empty()) {
      index = std::make_shared<rel::HashIndex>(*right, keys[0].right_col);
    }
    pipeline = std::make_unique<stream::IndexJoinStream>(
        std::move(pipeline), right, std::move(keys), std::move(index));
  }

  // Residual comparisons.
  if (!plan.residual_comparisons.empty()) {
    std::vector<rel::PredicatePtr> preds;
    for (const Atom& comp : plan.residual_comparisons) {
      BRAID_ASSIGN_OR_RETURN(rel::PredicatePtr p,
                             ComparisonPredicate(pipeline->schema(), comp));
      preds.push_back(std::move(p));
    }
    pipeline = std::make_unique<stream::SelectStream>(
        std::move(pipeline), rel::Predicate::And(std::move(preds)));
  }

  // Head projection.
  std::vector<size_t> head_cols;
  for (const Term& t : plan.query.head_args) {
    auto col = pipeline->schema().ColumnIndex(t.var_name());
    if (!col.has_value()) {
      return Status::FailedPrecondition(
          StrCat("head variable ", t.var_name(), " unbound in lazy plan"));
    }
    head_cols.push_back(*col);
  }
  pipeline = std::make_unique<stream::ProjectStream>(std::move(pipeline),
                                                     std::move(head_cols));
  if (plan.query.distinct) {
    // SETOF: duplicate suppression stays lazy too.
    pipeline = std::make_unique<stream::DistinctStream>(std::move(pipeline));
  }
  return pipeline;
}

}  // namespace braid::cms
