#ifndef BRAID_CMS_CACHE_ELEMENT_H_
#define BRAID_CMS_CACHE_ELEMENT_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "caql/caql_query.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "relational/index.h"
#include "relational/relation.h"

namespace braid::cms {

/// Usage metadata kept per cache element: the "historical meta-data to
/// support cache replacement and accumulate performance measurement
/// statistics" of §5.4. Sequence numbers come from the CMS's logical
/// clock (one tick per IE query). Fields are relaxed atomics: concurrent
/// sessions touch elements from many threads, and every field is an
/// independent monotone counter where word-level atomicity suffices.
struct CacheElementStats {
  std::atomic<uint64_t> created_seq{0};
  std::atomic<uint64_t> last_used_seq{0};
  std::atomic<size_t> hits{0};
  std::atomic<double> cost_to_recompute_ms{0};  // est. remote cost saved/hit
};

/// A cache element: a relation defined by a CAQL expression (paper §5).
/// Materialized elements hold an extension (shared, immutable — streams and
/// generators may reference it after eviction); generator-form elements
/// hold only the definition and are evaluated lazily from other cached
/// data by the Query Processor.
///
/// Elements may carry hash indexes over extension columns ("attribute
/// indexing", built when advice marks the column's variable as a consumer).
///
/// Thread safety: id, definition, extension, and origin view are immutable
/// after the element is installed in the cache model, so readers touch
/// them without synchronization. The co-existing representations (indexes
/// and sorted copies) are built lazily from any session's thread and are
/// guarded by a per-element mutex; stats fields are atomics.
class CacheElement {
 public:
  /// Materialized element.
  CacheElement(std::string id, caql::CaqlQuery definition,
               std::shared_ptr<const rel::Relation> extension)
      : id_(std::move(id)),
        definition_(std::move(definition)),
        extension_(std::move(extension)) {}

  /// Generator-form element (definition only).
  CacheElement(std::string id, caql::CaqlQuery definition)
      : id_(std::move(id)), definition_(std::move(definition)) {}

  const std::string& id() const { return id_; }
  const caql::CaqlQuery& definition() const { return definition_; }

  bool is_materialized() const { return extension_ != nullptr; }
  const std::shared_ptr<const rel::Relation>& extension() const {
    return extension_;
  }

  /// View-spec id this element originated from (for advice lookups); empty
  /// when the element was not created from a view specification. Set once
  /// before the element is published to the cache model.
  const std::string& origin_view() const { return origin_view_; }
  void set_origin_view(std::string view) { origin_view_ = std::move(view); }

  /// True for a derived intermediate: a plan-stage result admitted by the
  /// cost gate rather than a query answer or advised view. Derived
  /// elements live in the intermediate budget slice and are evicted before
  /// any non-derived element (see CacheManager::MakeRoom). Set once before
  /// the element is published to the cache model.
  bool is_derived() const { return derived_; }
  void set_derived(bool derived) { derived_ = derived; }

  /// The index on `column`, or nullptr.
  std::shared_ptr<const rel::HashIndex> index(size_t column) const;

  /// Builds (or returns the existing) hash index on `column`. Requires a
  /// materialized extension.
  std::shared_ptr<const rel::HashIndex> EnsureIndex(size_t column);

  /// Co-existing alternative representation (paper §5.2): the extension
  /// sorted by `columns`, built on first request and shared by every
  /// later use that needs the same ordering. Returns nullptr for
  /// generator-form elements.
  std::shared_ptr<const rel::Relation> EnsureSorted(
      const std::vector<size_t>& columns);

  /// The sorted representation for `columns` if already built.
  std::shared_ptr<const rel::Relation> sorted(
      const std::vector<size_t>& columns) const;

  /// Number of alternative (sorted) representations currently held.
  size_t NumSortedRepresentations() const;

  /// Bytes consumed by the extension plus indexes (a small constant for
  /// generator-form elements).
  size_t ByteSize() const;

  CacheElementStats& stats() { return stats_; }
  const CacheElementStats& stats() const { return stats_; }

  std::string ToString() const;

 private:
  std::string id_;
  caql::CaqlQuery definition_;
  std::shared_ptr<const rel::Relation> extension_;  // null => generator form
  std::string origin_view_;
  bool derived_ = false;

  /// Guards the lazily built representations; a leaf lock (nothing else is
  /// acquired while it is held).
  mutable Mutex repr_mu_;
  std::map<size_t, std::shared_ptr<const rel::HashIndex>> indexes_
      BRAID_GUARDED_BY(repr_mu_);
  std::map<std::vector<size_t>, std::shared_ptr<const rel::Relation>> sorted_
      BRAID_GUARDED_BY(repr_mu_);
  CacheElementStats stats_;
};

using CacheElementPtr = std::shared_ptr<CacheElement>;

}  // namespace braid::cms

#endif  // BRAID_CMS_CACHE_ELEMENT_H_
