#include "cms/subsumption.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "logic/substitution.h"
#include "logic/unify.h"
#include "obs/metrics.h"

namespace braid::cms {

namespace {

using caql::CaqlQuery;
using logic::Atom;
using logic::Substitution;
using logic::Term;

/// Evaluates a ground comparison atom.
bool EvalGroundComparison(const Atom& comp) {
  return rel::EvalCompare(comp.comparison_op(), comp.args[0].value(),
                          comp.args[1].value());
}

}  // namespace

bool IntervalImplies(rel::CompareOp known_op, const rel::Value& a,
                     rel::CompareOp implied_op, const rel::Value& b) {
  using Op = rel::CompareOp;
  switch (known_op) {
    case Op::kEq:
      // X = a implies X op b iff a op b.
      return rel::EvalCompare(implied_op, a, b);
    case Op::kLt:
      // X < a implies X < b iff a <= b; implies X <= b iff a <= b;
      // implies X != b iff b >= a.
      if (implied_op == Op::kLt || implied_op == Op::kLe) return a <= b;
      if (implied_op == Op::kNe) return b >= a;
      return false;
    case Op::kLe:
      if (implied_op == Op::kLe) return a <= b;
      if (implied_op == Op::kLt) return a < b;
      if (implied_op == Op::kNe) return b > a;
      return false;
    case Op::kGt:
      if (implied_op == Op::kGt || implied_op == Op::kGe) return a >= b;
      if (implied_op == Op::kNe) return b <= a;
      return false;
    case Op::kGe:
      if (implied_op == Op::kGe) return a >= b;
      if (implied_op == Op::kGt) return a > b;
      if (implied_op == Op::kNe) return b < a;
      return false;
    case Op::kNe:
      return implied_op == Op::kNe && a == b;
  }
  return false;
}

bool ComparisonImplied(const std::vector<Atom>& known, const Atom& implied) {
  if (!implied.IsComparison()) return false;
  // Ground comparisons evaluate directly.
  if (implied.IsGround()) return EvalGroundComparison(implied);

  for (const Atom& k : known) {
    if (!k.IsComparison()) continue;
    // Syntactic identity.
    if (k.predicate == implied.predicate && k.args == implied.args) {
      return true;
    }
    // Reversed with flipped operator: X < Y equals Y > X.
    if (rel::CompareOpSymbol(rel::ReverseCompareOp(k.comparison_op())) ==
            implied.predicate &&
        k.args.size() == 2 && k.args[0] == implied.args[1] &&
        k.args[1] == implied.args[0]) {
      return true;
    }
    // Interval reasoning over a shared variable with constant bounds:
    // normalize both to "Var op Const".
    auto normalize = [](const Atom& a) -> std::optional<
                          std::tuple<std::string, rel::CompareOp, rel::Value>> {
      if (a.args[0].is_variable() && a.args[1].is_constant()) {
        return std::make_tuple(a.args[0].var_name(), a.comparison_op(),
                               a.args[1].value());
      }
      if (a.args[1].is_variable() && a.args[0].is_constant()) {
        return std::make_tuple(a.args[1].var_name(),
                               rel::ReverseCompareOp(a.comparison_op()),
                               a.args[0].value());
      }
      return std::nullopt;
    };
    auto nk = normalize(k);
    auto ni = normalize(implied);
    if (nk.has_value() && ni.has_value() &&
        std::get<0>(*nk) == std::get<0>(*ni)) {
      if (IntervalImplies(std::get<1>(*nk), std::get<2>(*nk),
                          std::get<1>(*ni), std::get<2>(*ni))) {
        return true;
      }
    }
  }
  return false;
}

namespace {

/// Backtracking search assigning each element relation atom to a distinct
/// query relation atom under a consistent one-way substitution. The
/// assignment must be injective: collapsing two element atoms onto one
/// query atom would be sound for set semantics but multiplies duplicate
/// rows under the bag semantics the CMS uses.
///
/// The search historically stopped at a flat cap of 32 assignments in DFS
/// order, which could silently drop the only *viable* mapping (every
/// earlier assignment being rejected by the viability checks downstream)
/// and force a needless remote fetch. Two fixes: branches that provably
/// cannot survive viability — an element variable outside the element's
/// head mapped to a constant can never be compensated by a residual
/// selection — are pruned during the search, and the cap is configurable
/// (CmsConfig::max_subsumption_mappings, default 1024) and instrumented:
/// hitting it increments `subsumption.truncations` in the process-wide
/// metrics registry and is reported through SubsumptionInfo so lost
/// matches are visible instead of silent.
class MappingSearch {
 public:
  MappingSearch(const std::vector<Atom>& element_atoms,
                const std::vector<Atom>& query_atoms,
                const std::set<std::string>& element_head_vars,
                size_t max_results)
      : element_atoms_(element_atoms),
        query_atoms_(query_atoms),
        element_head_vars_(element_head_vars),
        max_results_(max_results) {}

  /// Runs the search; returns assignments (element atom -> query atom
  /// index) paired with their substitution, best-coverage first.
  std::vector<std::pair<std::vector<size_t>, Substitution>> Run() {
    assignment_.assign(element_atoms_.size(), 0);
    used_.assign(query_atoms_.size(), false);
    Extend(0, Substitution());
    if (truncated_) {
      obs::MetricsRegistry::Global().counter("subsumption.truncations")
          .Increment();
    }
    // Order results by distinct query atoms covered, descending.
    std::stable_sort(results_.begin(), results_.end(),
                     [](const auto& a, const auto& b) {
                       std::set<size_t> sa(a.first.begin(), a.first.end());
                       std::set<size_t> sb(b.first.begin(), b.first.end());
                       return sa.size() > sb.size();
                     });
    return std::move(results_);
  }

  bool truncated() const { return truncated_; }

 private:
  /// True when extending the assignment with `e -> image under subst`
  /// cannot lead to a viable match: a non-head element variable bound to
  /// a constant has no head column to carry the equality selection, so
  /// every completion of this branch is rejected downstream.
  bool Hopeless(const Atom& e, const Substitution& subst) const {
    for (const Term& t : e.args) {
      if (!t.is_variable()) continue;
      auto image = subst.Lookup(t.var_name());
      if (image.has_value() && image->is_constant() &&
          element_head_vars_.count(t.var_name()) == 0) {
        return true;
      }
    }
    return false;
  }

  void Extend(size_t pos, const Substitution& subst) {
    if (results_.size() >= max_results_) {
      truncated_ = true;
      return;
    }
    if (pos == element_atoms_.size()) {
      results_.emplace_back(assignment_, subst);
      return;
    }
    const Atom& e = element_atoms_[pos];
    for (size_t qi = 0; qi < query_atoms_.size(); ++qi) {
      if (used_[qi]) continue;
      auto next = logic::MatchOneWay(e, query_atoms_[qi], subst);
      if (!next.has_value()) continue;
      if (Hopeless(e, *next)) continue;
      assignment_[pos] = qi;
      used_[qi] = true;
      Extend(pos + 1, *next);
      used_[qi] = false;
    }
  }

  const std::vector<Atom>& element_atoms_;
  const std::vector<Atom>& query_atoms_;
  const std::set<std::string>& element_head_vars_;
  const size_t max_results_;
  std::vector<size_t> assignment_;
  std::vector<bool> used_;
  std::vector<std::pair<std::vector<size_t>, Substitution>> results_;
  bool truncated_ = false;
};

}  // namespace

std::string SubsumptionMatch::ToString() const {
  std::ostringstream os;
  os << (full ? "full" : "partial") << " covered={";
  for (size_t i = 0; i < covered.size(); ++i) {
    if (i > 0) os << ",";
    os << covered[i];
  }
  os << "} selections=" << selections.size();
  return os.str();
}

std::vector<SubsumptionMatch> ComputeSubsumptionAll(
    const CaqlQuery& raw_element_def, const CaqlQuery& query,
    const SubsumptionOptions& options, SubsumptionInfo* info) {
  // A SETOF element has had its duplicates eliminated; deriving a BAGOF
  // query's answer from it undercounts multiplicities (found by the
  // differential harness: a cached "SETOF q(A) :- b(A, B)" serving a later
  // bag query over b returned 14 of 32 rows). The converse is sound — a
  // bag element serving a SETOF query is deduplicated at assembly.
  if (raw_element_def.distinct && !query.distinct) return {};

  // Evaluable functions require exact match of the whole definition
  // (§5.3.2). Canonical-key equality means the two queries are identical
  // up to variable renaming, so the match is the positional identity.
  if (!raw_element_def.EvaluableAtoms().empty() ||
      !query.EvaluableAtoms().empty() ||
      !raw_element_def.NegatedAtoms().empty()) {
    // Negation in an element definition likewise restricts reuse to the
    // identical query (the mapping machinery only reasons about the
    // positive PSJ class).
    if (raw_element_def.CanonicalKey() != query.CanonicalKey()) {
      return {};
    }
    SubsumptionMatch identity;
    const size_t n = query.RelationAtoms().size();
    for (size_t i = 0; i < n; ++i) identity.covered.push_back(i);
    identity.full = true;
    for (size_t i = 0; i < query.head_args.size(); ++i) {
      const Term& t = query.head_args[i];
      if (t.is_variable() && identity.var_to_column.count(t.var_name()) == 0) {
        identity.var_to_column.emplace(t.var_name(), i);
      }
    }
    return {identity};
  }

  // Standardize the element's variables apart from the query's so shared
  // names cannot alias during the one-way match.
  CaqlQuery element_def = raw_element_def;
  {
    logic::Substitution rename;
    for (const std::string& v : raw_element_def.AllVariables()) {
      rename.Bind(v, Term::Var(v + "$e"));
    }
    element_def = raw_element_def.Substitute(rename);
  }

  const std::vector<Atom> e_atoms = element_def.RelationAtoms();
  const std::vector<Atom> q_atoms = query.RelationAtoms();
  if (e_atoms.empty() || q_atoms.empty()) return {};
  // Injective mappings need at least as many query atoms as element atoms.
  if (e_atoms.size() > q_atoms.size()) return {};

  const std::vector<Atom> e_comps = element_def.ComparisonAtoms();
  const std::vector<Atom> q_comps = query.ComparisonAtoms();

  // Element head columns: position of each head variable.
  std::map<std::string, size_t> head_column;
  for (size_t i = 0; i < element_def.head_args.size(); ++i) {
    const Term& t = element_def.head_args[i];
    if (t.is_variable()) head_column.emplace(t.var_name(), i);
  }

  // Query variables needed outside any covered component: head variables,
  // variables of comparison and evaluable atoms. Variables shared with
  // uncovered relation atoms are added per-candidate below.
  std::set<std::string> always_needed;
  for (const std::string& v : query.HeadVariables()) always_needed.insert(v);
  {
    std::set<std::string> cv;
    logic::CollectVariables(q_comps, &cv);
    always_needed.insert(cv.begin(), cv.end());
    std::vector<Atom> ev = query.EvaluableAtoms();
    std::set<std::string> evv;
    logic::CollectVariables(ev, &evv);
    always_needed.insert(evv.begin(), evv.end());
    std::vector<Atom> neg = query.NegatedAtoms();
    std::set<std::string> negv;
    logic::CollectVariables(neg, &negv);
    always_needed.insert(negv.begin(), negv.end());
  }

  obs::MetricsRegistry::Global().counter("subsumption.searches").Increment();
  std::set<std::string> e_head_vars;
  for (const auto& [var, col] : head_column) e_head_vars.insert(var);
  MappingSearch search(e_atoms, q_atoms, e_head_vars, options.max_mappings);
  // Best match per distinct covered set.
  std::map<std::string, SubsumptionMatch> by_covered;

  auto mappings = search.Run();
  if (info != nullptr) info->truncated = search.truncated();
  for (auto& [assignment, subst] : mappings) {
    // Covered component = image of the assignment.
    std::set<size_t> covered_set(assignment.begin(), assignment.end());

    // Needed variables: always-needed plus those shared with uncovered
    // relation atoms.
    std::set<std::string> needed = always_needed;
    for (size_t qi = 0; qi < q_atoms.size(); ++qi) {
      if (covered_set.count(qi) > 0) continue;
      for (const Term& t : q_atoms[qi].args) {
        if (t.is_variable()) needed.insert(t.var_name());
      }
    }

    // Group element variables by their image term.
    // image of a variable: subst.Lookup — unbound element vars do not
    // appear in any mapped atom position... every var in a relation atom of
    // the element is bound by the match; head vars must all occur in the
    // body (Validate()), so all are bound.
    std::map<std::string, std::vector<std::string>> var_groups;
    bool viable = true;
    std::set<std::string> e_vars;
    logic::CollectVariables(e_atoms, &e_vars);
    for (const std::string& ev : e_vars) {
      auto image = subst.Lookup(ev);
      if (!image.has_value()) {
        // Unbound element variable (occurs only in comparisons) — treat
        // as unusable definition.
        viable = false;
        break;
      }
      if (image->is_variable()) {
        var_groups[image->var_name()].push_back(ev);
      }
    }
    if (!viable) continue;

    SubsumptionMatch match;
    match.covered.assign(covered_set.begin(), covered_set.end());
    match.full = covered_set.size() == q_atoms.size();

    // Constant images: every element variable in the group must be a head
    // column; emit an equality selection per member.
    for (const std::string& ev : e_vars) {
      auto image = subst.Lookup(ev);
      if (!image.has_value() || !image->is_constant()) continue;
      auto hc = head_column.find(ev);
      if (hc == head_column.end()) {
        viable = false;
        break;
      }
      ResidualSelection sel;
      sel.column = hc->second;
      sel.op = rel::CompareOp::kEq;
      sel.rhs_is_column = false;
      sel.constant = image->value();
      match.selections.push_back(sel);
    }
    if (!viable) continue;

    // Variable images.
    for (const auto& [qvar, evars] : var_groups) {
      const bool is_needed = needed.count(qvar) > 0;
      // Locate head columns for the group's members.
      std::vector<size_t> cols;
      for (const std::string& ev : evars) {
        auto hc = head_column.find(ev);
        if (hc != head_column.end()) cols.push_back(hc->second);
      }
      if (evars.size() > 1) {
        // Multiple element variables collapse onto one query variable: the
        // equality must be applied as residual selections, so all members
        // must be head columns.
        if (cols.size() != evars.size()) {
          viable = false;
          break;
        }
        for (size_t i = 1; i < cols.size(); ++i) {
          ResidualSelection sel;
          sel.column = cols[0];
          sel.op = rel::CompareOp::kEq;
          sel.rhs_is_column = true;
          sel.rhs_column = cols[i];
          match.selections.push_back(sel);
        }
      }
      if (is_needed) {
        if (cols.empty()) {
          viable = false;  // Needed variable projected away by the element.
          break;
        }
        match.var_to_column[qvar] = cols[0];
      }
    }
    if (!viable) continue;

    // Element comparison atoms must be implied by the query's context,
    // otherwise the element is more restrictive than the query component.
    for (const Atom& ec : e_comps) {
      Atom mapped = subst.Apply(ec);
      if (!ComparisonImplied(q_comps, mapped)) {
        viable = false;
        break;
      }
    }
    if (!viable) continue;

    // Keep the best candidate per covered set (fewest selections).
    std::string key;
    for (size_t qi : match.covered) key += std::to_string(qi) + ",";
    auto [it, inserted] = by_covered.emplace(key, match);
    if (!inserted && match.selections.size() < it->second.selections.size()) {
      it->second = std::move(match);
    }
  }

  std::vector<SubsumptionMatch> all;
  all.reserve(by_covered.size());
  for (auto& [key, match] : by_covered) all.push_back(std::move(match));
  if (!all.empty()) {
    obs::MetricsRegistry::Global().counter("subsumption.matches")
        .Increment(all.size());
  }
  std::sort(all.begin(), all.end(),
            [](const SubsumptionMatch& a, const SubsumptionMatch& b) {
              if (a.covered.size() != b.covered.size()) {
                return a.covered.size() > b.covered.size();
              }
              return a.selections.size() < b.selections.size();
            });
  return all;
}

std::optional<SubsumptionMatch> ComputeSubsumption(
    const CaqlQuery& element_def, const CaqlQuery& query,
    const SubsumptionOptions& options, SubsumptionInfo* info) {
  std::vector<SubsumptionMatch> all =
      ComputeSubsumptionAll(element_def, query, options, info);
  if (all.empty()) return std::nullopt;
  return std::move(all.front());
}

}  // namespace braid::cms
