#include "cms/catalog.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "cms/subsumption.h"
#include "common/strings.h"

namespace braid::cms {

namespace {

using caql::CaqlQuery;
using logic::Atom;
using logic::Term;

uint64_t PredicateBit(const std::string& predicate) {
  return 1ull << (std::hash<std::string>{}(predicate) % 64);
}

/// Anchor keys. '\x1f' (unit separator) cannot occur in predicate names or
/// canonical keys, so the three namespaces cannot collide.
std::string KeyCanonical(const std::string& canonical_key) {
  return StrCat("k\x1f", canonical_key);
}
std::string KeyPredicate(const std::string& predicate) {
  return StrCat("p\x1f", predicate);
}
/// Constants key by Value::Hash, which is consistent with Value equality
/// (an int and a double that compare equal hash identically), so a lookup
/// can never miss an equal constant; hash collisions only admit extra
/// candidates, which SignatureAdmits re-checks by value.
std::string KeyConstant(const std::string& predicate, size_t pos,
                        const rel::Value& value) {
  return StrCat("c\x1f", predicate, "\x1f", pos, "\x1f", value.Hash());
}

/// "Var op Const" normal form of a comparison atom, flipping the operator
/// when the constant is on the left. Mirrors the normalization inside
/// ComparisonImplied so the catalog's range filter reasons about exactly
/// the atoms the mapping search will test.
std::optional<std::tuple<std::string, rel::CompareOp, rel::Value>>
NormalizeComparison(const Atom& a) {
  if (!a.IsComparison() || a.args.size() != 2) return std::nullopt;
  if (a.args[0].is_variable() && a.args[1].is_constant()) {
    return std::make_tuple(a.args[0].var_name(), a.comparison_op(),
                           a.args[1].value());
  }
  if (a.args[1].is_variable() && a.args[0].is_constant()) {
    return std::make_tuple(a.args[1].var_name(),
                           rel::ReverseCompareOp(a.comparison_op()),
                           a.args[0].value());
  }
  return std::nullopt;
}

std::string AnchorOf(const CatalogSignature& sig) {
  if (sig.exact_only) return KeyCanonical(sig.canonical_key);
  if (!sig.constants.empty()) {
    const ConstantRequirement& c = sig.constants.front();
    return KeyConstant(c.predicate, c.pos, c.value);
  }
  // All-variable definition: any of its predicates is a sound anchor (the
  // query must contain them all).
  return KeyPredicate(sig.predicate_counts.front().first);
}

}  // namespace

std::string CatalogSignature::ToString() const {
  std::ostringstream os;
  if (exact_only) {
    os << "exact-only " << canonical_key;
    return os.str();
  }
  os << "preds={";
  for (size_t i = 0; i < predicate_counts.size(); ++i) {
    if (i > 0) os << ",";
    os << predicate_counts[i].first << "x" << predicate_counts[i].second;
  }
  os << "} consts=" << constants.size() << " ranges=" << ranges.size();
  if (distinct) os << " distinct";
  return os.str();
}

CatalogSignature ComputeSignature(const CaqlQuery& def) {
  CatalogSignature sig;
  sig.distinct = def.distinct;
  sig.canonical_key = def.CanonicalKey();

  const std::vector<Atom> rel_atoms = def.RelationAtoms();
  if (rel_atoms.empty() || !def.EvaluableAtoms().empty() ||
      !def.NegatedAtoms().empty()) {
    sig.exact_only = true;
    return sig;
  }

  std::map<std::string, uint32_t> counts;
  std::set<ConstantRequirement> constants;
  // First relation-atom occurrence of each body variable, for ranges.
  std::map<std::string, std::vector<std::pair<std::string, size_t>>>
      var_positions;
  for (const Atom& a : rel_atoms) {
    sig.predicate_mask |= PredicateBit(a.predicate);
    ++counts[a.predicate];
    for (size_t p = 0; p < a.args.size(); ++p) {
      const Term& t = a.args[p];
      if (t.is_constant()) {
        constants.insert(ConstantRequirement{a.predicate, p, t.value()});
      } else {
        var_positions[t.var_name()].emplace_back(a.predicate, p);
      }
    }
  }
  sig.predicate_counts.assign(counts.begin(), counts.end());
  sig.constants.assign(constants.begin(), constants.end());

  // A definition comparison "X op c" maps onto "image(X) op c", which must
  // be implied by the query's comparisons. Consistency forces every
  // occurrence of X to the same image, so the constraint must be
  // satisfiable at each (predicate, pos) where X occurs — each occurrence
  // is an independently necessary condition.
  std::set<RangeRequirement> ranges;
  for (const Atom& comp : def.ComparisonAtoms()) {
    auto norm = NormalizeComparison(comp);
    if (!norm.has_value()) continue;
    const auto& [var, op, bound] = *norm;
    auto it = var_positions.find(var);
    if (it == var_positions.end()) continue;  // comparison-only variable
    for (const auto& [predicate, pos] : it->second) {
      ranges.insert(RangeRequirement{predicate, pos, op, bound});
    }
  }
  sig.ranges.assign(ranges.begin(), ranges.end());
  return sig;
}

QueryDescriptor DescribeQuery(const CaqlQuery& query) {
  QueryDescriptor q;
  q.distinct = query.distinct;
  q.canonical_key = query.CanonicalKey();
  q.comparisons = query.ComparisonAtoms();
  // Evaluable atoms in the query confine every element to the exact-match
  // path of ComputeSubsumptionAll, so only identical definitions can
  // serve it. (Query-side negation does not: negated literals are planned
  // as separate anti-sources, outside RelationAtoms().)
  q.exact_only = !query.EvaluableAtoms().empty();
  for (const Atom& a : query.RelationAtoms()) {
    q.predicate_mask |= PredicateBit(a.predicate);
    ++q.predicate_counts[a.predicate];
    for (size_t p = 0; p < a.args.size(); ++p) {
      const Term& t = a.args[p];
      if (t.is_constant()) q.constants.emplace(a.predicate, p, t.value());
      q.terms[{a.predicate, p}].push_back(t);
    }
  }
  return q;
}

bool SignatureAdmits(const CatalogSignature& sig, const QueryDescriptor& q) {
  // SETOF elements cannot serve BAGOF queries (duplicates were lost).
  if (sig.distinct && !q.distinct) return false;

  // Exact-only on either side: only the identical definition is usable.
  if (sig.exact_only || q.exact_only) {
    return sig.canonical_key == q.canonical_key;
  }

  // Predicate-set containment, cheapest test first.
  if ((sig.predicate_mask & ~q.predicate_mask) != 0) return false;
  for (const auto& [predicate, n] : sig.predicate_counts) {
    auto it = q.predicate_counts.find(predicate);
    if (it == q.predicate_counts.end() || it->second < n) return false;
  }

  // Constant agreement: each required constant must occur verbatim.
  for (const ConstantRequirement& c : sig.constants) {
    if (q.constants.count({c.predicate, c.pos, c.value}) == 0) return false;
  }

  // Range satisfiability: some query term at the position must be able to
  // carry the mapped comparison.
  for (const RangeRequirement& r : sig.ranges) {
    auto it = q.terms.find({r.predicate, r.pos});
    if (it == q.terms.end()) return false;
    bool satisfiable = false;
    for (const Term& t : it->second) {
      if (t.is_constant()) {
        if (rel::EvalCompare(r.op, t.value(), r.bound)) {
          satisfiable = true;
          break;
        }
      } else {
        Atom mapped(rel::CompareOpSymbol(r.op),
                    {Term::Var(t.var_name()), Term::Const(r.bound)});
        if (ComparisonImplied(q.comparisons, mapped)) {
          satisfiable = true;
          break;
        }
      }
    }
    if (!satisfiable) return false;
  }
  return true;
}

void CatalogIndex::Candidates(const QueryDescriptor& q,
                              std::vector<CacheElementPtr>* out,
                              CatalogLookupStats* stats) const {
  // Probe keys are distinct by construction (the canonical key once, each
  // predicate once, each constant triple once), and every element is
  // posted under exactly one anchor, so no dedup set is needed.
  std::vector<std::string> probes;
  probes.push_back(KeyCanonical(q.canonical_key));
  if (!q.exact_only) {
    for (const auto& [predicate, n] : q.predicate_counts) {
      probes.push_back(KeyPredicate(predicate));
    }
    for (const auto& [predicate, pos, value] : q.constants) {
      probes.push_back(KeyConstant(predicate, pos, value));
    }
  }
  for (const std::string& probe : probes) {
    auto it = postings_.find(probe);
    if (it == postings_.end()) continue;
    for (const Posted& posted : it->second) {
      if (stats != nullptr) ++stats->probed;
      if (!SignatureAdmits(*posted.signature, q)) continue;
      if (stats != nullptr) ++stats->admitted;
      out->push_back(posted.element);
    }
  }
}

std::string CatalogIndex::CheckConsistency(
    const std::map<std::string, CacheElementPtr>& elements) const {
  if (!dangling_.empty()) {
    return StrCat("posting for ", dangling_.front(),
                  " dangles (element gone from the stripe)");
  }
  std::set<std::string> posted;
  for (const auto& [anchor, entries] : postings_) {
    for (const Posted& p : entries) {
      const std::string& id = p.element->id();
      if (!posted.insert(id).second) {
        return StrCat("element ", id, " posted more than once");
      }
      auto it = elements.find(id);
      if (it == elements.end()) {
        return StrCat("posting for ", id, " dangles (element evicted)");
      }
      if (it->second != p.element) {
        return StrCat("posting for ", id, " pins a stale element");
      }
    }
  }
  for (const auto& [id, element] : elements) {
    if (posted.count(id) == 0) {
      return StrCat("element ", id, " is not posted in the catalog");
    }
    // Self-reachability: the element's own definition must retrieve it.
    std::vector<CacheElementPtr> cands;
    Candidates(DescribeQuery(element->definition()), &cands);
    if (std::find(cands.begin(), cands.end(), element) == cands.end()) {
      return StrCat("element ", id,
                    " is not a candidate for its own definition");
    }
  }
  return "";
}

void CatalogShard::Insert(const std::string& id,
                          std::shared_ptr<const CatalogSignature> signature) {
  Remove(id);
  Entry entry;
  entry.anchor = AnchorOf(*signature);
  entry.signature = std::move(signature);
  postings_[entry.anchor].insert(id);
  entries_[id] = std::move(entry);
}

void CatalogShard::Remove(const std::string& id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  auto pit = postings_.find(it->second.anchor);
  if (pit != postings_.end()) {
    pit->second.erase(id);
    if (pit->second.empty()) postings_.erase(pit);
  }
  entries_.erase(it);
}

std::shared_ptr<const CatalogIndex> CatalogShard::Build(
    const std::map<std::string, CacheElementPtr>& elements) const {
  auto index = std::make_shared<CatalogIndex>();
  for (const auto& [anchor, ids] : postings_) {
    std::vector<CatalogIndex::Posted>& out = index->postings_[anchor];
    out.reserve(ids.size());
    for (const std::string& id : ids) {
      auto eit = elements.find(id);
      if (eit == elements.end()) {
        // A posting with no element is a maintenance bug; keep it visible
        // so CheckConsistency reports it instead of silently dropping it.
        index->dangling_.push_back(id);
        continue;
      }
      out.push_back(
          CatalogIndex::Posted{eit->second, entries_.at(id).signature});
      ++index->num_entries_;
    }
    if (out.empty()) index->postings_.erase(anchor);
  }
  return index;
}

}  // namespace braid::cms
