#include "cms/session.h"

#include <sstream>
#include <utility>

namespace braid::cms {

std::string CmsMetrics::ToString() const {
  std::ostringstream os;
  os << "queries=" << ie_queries << " exact=" << exact_hits
     << " full_local=" << full_local_hits << " lazy=" << lazy_answers
     << " partial=" << partial_hits << " remote_only=" << remote_only
     << " prefetches=" << prefetches << " prefetch_joins=" << prefetch_joins
     << " generalizations=" << generalizations
     << " response_ms=" << response_ms << " local_ms=" << local_ms
     << " prefetch_ms=" << prefetch_ms;
  return os.str();
}

void CmsSession::InstallAdvice(advice::AdviceSet advice) {
  MutexLock lock(&advice_mu_);
  advice_.BeginSession(std::move(advice));
}

void CmsSession::OnQuery(const std::string& view_id) {
  MutexLock lock(&advice_mu_);
  advice_.OnQuery(view_id);
}

std::set<std::string> CmsSession::PrefetchCandidates() const {
  MutexLock lock(&advice_mu_);
  return advice_.PrefetchCandidates();
}

std::vector<std::string> CmsSession::IndexHints(
    const std::string& view_id) const {
  MutexLock lock(&advice_mu_);
  return advice_.IndexHints(view_id);
}

bool CmsSession::LazyHint(const std::string& view_id) const {
  MutexLock lock(&advice_mu_);
  return advice_.LazyHint(view_id);
}

std::optional<size_t> CmsSession::PredictedDistance(
    const std::string& view_id) const {
  MutexLock lock(&advice_mu_);
  return advice_.PredictedDistance(view_id);
}

bool CmsSession::ShouldGeneralize(const std::string& view_id,
                                  const caql::CaqlQuery& instance) const {
  MutexLock lock(&advice_mu_);
  return advice_.ShouldGeneralize(view_id, instance);
}

const advice::ViewSpec* CmsSession::FindView(const std::string& id) const {
  MutexLock lock(&advice_mu_);
  return advice_.FindView(id);
}

std::optional<size_t> CmsSession::AdvisedDistance(const CacheElement& element,
                                                  size_t horizon) const {
  MutexLock lock(&advice_mu_);
  auto distance = advice_.PredictedDistance(element.origin_view());
  if (distance.has_value()) return distance;
  for (const logic::Atom& a : element.definition().RelationAtoms()) {
    if (advice_.SessionRelevant(a.predicate)) {
      return horizon > 0 ? horizon - 1 : 0;
    }
  }
  return std::nullopt;
}

}  // namespace braid::cms
