#include "cms/cache_model.h"

#include <chrono>
#include <functional>
#include <sstream>
#include <utility>

#include "common/strings.h"

namespace braid::cms {

CacheModel::CacheModel()
    : stripe_contention_(
          &obs::MetricsRegistry::Global().counter("cache.stripe_contention")),
      lock_wait_ms_(
          &obs::MetricsRegistry::Global().histogram("cache.lock_wait_ms")) {}

CacheModel::StripeLock::StripeLock(const CacheModel* model, const Stripe& s)
    : mu_(&s.mu) {
  if (mu_->TryLock()) return;
  model->stripe_contention_->Increment();
  const auto start = std::chrono::steady_clock::now();
  mu_->Lock();
  model->lock_wait_ms_->Observe(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count());
}

CacheModel::StripeLock::~StripeLock() { mu_->Unlock(); }

size_t CacheModel::StripeOf(const std::string& canonical_key) const {
  return std::hash<std::string>{}(canonical_key) % kNumStripes;
}

std::string CacheModel::NextId() {
  return StrCat("E", next_id_.fetch_add(1, std::memory_order_relaxed));
}

void CacheModel::Register(CacheElementPtr element) {
  const std::string& id = element->id();
  const std::string key = element->definition().CanonicalKey();
  // A same-id re-register may carry a different definition and therefore
  // land on a different stripe: clear the old entry first (rare — ids are
  // normally fresh).
  Remove(id);

  // The signature is a pure function of the definition; compute it before
  // taking the stripe lock.
  auto signature = std::make_shared<const CatalogSignature>(
      ComputeSignature(element->definition()));

  Stripe& s = stripes_[StripeOf(key)];
  StripeLock lock(this, s);
  // Same canonical key under another id: concurrent sessions raced to
  // install the same definition; the earlier element is dropped so the
  // key maps to exactly one element.
  auto kit = s.by_canonical_key.find(key);
  if (kit != s.by_canonical_key.end() && kit->second != id) {
    RemoveLocked(s, kit->second);
  }
  for (const logic::Atom& a : element->definition().RelationAtoms()) {
    s.by_predicate[a.predicate].insert(id);
  }
  s.catalog.Insert(id, std::move(signature));
  s.by_canonical_key[key] = id;
  s.elements[id] = std::move(element);
  ++s.version;
  s.snapshot = nullptr;
  {
    MutexLock idlock(&id_mu_);
    id_stripe_[id] = StripeOf(key);
  }
  count_.fetch_add(1, std::memory_order_acq_rel);
  version_.fetch_add(1, std::memory_order_acq_rel);
}

size_t CacheModel::RemoveLocked(Stripe& s, std::string id) {
  auto it = s.elements.find(id);
  if (it == s.elements.end()) return 0;
  const size_t freed = it->second->ByteSize();
  for (const logic::Atom& a : it->second->definition().RelationAtoms()) {
    auto pit = s.by_predicate.find(a.predicate);
    if (pit != s.by_predicate.end()) {
      pit->second.erase(id);
      if (pit->second.empty()) s.by_predicate.erase(pit);
    }
  }
  const std::string key = it->second->definition().CanonicalKey();
  auto kit = s.by_canonical_key.find(key);
  if (kit != s.by_canonical_key.end() && kit->second == id) {
    s.by_canonical_key.erase(kit);
  }
  s.catalog.Remove(id);
  s.elements.erase(it);
  ++s.version;
  s.snapshot = nullptr;
  {
    MutexLock idlock(&id_mu_);
    id_stripe_.erase(id);
  }
  count_.fetch_sub(1, std::memory_order_acq_rel);
  version_.fetch_add(1, std::memory_order_acq_rel);
  return freed;
}

size_t CacheModel::Remove(const std::string& id) {
  for (;;) {
    size_t idx;
    {
      MutexLock lock(&id_mu_);
      auto it = id_stripe_.find(id);
      if (it == id_stripe_.end()) return 0;
      idx = it->second;
    }
    Stripe& s = stripes_[idx];
    StripeLock lock(this, s);
    if (s.elements.find(id) == s.elements.end()) {
      // Raced with another Remove (or a same-id re-register that moved the
      // element): re-read the directory.
      continue;
    }
    return RemoveLocked(s, id);
  }
}

std::shared_ptr<const StripeSnapshot> CacheModel::Snapshot(size_t i) const {
  const Stripe& s = stripes_[i];
  StripeLock lock(this, s);
  if (s.snapshot == nullptr || s.snapshot->version != s.version) {
    auto snap = std::make_shared<StripeSnapshot>();
    snap->version = s.version;
    snap->elements = s.elements;
    for (const auto& [pred, ids] : s.by_predicate) {
      std::vector<CacheElementPtr>& out = snap->by_predicate[pred];
      out.reserve(ids.size());
      for (const std::string& id : ids) {
        auto eit = s.elements.find(id);
        if (eit != s.elements.end()) out.push_back(eit->second);
      }
    }
    for (const auto& [key, id] : s.by_canonical_key) {
      auto eit = s.elements.find(id);
      if (eit != s.elements.end()) snap->by_canonical_key[key] = eit->second;
    }
    snap->catalog = s.catalog.Build(s.elements);
    s.snapshot = std::move(snap);
  }
  return s.snapshot;
}

CacheElementPtr CacheModel::Find(const std::string& id) const {
  size_t idx;
  {
    MutexLock lock(&id_mu_);
    auto it = id_stripe_.find(id);
    if (it == id_stripe_.end()) return nullptr;
    idx = it->second;
  }
  std::shared_ptr<const StripeSnapshot> snap = Snapshot(idx);
  auto it = snap->elements.find(id);
  return it == snap->elements.end() ? nullptr : it->second;
}

std::vector<CacheElementPtr> CacheModel::ByPredicate(
    const std::string& predicate) const {
  // Every stripe may hold definitions mentioning the predicate (stripes
  // hash the whole canonical definition, not individual predicates).
  std::vector<CacheElementPtr> out;
  for (size_t i = 0; i < kNumStripes; ++i) {
    std::shared_ptr<const StripeSnapshot> snap = Snapshot(i);
    auto it = snap->by_predicate.find(predicate);
    if (it == snap->by_predicate.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

std::vector<CacheElementPtr> CacheModel::SubsumptionCandidates(
    const QueryDescriptor& query, CatalogLookupStats* stats) const {
  // Like ByPredicate, every stripe may hold relevant definitions (stripes
  // hash the whole canonical key); each stripe's catalog rejects
  // non-subsuming entries without touching the rest of the stripe.
  std::vector<CacheElementPtr> out;
  for (size_t i = 0; i < kNumStripes; ++i) {
    Snapshot(i)->catalog->Candidates(query, &out, stats);
  }
  return out;
}

std::string CacheModel::CheckCatalogConsistency() const {
  for (size_t i = 0; i < kNumStripes; ++i) {
    std::shared_ptr<const StripeSnapshot> snap = Snapshot(i);
    std::string problem = snap->catalog->CheckConsistency(snap->elements);
    if (!problem.empty()) {
      return StrCat("stripe ", i, ": ", problem);
    }
    // Derived intermediates carry synthesized view definitions; a
    // malformed one (invalid CAQL, or a head that disagrees with the
    // materialized schema) would answer queries wrongly through
    // subsumption, so the consistency sweep validates them like any
    // posted element.
    for (const auto& [id, e] : snap->elements) {
      if (!e->is_derived()) continue;
      Status valid = e->definition().Validate();
      if (!valid.ok()) {
        return StrCat("stripe ", i, ": derived element ", id,
                      " has invalid definition: ", valid.message());
      }
      if (e->is_materialized() &&
          e->definition().head_args.size() != e->extension()->schema().size()) {
        return StrCat("stripe ", i, ": derived element ", id,
                      " head arity ", e->definition().head_args.size(),
                      " != extension arity ",
                      e->extension()->schema().size());
      }
    }
  }
  return "";
}

CacheElementPtr CacheModel::ByCanonicalKey(const std::string& key) const {
  std::shared_ptr<const StripeSnapshot> snap = Snapshot(StripeOf(key));
  auto it = snap->by_canonical_key.find(key);
  return it == snap->by_canonical_key.end() ? nullptr : it->second;
}

std::map<std::string, CacheElementPtr> CacheModel::elements() const {
  std::map<std::string, CacheElementPtr> out;
  for (size_t i = 0; i < kNumStripes; ++i) {
    std::shared_ptr<const StripeSnapshot> snap = Snapshot(i);
    out.insert(snap->elements.begin(), snap->elements.end());
  }
  return out;
}

bool CacheModel::HasMaterializedFor(const std::string& predicate) const {
  for (size_t i = 0; i < kNumStripes; ++i) {
    std::shared_ptr<const StripeSnapshot> snap = Snapshot(i);
    auto it = snap->by_predicate.find(predicate);
    if (it == snap->by_predicate.end()) continue;
    for (const CacheElementPtr& e : it->second) {
      if (e->is_materialized()) return true;
    }
  }
  return false;
}

rel::Relation CacheModel::AsRelation() const {
  rel::Relation out("cache_model",
                    rel::Schema::FromNames(
                        {"e_id", "e_def", "form", "tuples", "bytes", "hits"}));
  for (const auto& [id, e] : elements()) {
    out.AppendUnchecked(
        {rel::Value::String(id),
         rel::Value::String(e->definition().ToString()),
         rel::Value::String(e->is_materialized() ? "extension" : "generator"),
         rel::Value::Int(e->is_materialized()
                             ? static_cast<int64_t>(e->extension()->NumTuples())
                             : 0),
         rel::Value::Int(static_cast<int64_t>(e->ByteSize())),
         rel::Value::Int(static_cast<int64_t>(
             e->stats().hits.load(std::memory_order_relaxed)))});
  }
  return out;
}

size_t CacheModel::TotalBytes() const {
  size_t total = 0;
  for (size_t i = 0; i < kNumStripes; ++i) {
    std::shared_ptr<const StripeSnapshot> snap = Snapshot(i);
    for (const auto& [id, e] : snap->elements) total += e->ByteSize();
  }
  return total;
}

std::string CacheModel::ToString() const {
  const std::map<std::string, CacheElementPtr> all = elements();
  std::ostringstream os;
  os << "cache: " << all.size() << " elements, " << TotalBytes() << " bytes";
  for (const auto& [id, e] : all) {
    os << "\n  " << e->ToString();
  }
  return os.str();
}

}  // namespace braid::cms
