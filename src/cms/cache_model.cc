#include "cms/cache_model.h"

#include <sstream>

#include "common/strings.h"

namespace braid::cms {

std::string CacheModel::NextId() {
  BRAID_SINGLE_THREAD(sequence_);
  return StrCat("E", next_id_++);
}

void CacheModel::Register(CacheElementPtr element) {
  BRAID_SINGLE_THREAD(sequence_);
  const std::string& id = element->id();
  Remove(id);
  for (const logic::Atom& a : element->definition().RelationAtoms()) {
    by_predicate_[a.predicate].insert(id);
  }
  by_canonical_key_[element->definition().CanonicalKey()] = id;
  elements_[id] = std::move(element);
  ++version_;
}

void CacheModel::Remove(const std::string& id) {
  BRAID_SINGLE_THREAD(sequence_);
  auto it = elements_.find(id);
  if (it == elements_.end()) return;
  for (const logic::Atom& a : it->second->definition().RelationAtoms()) {
    auto pit = by_predicate_.find(a.predicate);
    if (pit != by_predicate_.end()) {
      pit->second.erase(id);
      if (pit->second.empty()) by_predicate_.erase(pit);
    }
  }
  const std::string key = it->second->definition().CanonicalKey();
  auto kit = by_canonical_key_.find(key);
  if (kit != by_canonical_key_.end() && kit->second == id) {
    by_canonical_key_.erase(kit);
  }
  elements_.erase(it);
  ++version_;
}

CacheElementPtr CacheModel::Find(const std::string& id) const {
  BRAID_SINGLE_THREAD(sequence_);
  auto it = elements_.find(id);
  return it == elements_.end() ? nullptr : it->second;
}

std::vector<CacheElementPtr> CacheModel::ByPredicate(
    const std::string& predicate) const {
  BRAID_SINGLE_THREAD(sequence_);
  std::vector<CacheElementPtr> out;
  auto it = by_predicate_.find(predicate);
  if (it == by_predicate_.end()) return out;
  out.reserve(it->second.size());
  for (const std::string& id : it->second) {
    auto eit = elements_.find(id);
    if (eit != elements_.end()) out.push_back(eit->second);
  }
  return out;
}

CacheElementPtr CacheModel::ByCanonicalKey(const std::string& key) const {
  BRAID_SINGLE_THREAD(sequence_);
  auto it = by_canonical_key_.find(key);
  return it == by_canonical_key_.end() ? nullptr : Find(it->second);
}

bool CacheModel::HasMaterializedFor(const std::string& predicate) const {
  BRAID_SINGLE_THREAD(sequence_);
  auto it = by_predicate_.find(predicate);
  if (it == by_predicate_.end()) return false;
  for (const std::string& id : it->second) {
    auto eit = elements_.find(id);
    if (eit != elements_.end() && eit->second->is_materialized()) return true;
  }
  return false;
}

rel::Relation CacheModel::AsRelation() const {
  BRAID_SINGLE_THREAD(sequence_);
  rel::Relation out("cache_model",
                    rel::Schema::FromNames(
                        {"e_id", "e_def", "form", "tuples", "bytes", "hits"}));
  for (const auto& [id, e] : elements_) {
    out.AppendUnchecked(
        {rel::Value::String(id),
         rel::Value::String(e->definition().ToString()),
         rel::Value::String(e->is_materialized() ? "extension" : "generator"),
         rel::Value::Int(e->is_materialized()
                             ? static_cast<int64_t>(e->extension()->NumTuples())
                             : 0),
         rel::Value::Int(static_cast<int64_t>(e->ByteSize())),
         rel::Value::Int(static_cast<int64_t>(e->stats().hits))});
  }
  return out;
}

size_t CacheModel::TotalBytes() const {
  BRAID_SINGLE_THREAD(sequence_);
  size_t total = 0;
  for (const auto& [id, e] : elements_) total += e->ByteSize();
  return total;
}

std::string CacheModel::ToString() const {
  BRAID_SINGLE_THREAD(sequence_);
  std::ostringstream os;
  os << "cache: " << elements_.size() << " elements, " << TotalBytes()
     << " bytes";
  for (const auto& [id, e] : elements_) {
    os << "\n  " << e->ToString();
  }
  return os.str();
}

}  // namespace braid::cms
