#include "cms/planner.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "cms/load_controller.h"
#include "common/strings.h"

namespace braid::cms {

namespace {

using caql::CaqlQuery;
using logic::Atom;

}  // namespace

std::string PlanSource::ToString() const {
  if (kind == Kind::kElement) {
    return StrCat("cache:", element_id, " ", match.ToString());
  }
  return StrCat("remote:", remote_query.ToString());
}

std::string Plan::ToString() const {
  std::ostringstream os;
  os << "plan for " << query.ToString() << (fully_local ? " [local]" : "");
  for (const PlanSource& s : sources) {
    os << "\n  " << s.ToString();
  }
  for (const PlanSource& s : anti_sources) {
    os << "\n  anti: " << s.ToString();
  }
  if (!residual_comparisons.empty()) {
    os << "\n  residual:";
    for (const Atom& c : residual_comparisons) os << " " << c.ToString();
  }
  return os.str();
}

std::vector<CacheElementPtr> QueryPlanner::CandidateElements(
    const CaqlQuery& query, CatalogLookupStats* stats) const {
  if (config_.use_catalog) {
    return model_->SubsumptionCandidates(DescribeQuery(query), stats);
  }
  // Linear baseline: every element mentioning any query predicate, no
  // signature filtering (the pre-catalog behaviour).
  std::vector<CacheElementPtr> out;
  std::set<std::string> considered;
  for (const Atom& atom : query.RelationAtoms()) {
    for (const CacheElementPtr& element : model_->ByPredicate(atom.predicate)) {
      if (!considered.insert(element->id()).second) continue;
      out.push_back(element);
    }
  }
  if (stats != nullptr) {
    stats->probed += out.size();
    stats->admitted += out.size();
  }
  return out;
}

std::vector<std::pair<CacheElementPtr, SubsumptionMatch>>
QueryPlanner::RelevantElements(const CaqlQuery& query, obs::Tracer* tracer,
                               obs::SpanId parent) const {
  std::vector<std::pair<CacheElementPtr, SubsumptionMatch>> out;
  obs::SpanScope span(tracer, "subsumption", parent);
  if (!config_.enable_subsumption) {
    span.Annotate("matches", "0");
    return out;
  }

  const SubsumptionOptions options{config_.max_subsumption_mappings};
  CatalogLookupStats stats;
  size_t truncated = 0;
  for (const CacheElementPtr& element : CandidateElements(query, &stats)) {
    if (!element->is_materialized()) continue;
    // All distinct covered-component matches: one element may serve
    // several components (e.g. both sides of a self-join).
    SubsumptionInfo info;
    for (SubsumptionMatch& match :
         ComputeSubsumptionAll(element->definition(), query, options, &info)) {
      out.emplace_back(element, std::move(match));
    }
    if (info.truncated) ++truncated;
  }
  span.Annotate("candidates", std::to_string(stats.admitted));
  span.Annotate("matches", std::to_string(out.size()));
  // A hit cap means a viable mapping may have been dropped and the query
  // forced (partially) remote — surface it on the span so the forced
  // fetch is diagnosable from the trace alone.
  if (truncated > 0) span.Annotate("truncated", std::to_string(truncated));
  return out;
}

Result<Plan> QueryPlanner::PlanQuery(const CaqlQuery& query,
                                     obs::Tracer* tracer,
                                     obs::SpanId parent) const {
  BRAID_RETURN_IF_ERROR(query.Validate());
  obs::SpanScope plan_span(tracer, "plan", parent);
  Plan plan;
  plan.query = query;
  plan.evaluables = query.EvaluableAtoms();

  const std::vector<Atom> rel_atoms = query.RelationAtoms();
  const std::vector<Atom> comparisons = query.ComparisonAtoms();

  if (rel_atoms.empty()) {
    // Pure built-in query: no sources, everything residual/local.
    plan.residual_comparisons = comparisons;
    plan.fully_local = true;
    return plan;
  }

  // Step 2: relevant cache elements.
  auto matches = RelevantElements(query, tracer, plan_span.id());

  // Step 3 (element choice): when several elements can derive the same
  // component, prefer the cheaper derivation — more coverage first, then
  // fewer residual selections, then the smaller extension (§5.3.3's
  // E_101/E_102 vs E_103 example).
  std::sort(matches.begin(), matches.end(),
            [](const auto& a, const auto& b) {
              if (a.second.covered.size() != b.second.covered.size()) {
                return a.second.covered.size() > b.second.covered.size();
              }
              if (a.second.selections.size() != b.second.selections.size()) {
                return a.second.selections.size() < b.second.selections.size();
              }
              return a.first->extension()->NumTuples() <
                     b.first->extension()->NumTuples();
            });

  // Greedy disjoint cover of the query's relation atoms.
  std::vector<bool> covered(rel_atoms.size(), false);
  for (auto& [element, match] : matches) {
    bool overlaps = false;
    for (size_t qi : match.covered) {
      if (covered[qi]) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    for (size_t qi : match.covered) covered[qi] = true;
    PlanSource source;
    source.kind = PlanSource::Kind::kElement;
    source.element_id = element->id();
    source.element = element;
    source.match = std::move(match);
    plan.sources.push_back(std::move(source));
    if (std::all_of(covered.begin(), covered.end(),
                    [](bool c) { return c; })) {
      break;
    }
  }

  // Negated literals: one anti source each, from the cache when a cached
  // element subsumes the positive form, otherwise from the remote DBMS.
  for (const Atom& negated : query.NegatedAtoms()) {
    const Atom positive = negated.Positive();
    caql::CaqlQuery positive_query;
    positive_query.name = StrCat(query.name, "_not_", positive.predicate);
    for (const std::string& v : positive.Variables()) {
      positive_query.head_args.push_back(logic::Term::Var(v));
    }
    positive_query.body = {positive};

    PlanSource anti;
    bool local = false;
    if (config_.enable_subsumption) {
      const SubsumptionOptions options{config_.max_subsumption_mappings};
      for (const CacheElementPtr& element :
           CandidateElements(positive_query, nullptr)) {
        if (!element->is_materialized()) continue;
        auto match =
            ComputeSubsumption(element->definition(), positive_query, options);
        if (match.has_value() && match->full) {
          anti.kind = PlanSource::Kind::kElement;
          anti.element_id = element->id();
          anti.element = element;
          anti.match = std::move(*match);
          local = true;
          break;
        }
      }
    }
    if (!local) {
      anti.kind = PlanSource::Kind::kRemote;
      anti.remote_query = positive_query;
      anti.remote_vars = positive.Variables();
      plan.fully_local = false;
    }
    plan.anti_sources.push_back(std::move(anti));
  }

  // Uncovered atoms form the remote subquery.
  std::vector<Atom> uncovered;
  std::set<std::string> uncovered_vars;
  for (size_t i = 0; i < rel_atoms.size(); ++i) {
    if (covered[i]) continue;
    uncovered.push_back(rel_atoms[i]);
    for (const std::string& v : rel_atoms[i].Variables()) {
      uncovered_vars.insert(v);
    }
  }

  if (uncovered.empty()) {
    bool anti_remote = false;
    for (const PlanSource& a : plan.anti_sources) {
      if (a.kind == PlanSource::Kind::kRemote) anti_remote = true;
    }
    plan.fully_local = !anti_remote;
    plan.residual_comparisons = comparisons;
    return plan;
  }

  // Comparisons whose variables live entirely in the remote subquery are
  // pushed to the server; the rest stay residual.
  std::vector<Atom> pushed;
  for (const Atom& comp : comparisons) {
    bool push = true;
    for (const std::string& v : comp.Variables()) {
      if (uncovered_vars.count(v) == 0) {
        push = false;
        break;
      }
    }
    if (push) {
      pushed.push_back(comp);
    } else {
      plan.residual_comparisons.push_back(comp);
    }
  }

  // Variables the rest of the plan needs from the remote side: head
  // variables, variables shared with covered atoms or residual built-ins.
  std::set<std::string> needed;
  for (const std::string& v : query.HeadVariables()) needed.insert(v);
  for (size_t i = 0; i < rel_atoms.size(); ++i) {
    if (!covered[i]) continue;
    for (const std::string& v : rel_atoms[i].Variables()) needed.insert(v);
  }
  {
    std::set<std::string> builtin_vars;
    logic::CollectVariables(plan.residual_comparisons, &builtin_vars);
    logic::CollectVariables(plan.evaluables, &builtin_vars);
    std::vector<Atom> negated = query.NegatedAtoms();
    logic::CollectVariables(negated, &builtin_vars);
    needed.insert(builtin_vars.begin(), builtin_vars.end());
  }

  PlanSource remote;
  remote.kind = PlanSource::Kind::kRemote;
  remote.remote_query.name = StrCat(query.name, "_remote");
  remote.remote_query.body = uncovered;
  for (const Atom& comp : pushed) remote.remote_query.body.push_back(comp);
  for (const std::string& v : uncovered_vars) {
    if (needed.count(v) > 0) {
      remote.remote_vars.push_back(v);
      remote.remote_query.head_args.push_back(logic::Term::Var(v));
    }
  }
  plan.sources.push_back(std::move(remote));
  plan.fully_local = false;
  return plan;
}

const char* SpeculativeAdmissionName(SpeculativeAdmission verdict) {
  switch (verdict) {
    case SpeculativeAdmission::kAdmit:
      return "admit";
    case SpeculativeAdmission::kAlreadyCached:
      return "already-cached";
    case SpeculativeAdmission::kFullyLocal:
      return "fully-local";
    case SpeculativeAdmission::kTooLarge:
      return "too-large";
    case SpeculativeAdmission::kUnplannable:
      return "unplannable";
    case SpeculativeAdmission::kShedOverload:
      return "shed-overload";
  }
  return "?";
}

SpeculativeAdmission JudgeSpeculative(
    const CacheModel& model, const QueryPlanner& planner,
    const caql::CaqlQuery& general,
    const std::function<double()>& estimated_result_bytes,
    size_t cache_budget_bytes, bool skip_if_fully_local, Plan* plan_out,
    const LoadController* load) {
  if (load != nullptr && load->ShouldShed()) {
    return SpeculativeAdmission::kShedOverload;
  }
  if (model.ByCanonicalKey(general.CanonicalKey()) != nullptr) {
    return SpeculativeAdmission::kAlreadyCached;
  }
  if (estimated_result_bytes() >
      static_cast<double>(cache_budget_bytes) / 2) {
    return SpeculativeAdmission::kTooLarge;
  }
  if (skip_if_fully_local || plan_out != nullptr) {
    Result<Plan> plan = planner.PlanQuery(general);
    if (!plan.ok()) return SpeculativeAdmission::kUnplannable;
    if (skip_if_fully_local && plan->fully_local) {
      return SpeculativeAdmission::kFullyLocal;
    }
    if (plan_out != nullptr) *plan_out = std::move(*plan);
  }
  return SpeculativeAdmission::kAdmit;
}

}  // namespace braid::cms
