#include "cms/cms.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "common/strings.h"
#include "exec/parallel_ops.h"

namespace braid::cms {

namespace {

using caql::CaqlQuery;
using logic::Term;

/// The all-variable generalization of a view instance: the view's own
/// definition (every consumer constant replaced by its variable).
CaqlQuery GeneralizedForm(const advice::ViewSpec& view) {
  return view.AsCaql();
}

/// Worker-thread count for the execution engine's pool, or nullptr for a
/// serial CMS. The calling thread always joins morsel loops, so the
/// default saturates the machine at hardware_concurrency total lanes.
std::unique_ptr<exec::ThreadPool> MakePool(const CmsConfig& config) {
  if (!config.enable_parallel) return nullptr;
  size_t workers = config.num_threads;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 1 ? hw - 1 : 1;
  }
  return std::make_unique<exec::ThreadPool>(workers);
}

}  // namespace

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kExact:
      return "exact";
    case CacheOutcome::kFullLocal:
      return "full-local";
    case CacheOutcome::kLazy:
      return "lazy";
    case CacheOutcome::kPartial:
      return "partial";
    case CacheOutcome::kRemote:
      return "remote";
  }
  return "?";
}

std::string CmsMetrics::ToString() const {
  std::ostringstream os;
  os << "queries=" << ie_queries << " exact=" << exact_hits
     << " full_local=" << full_local_hits << " lazy=" << lazy_answers
     << " partial=" << partial_hits << " remote_only=" << remote_only
     << " prefetches=" << prefetches << " generalizations=" << generalizations
     << " response_ms=" << response_ms << " local_ms=" << local_ms
     << " prefetch_ms=" << prefetch_ms;
  return os.str();
}

Cms::Cms(dbms::RemoteDbms* remote, CmsConfig config)
    : remote_(remote),
      config_(config),
      cache_(config.cache_budget_bytes, config.replacement_horizon),
      rdi_(remote),
      planner_(&cache_.model(), remote,
               PlannerConfig{config.enable_subsumption &&
                             config.enable_caching}),
      pool_(MakePool(config)),
      monitor_(&cache_, &rdi_, config.local_per_tuple_ms,
               config.enable_parallel,
               exec::ExecContext{pool_.get(), config.parallel_threshold}) {
  // Replacement advice: the tracker's predicted distance for the
  // element's origin view; when the tracker has no prediction, the
  // simplest advice form (the relevant-base-relation list) still protects
  // session-relevant elements at the horizon boundary.
  cache_.set_replacement_advisor(
      [this](const CacheElement& e) -> std::optional<size_t> {
        if (!config_.enable_advice) return std::nullopt;
        auto distance = advice_.PredictedDistance(e.origin_view());
        if (distance.has_value()) return distance;
        for (const logic::Atom& a : e.definition().RelationAtoms()) {
          if (advice_.SessionRelevant(a.predicate)) {
            return config_.replacement_horizon > 0
                       ? config_.replacement_horizon - 1
                       : 0;
          }
        }
        return std::nullopt;
      });
}

void Cms::BeginSession(advice::AdviceSet advice) {
  if (!config_.enable_advice) {
    advice = advice::AdviceSet{};  // The CMS functions without advice.
  }
  advice_.BeginSession(std::move(advice));
}

bool Cms::CachingPolicyAdmits(const CaqlQuery& definition) const {
  if (!config_.enable_caching) return false;
  if (!config_.single_relation_only) return true;
  // CERI86-style policy: only unrestricted single base-relation extensions.
  if (definition.body.size() != 1) return false;
  const logic::Atom& atom = definition.body[0];
  if (atom.IsComparison()) return false;
  std::vector<std::string> vars = atom.Variables();
  return vars.size() == atom.arity() &&
         definition.head_args.size() == atom.arity();
}

std::string Cms::CacheResult(const CaqlQuery& definition, rel::Relation result,
                             const std::string& origin_view) {
  // Result caching is cross-session ("eliminates the cost of recomputing
  // repeated CAQL queries", §5.3): admission is unconditional within the
  // policy; a path expression predicting no recurrence lowers the
  // element's replacement priority instead of blocking admission.
  if (!CachingPolicyAdmits(definition)) return "";
  auto element = std::make_shared<CacheElement>(
      cache_.model().NextId(), definition,
      std::make_shared<rel::Relation>(std::move(result)));
  element->set_origin_view(origin_view);

  // Attribute indexing from consumer annotations (paper §4.2.1): index the
  // extension columns of consumer-annotated head variables.
  if (config_.enable_indexing && config_.enable_advice &&
      !origin_view.empty()) {
    for (const std::string& var : advice_.IndexHints(origin_view)) {
      for (size_t i = 0; i < definition.head_args.size(); ++i) {
        const Term& t = definition.head_args[i];
        if (t.is_variable() && t.var_name() == var) {
          element->EnsureIndex(i);
        }
      }
    }
  }

  const std::string id = element->id();
  return cache_.Insert(std::move(element)) ? id : "";
}

Result<Cms::EagerExec> Cms::ExecuteEager(const CaqlQuery& query,
                                         obs::SpanId parent) {
  obs::Tracer* tracer = parent != 0 ? &tracer_ : nullptr;
  BRAID_ASSIGN_OR_RETURN(Plan plan,
                         planner_.PlanQuery(query, tracer, parent));
  BRAID_ASSIGN_OR_RETURN(ExecutionOutcome outcome,
                         monitor_.ExecutePlan(plan, tracer, parent));
  EagerExec exec;
  exec.result = std::move(outcome.result);
  exec.response_ms = outcome.response_ms;
  exec.fully_local = plan.fully_local;
  for (const PlanSource& s : plan.sources) {
    if (s.kind == PlanSource::Kind::kElement) {
      exec.any_element_source = true;
      break;
    }
  }
  metrics_.local_ms += outcome.local_ms;
  return exec;
}

double Cms::EstimateResultBytes(const CaqlQuery& query) const {
  auto sql = rdi_.Translate(query, query.HeadVariables());
  if (!sql.ok()) return 0;
  // ~40 bytes per tuple is representative of the small tuples in play.
  return remote_->EstimateCardinality(*sql) * 40.0;
}

Result<bool> Cms::MaybeGeneralize(const CaqlQuery& query,
                                  const std::string& view_id,
                                  double* response_ms) {
  if (!config_.enable_generalization || !config_.enable_advice ||
      !config_.enable_caching || view_id.empty()) {
    return false;
  }
  const advice::ViewSpec* view = advice_.FindView(view_id);
  if (view == nullptr) return false;
  // Only useful when the instance actually binds constants.
  bool has_constant = false;
  for (const Term& t : query.head_args) {
    if (t.is_constant()) has_constant = true;
  }
  if (!has_constant) return false;
  if (!advice_.ShouldGeneralize(view_id, query)) return false;

  const CaqlQuery general = GeneralizedForm(*view);
  // Already cached (or derivable without remote work)? Nothing to do.
  if (cache_.model().ByCanonicalKey(general.CanonicalKey()) != nullptr) {
    return false;
  }
  // Too large to pay off?
  if (EstimateResultBytes(general) >
      static_cast<double>(config_.cache_budget_bytes) / 2) {
    return false;
  }
  BRAID_ASSIGN_OR_RETURN(EagerExec exec, ExecuteEager(general));
  *response_ms += exec.response_ms;
  CacheResult(general, std::move(exec.result), view_id);
  ++metrics_.generalizations;
  return true;
}

void Cms::MaybePrefetch(const std::string& current_view) {
  if (!config_.enable_prefetch || !config_.enable_advice ||
      !config_.enable_caching) {
    return;
  }
  for (const std::string& candidate : advice_.PrefetchCandidates()) {
    if (candidate == current_view) continue;
    const advice::ViewSpec* view = advice_.FindView(candidate);
    if (view == nullptr) continue;
    const CaqlQuery general = GeneralizedForm(*view);
    if (cache_.model().ByCanonicalKey(general.CanonicalKey()) != nullptr) {
      continue;  // already prefetched / cached
    }
    // Skip when a fully local plan exists (no remote work to hide).
    auto plan = planner_.PlanQuery(general);
    if (plan.ok() && plan->fully_local) continue;
    if (EstimateResultBytes(general) >
        static_cast<double>(config_.cache_budget_bytes) / 2) {
      continue;
    }
    auto exec = ExecuteEager(general);
    if (!exec.ok()) continue;
    // Prefetch cost is hidden behind IE processing: it adds communication
    // volume but not response time.
    metrics_.prefetch_ms += exec->response_ms;
    CacheResult(general, std::move(exec->result), candidate);
    ++metrics_.prefetches;
  }
}

Result<CmsAnswer> Cms::Query(const CaqlQuery& query) {
  BRAID_RETURN_IF_ERROR(query.Validate());
  cache_.Tick();
  ++metrics_.ie_queries;
  // Every query records a span tree rooted here; children are added by
  // the planner (plan/subsumption) and the execution monitor
  // (prep/fetch/assembly), the latter possibly from pool threads.
  obs::SpanScope root(&tracer_, "query");
  root.Annotate("name", query.name);
  const std::string view_id = config_.enable_advice ? query.name : "";
  {
    obs::SpanScope advice_span(&tracer_, "advice", root.id());
    advice_.OnQuery(view_id);
  }

  CmsAnswer answer;
  double response_ms = 0;

  // Exact-match fast path (result caching).
  if (config_.enable_caching) {
    obs::SpanScope probe(&tracer_, "exact_probe", root.id());
    CacheElementPtr exact =
        cache_.model().ByCanonicalKey(query.CanonicalKey());
    if (exact != nullptr && exact->is_materialized()) {
      cache_.Touch(exact->id());
      ++metrics_.exact_hits;
      answer.relation = exact->extension();
      answer.stream = std::make_unique<stream::ScanStream>(answer.relation);
      answer.outcome = CacheOutcome::kExact;
      answer.response_ms =
          exact->extension()->NumTuples() * config_.local_per_tuple_ms;
      probe.SetModeledMs(answer.response_ms);
      probe.Annotate("hit", exact->id());
      metrics_.response_ms += answer.response_ms;
      probe.End();
      root.SetModeledMs(answer.response_ms);
      root.Annotate("outcome", CacheOutcomeName(answer.outcome));
      root.End();
      MaybePrefetch(view_id);
      return answer;
    }
  }

  // Step 1: possibly evaluate a more general query first.
  bool generalized = false;
  {
    obs::SpanScope gen(&tracer_, "generalize", root.id());
    BRAID_ASSIGN_OR_RETURN(generalized,
                           MaybeGeneralize(query, view_id, &response_ms));
    gen.Annotate("generalized", generalized ? "yes" : "no");
    if (generalized) gen.SetModeledMs(response_ms);
  }
  (void)generalized;

  // Steps 2-3: plan.
  BRAID_ASSIGN_OR_RETURN(Plan plan,
                         planner_.PlanQuery(query, &tracer_, root.id()));

  // Lazy evaluation: only when every needed datum is cached (§5.1) and
  // advice marks the view all-producer (§5.3.3 guideline).
  if (plan.fully_local && config_.enable_lazy && config_.enable_advice &&
      advice_.LazyHint(view_id)) {
    auto stream = monitor_.BuildLazyStream(plan);
    if (stream.ok()) {
      ++metrics_.lazy_answers;
      answer.lazy = true;
      answer.stream = std::move(*stream);
      answer.outcome = CacheOutcome::kLazy;
      answer.response_ms = response_ms;  // setup only; tuples are on demand
      metrics_.response_ms += answer.response_ms;
      root.SetModeledMs(response_ms);
      root.Annotate("outcome", CacheOutcomeName(answer.outcome));
      root.End();
      MaybePrefetch(view_id);
      return answer;
    }
  }

  // Eager execution.
  BRAID_ASSIGN_OR_RETURN(ExecutionOutcome outcome,
                         monitor_.ExecutePlan(plan, &tracer_, root.id()));
  response_ms += outcome.response_ms;
  metrics_.local_ms += outcome.local_ms;

  bool any_element = false;
  for (const PlanSource& s : plan.sources) {
    if (s.kind == PlanSource::Kind::kElement) any_element = true;
  }
  if (plan.fully_local) {
    ++metrics_.full_local_hits;
    answer.outcome = CacheOutcome::kFullLocal;
  } else if (any_element) {
    ++metrics_.partial_hits;
    answer.outcome = CacheOutcome::kPartial;
  } else {
    ++metrics_.remote_only;
    answer.outcome = CacheOutcome::kRemote;
  }

  // Result caching (repeats then take the exact-match fast path).
  {
    rel::Relation copy = outcome.result;
    CacheResult(query, std::move(copy), view_id);
  }

  answer.relation = std::make_shared<rel::Relation>(std::move(outcome.result));
  answer.stream = std::make_unique<stream::ScanStream>(answer.relation);
  answer.response_ms = response_ms;
  metrics_.response_ms += response_ms;
  root.SetModeledMs(response_ms);
  root.Annotate("outcome", CacheOutcomeName(answer.outcome));
  root.End();
  MaybePrefetch(view_id);
  return answer;
}

Result<rel::Relation> Cms::Aggregate(const CaqlQuery& query,
                                     const std::vector<std::string>& group_by,
                                     rel::AggFn fn,
                                     const std::string& agg_var) {
  BRAID_ASSIGN_OR_RETURN(CmsAnswer answer, Query(query));
  rel::Relation input =
      answer.relation != nullptr
          ? *answer.relation
          : stream::Drain(*answer.stream, query.name);
  std::vector<size_t> group_cols;
  for (const std::string& g : group_by) {
    auto col = input.schema().ColumnIndex(g);
    if (!col.has_value()) {
      return Status::InvalidArgument(StrCat("group-by variable ", g,
                                            " not in query head"));
    }
    group_cols.push_back(*col);
  }
  size_t agg_col = 0;
  if (fn != rel::AggFn::kCount) {
    auto col = input.schema().ColumnIndex(agg_var);
    if (!col.has_value()) {
      return Status::InvalidArgument(StrCat("aggregate variable ", agg_var,
                                            " not in query head"));
    }
    agg_col = *col;
  }
  return exec::Aggregate(exec_context(), input, group_cols,
                         {rel::AggSpec{fn, agg_col, agg_var.empty()
                                                        ? std::string("agg")
                                                        : agg_var}});
}

Result<rel::Relation> Cms::QuerySorted(
    const CaqlQuery& query, const std::vector<std::string>& order_by) {
  // Column positions of the ordering variables within the head.
  std::vector<size_t> cols;
  for (const std::string& var : order_by) {
    bool found = false;
    for (size_t i = 0; i < query.head_args.size(); ++i) {
      const Term& t = query.head_args[i];
      if (t.is_variable() && t.var_name() == var) {
        cols.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          StrCat("order-by variable ", var, " is not a head variable"));
    }
  }

  BRAID_ASSIGN_OR_RETURN(CmsAnswer answer, Query(query));
  if (!answer.lazy) {
    // When the answer lives in the cache (exact hit, or just cached by
    // Query), keep the sorted copy as a co-existing alternative
    // representation of that element and reuse it next time.
    CacheElementPtr element =
        cache_.model().ByCanonicalKey(query.CanonicalKey());
    if (element != nullptr && element->is_materialized()) {
      auto rep = element->sorted(cols);
      const bool reused = rep != nullptr;
      if (!reused) rep = element->EnsureSorted(cols);
      if (rep != nullptr) {
        if (!reused) {
          metrics_.local_ms += rep->NumTuples() * config_.local_per_tuple_ms;
        }
        return *rep;
      }
    }
  }
  rel::Relation input = answer.relation != nullptr
                            ? *answer.relation
                            : stream::Drain(*answer.stream, query.name);
  metrics_.local_ms += input.NumTuples() * config_.local_per_tuple_ms;
  return rel::Sort(input, cols);
}

Result<rel::Relation> Cms::QueryUnion(
    const std::vector<CaqlQuery>& branches, bool distinct) {
  if (branches.empty()) {
    return Status::InvalidArgument("union of zero branches");
  }
  rel::Relation result;
  bool first = true;
  for (const CaqlQuery& branch : branches) {
    BRAID_ASSIGN_OR_RETURN(CmsAnswer answer, Query(branch));
    rel::Relation part = answer.relation != nullptr
                             ? *answer.relation
                             : stream::Drain(*answer.stream, branch.name);
    if (first) {
      result = std::move(part);
      first = false;
      continue;
    }
    if (part.schema().size() != result.schema().size()) {
      return Status::InvalidArgument(
          StrCat("union branch ", branch.name, " has arity ",
                 part.schema().size(), ", expected ",
                 result.schema().size()));
    }
    for (rel::Tuple& t : part.mutable_tuples()) {
      result.AppendUnchecked(std::move(t));
    }
  }
  if (distinct) {
    rel::Relation deduped = exec::Distinct(exec_context(), result);
    deduped.set_name(result.name());
    return deduped;
  }
  return result;
}

Result<rel::Relation> Cms::TransitiveClosure(const std::string& edge_predicate) {
  const std::string closure_pred = StrCat("closure$", edge_predicate);
  CaqlQuery closure_def;
  closure_def.name = closure_pred;
  closure_def.head_args = {Term::Var("X"), Term::Var("Y")};
  closure_def.body = {logic::Atom(closure_pred, {Term::Var("X"),
                                                 Term::Var("Y")})};
  if (config_.enable_caching) {
    CacheElementPtr cached =
        cache_.model().ByCanonicalKey(closure_def.CanonicalKey());
    if (cached != nullptr && cached->is_materialized()) {
      cache_.Touch(cached->id());
      return *cached->extension();
    }
  }

  // Fetch the edge relation (through the normal query path so a cached
  // copy is reused) and run the fixed-point operator locally.
  CaqlQuery edges;
  edges.name = StrCat(edge_predicate, "_edges");
  edges.head_args = {Term::Var("X"), Term::Var("Y")};
  edges.body = {logic::Atom(edge_predicate, {Term::Var("X"), Term::Var("Y")})};
  BRAID_ASSIGN_OR_RETURN(CmsAnswer answer, Query(edges));
  rel::Relation edge_rel = answer.relation != nullptr
                               ? *answer.relation
                               : stream::Drain(*answer.stream, edges.name);
  LocalWork work;
  rel::Relation closure =
      QueryProcessor::TransitiveClosure(edge_rel, 0, 1, &work);
  metrics_.local_ms += work.tuples_processed * config_.local_per_tuple_ms;
  metrics_.response_ms += work.tuples_processed * config_.local_per_tuple_ms;

  if (config_.enable_caching && !config_.single_relation_only) {
    rel::Relation copy = closure;
    copy.set_name(closure_pred);
    auto element = std::make_shared<CacheElement>(
        cache_.model().NextId(), closure_def,
        std::make_shared<rel::Relation>(std::move(copy)));
    cache_.Insert(std::move(element));
  }
  return closure;
}

}  // namespace braid::cms
