#include "cms/cms.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "exec/parallel_ops.h"
#include "obs/metrics.h"

namespace braid::cms {

namespace {

using caql::CaqlQuery;
using logic::Term;

/// The all-variable generalization of a view instance: the view's own
/// definition (every consumer constant replaced by its variable).
CaqlQuery GeneralizedForm(const advice::ViewSpec& view) {
  return view.AsCaql();
}

/// Worker-thread count for the execution engine's pool, or nullptr for a
/// serial CMS. The calling thread always joins morsel loops, so the
/// default saturates the machine at hardware_concurrency total lanes.
std::unique_ptr<exec::ThreadPool> MakePool(const CmsConfig& config) {
  if (!config.enable_parallel) return nullptr;
  size_t workers = config.num_threads;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 1 ? hw - 1 : 1;
  }
  return std::make_unique<exec::ThreadPool>(workers);
}

/// Order-insensitive canonical form for the whole-query duplicate check:
/// name, SETOF flag, head order, and body order are normalized away, so a
/// stage whose content is the query's own pre-projection result compares
/// equal however the plan ordered its atoms. Stage views reuse the query's
/// variable names, so sorting on the printed form aligns both sides.
std::string NormalizedStageKey(CaqlQuery q) {
  q.name = "$i";
  q.distinct = false;
  std::sort(q.head_args.begin(), q.head_args.end(),
            [](const Term& a, const Term& b) {
              return a.var_name() < b.var_name();
            });
  std::sort(q.body.begin(), q.body.end(),
            [](const logic::Atom& a, const logic::Atom& b) {
              return a.ToString() < b.ToString();
            });
  return q.CanonicalKey();
}

/// Runs the execution monitor's DAG-stage offers through the cache
/// manager's cost-based admission gate (DESIGN.md §12). One collector per
/// eager query; offers arrive on the query's calling thread, so the only
/// concurrency is with other sessions' queries — which the striped cache
/// and the gate's atomics already handle.
class IntermediateCollector : public IntermediateSink {
 public:
  IntermediateCollector(CacheManager* cache, CmsSession* session,
                        obs::Tracer* tracer, obs::SpanId parent,
                        std::string view_id, std::string whole_query_key,
                        double local_per_tuple_ms)
      : cache_(cache),
        session_(session),
        tracer_(tracer),
        parent_(parent),
        view_id_(std::move(view_id)),
        whole_query_key_(std::move(whole_query_key)),
        local_per_tuple_ms_(local_per_tuple_ms) {}

  void Offer(const StageOffer& offer,
             const rel::Relation& relation) override {
    // A stage that is just the whole query before head projection (every
    // head variable kept, full body covered) duplicates the result the
    // facade caches anyway; skip it.
    if (!whole_query_key_.empty() &&
        NormalizedStageKey(offer.view) == whole_query_key_) {
      return;
    }
    // A structurally identical intermediate may already be installed — by
    // an earlier stage of this plan, an earlier query, or a concurrent
    // session (stage views share the reserved name, so equal structure
    // means equal canonical key). Re-admitting would only churn the slice.
    const std::string key = offer.view.CanonicalKey();
    if (cache_->model().ByCanonicalKey(key) != nullptr) return;

    // Reuse prediction: the advisor models the producing view's own
    // recurrence; a stage of a soon-recurring view is at least as likely
    // to be wanted again. Cross-query sharing it cannot see defaults to
    // the gate's coin flip.
    std::optional<size_t> predicted;
    if (session_ != nullptr && !view_id_.empty()) {
      predicted = session_->PredictedDistance(view_id_);
    }
    const size_t bytes = relation.ByteSize() + 128;  // element overhead
    const IntermediateVerdict verdict = cache_->JudgeIntermediate(
        bytes, relation.NumTuples(), offer.recompute_ms, predicted,
        local_per_tuple_ms_);

    obs::SpanScope span(tracer_, "admission", parent_);
    span.Annotate("stage", offer.label);
    span.Annotate("benefit_ms", StrCat(verdict.benefit_ms));
    span.Annotate("cost_ms", StrCat(verdict.cost_ms));
    span.Annotate("verdict", verdict.reason);
    if (!verdict.admit) return;

    auto element = std::make_shared<CacheElement>(
        cache_->model().NextId(), offer.view,
        std::make_shared<rel::Relation>(relation));
    element->set_origin_view(view_id_);
    element->set_derived(true);
    element->stats().cost_to_recompute_ms.store(offer.recompute_ms,
                                                std::memory_order_relaxed);
    span.Annotate("element", element->id());
    cache_->InsertIntermediate(std::move(element));
  }

 private:
  CacheManager* cache_;
  CmsSession* session_;
  obs::Tracer* tracer_;
  obs::SpanId parent_;
  std::string view_id_;
  std::string whole_query_key_;
  double local_per_tuple_ms_;
};

}  // namespace

const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kExact:
      return "exact";
    case CacheOutcome::kFullLocal:
      return "full-local";
    case CacheOutcome::kLazy:
      return "lazy";
    case CacheOutcome::kPartial:
      return "partial";
    case CacheOutcome::kRemote:
      return "remote";
  }
  return "?";
}

Cms::Cms(dbms::RemoteDbms* remote, CmsConfig config)
    : remote_(remote),
      config_(config),
      cache_(config.cache_budget_bytes, config.replacement_horizon,
             config.intermediate_budget_fraction),
      rdi_(remote),
      planner_(&cache_.model(), remote,
               PlannerConfig{config.enable_subsumption &&
                                 config.enable_caching,
                             config.enable_catalog,
                             config.max_subsumption_mappings}),
      pool_(MakePool(config)),
      monitor_(&cache_, &rdi_, config.local_per_tuple_ms,
               config.enable_parallel,
               exec::ExecContext{pool_.get(), config.parallel_threshold}),
      load_controller_(std::make_unique<LoadController>(
          LoadControlPolicy{config.enable_load_control,
                            config.admission_queue_bound,
                            config.shed_queue_depth,
                            config.foreground_slo_ms},
          // Invoked only from query paths, which run strictly between
          // scheduler construction and scheduler teardown. Counts both
          // halves of the foreground backlog: tasks still queued behind a
          // running query in their session, and tasks the scheduler has
          // already dispatched into the pool's session queue (where the
          // backlog sits when many sessions each have one query waiting).
          [this] { return QueuedQueries(); })),
      prefetcher_(std::make_unique<Prefetcher>(
          pool_.get(), &rdi_, config.local_per_tuple_ms,
          config.prefetch_max_inflight, &tracer_)),
      scheduler_(std::make_unique<SessionScheduler>(pool_.get())) {
  cache_.set_load_controller(load_controller_.get());
  {
    MutexLock lock(&sessions_mu_);
    sessions_.push_back(std::make_unique<CmsSession>(/*id=*/0));
    default_session_ = sessions_.back().get();
  }
  // Replacement advice: the minimum predicted distance any open session's
  // tracker gives the element's origin view; when no tracker predicts,
  // the simplest advice form (the relevant-base-relation list) still
  // protects session-relevant elements at the horizon boundary. Called by
  // the cache manager with no cache lock held, from whichever session
  // thread triggers an eviction.
  cache_.set_replacement_advisor(
      [this](const CacheElement& e) -> std::optional<size_t> {
        if (!config_.enable_advice) return std::nullopt;
        MutexLock lock(&sessions_mu_);
        std::optional<size_t> best;
        for (const std::unique_ptr<CmsSession>& s : sessions_) {
          auto d = s->AdvisedDistance(e, config_.replacement_horizon);
          if (d.has_value() && (!best.has_value() || *d < *best)) best = d;
        }
        return best;
      });
}

CmsSession* Cms::OpenSession(advice::AdviceSet advice) {
  if (!config_.enable_advice) {
    advice = advice::AdviceSet{};  // The CMS functions without advice.
  }
  MutexLock lock(&sessions_mu_);
  sessions_.push_back(std::make_unique<CmsSession>(next_session_id_++));
  CmsSession* session = sessions_.back().get();
  session->InstallAdvice(std::move(advice));
  session->prefetch_rejects_version() = cache_.model().version();
  return session;
}

void Cms::CloseSession(CmsSession* session) {
  if (session == nullptr || session == default_session_) return;
  std::unique_ptr<CmsSession> owned;
  {
    // Unregister first: once out of the vector the replacement advisor no
    // longer consults it, and the drain below (which can trigger installs
    // → evictions → the advisor) cannot deadlock on sessions_mu_.
    MutexLock lock(&sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->get() == session) {
        owned = std::move(*it);
        sessions_.erase(it);
        break;
      }
    }
  }
  if (owned == nullptr) return;
  prefetcher_->CancelSession(owned->id());
  InstallCompletedPrefetches(*owned, prefetcher_->DrainSession(owned->id()));
}

void Cms::BeginSession(advice::AdviceSet advice) {
  // A session change invalidates the predictions behind the session's
  // in-flight prefetches: cancel what has not started, wait out what has,
  // and keep the non-cancelled completions (the cache is cross-session).
  prefetcher_->CancelSession(default_session_->id());
  InstallCompletedPrefetches(
      *default_session_, prefetcher_->DrainSession(default_session_->id()));
  default_session_->prefetch_rejects().clear();
  default_session_->prefetch_rejects_version() = cache_.model().version();
  if (!config_.enable_advice) {
    advice = advice::AdviceSet{};  // The CMS functions without advice.
  }
  default_session_->InstallAdvice(std::move(advice));
}

void Cms::DrainPrefetches() {
  InstallCompletedPrefetches(*default_session_, prefetcher_->Drain());
}

void Cms::DrainSessions() { scheduler_->Drain(); }

void Cms::InstallCompletedPrefetches(
    CmsSession& session, std::vector<Prefetcher::Completed> done) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  for (Prefetcher::Completed& c : done) {
    if (!c.outcome.status.ok()) {
      reg.counter(c.cancelled ? "prefetch.cancelled" : "prefetch.errors")
          .Increment();
      continue;
    }
    // A foreground query may have cached the same definition while the
    // prefetch was in flight (it lost the race); the fetch was wasted
    // but harmless.
    if (cache_.model().ByCanonicalKey(c.job.canonical_key) != nullptr ||
        CacheResult(session, c.job.query, std::move(c.outcome.result),
                    c.job.view_id).empty()) {
      reg.counter("prefetch.wasted").Increment();
      continue;
    }
    session.metrics().prefetch_ms += c.outcome.modeled_ms;
    ++session.metrics().prefetches;
  }
}

bool Cms::CachingPolicyAdmits(const CaqlQuery& definition) const {
  if (!config_.enable_caching) return false;
  if (!config_.single_relation_only) return true;
  // CERI86-style policy: only unrestricted single base-relation extensions.
  if (definition.body.size() != 1) return false;
  const logic::Atom& atom = definition.body[0];
  if (atom.IsComparison()) return false;
  std::vector<std::string> vars = atom.Variables();
  return vars.size() == atom.arity() &&
         definition.head_args.size() == atom.arity();
}

std::string Cms::CacheResult(CmsSession& session, const CaqlQuery& definition,
                             rel::Relation result,
                             const std::string& origin_view) {
  // Result caching is cross-session ("eliminates the cost of recomputing
  // repeated CAQL queries", §5.3): admission is unconditional within the
  // policy; a path expression predicting no recurrence lowers the
  // element's replacement priority instead of blocking admission.
  if (!CachingPolicyAdmits(definition)) return "";
  auto element = std::make_shared<CacheElement>(
      cache_.model().NextId(), definition,
      std::make_shared<rel::Relation>(std::move(result)));
  element->set_origin_view(origin_view);

  // Attribute indexing from consumer annotations (paper §4.2.1): index the
  // extension columns of consumer-annotated head variables. The hints come
  // from the installing session's advice (for a harvested cross-session
  // prefetch that may miss the owner's hints — indexes are then built
  // lazily on first advised use instead).
  if (config_.enable_indexing && config_.enable_advice &&
      !origin_view.empty()) {
    for (const std::string& var : session.IndexHints(origin_view)) {
      for (size_t i = 0; i < definition.head_args.size(); ++i) {
        const Term& t = definition.head_args[i];
        if (t.is_variable() && t.var_name() == var) {
          element->EnsureIndex(i);
        }
      }
    }
  }

  const std::string id = element->id();
  return cache_.Insert(std::move(element)) ? id : "";
}

Result<Cms::EagerExec> Cms::ExecuteEager(CmsSession& session,
                                         const CaqlQuery& query,
                                         obs::SpanId parent) {
  obs::Tracer* tracer = parent != 0 ? &tracer_ : nullptr;
  BRAID_ASSIGN_OR_RETURN(Plan plan,
                         planner_.PlanQuery(query, tracer, parent));
  BRAID_ASSIGN_OR_RETURN(ExecutionOutcome outcome,
                         monitor_.ExecutePlan(plan, tracer, parent));
  EagerExec exec;
  exec.result = std::move(outcome.result);
  exec.response_ms = outcome.response_ms;
  exec.fully_local = plan.fully_local;
  for (const PlanSource& s : plan.sources) {
    if (s.kind == PlanSource::Kind::kElement) {
      exec.any_element_source = true;
      break;
    }
  }
  session.metrics().local_ms += outcome.local_ms;
  return exec;
}

double Cms::EstimateResultBytes(const CaqlQuery& query) const {
  auto sql = rdi_.Translate(query, query.HeadVariables());
  if (!sql.ok()) return 0;
  // ~40 bytes per tuple is representative of the small tuples in play.
  return remote_->EstimateCardinality(*sql) * 40.0;
}

Result<bool> Cms::MaybeGeneralize(CmsSession& session, const CaqlQuery& query,
                                  const std::string& view_id,
                                  double* response_ms, obs::SpanId parent) {
  if (!config_.enable_generalization || !config_.enable_advice ||
      !config_.enable_caching || view_id.empty()) {
    return false;
  }
  const advice::ViewSpec* view = session.FindView(view_id);
  if (view == nullptr) return false;
  // Only useful when the instance actually binds constants.
  bool has_constant = false;
  for (const Term& t : query.head_args) {
    if (t.is_constant()) has_constant = true;
  }
  if (!has_constant) return false;
  if (!session.ShouldGeneralize(view_id, query)) return false;

  const CaqlQuery general = GeneralizedForm(*view);
  // A background prefetch may already be computing exactly this general
  // form: wait for it rather than duplicating its remote fetches, then
  // install its result so the admission probe below sees it cached.
  if (prefetcher_->Join(general.CanonicalKey())) {
    ++session.metrics().prefetch_joins;
    InstallCompletedPrefetches(session, prefetcher_->Harvest());
  }
  // Already cached? Too large to pay off? Overloaded? (Generalization
  // has no fully-local skip: deriving the general form from cached data
  // is still worth materializing for the exact-match fast path.)
  const SpeculativeAdmission verdict = JudgeSpeculative(
      cache_.model(), planner_, general,
      [this, &general] { return EstimateResultBytes(general); },
      config_.cache_budget_bytes,
      /*skip_if_fully_local=*/false, /*plan_out=*/nullptr,
      load_controller_.get());
  if (verdict == SpeculativeAdmission::kShedOverload) {
    RecordShed(ShedKind::kGeneralization, parent);
    return false;
  }
  if (verdict != SpeculativeAdmission::kAdmit) return false;
  BRAID_ASSIGN_OR_RETURN(EagerExec exec, ExecuteEager(session, general));
  *response_ms += exec.response_ms;
  CacheResult(session, general, std::move(exec.result), view_id);
  ++session.metrics().generalizations;
  return true;
}

void Cms::MaybePrefetch(CmsSession& session, const std::string& current_view,
                        obs::SpanId parent) {
  if (!config_.enable_prefetch || !config_.enable_advice ||
      !config_.enable_caching) {
    return;
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();

  // Memoized rejections are judged against one cache-content version;
  // any insert or eviction since then can flip a verdict, so the memo is
  // dropped wholesale. (Advice changes clear it in BeginSession.)
  if (session.prefetch_rejects_version() != cache_.model().version()) {
    session.prefetch_rejects().clear();
    session.prefetch_rejects_version() = cache_.model().version();
  }

  // Soonest-predicted-first: with a bounded number of in-flight slots,
  // the views the tracker expects next deserve them.
  std::vector<std::pair<size_t, std::string>> ranked;
  for (const std::string& candidate : session.PrefetchCandidates()) {
    if (candidate == current_view) continue;
    ranked.emplace_back(
        session.PredictedDistance(candidate)
            .value_or(std::numeric_limits<size_t>::max()),
        candidate);
  }
  std::sort(ranked.begin(), ranked.end());

  for (const auto& [distance, candidate] : ranked) {
    const advice::ViewSpec* view = session.FindView(candidate);
    if (view == nullptr) continue;
    const CaqlQuery general = GeneralizedForm(*view);
    const std::string key = general.CanonicalKey();
    if (prefetcher_->InFlight(key)) continue;  // already being fetched
    if (session.prefetch_rejects().count(key) > 0) {
      reg.counter("prefetch.memo_hits").Increment();
      continue;
    }

    Plan plan;
    const SpeculativeAdmission verdict = JudgeSpeculative(
        cache_.model(), planner_, general,
        [this, &general] { return EstimateResultBytes(general); },
        config_.cache_budget_bytes, /*skip_if_fully_local=*/true, &plan,
        load_controller_.get());
    if (verdict == SpeculativeAdmission::kShedOverload) {
      // Overload applies to the whole pass, not this candidate: count the
      // shed once and stop (not memoized — the verdict is transient and
      // flips back as soon as the queue drains).
      RecordShed(ShedKind::kPrefetch, parent);
      return;
    }
    if (verdict == SpeculativeAdmission::kAlreadyCached) continue;
    if (verdict != SpeculativeAdmission::kAdmit) {
      // Stable for the current cache contents + advice — memoize so the
      // next query's admission pass skips the size estimate and planning.
      session.prefetch_rejects().insert(key);
      reg.counter("prefetch.rejected").Increment();
      continue;
    }

    // Background execution requires an all-remote plan: a plan that reads
    // cache elements would pin them from a task that nothing serializes
    // against the session's own query flow, for little gain (there is no
    // remote latency to hide in the cached part anyway).
    bool all_remote = true;
    for (const PlanSource& s : plan.sources) {
      if (s.kind != PlanSource::Kind::kRemote) all_remote = false;
    }
    for (const PlanSource& s : plan.anti_sources) {
      if (s.kind != PlanSource::Kind::kRemote) all_remote = false;
    }
    if (config_.prefetch_async && all_remote) {
      PrefetchJob job;
      job.query = general;
      job.view_id = candidate;
      job.canonical_key = key;
      job.session_id = session.id();
      job.plan = std::move(plan);
      prefetcher_->Launch(std::move(job));  // capacity refusal: retry later
      continue;
    }

    // Foreground fallback (async disabled, or the plan touches cache
    // elements). Cost is still charged to prefetch_ms, not any response.
    auto exec = ExecuteEager(session, general);
    if (!exec.ok()) continue;
    session.metrics().prefetch_ms += exec->response_ms;
    CacheResult(session, general, std::move(exec->result), candidate);
    ++session.metrics().prefetches;
  }
}

bool Cms::TryAnswerExact(CmsSession& session, const CaqlQuery& query,
                         obs::SpanId parent, CmsAnswer* answer) {
  obs::SpanScope probe(&tracer_, "exact_probe", parent);
  CacheElementPtr exact = cache_.model().ByCanonicalKey(query.CanonicalKey());
  if (exact == nullptr || !exact->is_materialized()) return false;
  cache_.Touch(exact->id());
  ++session.metrics().exact_hits;
  answer->relation = exact->extension();
  answer->stream = std::make_unique<stream::ScanStream>(answer->relation);
  answer->outcome = CacheOutcome::kExact;
  answer->response_ms =
      exact->extension()->NumTuples() * config_.local_per_tuple_ms;
  probe.SetModeledMs(answer->response_ms);
  probe.Annotate("hit", exact->id());
  session.metrics().response_ms += answer->response_ms;
  return true;
}

Result<CmsAnswer> Cms::Query(const CaqlQuery& query) {
  return Query(*default_session_, query);
}

std::future<Result<CmsAnswer>> Cms::QueryAsync(CmsSession& session,
                                               const caql::CaqlQuery& query) {
  return QueryAsync(session, query, /*done=*/nullptr);
}

std::future<Result<CmsAnswer>> Cms::QueryAsync(CmsSession& session,
                                               const caql::CaqlQuery& query,
                                               QueryCallback done) {
  auto promise = std::make_shared<std::promise<Result<CmsAnswer>>>();
  std::future<Result<CmsAnswer>> future = promise->get_future();
  // Admission control (DESIGN.md §13): beyond the queue bound, added
  // queueing only adds latency, never goodput — refuse cleanly instead.
  // Checked before enqueueing, so a refused query consumes nothing.
  if (!load_controller_->AdmitQuery()) {
    Result<CmsAnswer> refused{Status::Overloaded(
        StrCat("session scheduler queue at ", load_controller_->QueueDepth(),
               " (bound ", load_controller_->policy().admission_queue_bound,
               "); retry after backing off"))};
    if (done) done(refused);
    promise->set_value(std::move(refused));
    return future;
  }
  const auto enqueued = std::chrono::steady_clock::now();
  scheduler_->Enqueue(
      session.id(),
      [this, &session, query, promise, done = std::move(done), enqueued] {
        Result<CmsAnswer> result = Query(session, query);
        // Foreground latency is enqueue-to-completion: queueing delay is
        // precisely the overload signal the controller watches.
        load_controller_->OnForegroundLatency(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - enqueued)
                .count());
        if (done) done(result);
        promise->set_value(std::move(result));
      });
  return future;
}

void Cms::RecordShed(ShedKind kind, obs::SpanId parent) {
  load_controller_->CountShed(kind);
  obs::SpanScope span(&tracer_, "shed", parent);
  span.Annotate("kind", ShedKindName(kind));
  span.Annotate("queue_depth", StrCat(load_controller_->QueueDepth()));
}

Result<CmsAnswer> Cms::Query(CmsSession& session, const CaqlQuery& query) {
  BRAID_RETURN_IF_ERROR(query.Validate());
  CmsMetrics& metrics = session.metrics();
  // Background prefetches that finished since this session's last query
  // are installed here; the striped cache makes the install safe alongside
  // other sessions' concurrent lookups.
  InstallCompletedPrefetches(session, prefetcher_->Harvest());
  cache_.Tick();
  ++metrics.ie_queries;
  // Every query records a span tree rooted here; children are added by
  // the planner (plan/subsumption) and the execution monitor
  // (prep/fetch/assembly), the latter possibly from pool threads.
  obs::SpanScope root(&tracer_, "query");
  root.Annotate("name", query.name);
  const std::string view_id = config_.enable_advice ? query.name : "";
  {
    obs::SpanScope advice_span(&tracer_, "advice", root.id());
    session.OnQuery(view_id);
  }

  CmsAnswer answer;
  double response_ms = 0;

  // Exact-match fast path (result caching).
  if (config_.enable_caching &&
      TryAnswerExact(session, query, root.id(), &answer)) {
    root.SetModeledMs(answer.response_ms);
    root.Annotate("outcome", CacheOutcomeName(answer.outcome));
    root.End();
    MaybePrefetch(session, view_id, root.id());
    return answer;
  }

  // A background prefetch may be computing this very answer right now:
  // join it instead of issuing a duplicate remote fetch. The exact
  // canonical key catches the general form asked for directly; the view
  // join catches a constant-bound instance whose view's generalization
  // is in flight (answered below via subsumption once installed).
  if (config_.enable_caching && config_.enable_prefetch &&
      (prefetcher_->Join(query.CanonicalKey()) ||
       (!view_id.empty() && prefetcher_->JoinView(view_id)))) {
    ++metrics.prefetch_joins;
    InstallCompletedPrefetches(session, prefetcher_->Harvest());
    if (TryAnswerExact(session, query, root.id(), &answer)) {
      root.SetModeledMs(answer.response_ms);
      root.Annotate("outcome", CacheOutcomeName(answer.outcome));
      root.Annotate("joined_prefetch", "yes");
      root.End();
      MaybePrefetch(session, view_id, root.id());
      return answer;
    }
  }

  // Step 1: possibly evaluate a more general query first.
  bool generalized = false;
  {
    obs::SpanScope gen(&tracer_, "generalize", root.id());
    BRAID_ASSIGN_OR_RETURN(
        generalized,
        MaybeGeneralize(session, query, view_id, &response_ms, gen.id()));
    gen.Annotate("generalized", generalized ? "yes" : "no");
    if (generalized) gen.SetModeledMs(response_ms);
  }
  (void)generalized;

  // Steps 2-3: plan.
  BRAID_ASSIGN_OR_RETURN(Plan plan,
                         planner_.PlanQuery(query, &tracer_, root.id()));

  // Plan sources served by derived intermediates are subsumption hits on
  // cached stage results — the payoff the admission gate predicted.
  size_t derived_sources = 0;
  for (const PlanSource& s : plan.sources) {
    if (s.kind == PlanSource::Kind::kElement && s.element != nullptr &&
        s.element->is_derived()) {
      ++derived_sources;
    }
  }
  if (derived_sources > 0) {
    obs::MetricsRegistry::Global().counter("intermediate.hits")
        .Increment(derived_sources);
    root.Annotate("intermediate_sources", StrCat(derived_sources));
  }

  // Lazy evaluation: only when every needed datum is cached (§5.1) and
  // advice marks the view all-producer (§5.3.3 guideline).
  if (plan.fully_local && config_.enable_lazy && config_.enable_advice &&
      session.LazyHint(view_id)) {
    auto stream = monitor_.BuildLazyStream(plan);
    if (stream.ok()) {
      ++metrics.lazy_answers;
      answer.lazy = true;
      answer.stream = std::move(*stream);
      answer.outcome = CacheOutcome::kLazy;
      answer.response_ms = response_ms;  // setup only; tuples are on demand
      metrics.response_ms += answer.response_ms;
      root.SetModeledMs(response_ms);
      root.Annotate("outcome", CacheOutcomeName(answer.outcome));
      root.End();
      MaybePrefetch(session, view_id, root.id());
      return answer;
    }
  }

  // Eager execution; the collector offers every DAG stage to the
  // admission gate (only for the full query path — speculative work like
  // generalization and prefetch already caches whole views).
  std::unique_ptr<IntermediateCollector> collector;
  if (config_.enable_caching && config_.enable_intermediates &&
      !config_.single_relation_only) {
    // SETOF queries keep their bag-form stages (more informative than the
    // cached SETOF result); heads with constants or repeated variables
    // can never equal a stage's all-distinct-variable head.
    bool plain_head = !query.distinct;
    for (const Term& t : query.head_args) {
      plain_head = plain_head && t.is_variable();
    }
    collector = std::make_unique<IntermediateCollector>(
        &cache_, &session, &tracer_, root.id(), view_id,
        plain_head ? NormalizedStageKey(query) : std::string(),
        config_.local_per_tuple_ms);
  }
  BRAID_ASSIGN_OR_RETURN(ExecutionOutcome outcome,
                         monitor_.ExecutePlan(plan, &tracer_, root.id(),
                                              collector.get()));
  response_ms += outcome.response_ms;
  metrics.local_ms += outcome.local_ms;

  bool any_element = false;
  for (const PlanSource& s : plan.sources) {
    if (s.kind == PlanSource::Kind::kElement) any_element = true;
  }
  if (plan.fully_local) {
    ++metrics.full_local_hits;
    answer.outcome = CacheOutcome::kFullLocal;
  } else if (any_element) {
    ++metrics.partial_hits;
    answer.outcome = CacheOutcome::kPartial;
  } else {
    ++metrics.remote_only;
    answer.outcome = CacheOutcome::kRemote;
  }

  // Result caching (repeats then take the exact-match fast path).
  {
    rel::Relation copy = outcome.result;
    CacheResult(session, query, std::move(copy), view_id);
  }

  answer.relation = std::make_shared<rel::Relation>(std::move(outcome.result));
  answer.stream = std::make_unique<stream::ScanStream>(answer.relation);
  answer.response_ms = response_ms;
  metrics.response_ms += response_ms;
  root.SetModeledMs(response_ms);
  root.Annotate("outcome", CacheOutcomeName(answer.outcome));
  root.End();
  MaybePrefetch(session, view_id, root.id());
  return answer;
}

Result<rel::Relation> Cms::Aggregate(const CaqlQuery& query,
                                     const std::vector<std::string>& group_by,
                                     rel::AggFn fn,
                                     const std::string& agg_var) {
  BRAID_ASSIGN_OR_RETURN(CmsAnswer answer, Query(query));
  rel::Relation input =
      answer.relation != nullptr
          ? *answer.relation
          : stream::Drain(*answer.stream, query.name);
  std::vector<size_t> group_cols;
  for (const std::string& g : group_by) {
    auto col = input.schema().ColumnIndex(g);
    if (!col.has_value()) {
      return Status::InvalidArgument(StrCat("group-by variable ", g,
                                            " not in query head"));
    }
    group_cols.push_back(*col);
  }
  size_t agg_col = 0;
  if (fn != rel::AggFn::kCount) {
    auto col = input.schema().ColumnIndex(agg_var);
    if (!col.has_value()) {
      return Status::InvalidArgument(StrCat("aggregate variable ", agg_var,
                                            " not in query head"));
    }
    agg_col = *col;
  }
  return exec::Aggregate(exec_context(), input, group_cols,
                         {rel::AggSpec{fn, agg_col, agg_var.empty()
                                                        ? std::string("agg")
                                                        : agg_var}});
}

Result<rel::Relation> Cms::QuerySorted(
    const CaqlQuery& query, const std::vector<std::string>& order_by) {
  // Column positions of the ordering variables within the head.
  std::vector<size_t> cols;
  for (const std::string& var : order_by) {
    bool found = false;
    for (size_t i = 0; i < query.head_args.size(); ++i) {
      const Term& t = query.head_args[i];
      if (t.is_variable() && t.var_name() == var) {
        cols.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument(
          StrCat("order-by variable ", var, " is not a head variable"));
    }
  }

  BRAID_ASSIGN_OR_RETURN(CmsAnswer answer, Query(query));
  if (!answer.lazy) {
    // When the answer lives in the cache (exact hit, or just cached by
    // Query), keep the sorted copy as a co-existing alternative
    // representation of that element and reuse it next time.
    CacheElementPtr element =
        cache_.model().ByCanonicalKey(query.CanonicalKey());
    if (element != nullptr && element->is_materialized()) {
      auto rep = element->sorted(cols);
      const bool reused = rep != nullptr;
      if (!reused) rep = element->EnsureSorted(cols);
      if (rep != nullptr) {
        if (!reused) {
          metrics().local_ms += rep->NumTuples() * config_.local_per_tuple_ms;
        }
        return *rep;
      }
    }
  }
  rel::Relation input = answer.relation != nullptr
                            ? *answer.relation
                            : stream::Drain(*answer.stream, query.name);
  metrics().local_ms += input.NumTuples() * config_.local_per_tuple_ms;
  return rel::Sort(input, cols);
}

Result<rel::Relation> Cms::QueryUnion(
    const std::vector<CaqlQuery>& branches, bool distinct) {
  if (branches.empty()) {
    return Status::InvalidArgument("union of zero branches");
  }
  rel::Relation result;
  bool first = true;
  for (const CaqlQuery& branch : branches) {
    BRAID_ASSIGN_OR_RETURN(CmsAnswer answer, Query(branch));
    rel::Relation part = answer.relation != nullptr
                             ? *answer.relation
                             : stream::Drain(*answer.stream, branch.name);
    if (first) {
      result = std::move(part);
      first = false;
      continue;
    }
    if (part.schema().size() != result.schema().size()) {
      return Status::InvalidArgument(
          StrCat("union branch ", branch.name, " has arity ",
                 part.schema().size(), ", expected ",
                 result.schema().size()));
    }
    for (rel::Tuple& t : part.mutable_tuples()) {
      result.AppendUnchecked(std::move(t));
    }
  }
  if (distinct) {
    rel::Relation deduped = exec::Distinct(exec_context(), result);
    deduped.set_name(result.name());
    return deduped;
  }
  return result;
}

Result<rel::Relation> Cms::TransitiveClosure(const std::string& edge_predicate) {
  const std::string closure_pred = StrCat("closure$", edge_predicate);
  CaqlQuery closure_def;
  closure_def.name = closure_pred;
  closure_def.head_args = {Term::Var("X"), Term::Var("Y")};
  closure_def.body = {logic::Atom(closure_pred, {Term::Var("X"),
                                                 Term::Var("Y")})};
  if (config_.enable_caching) {
    CacheElementPtr cached =
        cache_.model().ByCanonicalKey(closure_def.CanonicalKey());
    if (cached != nullptr && cached->is_materialized()) {
      cache_.Touch(cached->id());
      return *cached->extension();
    }
  }

  // Fetch the edge relation (through the normal query path so a cached
  // copy is reused) and run the fixed-point operator locally.
  CaqlQuery edges;
  edges.name = StrCat(edge_predicate, "_edges");
  edges.head_args = {Term::Var("X"), Term::Var("Y")};
  edges.body = {logic::Atom(edge_predicate, {Term::Var("X"), Term::Var("Y")})};
  BRAID_ASSIGN_OR_RETURN(CmsAnswer answer, Query(edges));
  rel::Relation edge_rel = answer.relation != nullptr
                               ? *answer.relation
                               : stream::Drain(*answer.stream, edges.name);
  LocalWork work;
  rel::Relation closure =
      QueryProcessor::TransitiveClosure(edge_rel, 0, 1, &work);
  metrics().local_ms += work.tuples_processed * config_.local_per_tuple_ms;
  metrics().response_ms += work.tuples_processed * config_.local_per_tuple_ms;

  if (config_.enable_caching && !config_.single_relation_only) {
    rel::Relation copy = closure;
    copy.set_name(closure_pred);
    auto element = std::make_shared<CacheElement>(
        cache_.model().NextId(), closure_def,
        std::make_shared<rel::Relation>(std::move(copy)));
    cache_.Insert(std::move(element));
  }
  return closure;
}

}  // namespace braid::cms
