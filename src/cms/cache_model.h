#ifndef BRAID_CMS_CACHE_MODEL_H_
#define BRAID_CMS_CACHE_MODEL_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cms/cache_element.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace braid::cms {

/// The cache model: meta-information about what is in the cache (paper §3:
/// "the CMS controls the cache and the cache model (i.e., meta-information
/// about the cache)"). Conceptually a relation (E_id, E_def, ...); here a
/// registry with two access paths the subsumption step needs:
///  * by element id, and
///  * by predicate name — the "(predicate name, cache element)" index of
///    §5.3.2 step 1, so only elements mentioning a query's predicates are
///    considered for subsumption.
/// A third map keys materialized results by canonical definition for the
/// exact-match fast path.
class CacheModel {
 public:
  CacheModel() = default;

  /// Fresh element id ("E1", "E2", ...).
  std::string NextId();

  /// Registers an element under its id, predicate index, and canonical
  /// key. Replaces any same-id entry.
  void Register(CacheElementPtr element);

  /// Removes the element (no-op if absent).
  void Remove(const std::string& id);

  CacheElementPtr Find(const std::string& id) const;

  /// Elements whose definitions mention `predicate`.
  std::vector<CacheElementPtr> ByPredicate(const std::string& predicate) const;

  /// Element whose definition has this canonical key, or null.
  CacheElementPtr ByCanonicalKey(const std::string& key) const;

  const std::map<std::string, CacheElementPtr>& elements() const {
    BRAID_SINGLE_THREAD(sequence_);
    return elements_;
  }
  size_t size() const {
    BRAID_SINGLE_THREAD(sequence_);
    return elements_.size();
  }

  /// Monotonic content version: bumped by every Register and every
  /// effective Remove. Decisions derived from cache contents (e.g.
  /// memoized prefetch-admission rejections) carry the version they were
  /// judged against and detect staleness with one comparison.
  uint64_t version() const {
    BRAID_SINGLE_THREAD(sequence_);
    return version_;
  }

  /// Total bytes across all elements.
  size_t TotalBytes() const;

  /// True if some materialized element's definition mentions `predicate` —
  /// the signal the IE's shaper uses to prefer conjunct orders that hit
  /// cache-resident data.
  bool HasMaterializedFor(const std::string& predicate) const;

  /// The cache model *as a relation* — the paper's §5.3.2 presentation
  /// ("a relation of type (E_id_i, E_def_i, ....)"). Columns: e_id, e_def,
  /// form ('extension' or 'generator'), tuples, bytes, hits. This is what
  /// the IE reads when it "access[es] cache model information from the
  /// CMS" (§3).
  rel::Relation AsRelation() const;

  std::string ToString() const;

 private:
  /// Single-threaded by design (paper §3: the CMS owns the cache model;
  /// prefetch results install foreground-side). The checker makes that a
  /// verified contract — see DESIGN.md §"Concurrency contract". The
  /// ROADMAP-1 concurrent-CMS refactor replaces this capability with real
  /// locks; until then, cross-thread access aborts instead of racing.
  mutable SequenceChecker sequence_;
  std::map<std::string, CacheElementPtr> elements_ BRAID_GUARDED_BY(sequence_);
  std::map<std::string, std::set<std::string>> by_predicate_
      BRAID_GUARDED_BY(sequence_);
  std::map<std::string, std::string> by_canonical_key_
      BRAID_GUARDED_BY(sequence_);
  int next_id_ BRAID_GUARDED_BY(sequence_) = 1;
  uint64_t version_ BRAID_GUARDED_BY(sequence_) = 0;
};

}  // namespace braid::cms

#endif  // BRAID_CMS_CACHE_MODEL_H_
