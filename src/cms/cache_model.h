#ifndef BRAID_CMS_CACHE_MODEL_H_
#define BRAID_CMS_CACHE_MODEL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cms/cache_element.h"
#include "cms/catalog.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace braid::cms {

/// Immutable point-in-time copy of one stripe's indexes. Readers grab the
/// current snapshot under a brief stripe lock (rebuilding it first when the
/// stripe changed since the last build) and then run arbitrarily long
/// lookups — the subsumption search in particular — without holding any
/// lock, so reads never block installs and installs never block reads
/// beyond the pointer swap.
struct StripeSnapshot {
  uint64_t version = 0;
  std::map<std::string, CacheElementPtr> elements;  // id -> element
  std::map<std::string, std::vector<CacheElementPtr>> by_predicate;
  std::map<std::string, CacheElementPtr> by_canonical_key;
  /// Semantic-catalog posting index over this stripe's elements (DESIGN.md
  /// §11): signature-filtered subsumption candidate retrieval without
  /// scanning the stripe.
  std::shared_ptr<const CatalogIndex> catalog;
};

/// The cache model: meta-information about what is in the cache (paper §3:
/// "the CMS controls the cache and the cache model (i.e., meta-information
/// about the cache)"). Conceptually a relation (E_id, E_def, ...); here a
/// registry with two access paths the subsumption step needs:
///  * by element id, and
///  * by predicate name — the "(predicate name, cache element)" index of
///    §5.3.2 step 1, so only elements mentioning a query's predicates are
///    considered for subsumption.
/// A third map keys materialized results by canonical definition for the
/// exact-match fast path.
///
/// Concurrency (DESIGN.md §10 "Striped cache & session model"): storage is
/// striped by a hash of the canonical definition key; each stripe has its
/// own `braid::Mutex` and a lazily rebuilt immutable snapshot. Writers
/// (Register/Remove) lock exactly one stripe; readers copy a snapshot
/// pointer under the stripe lock and search lock-free. A separate leaf
/// mutex guards the id -> stripe directory (ids hash to nothing useful —
/// the canonical key determines the stripe). Lock order: a stripe mutex
/// may be held while taking `id_mu_`, never the reverse, and no operation
/// ever holds two stripe locks at once.
class CacheModel {
 public:
  static constexpr size_t kNumStripes = 8;

  CacheModel();

  /// Fresh element id ("E1", "E2", ...).
  std::string NextId();

  /// Registers an element under its id, predicate index, and canonical
  /// key. Replaces any same-id entry and any same-canonical-key entry
  /// (concurrent sessions may race to install the same definition under
  /// different ids; last install wins, the loser's element is dropped).
  void Register(CacheElementPtr element);

  /// Removes the element (no-op if absent). Returns the bytes it occupied
  /// at removal, 0 when another thread removed it first — so concurrent
  /// evictions never double-count freed space.
  size_t Remove(const std::string& id);

  CacheElementPtr Find(const std::string& id) const;

  /// Elements whose definitions mention `predicate` (snapshot read).
  std::vector<CacheElementPtr> ByPredicate(const std::string& predicate) const;

  /// Subsumption candidates for the described query, merged across every
  /// stripe's catalog index (snapshot reads; lock-free after the snapshot
  /// pointer copy). A superset of the elements ComputeSubsumptionAll would
  /// match, usually far smaller than the cache.
  std::vector<CacheElementPtr> SubsumptionCandidates(
      const QueryDescriptor& query, CatalogLookupStats* stats = nullptr) const;

  /// Verifies the catalog/stripe agreement invariant on every stripe:
  /// each cached element is posted and reachable through its own
  /// definition, and no posting points at an evicted id. Returns "" when
  /// consistent, else a description of the first violation (exercised by
  /// the differential harness after every insert/eviction wave).
  std::string CheckCatalogConsistency() const;

  /// Element whose definition has this canonical key, or null (snapshot
  /// read).
  CacheElementPtr ByCanonicalKey(const std::string& key) const;

  /// Point-in-time copy of the full id -> element map, merged from the
  /// per-stripe snapshots. (Pre-striping this returned a reference into
  /// the model; a copy is the only sound shape once installs are
  /// concurrent. Element pointers stay valid after eviction.)
  std::map<std::string, CacheElementPtr> elements() const;

  size_t size() const { return count_.load(std::memory_order_acquire); }

  /// Monotonic content version: bumped by every Register and every
  /// effective Remove. Decisions derived from cache contents (e.g.
  /// memoized prefetch-admission rejections) carry the version they were
  /// judged against and detect staleness with one comparison.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Total bytes across all elements, computed live: co-existing
  /// representations (indexes, sorted copies) built after install count
  /// against the budget too.
  size_t TotalBytes() const;

  /// True if some materialized element's definition mentions `predicate` —
  /// the signal the IE's shaper uses to prefer conjunct orders that hit
  /// cache-resident data.
  bool HasMaterializedFor(const std::string& predicate) const;

  /// The cache model *as a relation* — the paper's §5.3.2 presentation
  /// ("a relation of type (E_id_i, E_def_i, ....)"). Columns: e_id, e_def,
  /// form ('extension' or 'generator'), tuples, bytes, hits. This is what
  /// the IE reads when it "access[es] cache model information from the
  /// CMS" (§3).
  rel::Relation AsRelation() const;

  std::string ToString() const;

 private:
  struct Stripe {
    mutable Mutex mu;
    std::map<std::string, CacheElementPtr> elements BRAID_GUARDED_BY(mu);
    std::map<std::string, std::set<std::string>> by_predicate
        BRAID_GUARDED_BY(mu);
    std::map<std::string, std::string> by_canonical_key BRAID_GUARDED_BY(mu);
    /// Mutable side of the semantic catalog, maintained in the same
    /// critical sections as the maps above.
    CatalogShard catalog BRAID_GUARDED_BY(mu);
    uint64_t version BRAID_GUARDED_BY(mu) = 0;
    /// Cached immutable copy; null or stale (version mismatch) after a
    /// write, rebuilt by the next reader.
    mutable std::shared_ptr<const StripeSnapshot> snapshot
        BRAID_GUARDED_BY(mu);
  };

  /// Contention-instrumented stripe lock: an uncontended acquisition is
  /// one TryLock; a contended one counts on `cache.stripe_contention` and
  /// records the wait on `cache.lock_wait_ms`.
  class BRAID_SCOPED_CAPABILITY StripeLock {
   public:
    StripeLock(const CacheModel* model, const Stripe& s) BRAID_ACQUIRE(s.mu);
    ~StripeLock() BRAID_RELEASE();

    StripeLock(const StripeLock&) = delete;
    StripeLock& operator=(const StripeLock&) = delete;

   private:
    Mutex* mu_;
  };

  size_t StripeOf(const std::string& canonical_key) const;

  /// Removes `id` from stripe `s` (which must own it) and from the id
  /// directory; returns the bytes freed.
  // `id` is taken by value: callers may pass a reference into one of the
  // stripe maps this function erases from (e.g. Register passes the
  // by_canonical_key value of the element being displaced), and the id
  // must outlive those erases.
  size_t RemoveLocked(Stripe& s, std::string id) BRAID_REQUIRES(s.mu);

  /// Current (rebuilt-if-stale) snapshot of stripe `i`.
  std::shared_ptr<const StripeSnapshot> Snapshot(size_t i) const;

  std::array<Stripe, kNumStripes> stripes_;

  /// id -> stripe index directory. Leaf lock: may be taken while a stripe
  /// lock is held (Register/Remove update it inside the stripe's critical
  /// section), but no stripe lock is ever taken while holding it.
  mutable Mutex id_mu_;
  std::map<std::string, size_t> id_stripe_ BRAID_GUARDED_BY(id_mu_);

  std::atomic<int> next_id_{1};
  std::atomic<uint64_t> version_{0};
  std::atomic<size_t> count_{0};

  // Registry-owned instrument handles (process lifetime).
  obs::Counter* stripe_contention_;
  obs::Histogram* lock_wait_ms_;
};

}  // namespace braid::cms

#endif  // BRAID_CMS_CACHE_MODEL_H_
