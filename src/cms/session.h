#ifndef BRAID_CMS_SESSION_H_
#define BRAID_CMS_SESSION_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "advice/advice.h"
#include "cms/advice_manager.h"
#include "cms/cache_element.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace braid::cms {

/// Counters accumulated across a session.
struct CmsMetrics {
  size_t ie_queries = 0;
  size_t exact_hits = 0;
  size_t full_local_hits = 0;
  size_t lazy_answers = 0;
  size_t partial_hits = 0;
  size_t remote_only = 0;
  size_t prefetches = 0;
  size_t prefetch_joins = 0;  // foreground queries that joined an in-flight
                              // prefetch instead of re-fetching
  size_t generalizations = 0;
  double response_ms = 0;   // simulated time the IE waited
  double local_ms = 0;      // workstation compute
  double prefetch_ms = 0;   // remote time hidden behind the session
  std::string ToString() const;
};

/// Per-session CMS state: one IE connection's advice, path-tracker
/// position, metrics, and prefetch-admission memo. The shared components
/// (cache, planner, execution monitor, prefetcher) live in `Cms`; a
/// session is what makes N concurrent IE connections independent.
///
/// Threading contract, two tiers:
///  - The *query-serial* members (metrics, prefetch-rejects memo) are
///    touched only by the session's current query — the session scheduler
///    runs at most one query per session at a time, and a caller driving
///    the session synchronously must do so from one thread. Owners read
///    them at quiescence (between queries).
///  - The *advice* members are locked (`advice_mu_`): the cache's
///    replacement advisor walks every open session's advice from
///    whichever session thread happens to trigger an eviction, racing the
///    owning session's own OnQuery updates.
///
/// Lock order: `advice_mu_` is a leaf — nothing is acquired under it.
class CmsSession {
 public:
  /// A fresh session holds no advice (every advice-driven behaviour
  /// degrades to its default, paper §3) until InstallAdvice.
  explicit CmsSession(uint64_t id) : id_(id) {}

  CmsSession(const CmsSession&) = delete;
  CmsSession& operator=(const CmsSession&) = delete;

  uint64_t id() const { return id_; }

  // --- query-serial state ---

  CmsMetrics& metrics() { return metrics_; }
  const CmsMetrics& metrics() const { return metrics_; }
  void ResetMetrics() { metrics_ = CmsMetrics{}; }

  /// Memoized prefetch-admission rejections (too-large / fully-local /
  /// unplannable), keyed by canonical key and valid for one cache-content
  /// version; capacity skips are transient and are not memoized.
  std::unordered_set<std::string>& prefetch_rejects() {
    return prefetch_rejects_;
  }
  uint64_t& prefetch_rejects_version() { return prefetch_rejects_version_; }

  // --- advice (internally locked) ---

  /// Replaces the session's advice, resetting the tracker and memo.
  /// Quiescent-only: view-spec pointers handed out by FindView are
  /// invalidated, so no query of this session may be in flight.
  void InstallAdvice(advice::AdviceSet advice);

  void OnQuery(const std::string& view_id);
  std::set<std::string> PrefetchCandidates() const;
  std::vector<std::string> IndexHints(const std::string& view_id) const;
  bool LazyHint(const std::string& view_id) const;
  std::optional<size_t> PredictedDistance(const std::string& view_id) const;
  bool ShouldGeneralize(const std::string& view_id,
                        const caql::CaqlQuery& instance) const;

  /// View specs are immutable between InstallAdvice calls, so the pointer
  /// stays valid for the duration of the query that looked it up.
  const advice::ViewSpec* FindView(const std::string& id) const;

  /// This session's replacement advice for `element`: the tracker's
  /// predicted distance for the element's origin view, else — when the
  /// element reads a session-relevant base relation — protection at the
  /// horizon boundary. Called by the cache's advisor from any thread.
  std::optional<size_t> AdvisedDistance(const CacheElement& element,
                                        size_t horizon) const;

  /// Quiescent-only escape hatch for tests inspecting tracker internals.
  AdviceManager& advice_manager_unlocked() { return advice_; }

 private:
  const uint64_t id_;

  mutable Mutex advice_mu_;
  AdviceManager advice_ BRAID_GUARDED_BY(advice_mu_);

  // Query-serial (see class comment).
  CmsMetrics metrics_;
  std::unordered_set<std::string> prefetch_rejects_;
  uint64_t prefetch_rejects_version_ = 0;
};

}  // namespace braid::cms

#endif  // BRAID_CMS_SESSION_H_
