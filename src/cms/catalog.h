#ifndef BRAID_CMS_CATALOG_H_
#define BRAID_CMS_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "caql/caql_query.h"
#include "cms/cache_element.h"
#include "relational/predicate.h"

namespace braid::cms {

/// The semantic catalog: a signature index over cached view definitions so
/// subsumption candidate retrieval is sublinear in cache size. Subsumption
/// proper (the containment-mapping search of §5.3.2) stays in
/// subsumption.cc; the catalog's job is to reject elements that *cannot*
/// subsume a component of the query before the mapping search ever runs,
/// using only necessary conditions:
///
///  * predicate-set containment — every relation predicate of the element
///    must occur in the query (bitmask test, then exact multiset counts,
///    since the mapping is injective);
///  * constant agreement — a definition constant at position p of a
///    predicate-r atom can only map onto a query atom of r with exactly
///    that constant at p (one-way matching never maps definition constants
///    onto query variables);
///  * range satisfiability — a definition comparison "X op c" with X at
///    (r, p) must, after mapping, be implied by the query's comparisons;
///    so some query atom of r must carry at position p either a constant
///    d with "d op c" true or a variable Y with "Y op c" implied
///    (ComparisonImplied — the same test the mapping search applies, so
///    the filter can never reject a candidate the search would accept);
///  * exact-only confinement — definitions with evaluable functions,
///    negation, or no relation atoms are only usable by the identical
///    query, so they are reachable solely through their canonical key.
///
/// Every element is posted under exactly one anchor key — its most
/// selective necessary condition (a required constant when it has one,
/// else its first predicate, else its canonical key) — so a lookup touches
/// only the postings behind the query's own predicates and constants and
/// never enumerates the rest of the cache.
///
/// Concurrency: the mutable side (CatalogShard) lives inside a CacheModel
/// stripe and is maintained under that stripe's mutex, exactly like the
/// other per-stripe maps; readers get an immutable CatalogIndex rebuilt
/// into the StripeSnapshot, so lookups are lock-free and the stripe lock
/// order of DESIGN.md §10 is unchanged. See DESIGN.md §11.

/// A constant the definition requires of any query it can serve: `value`
/// at argument position `pos` of a `predicate` atom.
struct ConstantRequirement {
  std::string predicate;
  size_t pos = 0;
  rel::Value value;

  bool operator<(const ConstantRequirement& o) const {
    return std::tie(predicate, pos, value) < std::tie(o.predicate, o.pos,
                                                      o.value);
  }
  bool operator==(const ConstantRequirement& o) const {
    return predicate == o.predicate && pos == o.pos && value == o.value;
  }
};

/// A range constraint the definition places on whatever query term its
/// variable at (predicate, pos) maps onto: "term op bound" must hold.
struct RangeRequirement {
  std::string predicate;
  size_t pos = 0;
  rel::CompareOp op = rel::CompareOp::kEq;
  rel::Value bound;

  bool operator<(const RangeRequirement& o) const {
    return std::tie(predicate, pos, op, bound) <
           std::tie(o.predicate, o.pos, o.op, o.bound);
  }
};

/// Everything the catalog knows about one cached view definition. Computed
/// once at insert (pure function of the definition) and immutable after.
struct CatalogSignature {
  /// One bit per relation predicate (hash mod 64). A query whose mask
  /// lacks an element bit cannot contain that predicate.
  uint64_t predicate_mask = 0;
  /// Relation-atom count per predicate, sorted by name. The injective
  /// mapping needs at least as many query atoms of each.
  std::vector<std::pair<std::string, uint32_t>> predicate_counts;
  std::vector<ConstantRequirement> constants;  // sorted, deduplicated
  std::vector<RangeRequirement> ranges;        // sorted, deduplicated
  bool distinct = false;
  /// Definitions with evaluable functions, negation, or no relation atoms
  /// are usable only by the identical query (§5.3.2).
  bool exact_only = false;
  std::string canonical_key;

  std::string ToString() const;
};

CatalogSignature ComputeSignature(const caql::CaqlQuery& def);

/// The query-side digest a lookup matches signatures against. Computed
/// once per query, amortizing the per-candidate checks.
struct QueryDescriptor {
  uint64_t predicate_mask = 0;
  std::map<std::string, uint32_t> predicate_counts;
  /// (predicate, pos, value) for every constant in a relation atom.
  std::set<std::tuple<std::string, size_t, rel::Value>> constants;
  /// Terms occurring at each (predicate, pos), for range satisfiability.
  std::map<std::pair<std::string, size_t>, std::vector<logic::Term>> terms;
  std::vector<logic::Atom> comparisons;
  bool distinct = false;
  /// Queries with evaluable atoms confine subsumption to the identical
  /// definition, so only the canonical-key posting is probed.
  bool exact_only = false;
  std::string canonical_key;
};

QueryDescriptor DescribeQuery(const caql::CaqlQuery& query);

/// True when `sig`'s necessary conditions all hold against `q` — i.e. the
/// element may subsume a component of the query and is worth the mapping
/// search. Never false for a pair ComputeSubsumptionAll would match
/// (soundness; property-tested against it).
bool SignatureAdmits(const CatalogSignature& sig, const QueryDescriptor& q);

/// Lookup-side counters, for traces and benches.
struct CatalogLookupStats {
  size_t probed = 0;    // postings examined
  size_t admitted = 0;  // candidates surviving SignatureAdmits
};

/// Immutable posting index over one stripe's elements, rebuilt into the
/// StripeSnapshot whenever the stripe changes. Lookups are lock-free.
class CatalogIndex {
 public:
  /// Appends the elements that may subsume a component of the described
  /// query. Each element of the stripe is posted once, so the output has
  /// no duplicates within one index.
  void Candidates(const QueryDescriptor& q,
                  std::vector<CacheElementPtr>* out,
                  CatalogLookupStats* stats = nullptr) const;

  size_t NumEntries() const { return num_entries_; }

  /// The difftest invariant (DESIGN.md §11): every element of `elements`
  /// is posted exactly once and self-reachable (a lookup with its own
  /// definition returns it), and no posting dangles (points at an id
  /// absent from `elements`). Returns "" when consistent, else a
  /// description of the first violation.
  std::string CheckConsistency(
      const std::map<std::string, CacheElementPtr>& elements) const;

 private:
  friend class CatalogShard;
  struct Posted {
    CacheElementPtr element;
    std::shared_ptr<const CatalogSignature> signature;
  };
  std::map<std::string, std::vector<Posted>> postings_;  // anchor -> entries
  /// Posted ids whose element was missing at build time (maintenance bug;
  /// reported by CheckConsistency).
  std::vector<std::string> dangling_;
  size_t num_entries_ = 0;
};

/// Mutable per-stripe side of the catalog. Not internally synchronized:
/// the owning CacheModel stripe's mutex guards every call, matching the
/// other per-stripe maps.
class CatalogShard {
 public:
  /// Indexes `id` under the signature's anchor. `signature` is computed by
  /// the caller (outside the stripe lock; it is a pure function of the
  /// definition). Inserting an existing id replaces its entry.
  void Insert(const std::string& id,
              std::shared_ptr<const CatalogSignature> signature);

  /// Drops `id` (no-op if absent).
  void Remove(const std::string& id);

  size_t size() const { return entries_.size(); }

  /// Builds the immutable lookup index, resolving posted ids through
  /// `elements` (the stripe's element map, read under the same lock).
  std::shared_ptr<const CatalogIndex> Build(
      const std::map<std::string, CacheElementPtr>& elements) const;

 private:
  struct Entry {
    std::shared_ptr<const CatalogSignature> signature;
    std::string anchor;
  };
  std::map<std::string, Entry> entries_;                   // id -> entry
  std::map<std::string, std::set<std::string>> postings_;  // anchor -> ids
};

}  // namespace braid::cms

#endif  // BRAID_CMS_CATALOG_H_
