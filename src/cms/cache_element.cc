#include "cms/cache_element.h"

#include <sstream>

#include "relational/operators.h"

namespace braid::cms {

std::shared_ptr<const rel::HashIndex> CacheElement::index(size_t column) const {
  auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : it->second;
}

std::shared_ptr<const rel::HashIndex> CacheElement::EnsureIndex(size_t column) {
  auto it = indexes_.find(column);
  if (it != indexes_.end()) return it->second;
  if (extension_ == nullptr) return nullptr;
  auto index = std::make_shared<rel::HashIndex>(*extension_, column);
  indexes_.emplace(column, index);
  return index;
}

std::shared_ptr<const rel::Relation> CacheElement::EnsureSorted(
    const std::vector<size_t>& columns) {
  auto it = sorted_.find(columns);
  if (it != sorted_.end()) return it->second;
  if (extension_ == nullptr) return nullptr;
  auto rep =
      std::make_shared<rel::Relation>(rel::Sort(*extension_, columns));
  sorted_.emplace(columns, rep);
  return rep;
}

std::shared_ptr<const rel::Relation> CacheElement::sorted(
    const std::vector<size_t>& columns) const {
  auto it = sorted_.find(columns);
  return it == sorted_.end() ? nullptr : it->second;
}

size_t CacheElement::ByteSize() const {
  size_t total = 128;  // definition + bookkeeping
  if (extension_ != nullptr) total += extension_->ByteSize();
  for (const auto& [col, idx] : indexes_) total += idx->ByteSize();
  for (const auto& [cols, rep] : sorted_) total += rep->ByteSize();
  return total;
}

std::string CacheElement::ToString() const {
  std::ostringstream os;
  os << id_ << ": " << definition_.ToString() << " ["
     << (is_materialized()
             ? std::to_string(extension_->NumTuples()) + " tuples"
             : "generator")
     << ", " << ByteSize() << " bytes, hits=" << stats_.hits << "]";
  return os.str();
}

}  // namespace braid::cms
