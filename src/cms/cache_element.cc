#include "cms/cache_element.h"

#include <sstream>

#include "relational/operators.h"

namespace braid::cms {

std::shared_ptr<const rel::HashIndex> CacheElement::index(size_t column) const {
  MutexLock lock(&repr_mu_);
  auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : it->second;
}

std::shared_ptr<const rel::HashIndex> CacheElement::EnsureIndex(size_t column) {
  // The build runs under the lock: two sessions racing to index the same
  // column then share one index instead of building twice. Extensions are
  // small enough that holding the (per-element) lock across the build is
  // cheaper than a double-build.
  MutexLock lock(&repr_mu_);
  auto it = indexes_.find(column);
  if (it != indexes_.end()) return it->second;
  if (extension_ == nullptr) return nullptr;
  auto index = std::make_shared<rel::HashIndex>(*extension_, column);
  indexes_.emplace(column, index);
  return index;
}

std::shared_ptr<const rel::Relation> CacheElement::EnsureSorted(
    const std::vector<size_t>& columns) {
  MutexLock lock(&repr_mu_);
  auto it = sorted_.find(columns);
  if (it != sorted_.end()) return it->second;
  if (extension_ == nullptr) return nullptr;
  auto rep =
      std::make_shared<rel::Relation>(rel::Sort(*extension_, columns));
  sorted_.emplace(columns, rep);
  return rep;
}

std::shared_ptr<const rel::Relation> CacheElement::sorted(
    const std::vector<size_t>& columns) const {
  MutexLock lock(&repr_mu_);
  auto it = sorted_.find(columns);
  return it == sorted_.end() ? nullptr : it->second;
}

size_t CacheElement::NumSortedRepresentations() const {
  MutexLock lock(&repr_mu_);
  return sorted_.size();
}

size_t CacheElement::ByteSize() const {
  MutexLock lock(&repr_mu_);
  size_t total = 128;  // definition + bookkeeping
  if (extension_ != nullptr) total += extension_->ByteSize();
  for (const auto& [col, idx] : indexes_) total += idx->ByteSize();
  for (const auto& [cols, rep] : sorted_) total += rep->ByteSize();
  return total;
}

std::string CacheElement::ToString() const {
  std::ostringstream os;
  os << id_ << ": " << definition_.ToString() << " ["
     << (is_materialized()
             ? std::to_string(extension_->NumTuples()) + " tuples"
             : "generator")
     << ", " << ByteSize() << " bytes, hits="
     << stats_.hits.load(std::memory_order_relaxed) << "]";
  return os.str();
}

}  // namespace braid::cms
