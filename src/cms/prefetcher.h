#ifndef BRAID_CMS_PREFETCHER_H_
#define BRAID_CMS_PREFETCHER_H_

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "caql/caql_query.h"
#include "cms/planner.h"
#include "cms/remote_interface.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace braid::cms {

/// One admitted prefetch, self-contained so a pool task can execute it
/// without touching any foreground-owned state: the plan is computed at
/// admission time and must contain only remote sources (a plan that reads
/// cache elements runs on the foreground thread instead — the cache is
/// single-threaded by design).
struct PrefetchJob {
  caql::CaqlQuery query;      // the generalized form to execute
  std::string view_id;        // origin view (cache install + advice)
  std::string canonical_key;  // dedup / join key: query.CanonicalKey()
  uint64_t session_id = 0;    // owning session (cancel / drain scoping)
  Plan plan;
};

/// What a finished prefetch produced. `modeled_ms` is the simulated cost
/// of the remote fetches plus local assembly — the time hidden behind IE
/// processing when the overlap succeeds.
struct PrefetchOutcome {
  Status status = Status::Ok();
  rel::Relation result;
  double modeled_ms = 0;
};

/// The background prefetch pipeline (paper §4.2.2: fetch predicted data
/// "before [the CMS] actually receives [the query] from the IE"). Each
/// admitted job runs as a task on the execution pool; an in-flight
/// registry keyed by canonical definition lets a foreground query *join*
/// a pending prefetch instead of duplicating its remote fetch, and lets
/// session teardown cancel or drain the pipeline cleanly.
///
/// Threading contract: every public method may be called from any session
/// thread (the registry is internally locked); jobs are tagged with the
/// launching session so CancelSession/DrainSession scope to one session.
/// The job body executes on pool threads and touches only thread-safe
/// components — the RDI and remote DBMS, the span tracer, and the metrics
/// registry. Completed results are handed back through Harvest/Drain and
/// installed into the (now concurrency-safe) cache by the harvesting
/// session. Blocking waits (Join*, Drain*) help-drain the pool's inner
/// queue while they wait, so a session task blocked here cannot deadlock
/// a pool saturated with session tasks.
class Prefetcher {
 public:
  struct Completed {
    PrefetchJob job;
    PrefetchOutcome outcome;
    bool cancelled = false;
  };

  /// `pool` may be null (serial CMS): jobs then execute inline inside
  /// Launch, which degrades prefetching to the synchronous behaviour.
  Prefetcher(exec::ThreadPool* pool, RemoteDbmsInterface* rdi,
             double local_per_tuple_ms, size_t max_inflight,
             obs::Tracer* tracer);
  /// Cancels what has not started and waits out what has.
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Launches `job` as a pool task. Refuses (returning false) a duplicate
  /// of an in-flight canonical key and launches beyond the in-flight cap;
  /// refused candidates are simply reconsidered after a later query.
  bool Launch(PrefetchJob job);

  bool InFlight(const std::string& canonical_key) const;
  bool InFlightForView(const std::string& view_id) const;
  size_t NumInFlight() const;

  /// Blocks until the in-flight prefetch for `canonical_key` completes;
  /// returns false immediately when none is pending. The result is
  /// delivered through the next Harvest().
  bool Join(const std::string& canonical_key);
  /// Same, keyed by origin view: joins every pending job for the view.
  bool JoinView(const std::string& view_id);

  /// Completed-but-unharvested results; non-blocking.
  std::vector<Completed> Harvest();

  /// Waits for every in-flight job, then returns all completed results.
  std::vector<Completed> Drain();

  /// Waits for `session_id`'s in-flight jobs only, then returns everything
  /// completed so far (any session's — installs are cross-session).
  std::vector<Completed> DrainSession(uint64_t session_id);

  /// Marks every in-flight job cancelled: fetches not yet started are
  /// skipped (their outcome carries a failed status); a fetch already on
  /// the wire completes normally. Non-blocking.
  void CancelAll();

  /// Same, but only jobs launched by `session_id`.
  void CancelSession(uint64_t session_id);

 private:
  struct Entry {
    PrefetchJob job;
    std::atomic<bool> cancelled{false};
  };

  void RunJob(const std::shared_ptr<Entry>& entry);
  PrefetchOutcome Execute(const PrefetchJob& job,
                          const std::atomic<bool>& cancelled);

  /// True while some in-flight job originates from `view_id`.
  bool PendingForViewLocked(const std::string& view_id) const
      BRAID_REQUIRES(mu_);

  /// True while some in-flight job belongs to `session_id`.
  bool PendingForSessionLocked(uint64_t session_id) const BRAID_REQUIRES(mu_);

  /// One step of a blocking wait: runs a queued inner pool task if there
  /// is one, otherwise sleeps briefly on the registry condvar. Callers
  /// loop on their predicate around this.
  void WaitStep();

  /// Joins the parked pool futures of finished jobs, so no task lambda is
  /// still inside its epilogue when the registry is torn down.
  void SettleFutures();

  exec::ThreadPool* pool_;
  RemoteDbmsInterface* rdi_;
  const double local_per_tuple_ms_;
  const size_t max_inflight_;
  obs::Tracer* tracer_;

  // The registry guards the *maps*; an Entry's job is immutable from
  // launch until its RunJob completion moves it out under the lock, and
  // its `cancelled` flag is atomic, so the executing pool thread reads the
  // job without taking mu_.
  mutable Mutex mu_;
  CondVar cv_;
  std::map<std::string, std::shared_ptr<Entry>> inflight_
      BRAID_GUARDED_BY(mu_);
  std::vector<Completed> completed_ BRAID_GUARDED_BY(mu_);
  /// Futures of submitted pool tasks; ready ones are pruned on Launch and
  /// all are joined by Drain (a future is ready only once its task lambda
  /// has fully returned).
  std::vector<std::future<void>> futures_ BRAID_GUARDED_BY(mu_);

  // Registry-owned instrument handles (process lifetime).
  obs::Counter* issued_;
  obs::Counter* joined_;
  obs::Histogram* join_wait_ms_;
};

}  // namespace braid::cms

#endif  // BRAID_CMS_PREFETCHER_H_
