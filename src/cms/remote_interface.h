#ifndef BRAID_CMS_REMOTE_INTERFACE_H_
#define BRAID_CMS_REMOTE_INTERFACE_H_

#include <string>
#include <vector>

#include "caql/caql_query.h"
#include "common/status.h"
#include "dbms/remote_dbms.h"
#include "dbms/sql.h"
#include "stream/remote_stream.h"

namespace braid::cms {

/// Outcome of a remote fetch: the bindings (one column per requested
/// variable) plus the communication cost charged.
struct RemoteFetch {
  rel::Relation bindings;
  dbms::RemoteCost cost;
};

/// The Remote DBMS Interface (RDI, paper Fig. 5): translates CAQL
/// subqueries into the DML of the remote DBMS, executes them, and buffers
/// the returned data. CAQL constructs the remote system cannot express —
/// evaluable functions, non-base predicates — are rejected here; the
/// planner keeps them local.
class RemoteDbmsInterface {
 public:
  explicit RemoteDbmsInterface(dbms::RemoteDbms* remote) : remote_(remote) {}

  /// Translates a conjunctive CAQL query over base relations into SQL.
  /// `needed_vars` become the SELECT list, in order.
  Result<dbms::SqlQuery> Translate(const caql::CaqlQuery& query,
                                   const std::vector<std::string>& needed_vars)
      const;

  /// Translates and executes; the result's columns are named `needed_vars`.
  Result<RemoteFetch> Fetch(const caql::CaqlQuery& query,
                            const std::vector<std::string>& needed_vars);

  /// Like Fetch, but returns the bindings as a buffered stream exposing
  /// per-buffer simulated arrival times (paper §5.5: buffering +
  /// pipelining so the Cache Manager can proceed while data is still
  /// arriving).
  Result<std::unique_ptr<stream::BufferedRemoteStream>> FetchStream(
      const caql::CaqlQuery& query,
      const std::vector<std::string>& needed_vars);

  dbms::RemoteDbms* remote() { return remote_; }
  const dbms::RemoteDbms* remote() const { return remote_; }

 private:
  dbms::RemoteDbms* remote_;
};

}  // namespace braid::cms

#endif  // BRAID_CMS_REMOTE_INTERFACE_H_
