#ifndef BRAID_CMS_EXECUTION_MONITOR_H_
#define BRAID_CMS_EXECUTION_MONITOR_H_

#include <memory>

#include "cms/cache_manager.h"
#include "cms/planner.h"
#include "cms/query_processor.h"
#include "cms/remote_interface.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "obs/trace.h"
#include "stream/stream_ops.h"

namespace braid::cms {

/// One named stage of the executed plan DAG, offered to the cache layer
/// while the plan runs. The stage's relation is semantically addressable:
/// `view` is a synthesized BAGOF CAQL view definition whose evaluation is
/// bag-equal to the stage's relation, so an admitted copy can serve later
/// queries through the ordinary subsumption path. Stages form the plan
/// DAG: per-source binding relations ("bind:*"), the pairwise join
/// fragments the assembly produces ("join:N"), and the residual-filtered
/// relation before head projection ("residual").
struct StageOffer {
  std::string label;
  caql::CaqlQuery view;
  /// Modeled cost to reproduce this relation from scratch (remote fetch
  /// cost plus local per-tuple work), the benefit side of admission.
  double recompute_ms = 0;
  /// True when producing the stage crossed the remote link.
  bool from_remote = false;
};

/// Receives stage offers during ExecutePlan. The implementation decides
/// admission and must copy `relation` if it keeps it (the reference is
/// only valid for the duration of the call, on the calling thread).
class IntermediateSink {
 public:
  virtual ~IntermediateSink() = default;
  virtual void Offer(const StageOffer& offer,
                     const rel::Relation& relation) = 0;
};

/// What executing a plan produced and cost. Times are simulated
/// milliseconds; `response_ms` accounts for the parallel overlap of
/// cache-side work with the remote subqueries when enabled.
struct ExecutionOutcome {
  rel::Relation result;
  double local_ms = 0;
  /// Total remote work: the sum of every fetch's modeled cost,
  /// regardless of overlap (the communication-volume view).
  double remote_ms = 0;
  /// The remote time on the response's critical path: with parallel
  /// execution the fetches overlap each other, so this is the slowest
  /// single fetch; serially it equals `remote_ms`.
  double remote_critical_ms = 0;
  double response_ms = 0;
  size_t remote_queries = 0;
  LocalWork work;
};

/// The Execution Monitor (paper Fig. 5): "coordinates the execution of the
/// subqueries according to the order specified by the QPO. Subqueries to
/// the remote DBMS can be executed in parallel with the subqueries to the
/// Cache Manager."
///
/// With a thread pool in the execution context, that sentence is literal:
/// every remote subquery is launched as a pool task up front and the
/// cache-side preparation proceeds on the calling thread while the fetches
/// are in flight, so wall-clock time for a multi-source plan approaches
/// the slowest branch rather than the sum. The *reported* `response_ms`
/// stays on the analytic cost model (simulated milliseconds), which bench
/// E10 cross-checks against measured wall time. Without a pool the monitor
/// behaves exactly as before: sequential fetches, modeled overlap.
class ExecutionMonitor {
 public:
  ExecutionMonitor(CacheManager* cache, RemoteDbmsInterface* rdi,
                   double local_per_tuple_ms, bool parallel,
                   exec::ExecContext exec_ctx = {})
      : cache_(cache),
        rdi_(rdi),
        local_per_tuple_ms_(local_per_tuple_ms),
        parallel_(parallel),
        exec_ctx_(exec_ctx) {}

  /// Executes `plan` eagerly, producing the materialized head projection.
  /// With a tracer, records `prep`, one `fetch` span per remote subquery
  /// (from the pool thread that ran it when fetches are concurrent), and
  /// `assembly` — each carrying both measured wall time and the modeled
  /// simulated cost — as children of `parent`. A non-null `sink` receives
  /// every DAG stage of the execution (positive-source bindings, join
  /// fragments, the residual-filtered relation) with its synthesized view
  /// definition, on the calling thread.
  Result<ExecutionOutcome> ExecutePlan(const Plan& plan,
                                       obs::Tracer* tracer = nullptr,
                                       obs::SpanId parent = 0,
                                       IntermediateSink* sink = nullptr);

  /// Builds a generator (lazy stream) for a fully local plan. Requires:
  /// no remote sources, no evaluable atoms, and an all-variable head.
  /// Binding relations are prepared eagerly (they are small residual
  /// selections over cached extensions); joins, comparisons, and the head
  /// projection run lazily, one tuple per pull.
  Result<stream::TupleStreamPtr> BuildLazyStream(const Plan& plan);

 private:
  /// Converts one element source into a binding relation (columns named by
  /// the query variables it supplies).
  Result<rel::Relation> MaterializeElementSource(const PlanSource& source,
                                                 LocalWork* work);

  CacheManager* cache_;
  RemoteDbmsInterface* rdi_;
  double local_per_tuple_ms_;
  bool parallel_;
  exec::ExecContext exec_ctx_;
};

}  // namespace braid::cms

#endif  // BRAID_CMS_EXECUTION_MONITOR_H_
