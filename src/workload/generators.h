#ifndef BRAID_WORKLOAD_GENERATORS_H_
#define BRAID_WORKLOAD_GENERATORS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "dbms/database.h"

namespace braid::workload {

/// Parameters of the genealogy workload: a random forest of `people`
/// persons, each non-root with one parent; `parent(child, parent)` plus a
/// `person(id, age, city)` attribute table.
struct GenealogyParams {
  size_t people = 500;
  size_t roots = 10;        // forest roots (no parent)
  size_t cities = 8;
  uint64_t seed = 42;
};

/// Builds the genealogy database. Person ids are ints 0..people-1; cities
/// are symbols "city0"... Ages 0..99.
dbms::Database MakeGenealogyDatabase(const GenealogyParams& params);

/// The genealogy knowledge base (re-parseable program text): base
/// declarations for parent/person, rules for ancestor (recursive),
/// grandparent, sibling, elder (age comparison), plus SOAs
/// (#closure ancestor = parent, #fd person: 0 -> 1 2).
std::string GenealogyKb();

/// Parameters of the supplier-parts workload (the classic Codd-era schema
/// an early-90s expert system would sit on): supplier(sid, city),
/// part(pid, color, weight), supplies(sid, pid, qty).
struct SupplierParams {
  size_t suppliers = 100;
  size_t parts = 300;
  size_t supplies = 1500;
  size_t cities = 10;
  size_t colors = 6;
  uint64_t seed = 7;
};

dbms::Database MakeSupplierDatabase(const SupplierParams& params);

/// Supplier-parts knowledge base: rules for supplier_of, co_located,
/// heavy_part, local_heavy_supplier, second_source, plus a mutual-exclusion
/// SOA between the heavy/light classifications.
std::string SupplierKb();

/// Parameters of the bill-of-materials workload: a DAG of assemblies and
/// parts. `component(asm, part, qty)` links each assembly to its direct
/// components; ids below `leaves` are atomic parts, the rest assemblies.
struct BomParams {
  size_t items = 150;      // total parts + assemblies
  size_t leaves = 90;      // ids [0, leaves) have no components
  size_t fanout = 4;       // max direct components per assembly
  uint64_t seed = 17;
};

/// Builds the BOM database: component(asm, part, qty) and
/// item(id, unit_cost).
dbms::Database MakeBomDatabase(const BomParams& params);

/// BOM knowledge base: contains (recursive, with #closure), leaf detection
/// via negation, and #agg rules for component counts.
std::string BomKb();

/// Parameters of the random-graph workload for transitive closure.
struct GraphParams {
  size_t nodes = 200;
  size_t edges = 600;
  uint64_t seed = 99;
  bool acyclic = true;  // edges go low → high node ids
};

/// Builds a database with a single edge(src, dst) table.
dbms::Database MakeGraphDatabase(const GraphParams& params);

/// Graph knowledge base: reachable (recursive) + #closure SOA.
std::string GraphKb();

}  // namespace braid::workload

#endif  // BRAID_WORKLOAD_GENERATORS_H_
