#include "workload/loader.h"

#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "logic/parser.h"

namespace braid::workload {

namespace {

/// Parses one CSV field into a Value: int, double, or (quoted) string.
rel::Value ParseField(std::string_view raw) {
  std::string text(StrTrim(raw));
  if (text.size() >= 2 && text.front() == '\'' && text.back() == '\'') {
    return rel::Value::String(text.substr(1, text.size() - 2));
  }
  if (text.empty()) return rel::Value::String("");
  // Integer?
  size_t pos = text[0] == '-' ? 1 : 0;
  bool digits = pos < text.size();
  bool has_dot = false;
  for (size_t i = pos; i < text.size(); ++i) {
    if (text[i] == '.' && !has_dot) {
      has_dot = true;
    } else if (!std::isdigit(static_cast<unsigned char>(text[i]))) {
      digits = false;
      break;
    }
  }
  if (digits && !has_dot) {
    return rel::Value::Int(std::strtoll(text.c_str(), nullptr, 10));
  }
  if (digits && has_dot) {
    return rel::Value::Double(std::strtod(text.c_str(), nullptr));
  }
  return rel::Value::String(text);
}

}  // namespace

Result<rel::Relation> LoadCsv(const std::string& path,
                              const std::string& table_name) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrCat("cannot open ", path));
  }
  std::string name = table_name;
  if (name.empty()) {
    name = std::filesystem::path(path).stem().string();
  }

  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument(StrCat(path, " is empty"));
  }
  std::vector<std::string> columns;
  for (const std::string& col : StrSplit(header, ',')) {
    columns.push_back(std::string(StrTrim(col)));
    if (columns.back().empty()) {
      return Status::InvalidArgument(
          StrCat(path, ": empty column name in header"));
    }
  }

  rel::Relation table(name, rel::Schema::FromNames(columns));
  std::string line;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (StrTrim(line).empty()) continue;
    std::vector<std::string> fields = StrSplit(line, ',');
    if (fields.size() != columns.size()) {
      return Status::InvalidArgument(
          StrCat(path, ":", line_no, ": expected ", columns.size(),
                 " fields, found ", fields.size()));
    }
    rel::Tuple tuple;
    tuple.reserve(fields.size());
    for (const std::string& f : fields) tuple.push_back(ParseField(f));
    table.AppendUnchecked(std::move(tuple));
  }
  return table;
}

Result<dbms::Database> LoadDatabaseFromDir(const std::string& directory) {
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec) {
    return Status::NotFound(
        StrCat("cannot read directory ", directory, ": ", ec.message()));
  }
  dbms::Database db;
  // Deterministic order.
  std::vector<std::string> files;
  for (const auto& entry : it) {
    if (entry.path().extension() == ".csv") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    return Status::NotFound(StrCat("no .csv files in ", directory));
  }
  for (const std::string& file : files) {
    BRAID_ASSIGN_OR_RETURN(rel::Relation table, LoadCsv(file));
    BRAID_RETURN_IF_ERROR(db.AddTable(std::move(table)));
  }
  return db;
}

Result<logic::KnowledgeBase> LoadKnowledgeBase(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrCat("cannot open ", path));
  }
  std::ostringstream text;
  text << in.rdbuf();
  logic::KnowledgeBase kb;
  BRAID_RETURN_IF_ERROR(logic::ParseProgram(text.str(), &kb));
  return kb;
}

}  // namespace braid::workload
