#ifndef BRAID_WORKLOAD_LOADER_H_
#define BRAID_WORKLOAD_LOADER_H_

#include <string>

#include "common/status.h"
#include "dbms/database.h"
#include "logic/knowledge_base.h"

namespace braid::workload {

/// Loads one relation from a CSV file. The first line is the header
/// (column names, comma-separated); every later non-empty line is one
/// tuple. A field parses as an integer when it looks like one, as a
/// double when it has a decimal point, and as a string otherwise
/// (surrounding whitespace trimmed, optional single quotes stripped).
/// `table_name` defaults to the file's stem.
Result<rel::Relation> LoadCsv(const std::string& path,
                              const std::string& table_name = "");

/// Loads every `*.csv` file in `directory` as a table of a fresh remote
/// database (table name = file stem).
Result<dbms::Database> LoadDatabaseFromDir(const std::string& directory);

/// Parses a knowledge-base program from a file (same syntax as
/// logic::ParseProgram).
Result<logic::KnowledgeBase> LoadKnowledgeBase(const std::string& path);

}  // namespace braid::workload

#endif  // BRAID_WORKLOAD_LOADER_H_
