#include "workload/generators.h"

#include "common/strings.h"
#include "relational/relation.h"

namespace braid::workload {

namespace {

using rel::Relation;
using rel::Schema;
using rel::Tuple;
using rel::Value;

}  // namespace

dbms::Database MakeGenealogyDatabase(const GenealogyParams& params) {
  Rng rng(params.seed);
  dbms::Database db;

  Relation parent("parent", Schema::FromNames({"child", "parent"}));
  // A forest: person i (i >= roots) gets a parent drawn from earlier ids,
  // biased toward recent generations to keep trees deep.
  for (size_t i = params.roots; i < params.people; ++i) {
    const int64_t lo =
        static_cast<int64_t>(i > 40 ? i - 40 : 0);
    const int64_t p = rng.Uniform(lo, static_cast<int64_t>(i) - 1);
    parent.AppendUnchecked(
        Tuple{Value::Int(static_cast<int64_t>(i)), Value::Int(p)});
  }

  Relation person("person", Schema::FromNames({"id", "age", "city"}));
  for (size_t i = 0; i < params.people; ++i) {
    person.AppendUnchecked(
        Tuple{Value::Int(static_cast<int64_t>(i)),
              Value::Int(rng.Uniform(0, 99)),
              Value::String(StrCat("city", rng.Uniform(
                                               0, static_cast<int64_t>(
                                                      params.cities) -
                                                      1)))});
  }

  BRAID_CHECK_OK(db.AddTable(std::move(parent)));
  BRAID_CHECK_OK(db.AddTable(std::move(person)));
  return db;
}

std::string GenealogyKb() {
  return R"(
#base parent(child, par).
#base person(id, age, city).
#fd person: 0 -> 1 2.
#closure ancestor = parent.

ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
grandparent(X, Y) :- parent(X, Z), parent(Z, Y).
greatgrand(X, Y) :- parent(X, A), parent(A, B), parent(B, Y).
sibling(X, Y) :- parent(X, P), parent(Y, P), X != Y.
elder(X, A) :- person(X, A, C), A >= 65.
townsfolk(X, Y) :- person(X, A1, C), person(Y, A2, C), X != Y.
)";
}

dbms::Database MakeSupplierDatabase(const SupplierParams& params) {
  Rng rng(params.seed);
  dbms::Database db;

  Relation supplier("supplier", Schema::FromNames({"sid", "city"}));
  for (size_t i = 0; i < params.suppliers; ++i) {
    supplier.AppendUnchecked(
        Tuple{Value::Int(static_cast<int64_t>(i)),
              Value::String(StrCat(
                  "city",
                  rng.Uniform(0, static_cast<int64_t>(params.cities) - 1)))});
  }

  Relation part("part", Schema::FromNames({"pid", "color", "weight"}));
  for (size_t i = 0; i < params.parts; ++i) {
    part.AppendUnchecked(
        Tuple{Value::Int(static_cast<int64_t>(i)),
              Value::String(StrCat(
                  "color",
                  rng.Uniform(0, static_cast<int64_t>(params.colors) - 1))),
              Value::Int(rng.Uniform(1, 100))});
  }

  Relation supplies("supplies", Schema::FromNames({"sid", "pid", "qty"}));
  for (size_t i = 0; i < params.supplies; ++i) {
    supplies.AppendUnchecked(
        Tuple{Value::Int(rng.Uniform(
                  0, static_cast<int64_t>(params.suppliers) - 1)),
              Value::Int(
                  rng.Uniform(0, static_cast<int64_t>(params.parts) - 1)),
              Value::Int(rng.Uniform(1, 1000))});
  }

  BRAID_CHECK_OK(db.AddTable(std::move(supplier)));
  BRAID_CHECK_OK(db.AddTable(std::move(part)));
  BRAID_CHECK_OK(db.AddTable(std::move(supplies)));
  return db;
}

std::string SupplierKb() {
  return R"(
#base supplier(sid, city).
#base part(pid, color, weight).
#base supplies(sid, pid, qty).
#fd supplier: 0 -> 1.
#fd part: 0 -> 1 2.
#mutex heavy_part, light_part.
#agg part_sources(P, N) = count S : supplies(S, P, Q).
#agg supplier_volume(S, T) = sum Q : supplies(S, P, Q).

supplier_of(P, S) :- supplies(S, P, Q).
single_sourced(P) :- part_sources(P, N), N = 1.
co_located(S1, S2) :- supplier(S1, C), supplier(S2, C), S1 != S2.
heavy_part(P) :- part(P, C, W), W > 50.
light_part(P) :- part(P, C, W), W <= 50.
heavy_supplier(S, P) :- heavy_part(P), supplies(S, P, Q).
light_supplier(S, P) :- light_part(P), supplies(S, P, Q).
bulk_supply(S, P) :- supplies(S, P, Q), Q > 500.
second_source(P, S1, S2) :- supplies(S1, P, Q1), supplies(S2, P, Q2), S1 != S2.
)";
}

dbms::Database MakeBomDatabase(const BomParams& params) {
  Rng rng(params.seed);
  dbms::Database db;

  Relation component("component",
                     Schema::FromNames({"asm", "part", "qty"}));
  // Assemblies reference strictly smaller ids, so the BOM is a DAG.
  for (size_t i = params.leaves; i < params.items; ++i) {
    const int64_t children = rng.Uniform(1, static_cast<int64_t>(params.fanout));
    for (int64_t c = 0; c < children; ++c) {
      component.AppendUnchecked(
          Tuple{Value::Int(static_cast<int64_t>(i)),
                Value::Int(rng.Uniform(0, static_cast<int64_t>(i) - 1)),
                Value::Int(rng.Uniform(1, 8))});
    }
  }

  Relation item("item", Schema::FromNames({"id", "unit_cost"}));
  for (size_t i = 0; i < params.items; ++i) {
    item.AppendUnchecked(Tuple{Value::Int(static_cast<int64_t>(i)),
                               Value::Int(rng.Uniform(1, 500))});
  }

  BRAID_CHECK_OK(db.AddTable(std::move(component)));
  BRAID_CHECK_OK(db.AddTable(std::move(item)));
  return db;
}

std::string BomKb() {
  return R"(
#base component(asm, part, qty).
#base item(id, unit_cost).
#fd item: 0 -> 1.
#agg direct_components(A, N) = count P : component(A, P, Q).
#agg costliest(C) = max U : item(I, U).

uses(A, P) :- component(A, P, Q).
contains(A, P) :- uses(A, P).
contains(A, P) :- uses(A, X), contains(X, P).
leaf(P) :- item(P, U), not uses(P, X).
expensive_leaf(P, U) :- leaf(P), item(P, U), U > 400.
complex_assembly(A) :- direct_components(A, N), N >= 3.
)";
}

dbms::Database MakeGraphDatabase(const GraphParams& params) {
  Rng rng(params.seed);
  dbms::Database db;

  Relation edge("edge", Schema::FromNames({"src", "dst"}));
  for (size_t i = 0; i < params.edges; ++i) {
    int64_t a = rng.Uniform(0, static_cast<int64_t>(params.nodes) - 1);
    int64_t b = rng.Uniform(0, static_cast<int64_t>(params.nodes) - 1);
    if (a == b) continue;
    if (params.acyclic && a > b) std::swap(a, b);
    edge.AppendUnchecked(Tuple{Value::Int(a), Value::Int(b)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(edge)));
  return db;
}

std::string GraphKb() {
  return R"(
#base edge(src, dst).
#closure reachable = edge.

reachable(X, Y) :- edge(X, Y).
reachable(X, Y) :- edge(X, Z), reachable(Z, Y).
)";
}

}  // namespace braid::workload
