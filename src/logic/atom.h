#ifndef BRAID_LOGIC_ATOM_H_
#define BRAID_LOGIC_ATOM_H_

#include <set>
#include <string>
#include <vector>

#include "logic/term.h"
#include "relational/predicate.h"

namespace braid::logic {

/// An atomic formula: predicate symbol applied to terms, e.g. b1(c1, Y).
/// Comparison built-ins ("<", "<=", ">", ">=", "=", "!=") are atoms whose
/// predicate is the operator symbol with exactly two arguments. A literal
/// may be negated ("not p(X)") — negation-as-failure over a safe body.
struct Atom {
  std::string predicate;
  std::vector<Term> args;
  bool negated = false;

  Atom() = default;
  Atom(std::string pred, std::vector<Term> arguments, bool neg = false)
      : predicate(std::move(pred)), args(std::move(arguments)), negated(neg) {}

  size_t arity() const { return args.size(); }

  /// True for the comparison built-ins.
  bool IsComparison() const;

  /// The CompareOp for a comparison atom; requires IsComparison().
  rel::CompareOp comparison_op() const;

  /// Names of the variables occurring in this atom, in first-occurrence
  /// order (no duplicates).
  std::vector<std::string> Variables() const;

  /// True if every argument is a constant.
  bool IsGround() const;

  bool operator==(const Atom& other) const {
    return predicate == other.predicate && args == other.args &&
           negated == other.negated;
  }

  /// This literal with the opposite polarity.
  Atom Positive() const {
    Atom a = *this;
    a.negated = false;
    return a;
  }
  bool operator!=(const Atom& other) const { return !(*this == other); }

  /// Renders "b1(c1, Y)" or "X < 5" for comparisons.
  std::string ToString() const;
};

/// Returns true if `name` is one of the comparison built-in predicates.
bool IsComparisonPredicate(const std::string& name);

/// Inserts all variable names of `atoms` into `out`.
void CollectVariables(const std::vector<Atom>& atoms,
                      std::set<std::string>* out);

}  // namespace braid::logic

#endif  // BRAID_LOGIC_ATOM_H_
