#ifndef BRAID_LOGIC_TERM_H_
#define BRAID_LOGIC_TERM_H_

#include <string>
#include <variant>

#include "relational/value.h"

namespace braid::logic {

/// A first-order term in BrAID's function-free (Datalog-class) logic: either
/// a named variable or a constant. Constants reuse the relational `Value`
/// type so the IE, CMS, and DBMS share one data domain.
class Term {
 public:
  /// Constructs a variable term.
  static Term Var(std::string name) {
    Term t;
    t.data_ = Variable{std::move(name)};
    return t;
  }
  /// Constructs a constant term.
  static Term Const(rel::Value value) {
    Term t;
    t.data_ = std::move(value);
    return t;
  }
  static Term Int(int64_t v) { return Const(rel::Value::Int(v)); }
  static Term Str(std::string v) {
    return Const(rel::Value::String(std::move(v)));
  }

  bool is_variable() const { return std::holds_alternative<Variable>(data_); }
  bool is_constant() const { return !is_variable(); }

  /// Name of the variable; requires is_variable().
  const std::string& var_name() const {
    return std::get<Variable>(data_).name;
  }
  /// Constant payload; requires is_constant().
  const rel::Value& value() const { return std::get<rel::Value>(data_); }

  bool operator==(const Term& other) const {
    if (is_variable() != other.is_variable()) return false;
    if (is_variable()) return var_name() == other.var_name();
    return value() == other.value();
  }
  bool operator!=(const Term& other) const { return !(*this == other); }

  /// Renders the variable name or the constant (symbols without quotes).
  std::string ToString() const;

 private:
  struct Variable {
    std::string name;
  };
  Term() = default;
  std::variant<Variable, rel::Value> data_;
};

}  // namespace braid::logic

#endif  // BRAID_LOGIC_TERM_H_
