#include "logic/atom.h"

#include <cassert>
#include <sstream>

namespace braid::logic {

bool IsComparisonPredicate(const std::string& name) {
  return name == "<" || name == "<=" || name == ">" || name == ">=" ||
         name == "=" || name == "!=";
}

bool Atom::IsComparison() const {
  return IsComparisonPredicate(predicate) && args.size() == 2;
}

rel::CompareOp Atom::comparison_op() const {
  assert(IsComparison());
  if (predicate == "<") return rel::CompareOp::kLt;
  if (predicate == "<=") return rel::CompareOp::kLe;
  if (predicate == ">") return rel::CompareOp::kGt;
  if (predicate == ">=") return rel::CompareOp::kGe;
  if (predicate == "!=") return rel::CompareOp::kNe;
  return rel::CompareOp::kEq;
}

std::vector<std::string> Atom::Variables() const {
  std::vector<std::string> vars;
  for (const Term& t : args) {
    if (!t.is_variable()) continue;
    bool seen = false;
    for (const std::string& v : vars) {
      if (v == t.var_name()) {
        seen = true;
        break;
      }
    }
    if (!seen) vars.push_back(t.var_name());
  }
  return vars;
}

bool Atom::IsGround() const {
  for (const Term& t : args) {
    if (t.is_variable()) return false;
  }
  return true;
}

std::string Atom::ToString() const {
  std::ostringstream os;
  if (negated) os << "not ";
  if (IsComparison()) {
    os << args[0].ToString() << " " << predicate << " " << args[1].ToString();
    return os.str();
  }
  os << predicate << "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ", ";
    os << args[i].ToString();
  }
  os << ")";
  return os.str();
}

void CollectVariables(const std::vector<Atom>& atoms,
                      std::set<std::string>* out) {
  for (const Atom& a : atoms) {
    for (const Term& t : a.args) {
      if (t.is_variable()) out->insert(t.var_name());
    }
  }
}

}  // namespace braid::logic
