#ifndef BRAID_LOGIC_KNOWLEDGE_BASE_H_
#define BRAID_LOGIC_KNOWLEDGE_BASE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "logic/rule.h"

namespace braid::logic {

/// Second-order assertion kinds supported by BrAID's knowledge base (paper
/// §4, "Use of second-order properties").
///
/// Mutual exclusion: at most one of the two predicates holds for any given
/// binding. Used by the problem-graph shaper to cull OR branches and by the
/// path-expression creator to emit selection terms of 1 on alternations.
struct MutualExclusionSoa {
  std::string predicate_a;
  std::string predicate_b;
};

/// Functional dependency within a base relation: the `determinant` argument
/// positions determine the `dependent` positions. Used for conjunct
/// ordering and cardinality estimation in the shaper.
struct FunctionalDependencySoa {
  std::string predicate;
  std::vector<size_t> determinant;
  std::vector<size_t> dependent;
};

/// Declares `closure_predicate` as the transitive closure of
/// `base_predicate` (a recursive-structure SOA, cf. [OHAR87]). The compiled
/// inference strategy maps this to the CMS fixed-point operator.
struct RecursiveStructureSoa {
  std::string closure_predicate;
  std::string base_predicate;
};

/// Kind of aggregate computed by an aggregate rule (the paper's AGG
/// second-order predicate family).
enum class AggregateFn { kCount, kSum, kMin, kMax, kAvg };

const char* AggregateFnName(AggregateFn fn);

/// An aggregate rule, declared as
///   #agg degree(X, N) = count Y : edge(X, Y).
/// The head's leading arguments are the grouping variables and its last
/// argument receives the aggregate of `agg_var` over the body atom's
/// solutions, grouped by the grouping variables.
struct AggregateRule {
  std::string head_predicate;
  std::vector<std::string> group_vars;
  std::string result_var;  // head's last argument (receives the aggregate)
  AggregateFn fn = AggregateFn::kCount;
  std::string agg_var;
  Atom body;

  size_t HeadArity() const { return group_vars.size() + 1; }
  std::string ToString() const;
};

/// The IE's knowledge base: Horn rules over user-defined (IDB) relations,
/// declarations of which predicates are base (EDB) relations stored in the
/// remote DBMS, and second-order assertions.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;

  /// Declares `name` as a base relation stored in the remote DBMS with the
  /// given column names (arity = attribute_names.size()).
  Status DeclareBaseRelation(const std::string& name,
                             std::vector<std::string> attribute_names);

  /// Adds a rule; assigns it the next id ("R<n>") if `rule.id` is empty.
  /// The head predicate must not be a declared base relation.
  Status AddRule(Rule rule);

  void AddMutualExclusion(MutualExclusionSoa soa) {
    mutex_soas_.push_back(std::move(soa));
  }
  void AddFunctionalDependency(FunctionalDependencySoa soa) {
    fd_soas_.push_back(std::move(soa));
  }
  void AddRecursiveStructure(RecursiveStructureSoa soa) {
    recursive_soas_.push_back(std::move(soa));
  }

  /// Registers an aggregate rule; the head predicate must be otherwise
  /// undefined. Grouping variables and the aggregate variable must occur
  /// in the body atom.
  Status AddAggregateRule(AggregateRule rule);

  bool IsAggregate(const std::string& name) const {
    return aggregate_rules_.count(name) > 0;
  }
  const AggregateRule* AggregateRuleFor(const std::string& name) const {
    auto it = aggregate_rules_.find(name);
    return it == aggregate_rules_.end() ? nullptr : &it->second;
  }
  const std::map<std::string, AggregateRule>& aggregate_rules() const {
    return aggregate_rules_;
  }

  bool IsBaseRelation(const std::string& name) const {
    return base_relations_.count(name) > 0;
  }
  bool IsUserDefined(const std::string& name) const {
    return rules_by_predicate_.count(name) > 0;
  }

  /// Column names of a base relation, or nullopt.
  std::optional<std::vector<std::string>> BaseRelationAttributes(
      const std::string& name) const;

  /// Rules whose head predicate is `name` (empty if none).
  const std::vector<Rule>& RulesFor(const std::string& name) const;

  const std::vector<Rule>& rules() const { return all_rules_; }
  const std::map<std::string, std::vector<std::string>>& base_relations()
      const {
    return base_relations_;
  }
  const std::vector<MutualExclusionSoa>& mutex_soas() const {
    return mutex_soas_;
  }
  const std::vector<FunctionalDependencySoa>& fd_soas() const {
    return fd_soas_;
  }
  const std::vector<RecursiveStructureSoa>& recursive_soas() const {
    return recursive_soas_;
  }

  bool AreMutuallyExclusive(const std::string& a, const std::string& b) const;

  /// The transitive-closure base predicate for `closure_predicate`, if a
  /// recursive-structure SOA declares one.
  std::optional<std::string> ClosureBaseOf(
      const std::string& closure_predicate) const;

  /// Renders the whole knowledge base as re-parseable text.
  std::string ToString() const;

 private:
  std::map<std::string, std::vector<std::string>> base_relations_;
  std::vector<Rule> all_rules_;
  std::map<std::string, std::vector<Rule>> rules_by_predicate_;
  std::vector<MutualExclusionSoa> mutex_soas_;
  std::vector<FunctionalDependencySoa> fd_soas_;
  std::vector<RecursiveStructureSoa> recursive_soas_;
  std::map<std::string, AggregateRule> aggregate_rules_;
  int next_rule_number_ = 1;
  static const std::vector<Rule> kNoRules;
};

}  // namespace braid::logic

#endif  // BRAID_LOGIC_KNOWLEDGE_BASE_H_
