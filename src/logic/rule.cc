#include "logic/rule.h"

#include <sstream>

namespace braid::logic {

std::string Rule::ToString() const {
  std::ostringstream os;
  if (!id.empty()) os << id << ": ";
  os << head.ToString();
  if (!body.empty()) {
    os << " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) os << ", ";
      os << body[i].ToString();
    }
  }
  os << ".";
  return os.str();
}

}  // namespace braid::logic
