#include "logic/unify.h"

namespace braid::logic {

bool UnifyTerms(const Term& a, const Term& b, Substitution* subst) {
  Term ra = subst->Apply(a);
  Term rb = subst->Apply(b);
  if (ra.is_variable()) return subst->Bind(ra.var_name(), rb);
  if (rb.is_variable()) return subst->Bind(rb.var_name(), ra);
  return ra.value() == rb.value();
}

std::optional<Substitution> UnifyAtoms(const Atom& a, const Atom& b,
                                       const Substitution& seed) {
  if (a.predicate != b.predicate || a.arity() != b.arity()) {
    return std::nullopt;
  }
  Substitution subst = seed;
  for (size_t i = 0; i < a.arity(); ++i) {
    if (!UnifyTerms(a.args[i], b.args[i], &subst)) return std::nullopt;
  }
  return subst;
}

std::optional<Substitution> MatchOneWay(const Atom& general,
                                        const Atom& specific,
                                        const Substitution& seed) {
  if (general.predicate != specific.predicate ||
      general.arity() != specific.arity()) {
    return std::nullopt;
  }
  Substitution subst = seed;
  for (size_t i = 0; i < general.arity(); ++i) {
    const Term& g = general.args[i];
    const Term& s = specific.args[i];
    if (g.is_constant()) {
      // A constant in the general atom only matches the same constant.
      if (!s.is_constant() || g.value() != s.value()) return std::nullopt;
      continue;
    }
    // Variable in general: may absorb a constant or align with a variable,
    // but must do so consistently across repeated occurrences.
    Term bound = subst.Apply(g);
    if (bound.is_variable() && bound.var_name() == g.var_name()) {
      if (!subst.Bind(g.var_name(), s)) return std::nullopt;
    } else if (bound != s) {
      return std::nullopt;
    }
  }
  return subst;
}

Atom RenameVariables(const Atom& atom, const std::string& suffix) {
  Atom out = atom;
  for (Term& t : out.args) {
    if (t.is_variable()) t = Term::Var(t.var_name() + suffix);
  }
  return out;
}

}  // namespace braid::logic
