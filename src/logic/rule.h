#ifndef BRAID_LOGIC_RULE_H_
#define BRAID_LOGIC_RULE_H_

#include <string>
#include <vector>

#include "logic/atom.h"

namespace braid::logic {

/// A Horn rule: head :- body. A fact is a rule with an empty body and a
/// ground head. Rule identifiers ("R1", "R2", ...) are assigned by the
/// knowledge base in definition order and referenced by view specifications
/// (paper §4.2.1) and path expressions.
struct Rule {
  std::string id;
  Atom head;
  std::vector<Atom> body;

  bool IsFact() const { return body.empty(); }

  /// Renders "R1: k1(X,Y) :- b1(c1,Y), k2(X,Y)."
  std::string ToString() const;
};

}  // namespace braid::logic

#endif  // BRAID_LOGIC_RULE_H_
