#ifndef BRAID_LOGIC_SUBSTITUTION_H_
#define BRAID_LOGIC_SUBSTITUTION_H_

#include <map>
#include <optional>
#include <string>

#include "logic/atom.h"
#include "logic/term.h"

namespace braid::logic {

/// A mapping from variable names to terms. Substitutions are kept
/// idempotent: bindings are resolved transitively on insertion so that
/// applying a substitution once yields a fixed point.
class Substitution {
 public:
  Substitution() = default;

  bool empty() const { return bindings_.empty(); }
  size_t size() const { return bindings_.size(); }

  /// The binding for `var`, fully resolved through variable chains, or
  /// nullopt if unbound.
  std::optional<Term> Lookup(const std::string& var) const;

  /// Binds `var` to `term` (resolving `term` first). Returns false (and
  /// leaves the substitution unchanged) if `var` is already bound to a
  /// conflicting term.
  bool Bind(const std::string& var, const Term& term);

  /// Applies the substitution to a term: variables are replaced by their
  /// resolved bindings; unbound variables and constants pass through.
  Term Apply(const Term& term) const;

  /// Applies the substitution to every argument of `atom`.
  Atom Apply(const Atom& atom) const;

  const std::map<std::string, Term>& bindings() const { return bindings_; }

  /// Renders "{X=3, Y=Z}".
  std::string ToString() const;

 private:
  /// Follows variable→variable chains to the representative term.
  Term Resolve(const Term& term) const;

  std::map<std::string, Term> bindings_;
};

}  // namespace braid::logic

#endif  // BRAID_LOGIC_SUBSTITUTION_H_
