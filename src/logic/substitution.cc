#include "logic/substitution.h"

#include <sstream>

namespace braid::logic {

Term Substitution::Resolve(const Term& term) const {
  Term current = term;
  // Chains are short; guard against accidental cycles anyway.
  for (size_t hops = 0; hops <= bindings_.size(); ++hops) {
    if (!current.is_variable()) return current;
    auto it = bindings_.find(current.var_name());
    if (it == bindings_.end()) return current;
    current = it->second;
  }
  return current;
}

std::optional<Term> Substitution::Lookup(const std::string& var) const {
  auto it = bindings_.find(var);
  if (it == bindings_.end()) return std::nullopt;
  return Resolve(it->second);
}

bool Substitution::Bind(const std::string& var, const Term& term) {
  Term resolved = Resolve(term);
  // Binding X to X is a no-op.
  if (resolved.is_variable() && resolved.var_name() == var) return true;
  auto it = bindings_.find(var);
  if (it != bindings_.end()) {
    Term existing = Resolve(it->second);
    if (existing == resolved) return true;
    // If the existing binding resolved to a different variable, union the
    // two chains by binding that variable instead.
    if (existing.is_variable()) {
      return Bind(existing.var_name(), resolved);
    }
    if (resolved.is_variable()) {
      return Bind(resolved.var_name(), existing);
    }
    return false;  // Two distinct constants.
  }
  bindings_.emplace(var, std::move(resolved));
  return true;
}

Term Substitution::Apply(const Term& term) const { return Resolve(term); }

Atom Substitution::Apply(const Atom& atom) const {
  Atom out = atom;
  for (Term& t : out.args) t = Resolve(t);
  return out;
}

std::string Substitution::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [var, term] : bindings_) {
    if (!first) os << ", ";
    first = false;
    os << var << "=" << Resolve(term).ToString();
  }
  os << "}";
  return os.str();
}

}  // namespace braid::logic
