#ifndef BRAID_LOGIC_PARSER_H_
#define BRAID_LOGIC_PARSER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "logic/knowledge_base.h"

namespace braid::logic {

/// Parses a knowledge-base program in BrAID's Datalog-style surface syntax
/// into `kb` (which may already contain declarations; new ones are added).
///
/// Syntax (comments run from '%' or '//' to end of line):
///
///   #base b1(src, dst).            % declare an EDB relation + columns
///   #mutex k3, k4.                 % mutual-exclusion SOA
///   #fd b1: 0 -> 1.                % functional-dependency SOA (arg positions)
///   #closure ancestor = parent.    % recursive-structure SOA
///   k1(X, Y) :- b1(c1, Y), k2(X, Y).
///   k2(X, Y) :- b2(X, Z), b3(Z, c2, Y), Z > 5.
///
/// Identifiers starting with an uppercase letter or '_' are variables;
/// lowercase identifiers are symbol constants; numeric literals are int or
/// double constants; single-quoted strings are string constants. ',' and
/// '&' both separate body literals.
Status ParseProgram(std::string_view text, KnowledgeBase* kb);

/// Parses a single atom such as "k1(X, Y)" (an optional trailing '?' or '.'
/// is accepted) — the AI-query form of §3.
Result<Atom> ParseQueryAtom(std::string_view text);

/// Parses a single rule "head :- body." (or a bodiless "head.") without
/// registering it in a knowledge base. Used by the CAQL layer, whose
/// queries share the rule surface syntax.
Result<Rule> ParseRuleText(std::string_view text);

}  // namespace braid::logic

#endif  // BRAID_LOGIC_PARSER_H_
