#include "logic/knowledge_base.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace braid::logic {

const std::vector<Rule> KnowledgeBase::kNoRules;

const char* AggregateFnName(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount:
      return "count";
    case AggregateFn::kSum:
      return "sum";
    case AggregateFn::kMin:
      return "min";
    case AggregateFn::kMax:
      return "max";
    case AggregateFn::kAvg:
      return "avg";
  }
  return "?";
}

std::string AggregateRule::ToString() const {
  std::ostringstream os;
  os << "#agg " << head_predicate << "(" << StrJoin(group_vars, ", ")
     << (group_vars.empty() ? "" : ", ")
     << (result_var.empty() ? "N" : result_var)
     << ") = " << AggregateFnName(fn) << " " << agg_var << " : "
     << body.ToString() << ".";
  return os.str();
}

Status KnowledgeBase::AddAggregateRule(AggregateRule rule) {
  if (base_relations_.count(rule.head_predicate) > 0 ||
      rules_by_predicate_.count(rule.head_predicate) > 0 ||
      aggregate_rules_.count(rule.head_predicate) > 0) {
    return Status::AlreadyExists(
        StrCat("predicate ", rule.head_predicate, " already defined"));
  }
  std::vector<std::string> body_vars = rule.body.Variables();
  auto in_body = [&body_vars](const std::string& v) {
    return std::find(body_vars.begin(), body_vars.end(), v) !=
           body_vars.end();
  };
  for (const std::string& g : rule.group_vars) {
    if (!in_body(g)) {
      return Status::InvalidArgument(
          StrCat("aggregate group variable ", g, " not in body"));
    }
  }
  if (rule.fn != AggregateFn::kCount && !in_body(rule.agg_var)) {
    return Status::InvalidArgument(
        StrCat("aggregate variable ", rule.agg_var, " not in body"));
  }
  aggregate_rules_.emplace(rule.head_predicate, std::move(rule));
  return Status::Ok();
}

Status KnowledgeBase::DeclareBaseRelation(
    const std::string& name, std::vector<std::string> attribute_names) {
  if (rules_by_predicate_.count(name) > 0) {
    return Status::InvalidArgument(
        StrCat("predicate ", name, " already defined by rules"));
  }
  auto [it, inserted] =
      base_relations_.emplace(name, std::move(attribute_names));
  if (!inserted) {
    return Status::AlreadyExists(StrCat("base relation ", name));
  }
  (void)it;
  return Status::Ok();
}

Status KnowledgeBase::AddRule(Rule rule) {
  if (base_relations_.count(rule.head.predicate) > 0) {
    return Status::InvalidArgument(
        StrCat("cannot define rule for base relation ", rule.head.predicate));
  }
  if (rule.head.IsComparison()) {
    return Status::InvalidArgument("cannot define rule for a comparison");
  }
  if (rule.id.empty()) {
    rule.id = StrCat("R", next_rule_number_++);
  }
  rules_by_predicate_[rule.head.predicate].push_back(rule);
  all_rules_.push_back(std::move(rule));
  return Status::Ok();
}

std::optional<std::vector<std::string>> KnowledgeBase::BaseRelationAttributes(
    const std::string& name) const {
  auto it = base_relations_.find(name);
  if (it == base_relations_.end()) return std::nullopt;
  return it->second;
}

const std::vector<Rule>& KnowledgeBase::RulesFor(
    const std::string& name) const {
  auto it = rules_by_predicate_.find(name);
  return it == rules_by_predicate_.end() ? kNoRules : it->second;
}

bool KnowledgeBase::AreMutuallyExclusive(const std::string& a,
                                         const std::string& b) const {
  for (const MutualExclusionSoa& soa : mutex_soas_) {
    if ((soa.predicate_a == a && soa.predicate_b == b) ||
        (soa.predicate_a == b && soa.predicate_b == a)) {
      return true;
    }
  }
  return false;
}

std::optional<std::string> KnowledgeBase::ClosureBaseOf(
    const std::string& closure_predicate) const {
  for (const RecursiveStructureSoa& soa : recursive_soas_) {
    if (soa.closure_predicate == closure_predicate) {
      return soa.base_predicate;
    }
  }
  return std::nullopt;
}

std::string KnowledgeBase::ToString() const {
  std::ostringstream os;
  for (const auto& [name, attrs] : base_relations_) {
    os << "#base " << name << "(" << StrJoin(attrs, ", ") << ").\n";
  }
  for (const MutualExclusionSoa& soa : mutex_soas_) {
    os << "#mutex " << soa.predicate_a << ", " << soa.predicate_b << ".\n";
  }
  for (const FunctionalDependencySoa& soa : fd_soas_) {
    os << "#fd " << soa.predicate << ": ";
    for (size_t i = 0; i < soa.determinant.size(); ++i) {
      if (i > 0) os << " ";
      os << soa.determinant[i];
    }
    os << " -> ";
    for (size_t i = 0; i < soa.dependent.size(); ++i) {
      if (i > 0) os << " ";
      os << soa.dependent[i];
    }
    os << ".\n";
  }
  for (const RecursiveStructureSoa& soa : recursive_soas_) {
    os << "#closure " << soa.closure_predicate << " = " << soa.base_predicate
       << ".\n";
  }
  for (const auto& [name, agg] : aggregate_rules_) {
    os << agg.ToString() << "\n";
  }
  for (const Rule& r : all_rules_) {
    os << r.ToString() << "\n";
  }
  return os.str();
}

}  // namespace braid::logic
