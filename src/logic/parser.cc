#include "logic/parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "common/strings.h"

namespace braid::logic {

namespace {

enum class TokenKind {
  kIdent,      // lowercase identifier (predicate / symbol constant)
  kVariable,   // Uppercase or _ identifier
  kInt,
  kDouble,
  kString,     // 'quoted'
  kPunct,      // single punctuation or multi-char operator
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        tokens.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        tokens.push_back(LexNumber());
      } else if (c == '\'') {
        BRAID_ASSIGN_OR_RETURN(Token t, LexQuoted());
        tokens.push_back(std::move(t));
      } else {
        BRAID_ASSIGN_OR_RETURN(Token t, LexPunct());
        tokens.push_back(std::move(t));
      }
    }
    tokens.push_back(Token{TokenKind::kEnd, "", line_});
    return tokens;
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%' ||
                 (c == '/' && pos_ + 1 < text_.size() &&
                  text_[pos_ + 1] == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token LexIdent() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    std::string word(text_.substr(start, pos_ - start));
    bool is_var = std::isupper(static_cast<unsigned char>(word[0])) ||
                  word[0] == '_';
    return Token{is_var ? TokenKind::kVariable : TokenKind::kIdent,
                 std::move(word), line_};
  }

  Token LexNumber() {
    size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && pos_ + 1 < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    return Token{is_double ? TokenKind::kDouble : TokenKind::kInt,
                 std::string(text_.substr(start, pos_ - start)), line_};
  }

  Result<Token> LexQuoted() {
    ++pos_;  // opening quote
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
    if (pos_ >= text_.size()) {
      return Status::ParseError(
          StrCat("unterminated string literal at line ", line_));
    }
    std::string body(text_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return Token{TokenKind::kString, std::move(body), line_};
  }

  Result<Token> LexPunct() {
    // Multi-character operators first.
    static const char* kMulti[] = {":-", "<=", ">=", "!=", "->"};
    for (const char* op : kMulti) {
      std::string_view sv(op);
      if (text_.substr(pos_, sv.size()) == sv) {
        pos_ += sv.size();
        return Token{TokenKind::kPunct, std::string(sv), line_};
      }
    }
    char c = text_[pos_];
    static const std::string kSingle = "().,&<>=?:#";
    if (kSingle.find(c) == std::string::npos) {
      return Status::ParseError(
          StrCat("unexpected character '", std::string(1, c), "' at line ",
                 line_));
    }
    ++pos_;
    return Token{TokenKind::kPunct, std::string(1, c), line_};
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Status ParseInto(KnowledgeBase* kb) {
    while (!AtEnd()) {
      if (PeekPunct("#")) {
        BRAID_RETURN_IF_ERROR(ParseDirective(kb));
      } else {
        BRAID_RETURN_IF_ERROR(ParseRule(kb));
      }
    }
    return Status::Ok();
  }

  Result<Atom> ParseSingleAtom() {
    BRAID_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
    // Optional trailing '?' or '.'.
    if (PeekPunct("?") || PeekPunct(".")) Advance();
    if (!AtEnd()) {
      return Status::ParseError(
          StrCat("trailing input after atom at line ", Peek().line));
    }
    return atom;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekPunct(std::string_view p) const {
    return Peek().kind == TokenKind::kPunct && Peek().text == p;
  }

  Status ExpectPunct(std::string_view p) {
    if (!PeekPunct(p)) {
      return Status::ParseError(StrCat("expected '", std::string(p),
                                       "' but found '", Peek().text,
                                       "' at line ", Peek().line));
    }
    Advance();
    return Status::Ok();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::ParseError(StrCat("expected identifier but found '",
                                       Peek().text, "' at line ",
                                       Peek().line));
    }
    return Advance().text;
  }

  Result<size_t> ExpectIndex() {
    if (Peek().kind != TokenKind::kInt) {
      return Status::ParseError(StrCat("expected argument position at line ",
                                       Peek().line));
    }
    long v = std::strtol(Advance().text.c_str(), nullptr, 10);
    if (v < 0) return Status::ParseError("argument position must be >= 0");
    return static_cast<size_t>(v);
  }

  Status ParseDirective(KnowledgeBase* kb) {
    BRAID_RETURN_IF_ERROR(ExpectPunct("#"));
    BRAID_ASSIGN_OR_RETURN(std::string keyword, ExpectIdent());
    if (keyword == "base") {
      BRAID_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
      BRAID_RETURN_IF_ERROR(ExpectPunct("("));
      std::vector<std::string> attrs;
      while (true) {
        // Column names may be lowercase idents or variables; normalize.
        if (Peek().kind != TokenKind::kIdent &&
            Peek().kind != TokenKind::kVariable) {
          return Status::ParseError(
              StrCat("expected column name at line ", Peek().line));
        }
        attrs.push_back(Advance().text);
        if (PeekPunct(",")) {
          Advance();
          continue;
        }
        break;
      }
      BRAID_RETURN_IF_ERROR(ExpectPunct(")"));
      BRAID_RETURN_IF_ERROR(ExpectPunct("."));
      return kb->DeclareBaseRelation(name, std::move(attrs));
    }
    if (keyword == "mutex") {
      BRAID_ASSIGN_OR_RETURN(std::string a, ExpectIdent());
      BRAID_RETURN_IF_ERROR(ExpectPunct(","));
      BRAID_ASSIGN_OR_RETURN(std::string b, ExpectIdent());
      BRAID_RETURN_IF_ERROR(ExpectPunct("."));
      kb->AddMutualExclusion(MutualExclusionSoa{a, b});
      return Status::Ok();
    }
    if (keyword == "fd") {
      BRAID_ASSIGN_OR_RETURN(std::string pred, ExpectIdent());
      BRAID_RETURN_IF_ERROR(ExpectPunct(":"));
      FunctionalDependencySoa soa;
      soa.predicate = pred;
      while (Peek().kind == TokenKind::kInt) {
        BRAID_ASSIGN_OR_RETURN(size_t idx, ExpectIndex());
        soa.determinant.push_back(idx);
      }
      BRAID_RETURN_IF_ERROR(ExpectPunct("->"));
      while (Peek().kind == TokenKind::kInt) {
        BRAID_ASSIGN_OR_RETURN(size_t idx, ExpectIndex());
        soa.dependent.push_back(idx);
      }
      BRAID_RETURN_IF_ERROR(ExpectPunct("."));
      kb->AddFunctionalDependency(std::move(soa));
      return Status::Ok();
    }
    if (keyword == "agg") {
      // #agg head(G..., N) = fn V : body(...).
      AggregateRule agg;
      BRAID_ASSIGN_OR_RETURN(agg.head_predicate, ExpectIdent());
      BRAID_RETURN_IF_ERROR(ExpectPunct("("));
      std::vector<std::string> head_vars;
      while (Peek().kind == TokenKind::kVariable) {
        head_vars.push_back(Advance().text);
        if (PeekPunct(",")) Advance();
      }
      BRAID_RETURN_IF_ERROR(ExpectPunct(")"));
      if (head_vars.empty()) {
        return Status::ParseError(
            StrCat("aggregate head needs a result variable at line ",
                   Peek().line));
      }
      agg.group_vars.assign(head_vars.begin(), head_vars.end() - 1);
      agg.result_var = head_vars.back();
      const std::string result_var = head_vars.back();
      BRAID_RETURN_IF_ERROR(ExpectPunct("="));
      BRAID_ASSIGN_OR_RETURN(std::string fn, ExpectIdent());
      if (fn == "count") agg.fn = AggregateFn::kCount;
      else if (fn == "sum") agg.fn = AggregateFn::kSum;
      else if (fn == "min") agg.fn = AggregateFn::kMin;
      else if (fn == "max") agg.fn = AggregateFn::kMax;
      else if (fn == "avg") agg.fn = AggregateFn::kAvg;
      else {
        return Status::ParseError(
            StrCat("unknown aggregate function ", fn, " at line ",
                   Peek().line));
      }
      if (Peek().kind != TokenKind::kVariable) {
        return Status::ParseError(
            StrCat("expected aggregate variable at line ", Peek().line));
      }
      agg.agg_var = Advance().text;
      BRAID_RETURN_IF_ERROR(ExpectPunct(":"));
      BRAID_ASSIGN_OR_RETURN(agg.body, ParseAtom());
      BRAID_RETURN_IF_ERROR(ExpectPunct("."));
      // The result variable must not collide with a grouping variable.
      for (const std::string& g : agg.group_vars) {
        if (g == result_var) {
          return Status::ParseError(
              StrCat("result variable ", result_var,
                     " repeats a group variable at line ", Peek().line));
        }
      }
      return kb->AddAggregateRule(std::move(agg));
    }
    if (keyword == "closure") {
      BRAID_ASSIGN_OR_RETURN(std::string closure, ExpectIdent());
      BRAID_RETURN_IF_ERROR(ExpectPunct("="));
      BRAID_ASSIGN_OR_RETURN(std::string base, ExpectIdent());
      BRAID_RETURN_IF_ERROR(ExpectPunct("."));
      kb->AddRecursiveStructure(RecursiveStructureSoa{closure, base});
      return Status::Ok();
    }
    return Status::ParseError(
        StrCat("unknown directive #", keyword, " at line ", Peek().line));
  }

  Status ParseRule(KnowledgeBase* kb) {
    BRAID_ASSIGN_OR_RETURN(Rule rule, ParseRuleOnly());
    return kb->AddRule(std::move(rule));
  }

 public:
  Result<Rule> ParseRuleOnly() {
    Rule rule;
    // Optional rule-id prefix "R1:" (as emitted by Rule::ToString).
    if ((Peek().kind == TokenKind::kVariable ||
         Peek().kind == TokenKind::kIdent) &&
        pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].kind == TokenKind::kPunct &&
        tokens_[pos_ + 1].text == ":") {
      rule.id = Advance().text;
      Advance();  // ':'
    }
    BRAID_ASSIGN_OR_RETURN(Atom head, ParseAtom());
    rule.head = std::move(head);
    if (PeekPunct(":-")) {
      Advance();
      while (true) {
        BRAID_ASSIGN_OR_RETURN(Atom lit, ParseLiteral());
        rule.body.push_back(std::move(lit));
        if (PeekPunct(",") || PeekPunct("&")) {
          Advance();
          continue;
        }
        break;
      }
    }
    BRAID_RETURN_IF_ERROR(ExpectPunct("."));
    return rule;
  }

 private:

  /// literal := ["not"] atom | term cmpop term
  Result<Atom> ParseLiteral() {
    // "not" is a keyword only when it prefixes an atom ("not p(...)");
    // a predicate named not(...) still parses as an atom.
    if (Peek().kind == TokenKind::kIdent && Peek().text == "not" &&
        pos_ + 2 < tokens_.size() &&
        tokens_[pos_ + 1].kind == TokenKind::kIdent &&
        tokens_[pos_ + 2].kind == TokenKind::kPunct &&
        tokens_[pos_ + 2].text == "(") {
      Advance();
      BRAID_ASSIGN_OR_RETURN(Atom atom, ParseAtom());
      atom.negated = true;
      return atom;
    }
    // An atom begins with ident '('; otherwise parse a comparison.
    if (Peek().kind == TokenKind::kIdent && pos_ + 1 < tokens_.size() &&
        tokens_[pos_ + 1].kind == TokenKind::kPunct &&
        tokens_[pos_ + 1].text == "(") {
      return ParseAtom();
    }
    BRAID_ASSIGN_OR_RETURN(Term lhs, ParseTerm());
    if (Peek().kind != TokenKind::kPunct ||
        !IsComparisonPredicate(Peek().text)) {
      return Status::ParseError(
          StrCat("expected comparison operator at line ", Peek().line));
    }
    std::string op = Advance().text;
    BRAID_ASSIGN_OR_RETURN(Term rhs, ParseTerm());
    return Atom(op, {std::move(lhs), std::move(rhs)});
  }

  Result<Atom> ParseAtom() {
    BRAID_ASSIGN_OR_RETURN(std::string pred, ExpectIdent());
    BRAID_RETURN_IF_ERROR(ExpectPunct("("));
    std::vector<Term> args;
    if (!PeekPunct(")")) {
      while (true) {
        BRAID_ASSIGN_OR_RETURN(Term t, ParseTerm());
        args.push_back(std::move(t));
        if (PeekPunct(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    BRAID_RETURN_IF_ERROR(ExpectPunct(")"));
    return Atom(std::move(pred), std::move(args));
  }

  Result<Term> ParseTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVariable:
        return Term::Var(Advance().text);
      case TokenKind::kIdent:
        return Term::Str(Advance().text);
      case TokenKind::kInt:
        return Term::Int(std::strtoll(Advance().text.c_str(), nullptr, 10));
      case TokenKind::kDouble:
        return Term::Const(
            rel::Value::Double(std::strtod(Advance().text.c_str(), nullptr)));
      case TokenKind::kString:
        return Term::Str(Advance().text);
      default:
        return Status::ParseError(
            StrCat("expected term but found '", t.text, "' at line ", t.line));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Status ParseProgram(std::string_view text, KnowledgeBase* kb) {
  Lexer lexer(text);
  BRAID_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseInto(kb);
}

Result<Atom> ParseQueryAtom(std::string_view text) {
  Lexer lexer(text);
  BRAID_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseSingleAtom();
}

Result<Rule> ParseRuleText(std::string_view text) {
  Lexer lexer(text);
  BRAID_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.ParseRuleOnly();
}

}  // namespace braid::logic
