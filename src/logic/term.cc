#include "logic/term.h"

namespace braid::logic {

std::string Term::ToString() const {
  if (is_variable()) return var_name();
  const rel::Value& v = value();
  // Render symbol constants bare (they parse back as lowercase idents).
  if (v.type() == rel::ValueType::kString) return v.AsString();
  return v.ToString();
}

}  // namespace braid::logic
