#ifndef BRAID_LOGIC_UNIFY_H_
#define BRAID_LOGIC_UNIFY_H_

#include <optional>

#include "logic/atom.h"
#include "logic/substitution.h"
#include "logic/term.h"

namespace braid::logic {

/// Unifies two terms under an accumulating substitution. Returns false and
/// may leave partial bindings in `subst` on failure (callers discard the
/// substitution on failure).
bool UnifyTerms(const Term& a, const Term& b, Substitution* subst);

/// Unifies two atoms (same predicate, same arity, pairwise-unifiable
/// arguments). On success returns the most general unifier extending
/// `seed`.
std::optional<Substitution> UnifyAtoms(const Atom& a, const Atom& b,
                                       const Substitution& seed = {});

/// One-directional match used for subsumption checks: finds a substitution
/// over the variables of `general` only, such that Apply(general) equals
/// `specific`. Constants in `specific` may match variables in `general`,
/// never the reverse; variables in `specific` match only variables in
/// `general`. This is the paper's "unification in a single direction"
/// (§5.3.2 step 1).
std::optional<Substitution> MatchOneWay(const Atom& general,
                                        const Atom& specific,
                                        const Substitution& seed = {});

/// Renames every variable in `atom` by appending `suffix` (used to
/// standardize rules apart before unification).
Atom RenameVariables(const Atom& atom, const std::string& suffix);

}  // namespace braid::logic

#endif  // BRAID_LOGIC_UNIFY_H_
