#include "relational/relation.h"

#include <sstream>

#include "common/strings.h"

namespace braid::rel {

Status Relation::Append(Tuple t) {
  if (t.size() != schema_.size()) {
    return Status::InvalidArgument(
        StrCat("tuple arity ", t.size(), " does not match schema arity ",
               schema_.size(), " of relation ", name_));
  }
  tuples_.push_back(std::move(t));
  return Status::Ok();
}

size_t Relation::ByteSize() const {
  size_t total = 64;
  for (const Tuple& t : tuples_) total += TupleByteSize(t);
  return total;
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << name_ << " " << schema_.ToString() << " [" << tuples_.size()
     << " tuples]";
  size_t shown = 0;
  for (const Tuple& t : tuples_) {
    if (shown++ >= max_rows) {
      os << "\n  ...";
      break;
    }
    os << "\n  " << TupleToString(t);
  }
  return os.str();
}

}  // namespace braid::rel
