#include "relational/index.h"

namespace braid::rel {

const std::vector<size_t> HashIndex::kEmpty;

HashIndex::HashIndex(const Relation& relation, size_t column)
    : column_(column) {
  buckets_.reserve(relation.NumTuples());
  for (size_t row = 0; row < relation.NumTuples(); ++row) {
    buckets_[relation.tuple(row)[column]].push_back(row);
  }
}

const std::vector<size_t>& HashIndex::Lookup(const Value& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? kEmpty : it->second;
}

size_t HashIndex::ByteSize() const {
  size_t total = 64;
  for (const auto& [key, rows] : buckets_) {
    total += key.ByteSize() + 24 + rows.size() * sizeof(size_t);
  }
  return total;
}

}  // namespace braid::rel
