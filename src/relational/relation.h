#ifndef BRAID_RELATIONAL_RELATION_H_
#define BRAID_RELATIONAL_RELATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace braid::rel {

/// An in-memory bag of tuples with a schema. Relations are the unit of data
/// exchanged between the remote-DBMS simulator, the CMS cache, and the
/// relational operators. Bag semantics: duplicates are allowed unless a
/// `Distinct` pass is applied.
class Relation {
 public:
  Relation() = default;
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }

  size_t NumTuples() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& tuple(size_t i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& mutable_tuples() { return tuples_; }

  /// Appends a tuple; it must have exactly one value per schema column.
  Status Append(Tuple t);

  /// Appends without arity checking (hot path for operators that construct
  /// well-formed tuples).
  void AppendUnchecked(Tuple t) { tuples_.push_back(std::move(t)); }

  void Clear() { tuples_.clear(); }

  /// Approximate in-memory size, for cache budgeting.
  size_t ByteSize() const;

  /// Multi-line rendering: header then one line per tuple (for debugging
  /// and examples; capped at `max_rows`).
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace braid::rel

#endif  // BRAID_RELATIONAL_RELATION_H_
