#ifndef BRAID_RELATIONAL_SCHEMA_H_
#define BRAID_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/value.h"

namespace braid::rel {

/// Name and declared type of one column.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;  // kNull means "any type".

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of columns describing the tuples of a relation.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  /// Convenience: columns with unconstrained type.
  static Schema FromNames(const std::vector<std::string>& names);

  size_t size() const { return columns_.size(); }
  bool empty() const { return columns_.empty(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  /// Index of the column named `name`, or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& name) const;

  /// Concatenation of this schema with `other` (for joins / products).
  Schema Concat(const Schema& other) const;

  /// Schema restricted to the given column positions, in order.
  Schema Project(const std::vector<size_t>& indices) const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

  /// Renders "(a:INT, b:STRING)".
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace braid::rel

#endif  // BRAID_RELATIONAL_SCHEMA_H_
