#ifndef BRAID_RELATIONAL_INDEX_H_
#define BRAID_RELATIONAL_INDEX_H_

#include <unordered_map>
#include <vector>

#include "relational/relation.h"
#include "relational/value.h"

namespace braid::rel {

/// A hash index over one column of a relation, mapping a value to the row
/// positions that carry it. This is the CMS's "attribute index" (paper
/// §4.2.1: consumer-annotated attributes are prime candidates for indexing)
/// and also powers hash joins.
///
/// The index snapshots the relation at build time; it does not track later
/// mutations. The CMS rebuilds indexes when a cache element is replaced.
class HashIndex {
 public:
  /// Builds an index on `column` of `relation`.
  HashIndex(const Relation& relation, size_t column);

  size_t column() const { return column_; }
  size_t NumDistinctKeys() const { return buckets_.size(); }

  /// Row positions whose `column` value equals `key` (possibly empty).
  const std::vector<size_t>& Lookup(const Value& key) const;

  /// Approximate memory footprint for cache accounting.
  size_t ByteSize() const;

 private:
  size_t column_;
  std::unordered_map<Value, std::vector<size_t>, ValueHash> buckets_;
  static const std::vector<size_t> kEmpty;
};

}  // namespace braid::rel

#endif  // BRAID_RELATIONAL_INDEX_H_
