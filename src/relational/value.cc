#include "relational/value.h"

#include <cmath>
#include <sstream>

namespace braid::rel {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

int Value::Compare(const Value& other) const {
  const ValueType lt = type();
  const ValueType rt = other.type();
  // NULL sorts first.
  if (lt == ValueType::kNull || rt == ValueType::kNull) {
    if (lt == rt) return 0;
    return lt == ValueType::kNull ? -1 : 1;
  }
  // Numeric cross-type comparison.
  if (IsNumeric() && other.IsNumeric()) {
    if (lt == ValueType::kInt && rt == ValueType::kInt) {
      const int64_t a = AsInt();
      const int64_t b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    const double a = NumericValue();
    const double b = other.NumericValue();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  // Mixed numeric/string: order by type tag.
  if (lt != rt) {
    return static_cast<int>(lt) < static_cast<int>(rt) ? -1 : 1;
  }
  // Both strings.
  return AsString().compare(other.AsString()) < 0
             ? -1
             : (AsString() == other.AsString() ? 0 : 1);
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt:
      // Hash ints through double when they are exactly representable so
      // that Value::Int(2) and Value::Double(2.0) hash alike (they compare
      // equal). 64-bit ints beyond 2^53 lose precision as doubles, but such
      // an int can only compare equal to itself among ints anyway; for
      // hashing consistency we still route through double.
      return std::hash<double>()(static_cast<double>(AsInt()));
    case ValueType::kDouble:
      return std::hash<double>()(AsDouble());
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::ByteSize() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return 16 + AsString().size();
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace braid::rel
