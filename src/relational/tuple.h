#ifndef BRAID_RELATIONAL_TUPLE_H_
#define BRAID_RELATIONAL_TUPLE_H_

#include <string>
#include <vector>

#include "relational/value.h"

namespace braid::rel {

/// A row: one `Value` per schema column.
using Tuple = std::vector<Value>;

/// Hash of a whole tuple, combining per-value hashes.
struct TupleHash {
  size_t operator()(const Tuple& t) const {
    size_t h = 0x345678;
    for (const Value& v : t) {
      h = h * 1000003 ^ v.Hash();
    }
    return h;
  }
};

/// Renders "(1, 'a', NULL)".
inline std::string TupleToString(const Tuple& t) {
  std::string s = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) s += ", ";
    s += t[i].ToString();
  }
  s += ")";
  return s;
}

/// Approximate in-memory footprint of a tuple, for cache accounting.
inline size_t TupleByteSize(const Tuple& t) {
  size_t total = 16;  // vector overhead
  for (const Value& v : t) total += v.ByteSize();
  return total;
}

}  // namespace braid::rel

#endif  // BRAID_RELATIONAL_TUPLE_H_
