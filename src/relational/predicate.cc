#include "relational/predicate.h"

#include <sstream>

namespace braid::rel {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCompare(CompareOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return !lhs.is_null() && !rhs.is_null() && lhs < rhs;
    case CompareOp::kLe:
      return !lhs.is_null() && !rhs.is_null() && lhs <= rhs;
    case CompareOp::kGt:
      return !lhs.is_null() && !rhs.is_null() && lhs > rhs;
    case CompareOp::kGe:
      return !lhs.is_null() && !rhs.is_null() && lhs >= rhs;
  }
  return false;
}

CompareOp ReverseCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

PredicatePtr Predicate::True() {
  return std::shared_ptr<Predicate>(new Predicate(Kind::kTrue));
}

PredicatePtr Predicate::ColumnConst(size_t col, CompareOp op, Value constant) {
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kColumnConst));
  p->lhs_col_ = col;
  p->op_ = op;
  p->constant_ = std::move(constant);
  return p;
}

PredicatePtr Predicate::ColumnColumn(size_t lhs_col, CompareOp op,
                                     size_t rhs_col) {
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kColumnColumn));
  p->lhs_col_ = lhs_col;
  p->op_ = op;
  p->rhs_col_ = rhs_col;
  return p;
}

PredicatePtr Predicate::And(std::vector<PredicatePtr> children) {
  if (children.empty()) return True();
  if (children.size() == 1) return children[0];
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kAnd));
  p->children_ = std::move(children);
  return p;
}

PredicatePtr Predicate::Or(std::vector<PredicatePtr> children) {
  if (children.size() == 1) return children[0];
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kOr));
  p->children_ = std::move(children);
  return p;
}

PredicatePtr Predicate::Not(PredicatePtr child) {
  auto p = std::shared_ptr<Predicate>(new Predicate(Kind::kNot));
  p->children_.push_back(std::move(child));
  return p;
}

bool Predicate::Eval(const Tuple& t) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kColumnConst:
      return EvalCompare(op_, t[lhs_col_], constant_);
    case Kind::kColumnColumn:
      return EvalCompare(op_, t[lhs_col_], t[rhs_col_]);
    case Kind::kAnd:
      for (const auto& c : children_) {
        if (!c->Eval(t)) return false;
      }
      return true;
    case Kind::kOr:
      for (const auto& c : children_) {
        if (c->Eval(t)) return true;
      }
      return false;
    case Kind::kNot:
      return !children_[0]->Eval(t);
  }
  return false;
}

std::string Predicate::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kTrue:
      os << "TRUE";
      break;
    case Kind::kColumnConst:
      os << "#" << lhs_col_ << " " << CompareOpSymbol(op_) << " "
         << constant_.ToString();
      break;
    case Kind::kColumnColumn:
      os << "#" << lhs_col_ << " " << CompareOpSymbol(op_) << " #" << rhs_col_;
      break;
    case Kind::kAnd:
    case Kind::kOr: {
      os << "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) os << (kind_ == Kind::kAnd ? " AND " : " OR ");
        os << children_[i]->ToString();
      }
      os << ")";
      break;
    }
    case Kind::kNot:
      os << "NOT " << children_[0]->ToString();
      break;
  }
  return os.str();
}

}  // namespace braid::rel
