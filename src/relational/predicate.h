#ifndef BRAID_RELATIONAL_PREDICATE_H_
#define BRAID_RELATIONAL_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/tuple.h"
#include "relational/value.h"

namespace braid::rel {

/// Comparison operator for predicate leaves.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CompareOpSymbol(CompareOp op);

/// Evaluates `lhs op rhs` under the Value total order. Comparisons with
/// NULL are false (SQL-like three-valued logic collapsed to false), except
/// kEq/kNe which treat NULL = NULL as true (needed for join semantics on
/// generated data, which never contains NULL keys in practice).
bool EvalCompare(CompareOp op, const Value& lhs, const Value& rhs);

/// Flips an operator across its arguments: (a < b) == (b > a).
CompareOp ReverseCompareOp(CompareOp op);

/// A boolean expression tree over the columns of a single (possibly
/// concatenated) tuple. Leaves compare a column with a constant or with
/// another column.
class Predicate {
 public:
  enum class Kind {
    kTrue,          // Always true.
    kColumnConst,   // tuple[lhs_col] op constant
    kColumnColumn,  // tuple[lhs_col] op tuple[rhs_col]
    kAnd,
    kOr,
    kNot,
  };

  /// Always-true predicate.
  static std::shared_ptr<Predicate> True();
  static std::shared_ptr<Predicate> ColumnConst(size_t col, CompareOp op,
                                                Value constant);
  static std::shared_ptr<Predicate> ColumnColumn(size_t lhs_col, CompareOp op,
                                                 size_t rhs_col);
  static std::shared_ptr<Predicate> And(
      std::vector<std::shared_ptr<Predicate>> children);
  static std::shared_ptr<Predicate> Or(
      std::vector<std::shared_ptr<Predicate>> children);
  static std::shared_ptr<Predicate> Not(std::shared_ptr<Predicate> child);

  Kind kind() const { return kind_; }
  size_t lhs_col() const { return lhs_col_; }
  size_t rhs_col() const { return rhs_col_; }
  CompareOp op() const { return op_; }
  const Value& constant() const { return constant_; }
  const std::vector<std::shared_ptr<Predicate>>& children() const {
    return children_;
  }

  /// Evaluates against one tuple.
  bool Eval(const Tuple& t) const;

  /// Renders e.g. "(#0 = 3 AND #1 < #2)".
  std::string ToString() const;

 private:
  explicit Predicate(Kind kind) : kind_(kind) {}

  Kind kind_;
  size_t lhs_col_ = 0;
  size_t rhs_col_ = 0;
  CompareOp op_ = CompareOp::kEq;
  Value constant_;
  std::vector<std::shared_ptr<Predicate>> children_;
};

using PredicatePtr = std::shared_ptr<Predicate>;

}  // namespace braid::rel

#endif  // BRAID_RELATIONAL_PREDICATE_H_
