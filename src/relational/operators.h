#ifndef BRAID_RELATIONAL_OPERATORS_H_
#define BRAID_RELATIONAL_OPERATORS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/predicate.h"
#include "relational/relation.h"

namespace braid::rel {

/// Pair of column positions equated by a join: left.tuple[left_col] ==
/// right.tuple[right_col].
struct JoinKey {
  size_t left_col;
  size_t right_col;
};

/// Projection of `t` onto the left (or right) columns of `keys` — the
/// composite join key that HashJoin and its parallel variant hash on.
Tuple JoinKeyTuple(const Tuple& t, const std::vector<JoinKey>& keys,
                   bool left_side);

/// σ: tuples of `input` satisfying `pred`.
Relation Select(const Relation& input, const Predicate& pred);

/// π: `input` restricted to `columns` (positions; duplicates allowed). Bag
/// semantics — no duplicate elimination.
Relation Project(const Relation& input, const std::vector<size_t>& columns);

/// Equi-join via hashing on the full composite key (all key columns feed
/// the hash, so a skewed first column cannot degrade the build to a few
/// giant buckets); `residual` (over the concatenated tuple) is checked per
/// matching pair. With no keys this degrades to a filtered cross product.
/// Output order: for each probe-side tuple in input order, matching
/// build-side tuples in input order.
Relation HashJoin(const Relation& left, const Relation& right,
                  const std::vector<JoinKey>& keys,
                  const PredicatePtr& residual = nullptr);

/// Nested-loop join with an arbitrary predicate over the concatenated
/// tuple. Baseline used by tests to validate HashJoin.
Relation NestedLoopJoin(const Relation& left, const Relation& right,
                        const Predicate& pred);

/// Bag union. Schemas must have equal arity.
Result<Relation> Union(const Relation& left, const Relation& right);

/// Set difference (left tuples not present in right; duplicates in left
/// collapse to multiplicity max(l - r, 0) per distinct tuple).
Result<Relation> Difference(const Relation& left, const Relation& right);

/// Duplicate elimination.
Relation Distinct(const Relation& input);

/// Sorts by the given columns ascending (lexicographic).
Relation Sort(const Relation& input, const std::vector<size_t>& columns);

/// Aggregation function kinds.
enum class AggFn { kCount, kSum, kMin, kMax, kAvg };

struct AggSpec {
  AggFn fn;
  size_t column = 0;  // Ignored for kCount.
  std::string output_name;
};

/// Running state for one aggregate within one group. Public so the
/// parallel executor can keep per-worker partials and merge them
/// (`src/exec/parallel_ops.cc`); Merge(a, b) after disjoint Adds is
/// equivalent to Adding both input ranges in order (for kSum this holds
/// bit-exactly only when the addends are exactly representable, e.g.
/// integer-valued columns — see DESIGN.md on parallel determinism).
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool any = false;
  Value min;
  Value max;

  void Add(const Value& v);

  /// Folds another partial (built from a later input range) into this one.
  void Merge(const AggState& other);

  Value Finish(AggFn fn) const;
};

/// Groups `input` by `group_by` columns and computes each aggregate.
/// Output schema: group columns then one column per AggSpec. With empty
/// `group_by`, produces a single row (even over an empty input for kCount).
Relation Aggregate(const Relation& input, const std::vector<size_t>& group_by,
                   const std::vector<AggSpec>& aggs);

}  // namespace braid::rel

#endif  // BRAID_RELATIONAL_OPERATORS_H_
