#ifndef BRAID_RELATIONAL_VALUE_H_
#define BRAID_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

namespace braid::rel {

/// Runtime type of a `Value`.
enum class ValueType {
  kNull = 0,
  kInt,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

/// A single attribute value: SQL-style NULL, 64-bit integer, double, or
/// string. Values are small value types; copies are cheap except for long
/// strings.
///
/// Ordering: NULL sorts before every non-NULL value. Int and double compare
/// numerically with each other; comparing a numeric with a string orders by
/// type tag (numeric < string). This gives every pair of values a total
/// order, which the sort/join operators rely on.
class Value {
 public:
  /// Constructs NULL.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  /// Accessors require the matching type (checked by assert in debug).
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric value as double for either int or double payloads.
  double NumericValue() const {
    return type() == ValueType::kInt ? static_cast<double>(AsInt())
                                     : AsDouble();
  }
  bool IsNumeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  /// Three-way comparison implementing the total order documented above.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Hash consistent with operator== (an int and a double that compare
  /// equal hash identically).
  size_t Hash() const;

  /// Renders the value for display: NULL, 42, 3.5, 'text'.
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes, used for cache accounting.
  size_t ByteSize() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace braid::rel

#endif  // BRAID_RELATIONAL_VALUE_H_
