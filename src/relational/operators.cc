#include "relational/operators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "relational/index.h"

namespace braid::rel {

Relation Select(const Relation& input, const Predicate& pred) {
  Relation out(StrCat("select(", input.name(), ")"), input.schema());
  out.mutable_tuples().reserve(input.NumTuples());
  for (const Tuple& t : input.tuples()) {
    if (pred.Eval(t)) out.AppendUnchecked(t);
  }
  return out;
}

Relation Project(const Relation& input, const std::vector<size_t>& columns) {
  Relation out(StrCat("project(", input.name(), ")"),
               input.schema().Project(columns));
  out.mutable_tuples().reserve(input.NumTuples());
  for (const Tuple& t : input.tuples()) {
    Tuple projected;
    projected.reserve(columns.size());
    for (size_t c : columns) projected.push_back(t[c]);
    out.AppendUnchecked(std::move(projected));
  }
  return out;
}

Tuple JoinKeyTuple(const Tuple& t, const std::vector<JoinKey>& keys,
                   bool left_side) {
  Tuple key;
  key.reserve(keys.size());
  for (const JoinKey& k : keys) {
    key.push_back(t[left_side ? k.left_col : k.right_col]);
  }
  return key;
}

Relation HashJoin(const Relation& left, const Relation& right,
                  const std::vector<JoinKey>& keys,
                  const PredicatePtr& residual) {
  Relation out(StrCat("join(", left.name(), ",", right.name(), ")"),
               left.schema().Concat(right.schema()));

  if (keys.empty()) {
    // Cross product with optional residual filter.
    for (const Tuple& lt : left.tuples()) {
      for (const Tuple& rt : right.tuples()) {
        Tuple combined = lt;
        combined.insert(combined.end(), rt.begin(), rt.end());
        if (residual == nullptr || residual->Eval(combined)) {
          out.AppendUnchecked(std::move(combined));
        }
      }
    }
    return out;
  }

  // Build on the smaller side to bound hash-table size. The table is keyed
  // on the full composite key, so every bucket holds true matches only —
  // no per-candidate filtering on the remaining key columns, which on a
  // skewed first column used to degrade toward a cross product.
  const bool build_left = left.NumTuples() <= right.NumTuples();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;

  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> index;
  index.reserve(build.NumTuples());
  for (size_t row = 0; row < build.NumTuples(); ++row) {
    index[JoinKeyTuple(build.tuple(row), keys, build_left)].push_back(row);
  }

  auto emit_if_match = [&](const Tuple& lt, const Tuple& rt) {
    Tuple combined = lt;
    combined.insert(combined.end(), rt.begin(), rt.end());
    if (residual != nullptr && !residual->Eval(combined)) return;
    out.AppendUnchecked(std::move(combined));
  };
  for (const Tuple& pt : probe.tuples()) {
    auto it = index.find(JoinKeyTuple(pt, keys, !build_left));
    if (it == index.end()) continue;
    for (size_t row : it->second) {
      const Tuple& bt = build.tuple(row);
      if (build_left) {
        emit_if_match(bt, pt);
      } else {
        emit_if_match(pt, bt);
      }
    }
  }
  return out;
}

Relation NestedLoopJoin(const Relation& left, const Relation& right,
                        const Predicate& pred) {
  Relation out(StrCat("nljoin(", left.name(), ",", right.name(), ")"),
               left.schema().Concat(right.schema()));
  for (const Tuple& lt : left.tuples()) {
    for (const Tuple& rt : right.tuples()) {
      Tuple combined = lt;
      combined.insert(combined.end(), rt.begin(), rt.end());
      if (pred.Eval(combined)) out.AppendUnchecked(std::move(combined));
    }
  }
  return out;
}

Result<Relation> Union(const Relation& left, const Relation& right) {
  if (left.schema().size() != right.schema().size()) {
    return Status::InvalidArgument(
        StrCat("union arity mismatch: ", left.schema().size(), " vs ",
               right.schema().size()));
  }
  Relation out(StrCat("union(", left.name(), ",", right.name(), ")"),
               left.schema());
  out.mutable_tuples().reserve(left.NumTuples() + right.NumTuples());
  for (const Tuple& t : left.tuples()) out.AppendUnchecked(t);
  for (const Tuple& t : right.tuples()) out.AppendUnchecked(t);
  return out;
}

Result<Relation> Difference(const Relation& left, const Relation& right) {
  if (left.schema().size() != right.schema().size()) {
    return Status::InvalidArgument(
        StrCat("difference arity mismatch: ", left.schema().size(), " vs ",
               right.schema().size()));
  }
  std::unordered_map<Tuple, size_t, TupleHash> right_counts;
  for (const Tuple& t : right.tuples()) ++right_counts[t];
  Relation out(StrCat("diff(", left.name(), ",", right.name(), ")"),
               left.schema());
  for (const Tuple& t : left.tuples()) {
    auto it = right_counts.find(t);
    if (it != right_counts.end() && it->second > 0) {
      --it->second;
      continue;
    }
    out.AppendUnchecked(t);
  }
  return out;
}

Relation Distinct(const Relation& input) {
  Relation out(StrCat("distinct(", input.name(), ")"), input.schema());
  std::unordered_set<Tuple, TupleHash> seen;
  seen.reserve(input.NumTuples());
  for (const Tuple& t : input.tuples()) {
    if (!seen.insert(t).second) continue;
    out.AppendUnchecked(t);
  }
  return out;
}

Relation Sort(const Relation& input, const std::vector<size_t>& columns) {
  Relation out(StrCat("sort(", input.name(), ")"), input.schema());
  out.mutable_tuples() = input.tuples();
  std::stable_sort(out.mutable_tuples().begin(), out.mutable_tuples().end(),
                   [&columns](const Tuple& a, const Tuple& b) {
                     for (size_t c : columns) {
                       int cmp = a[c].Compare(b[c]);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  return out;
}

void AggState::Add(const Value& v) {
  ++count;
  if (v.is_null()) return;
  if (v.IsNumeric()) sum += v.NumericValue();
  if (!any || v < min) min = v;
  if (!any || v > max) max = v;
  any = true;
}

void AggState::Merge(const AggState& other) {
  count += other.count;
  sum += other.sum;
  if (other.any) {
    if (!any || other.min < min) min = other.min;
    if (!any || other.max > max) max = other.max;
    any = true;
  }
}

Value AggState::Finish(AggFn fn) const {
  switch (fn) {
    case AggFn::kCount:
      return Value::Int(count);
    case AggFn::kSum:
      return Value::Double(sum);
    case AggFn::kMin:
      return any ? min : Value::Null();
    case AggFn::kMax:
      return any ? max : Value::Null();
    case AggFn::kAvg:
      return count > 0 ? Value::Double(sum / static_cast<double>(count))
                       : Value::Null();
  }
  return Value::Null();
}

Relation Aggregate(const Relation& input, const std::vector<size_t>& group_by,
                   const std::vector<AggSpec>& aggs) {
  Schema out_schema = input.schema().Project(group_by);
  for (const AggSpec& a : aggs) {
    out_schema.AddColumn(Column{a.output_name, ValueType::kNull});
  }
  Relation out(StrCat("agg(", input.name(), ")"), std::move(out_schema));

  std::unordered_map<Tuple, std::vector<AggState>, TupleHash> groups;
  std::vector<Tuple> group_order;  // Deterministic output order.
  for (const Tuple& t : input.tuples()) {
    Tuple key;
    key.reserve(group_by.size());
    for (size_t c : group_by) key.push_back(t[c]);
    auto [it, inserted] = groups.emplace(key, std::vector<AggState>());
    if (inserted) {
      it->second.resize(aggs.size());
      group_order.push_back(key);
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (aggs[i].fn == AggFn::kCount) {
        it->second[i].Add(Value::Int(1));
      } else {
        it->second[i].Add(t[aggs[i].column]);
      }
    }
  }

  // A global aggregate (no GROUP BY) over an empty input still produces one
  // row: COUNT is 0 and other aggregates are NULL.
  if (group_by.empty() && group_order.empty()) {
    group_order.push_back(Tuple{});
    groups.emplace(Tuple{}, std::vector<AggState>(aggs.size()));
  }

  for (const Tuple& key : group_order) {
    const std::vector<AggState>& states = groups.at(key);
    Tuple row = key;
    for (size_t i = 0; i < aggs.size(); ++i) {
      row.push_back(states[i].Finish(aggs[i].fn));
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

}  // namespace braid::rel
