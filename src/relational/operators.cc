#include "relational/operators.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"
#include "relational/index.h"

namespace braid::rel {

Relation Select(const Relation& input, const Predicate& pred) {
  Relation out(StrCat("select(", input.name(), ")"), input.schema());
  for (const Tuple& t : input.tuples()) {
    if (pred.Eval(t)) out.AppendUnchecked(t);
  }
  return out;
}

Relation Project(const Relation& input, const std::vector<size_t>& columns) {
  Relation out(StrCat("project(", input.name(), ")"),
               input.schema().Project(columns));
  for (const Tuple& t : input.tuples()) {
    Tuple projected;
    projected.reserve(columns.size());
    for (size_t c : columns) projected.push_back(t[c]);
    out.AppendUnchecked(std::move(projected));
  }
  return out;
}

Relation HashJoin(const Relation& left, const Relation& right,
                  const std::vector<JoinKey>& keys,
                  const PredicatePtr& residual) {
  Relation out(StrCat("join(", left.name(), ",", right.name(), ")"),
               left.schema().Concat(right.schema()));

  auto emit_if_match = [&](const Tuple& lt, const Tuple& rt) {
    for (size_t k = 1; k < keys.size(); ++k) {
      if (lt[keys[k].left_col] != rt[keys[k].right_col]) return;
    }
    Tuple combined = lt;
    combined.insert(combined.end(), rt.begin(), rt.end());
    if (residual != nullptr && !residual->Eval(combined)) return;
    out.AppendUnchecked(std::move(combined));
  };

  if (keys.empty()) {
    // Cross product with optional residual filter.
    for (const Tuple& lt : left.tuples()) {
      for (const Tuple& rt : right.tuples()) {
        Tuple combined = lt;
        combined.insert(combined.end(), rt.begin(), rt.end());
        if (residual == nullptr || residual->Eval(combined)) {
          out.AppendUnchecked(std::move(combined));
        }
      }
    }
    return out;
  }

  // Build on the smaller side to bound hash-table size.
  const bool build_left = left.NumTuples() <= right.NumTuples();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;
  const size_t build_col = build_left ? keys[0].left_col : keys[0].right_col;
  const size_t probe_col = build_left ? keys[0].right_col : keys[0].left_col;

  HashIndex index(build, build_col);
  for (const Tuple& pt : probe.tuples()) {
    for (size_t row : index.Lookup(pt[probe_col])) {
      const Tuple& bt = build.tuple(row);
      if (build_left) {
        emit_if_match(bt, pt);
      } else {
        emit_if_match(pt, bt);
      }
    }
  }
  return out;
}

Relation NestedLoopJoin(const Relation& left, const Relation& right,
                        const Predicate& pred) {
  Relation out(StrCat("nljoin(", left.name(), ",", right.name(), ")"),
               left.schema().Concat(right.schema()));
  for (const Tuple& lt : left.tuples()) {
    for (const Tuple& rt : right.tuples()) {
      Tuple combined = lt;
      combined.insert(combined.end(), rt.begin(), rt.end());
      if (pred.Eval(combined)) out.AppendUnchecked(std::move(combined));
    }
  }
  return out;
}

Result<Relation> Union(const Relation& left, const Relation& right) {
  if (left.schema().size() != right.schema().size()) {
    return Status::InvalidArgument(
        StrCat("union arity mismatch: ", left.schema().size(), " vs ",
               right.schema().size()));
  }
  Relation out(StrCat("union(", left.name(), ",", right.name(), ")"),
               left.schema());
  for (const Tuple& t : left.tuples()) out.AppendUnchecked(t);
  for (const Tuple& t : right.tuples()) out.AppendUnchecked(t);
  return out;
}

Result<Relation> Difference(const Relation& left, const Relation& right) {
  if (left.schema().size() != right.schema().size()) {
    return Status::InvalidArgument(
        StrCat("difference arity mismatch: ", left.schema().size(), " vs ",
               right.schema().size()));
  }
  std::unordered_map<Tuple, size_t, TupleHash> right_counts;
  for (const Tuple& t : right.tuples()) ++right_counts[t];
  Relation out(StrCat("diff(", left.name(), ",", right.name(), ")"),
               left.schema());
  for (const Tuple& t : left.tuples()) {
    auto it = right_counts.find(t);
    if (it != right_counts.end() && it->second > 0) {
      --it->second;
      continue;
    }
    out.AppendUnchecked(t);
  }
  return out;
}

Relation Distinct(const Relation& input) {
  Relation out(StrCat("distinct(", input.name(), ")"), input.schema());
  std::unordered_map<Tuple, bool, TupleHash> seen;
  for (const Tuple& t : input.tuples()) {
    if (!seen.emplace(t, true).second) continue;
    out.AppendUnchecked(t);
  }
  return out;
}

Relation Sort(const Relation& input, const std::vector<size_t>& columns) {
  Relation out(StrCat("sort(", input.name(), ")"), input.schema());
  out.mutable_tuples() = input.tuples();
  std::stable_sort(out.mutable_tuples().begin(), out.mutable_tuples().end(),
                   [&columns](const Tuple& a, const Tuple& b) {
                     for (size_t c : columns) {
                       int cmp = a[c].Compare(b[c]);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  return out;
}

namespace {

/// Running state for one aggregate within one group.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool any = false;
  Value min;
  Value max;

  void Add(const Value& v) {
    ++count;
    if (v.is_null()) return;
    if (v.IsNumeric()) sum += v.NumericValue();
    if (!any || v < min) min = v;
    if (!any || v > max) max = v;
    any = true;
  }

  Value Finish(AggFn fn) const {
    switch (fn) {
      case AggFn::kCount:
        return Value::Int(count);
      case AggFn::kSum:
        return Value::Double(sum);
      case AggFn::kMin:
        return any ? min : Value::Null();
      case AggFn::kMax:
        return any ? max : Value::Null();
      case AggFn::kAvg:
        return count > 0 ? Value::Double(sum / static_cast<double>(count))
                         : Value::Null();
    }
    return Value::Null();
  }
};

}  // namespace

Relation Aggregate(const Relation& input, const std::vector<size_t>& group_by,
                   const std::vector<AggSpec>& aggs) {
  Schema out_schema = input.schema().Project(group_by);
  for (const AggSpec& a : aggs) {
    out_schema.AddColumn(Column{a.output_name, ValueType::kNull});
  }
  Relation out(StrCat("agg(", input.name(), ")"), std::move(out_schema));

  std::unordered_map<Tuple, std::vector<AggState>, TupleHash> groups;
  std::vector<Tuple> group_order;  // Deterministic output order.
  for (const Tuple& t : input.tuples()) {
    Tuple key;
    key.reserve(group_by.size());
    for (size_t c : group_by) key.push_back(t[c]);
    auto [it, inserted] = groups.emplace(key, std::vector<AggState>());
    if (inserted) {
      it->second.resize(aggs.size());
      group_order.push_back(key);
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (aggs[i].fn == AggFn::kCount) {
        it->second[i].Add(Value::Int(1));
      } else {
        it->second[i].Add(t[aggs[i].column]);
      }
    }
  }

  // A global aggregate (no GROUP BY) over an empty input still produces one
  // row: COUNT is 0 and other aggregates are NULL.
  if (group_by.empty() && group_order.empty()) {
    group_order.push_back(Tuple{});
    groups.emplace(Tuple{}, std::vector<AggState>(aggs.size()));
  }

  for (const Tuple& key : group_order) {
    const std::vector<AggState>& states = groups.at(key);
    Tuple row = key;
    for (size_t i = 0; i < aggs.size(); ++i) {
      row.push_back(states[i].Finish(aggs[i].fn));
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

}  // namespace braid::rel
