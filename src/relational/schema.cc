#include "relational/schema.h"

#include <sstream>

namespace braid::rel {

Schema Schema::FromNames(const std::vector<std::string>& names) {
  std::vector<Column> cols;
  cols.reserve(names.size());
  for (const auto& n : names) cols.push_back(Column{n, ValueType::kNull});
  return Schema(std::move(cols));
}

std::optional<size_t> Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> cols = columns_;
  cols.insert(cols.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (size_t i : indices) cols.push_back(columns_[i]);
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].name;
    if (columns_[i].type != ValueType::kNull) {
      os << ":" << ValueTypeName(columns_[i].type);
    }
  }
  os << ")";
  return os.str();
}

}  // namespace braid::rel
