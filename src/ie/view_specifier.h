#ifndef BRAID_IE_VIEW_SPECIFIER_H_
#define BRAID_IE_VIEW_SPECIFIER_H_

#include <map>
#include <string>
#include <vector>

#include "advice/view_spec.h"
#include "common/status.h"
#include "ie/problem_graph.h"
#include "logic/knowledge_base.h"

namespace braid::ie {

/// One step of a rule's execution plan, in shaped (reordered) body order.
struct RuleItem {
  enum class Kind {
    kRun,      // a conjunction of base/built-in atoms → one CAQL query
    kCall,     // a user-defined (possibly recursive) subgoal → recursion
    kBuiltin,  // a standalone built-in evaluated by the IE
  };
  Kind kind = Kind::kCall;

  // kRun:
  std::string view_id;                 // the ViewSpec this run instantiates
  std::vector<logic::Atom> run_atoms;  // original-variable atoms

  // kCall / kBuiltin:
  logic::Atom call;       // original-variable atom
  size_t body_index = 0;  // position in the rule's original body
};

/// The per-rule plan the inference strategies execute: items in producer-
/// consumer order, all phrased in the rule's original variables so any
/// goal instance can be solved by renaming + unification.
struct RulePlan {
  std::string rule_id;
  logic::Atom head;              // original rule head
  std::vector<RuleItem> items;
};

/// The view specifier's output: the view specifications (advice) plus the
/// rule plans the strategy controller walks.
struct ViewSpecification {
  std::vector<advice::ViewSpec> views;
  std::map<std::string, RulePlan> rule_plans;  // by rule id

  const advice::ViewSpec* FindView(const std::string& id) const {
    for (const advice::ViewSpec& v : views) {
      if (v.id == id) return &v;
    }
    return nullptr;
  }
};

struct ViewSpecifierConfig {
  /// Maximum number of relation atoms per view specification (the paper's
  /// flattening-size parameter; 1 = one CAQL query per base atom, i.e. the
  /// fully interpreted end of the I-C range).
  size_t max_conjunction_size = 3;
};

/// The view specifier (paper §4.1/§4.2.1): walks the shaped problem graph,
/// groups maximal sequences of base and built-in predicates under each AND
/// node into view specifications (capped at `max_conjunction_size` base
/// atoms), computes each specification's minimum argument set
/// A = (H ∪ B) ∩ D, and derives producer/consumer binding annotations from
/// the shaper's binding patterns.
class ViewSpecifier {
 public:
  ViewSpecifier(const logic::KnowledgeBase* kb, ViewSpecifierConfig config)
      : kb_(kb), config_(config) {}

  Result<ViewSpecification> Specify(const ProblemGraph& graph) const;

 private:
  void VisitOr(const OrNode& node, ViewSpecification* out,
               int* view_counter) const;
  void VisitAnd(const AndNode& node, ViewSpecification* out,
                int* view_counter) const;

  const logic::KnowledgeBase* kb_;
  ViewSpecifierConfig config_;
};

}  // namespace braid::ie

#endif  // BRAID_IE_VIEW_SPECIFIER_H_
