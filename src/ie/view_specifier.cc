#include "ie/view_specifier.h"

#include <set>

#include "caql/caql_query.h"
#include "common/strings.h"

namespace braid::ie {

namespace {

using advice::AnnotatedVar;
using advice::Binding;
using advice::ViewSpec;
using logic::Atom;
using logic::Rule;
using logic::Term;

const Rule* FindRule(const logic::KnowledgeBase& kb, const std::string& id) {
  for (const Rule& r : kb.rules()) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

/// Original-variable names bound at this subgoal's call time: positions
/// where the graph occurrence is bound (constant, or a variable the shaper
/// marked bound) and the original rule atom has a variable.
std::set<std::string> BoundOriginalVars(const OrNode& graph_node,
                                        const Atom& original_atom) {
  std::set<std::string> bound;
  for (size_t p = 0;
       p < original_atom.args.size() && p < graph_node.goal.args.size(); ++p) {
    const Term& orig = original_atom.args[p];
    if (!orig.is_variable()) continue;
    const Term& g = graph_node.goal.args[p];
    const bool is_bound =
        g.is_constant() ||
        (g.is_variable() && graph_node.bound_vars.count(g.var_name()) > 0);
    if (is_bound) bound.insert(orig.var_name());
  }
  return bound;
}

bool RunEligible(const OrNode& node) {
  // Negated literals never join runs: the remote DML has no NOT, and the
  // strategy controller evaluates them by negation-as-failure.
  if (node.goal.negated) return false;
  return node.leaf == OrNode::LeafKind::kBase ||
         node.leaf == OrNode::LeafKind::kBuiltin;
}

bool IsBaseLeaf(const OrNode& node) {
  return node.leaf == OrNode::LeafKind::kBase;
}

}  // namespace

Result<ViewSpecification> ViewSpecifier::Specify(
    const ProblemGraph& graph) const {
  if (graph.root == nullptr) {
    return Status::InvalidArgument("empty problem graph");
  }
  ViewSpecification out;
  int view_counter = 1;
  VisitOr(*graph.root, &out, &view_counter);
  return out;
}

void ViewSpecifier::VisitOr(const OrNode& node, ViewSpecification* out,
                            int* view_counter) const {
  for (const auto& alt : node.alternatives) {
    VisitAnd(*alt, out, view_counter);
  }
}

void ViewSpecifier::VisitAnd(const AndNode& node, ViewSpecification* out,
                             int* view_counter) const {
  // Recurse first so nested definitions get plans too.
  for (const auto& sub : node.subgoals) {
    VisitOr(*sub, out, view_counter);
  }
  if (out->rule_plans.count(node.rule_id) > 0) {
    return;  // First occurrence of the rule defined the plan.
  }
  const Rule* rule = FindRule(*kb_, node.rule_id);
  if (rule == nullptr) return;

  RulePlan plan;
  plan.rule_id = node.rule_id;
  plan.head = rule->head;

  // Variables of the rule head (H) and full body, for minimum argument
  // sets.
  const std::vector<std::string> head_var_list = rule->head.Variables();
  const std::set<std::string> head_vars(head_var_list.begin(),
                                        head_var_list.end());

  // Walk subgoals in shaped order, grouping run-eligible spans.
  size_t i = 0;
  const auto& subs = node.subgoals;
  while (i < subs.size()) {
    if (!RunEligible(*subs[i])) {
      RuleItem item;
      item.kind = RuleItem::Kind::kCall;
      item.call = rule->body[subs[i]->body_index];
      item.body_index = subs[i]->body_index;
      plan.items.push_back(std::move(item));
      ++i;
      continue;
    }
    // Maximal run-eligible span.
    size_t j = i;
    while (j < subs.size() && RunEligible(*subs[j])) ++j;
    // Split the span into runs of at most max_conjunction_size base atoms;
    // built-ins ride along with the run open when they appear.
    size_t k = i;
    while (k < j) {
      std::vector<size_t> span_members;  // indices into subs
      size_t base_count = 0;
      while (k < j) {
        const bool is_base = IsBaseLeaf(*subs[k]);
        if (is_base && base_count == config_.max_conjunction_size) break;
        span_members.push_back(k);
        if (is_base) ++base_count;
        ++k;
      }
      if (base_count == 0) {
        // Built-ins with no base atom: standalone IE-evaluated items.
        for (size_t m : span_members) {
          RuleItem item;
          item.kind = RuleItem::Kind::kBuiltin;
          item.call = rule->body[subs[m]->body_index];
          item.body_index = subs[m]->body_index;
          plan.items.push_back(std::move(item));
        }
        continue;
      }
      // Build the view specification for this run.
      ViewSpec view;
      view.id = StrCat("d", (*view_counter)++);
      view.source_rules.push_back(node.rule_id);
      std::set<std::string> run_vars;       // D
      std::set<std::string> consumer_vars;  // bound at call time
      std::set<size_t> run_body_indices;
      for (size_t m : span_members) {
        const Atom& orig = rule->body[subs[m]->body_index];
        view.body.push_back(orig);
        run_body_indices.insert(subs[m]->body_index);
        for (const std::string& v : orig.Variables()) run_vars.insert(v);
        for (const std::string& v : BoundOriginalVars(*subs[m], orig)) {
          consumer_vars.insert(v);
        }
      }
      // B: variables of the rest of the body.
      std::set<std::string> rest_vars;
      for (size_t bi = 0; bi < rule->body.size(); ++bi) {
        if (run_body_indices.count(bi) > 0) continue;
        for (const std::string& v : rule->body[bi].Variables()) {
          rest_vars.insert(v);
        }
      }
      // A = (H ∪ B) ∩ D, ordered by first occurrence in the run.
      for (const Atom& a : view.body) {
        for (const std::string& v : a.Variables()) {
          if (head_vars.count(v) == 0 && rest_vars.count(v) == 0) continue;
          bool already = false;
          for (const AnnotatedVar& av : view.head) {
            if (av.name == v) {
              already = true;
              break;
            }
          }
          if (already) continue;
          view.head.push_back(AnnotatedVar{
              v, consumer_vars.count(v) > 0 ? Binding::kConsumer
                                            : Binding::kProducer});
        }
      }

      RuleItem item;
      item.kind = RuleItem::Kind::kRun;
      item.view_id = view.id;
      item.run_atoms = view.body;
      plan.items.push_back(std::move(item));
      out->views.push_back(std::move(view));
    }
    i = j;
  }
  out->rule_plans.emplace(plan.rule_id, std::move(plan));
}

}  // namespace braid::ie
