#include "ie/path_creator.h"

namespace braid::ie {

namespace {

using advice::PathExpr;
using advice::PathExprPtr;
using advice::RepBound;

/// First producer variable of a query pattern, or "" if none.
std::string FirstProducer(const PathExpr& pattern) {
  if (pattern.kind() != PathExpr::Kind::kQueryPattern) return "";
  for (const advice::AnnotatedVar& v : pattern.args()) {
    if (v.binding == advice::Binding::kProducer) return v.name;
  }
  return "";
}

}  // namespace

advice::PathExprPtr PathExpressionCreator::Create(
    const ProblemGraph& graph) const {
  if (graph.root == nullptr) return nullptr;
  std::set<std::string> recursed;
  PathExprPtr body = PathOfOr(*graph.root, &recursed);
  if (body == nullptr) return nullptr;
  if (body->kind() == PathExpr::Kind::kSequence) return body;
  return PathExpr::Sequence({body}, RepBound::Fixed(1), RepBound::Fixed(1));
}

advice::PathExprPtr PathExpressionCreator::PathOfAnd(
    const AndNode& node, std::set<std::string>* recursed) const {
  auto plan_it = spec_->rule_plans.find(node.rule_id);
  if (plan_it == spec_->rule_plans.end()) return nullptr;
  const RulePlan& plan = plan_it->second;

  // Child OR node by body index, for recursing into calls.
  auto child_by_index = [&node](size_t body_index) -> const OrNode* {
    for (const auto& sub : node.subgoals) {
      if (sub->body_index == body_index) return sub.get();
    }
    return nullptr;
  };

  std::vector<PathExprPtr> elems;
  for (const RuleItem& item : plan.items) {
    switch (item.kind) {
      case RuleItem::Kind::kRun: {
        const advice::ViewSpec* view = spec_->FindView(item.view_id);
        if (view == nullptr) continue;
        elems.push_back(PathExpr::Pattern(view->id, view->head));
        break;
      }
      case RuleItem::Kind::kBuiltin:
        break;  // No CAQL emission.
      case RuleItem::Kind::kCall: {
        const OrNode* child = child_by_index(item.body_index);
        if (child == nullptr) break;
        PathExprPtr sub = PathOfOr(*child, recursed);
        if (sub != nullptr) elems.push_back(std::move(sub));
        break;
      }
    }
  }

  if (elems.empty()) return nullptr;
  if (elems.size() == 1) return elems[0];
  // Group the tail under a repetition bound by the first element's
  // producer cardinality (backtracking re-solves the tail per binding).
  const std::string producer = FirstProducer(*elems[0]);
  std::vector<PathExprPtr> tail(elems.begin() + 1, elems.end());
  PathExprPtr tail_seq = PathExpr::Sequence(
      std::move(tail), RepBound::Fixed(0),
      producer.empty() ? RepBound::Fixed(1)
                       : RepBound::Cardinality(producer));
  return PathExpr::Sequence({elems[0], std::move(tail_seq)},
                            RepBound::Fixed(1), RepBound::Fixed(1));
}

advice::PathExprPtr PathExpressionCreator::PathOfOr(
    const OrNode& node, std::set<std::string>* recursed) const {
  switch (node.leaf) {
    case OrNode::LeafKind::kBase:
    case OrNode::LeafKind::kBuiltin:
    case OrNode::LeafKind::kAggregate:
      return nullptr;  // Absorbed into runs / IE-evaluated.
    case OrNode::LeafKind::kRecursive:
      recursed->insert(node.goal.predicate);
      return nullptr;
    case OrNode::LeafKind::kExpanded:
      break;
  }

  std::vector<PathExprPtr> children;
  bool guarded = false;
  for (const auto& alt : node.alternatives) {
    auto plan_it = spec_->rule_plans.find(alt->rule_id);
    if (plan_it != spec_->rule_plans.end() &&
        !plan_it->second.items.empty() &&
        plan_it->second.items.front().kind != RuleItem::Kind::kRun) {
      guarded = true;  // Emission of this alternative is conditional.
    }
    PathExprPtr sub = PathOfAnd(*alt, recursed);
    if (sub != nullptr) children.push_back(std::move(sub));
  }
  if (children.empty()) return nullptr;
  PathExprPtr result;
  if (children.size() == 1 && !guarded) {
    result = children[0];
  } else if (guarded) {
    result = PathExpr::Alternation(std::move(children),
                                   node.alternatives_mutex ? 1 : 0);
  } else {
    result = PathExpr::Sequence(std::move(children), RepBound::Fixed(1),
                                RepBound::Fixed(1));
  }
  // This node defines a predicate that recurses below: re-entry replays
  // the whole definition group, so the repetition wraps here.
  if (recursed->erase(node.goal.predicate) > 0) {
    result = PathExpr::Sequence({std::move(result)}, RepBound::Fixed(1),
                                RepBound::Cardinality("rec"));
  }
  return result;
}

}  // namespace braid::ie
