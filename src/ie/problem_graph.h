#ifndef BRAID_IE_PROBLEM_GRAPH_H_
#define BRAID_IE_PROBLEM_GRAPH_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "logic/knowledge_base.h"

namespace braid::ie {

struct AndNode;

/// An OR node: one subgoal (relation occurrence). Its alternatives are the
/// rules defining the subgoal's predicate; leaves are base relations,
/// built-ins, or recursive re-occurrences (only a single instance of a
/// recursive definition appears per recursive relation occurrence —
/// paper §4.1).
struct OrNode {
  enum class LeafKind {
    kExpanded,   // user-defined, alternatives populated
    kBase,       // stored in the remote DBMS
    kBuiltin,    // comparison / evaluable
    kRecursive,  // recursive re-occurrence (not re-expanded)
    kAggregate,  // defined by an #agg rule (AGG second-order predicate)
  };

  logic::Atom goal;
  LeafKind leaf = LeafKind::kExpanded;
  std::vector<std::unique_ptr<AndNode>> alternatives;

  /// Position of this subgoal in its rule's original body (before any
  /// shaper reordering). Unused for the root.
  size_t body_index = 0;

  /// Filled by the shaper: goal variables bound at call time (constants
  /// propagated from the query and producer/consumer dataflow).
  std::set<std::string> bound_vars;
  /// Filled by the shaper: alternatives are pairwise mutually exclusive
  /// (from mutual-exclusion SOAs) — drives path-expression selection terms.
  bool alternatives_mutex = false;
};

/// An AND node: one rule instance. `head` is the rule head after
/// unification with the parent goal; `subgoals` are the body literals in
/// (possibly shaper-reordered) order.
struct AndNode {
  std::string rule_id;
  logic::Atom head;
  std::vector<std::unique_ptr<OrNode>> subgoals;
};

/// The problem graph: the and/or graph extracted from the predicate
/// connection graph for one AI query (paper §4.1). It is a partial proof
/// tree whose leaves are base relations, built-ins, or recursive
/// occurrences.
struct ProblemGraph {
  logic::Atom query;
  std::unique_ptr<OrNode> root;

  /// Base relations referenced anywhere in the graph — the simplest form
  /// of advice (§4.2).
  std::vector<std::string> BaseRelations() const;

  /// Multi-line indented rendering for debugging.
  std::string ToString() const;
};

/// The problem-graph extractor: performs partial evaluation of the AI
/// query over the knowledge base, expanding user-defined relations and
/// stopping at base relations, built-ins, and recursive occurrences.
class ProblemGraphExtractor {
 public:
  explicit ProblemGraphExtractor(const logic::KnowledgeBase* kb) : kb_(kb) {}

  Result<ProblemGraph> Extract(const logic::Atom& query) const;

 private:
  Result<std::unique_ptr<OrNode>> ExpandGoal(
      const logic::Atom& goal, std::vector<std::string>* expansion_stack,
      int* rename_counter) const;

  const logic::KnowledgeBase* kb_;
};

}  // namespace braid::ie

#endif  // BRAID_IE_PROBLEM_GRAPH_H_
