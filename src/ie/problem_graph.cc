#include "ie/problem_graph.h"

#include <algorithm>
#include <sstream>

#include "caql/caql_query.h"
#include "common/strings.h"
#include "logic/unify.h"

namespace braid::ie {

namespace {

using logic::Atom;
using logic::Rule;
using logic::Substitution;

void CollectBase(const OrNode& node, std::vector<std::string>* out) {
  if (node.leaf == OrNode::LeafKind::kBase) {
    if (std::find(out->begin(), out->end(), node.goal.predicate) ==
        out->end()) {
      out->push_back(node.goal.predicate);
    }
    return;
  }
  for (const auto& alt : node.alternatives) {
    for (const auto& sub : alt->subgoals) {
      CollectBase(*sub, out);
    }
  }
}

void Render(const OrNode& node, int indent, std::ostringstream* os) {
  *os << std::string(indent * 2, ' ') << "OR " << node.goal.ToString();
  switch (node.leaf) {
    case OrNode::LeafKind::kBase:
      *os << " [base]";
      break;
    case OrNode::LeafKind::kBuiltin:
      *os << " [builtin]";
      break;
    case OrNode::LeafKind::kRecursive:
      *os << " [recursive]";
      break;
    case OrNode::LeafKind::kAggregate:
      *os << " [aggregate]";
      break;
    case OrNode::LeafKind::kExpanded:
      break;
  }
  if (node.alternatives_mutex) *os << " [mutex]";
  *os << "\n";
  for (const auto& alt : node.alternatives) {
    *os << std::string(indent * 2 + 2, ' ') << "AND " << alt->rule_id << " "
        << alt->head.ToString() << "\n";
    for (const auto& sub : alt->subgoals) {
      Render(*sub, indent + 2, os);
    }
  }
}

}  // namespace

std::vector<std::string> ProblemGraph::BaseRelations() const {
  std::vector<std::string> out;
  if (root != nullptr) CollectBase(*root, &out);
  return out;
}

std::string ProblemGraph::ToString() const {
  std::ostringstream os;
  os << "problem graph for " << query.ToString() << "\n";
  if (root != nullptr) Render(*root, 1, &os);
  return os.str();
}

Result<ProblemGraph> ProblemGraphExtractor::Extract(const Atom& query) const {
  if (query.IsComparison()) {
    return Status::InvalidArgument("AI query cannot be a comparison");
  }
  std::vector<std::string> stack;
  int rename_counter = 0;
  ProblemGraph graph;
  graph.query = query;
  BRAID_ASSIGN_OR_RETURN(graph.root,
                         ExpandGoal(query, &stack, &rename_counter));
  return graph;
}

Result<std::unique_ptr<OrNode>> ProblemGraphExtractor::ExpandGoal(
    const Atom& goal, std::vector<std::string>* expansion_stack,
    int* rename_counter) const {
  auto node = std::make_unique<OrNode>();
  node->goal = goal;

  if (goal.IsComparison() ||
      caql::IsEvaluablePredicate(goal.predicate, goal.arity())) {
    node->leaf = OrNode::LeafKind::kBuiltin;
    return node;
  }
  if (kb_->IsBaseRelation(goal.predicate)) {
    node->leaf = OrNode::LeafKind::kBase;
    return node;
  }
  if (kb_->IsAggregate(goal.predicate)) {
    node->leaf = OrNode::LeafKind::kAggregate;
    return node;
  }
  if (!kb_->IsUserDefined(goal.predicate)) {
    return Status::NotFound(
        StrCat("predicate ", goal.predicate, "/", goal.arity(),
               " is neither a base relation nor defined by rules"));
  }
  // Recursive occurrence: only a single instance of the recursive
  // definition appears per recursive relation occurrence.
  if (std::find(expansion_stack->begin(), expansion_stack->end(),
                goal.predicate) != expansion_stack->end()) {
    node->leaf = OrNode::LeafKind::kRecursive;
    return node;
  }

  expansion_stack->push_back(goal.predicate);
  for (const Rule& rule : kb_->RulesFor(goal.predicate)) {
    // Standardize apart, then unify the (renamed) head with the goal. A
    // failed unification culls the alternative immediately (constant
    // propagation at extraction time).
    const std::string suffix = StrCat("_", (*rename_counter)++);
    Atom head = logic::RenameVariables(rule.head, suffix);
    auto mgu = logic::UnifyAtoms(head, goal);
    if (!mgu.has_value()) continue;

    auto and_node = std::make_unique<AndNode>();
    and_node->rule_id = rule.id;
    and_node->head = mgu->Apply(head);
    for (size_t bi = 0; bi < rule.body.size(); ++bi) {
      Atom sub = mgu->Apply(logic::RenameVariables(rule.body[bi], suffix));
      auto child = ExpandGoal(sub, expansion_stack, rename_counter);
      if (!child.ok()) {
        expansion_stack->pop_back();
        return child.status();
      }
      (*child)->body_index = bi;
      and_node->subgoals.push_back(std::move(*child));
    }
    node->alternatives.push_back(std::move(and_node));
  }
  expansion_stack->pop_back();
  return node;
}

}  // namespace braid::ie
