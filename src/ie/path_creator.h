#ifndef BRAID_IE_PATH_CREATOR_H_
#define BRAID_IE_PATH_CREATOR_H_

#include <set>
#include <string>

#include "advice/path_expr.h"
#include "ie/problem_graph.h"
#include "ie/view_specifier.h"

namespace braid::ie {

/// The path-expression creator (paper §4.1/§4.2.2): traverses the shaped
/// problem graph and builds an abstraction of the CAQL query sequence the
/// interpreted strategy will emit.
///
/// Construction rules (matching the paper's worked examples):
///  * a run under an AND node becomes a query pattern "d_i(args)";
///  * the items of an AND body form a sequence; elements after the first
///    producing pattern are grouped under a repetition <0, |v|> where v is
///    the first producer variable of that pattern (backtracking re-solves
///    the tail once per binding — Example 1);
///  * an OR node's alternatives become a sequence when every alternative
///    opens with a run (backtracking will try each in turn), and an
///    alternation when any alternative is guarded by an IE-only call
///    (Example 2), with a selection term of 1 when mutual-exclusion SOAs
///    mark the alternatives exclusive;
///  * a recursive occurrence wraps its *defining* OR node's whole group in
///    an unbounded repetition (the depth is the symbolic cardinality
///    "|rec|") — re-entry replays the entire definition, alternatives and
///    all, not just the recursive rule's own items.
class PathExpressionCreator {
 public:
  explicit PathExpressionCreator(const ViewSpecification* spec)
      : spec_(spec) {}

  /// Builds the session path expression; null if the graph emits no CAQL
  /// queries at all.
  advice::PathExprPtr Create(const ProblemGraph& graph) const;

 private:
  advice::PathExprPtr PathOfOr(const OrNode& node,
                               std::set<std::string>* recursed) const;
  advice::PathExprPtr PathOfAnd(const AndNode& node,
                                std::set<std::string>* recursed) const;

  const ViewSpecification* spec_;
};

}  // namespace braid::ie

#endif  // BRAID_IE_PATH_CREATOR_H_
