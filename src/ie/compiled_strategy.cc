#include "ie/compiled_strategy.h"

#include <deque>
#include <set>
#include <unordered_set>

#include "caql/caql_query.h"
#include "cms/query_processor.h"
#include "common/strings.h"
#include "relational/operators.h"
#include "stream/stream_ops.h"

namespace braid::ie {

namespace {

using caql::CaqlQuery;
using logic::Atom;
using logic::Rule;
using logic::Term;

/// Arity of a user-defined predicate (from its first rule).
size_t PredicateArity(const logic::KnowledgeBase& kb,
                      const std::string& name) {
  const auto& rules = kb.RulesFor(name);
  return rules.empty() ? 0 : rules.front().head.arity();
}

}  // namespace

std::set<std::string> CompiledStrategy::ReachablePredicates(
    const std::string& root) const {
  std::set<std::string> reachable;
  std::deque<std::string> frontier{root};
  while (!frontier.empty()) {
    std::string pred = frontier.front();
    frontier.pop_front();
    if (!reachable.insert(pred).second) continue;
    if (const logic::AggregateRule* agg = kb_->AggregateRuleFor(pred)) {
      frontier.push_back(agg->body.predicate);
    }
    for (const Rule& rule : kb_->RulesFor(pred)) {
      for (const Atom& lit : rule.body) {
        if (lit.IsComparison() ||
            caql::IsEvaluablePredicate(lit.predicate, lit.arity())) {
          continue;
        }
        frontier.push_back(lit.predicate);
      }
    }
  }
  return reachable;
}

Result<rel::Relation> CompiledStrategy::Solve(const Atom& query) {
  const std::set<std::string> reachable =
      ReachablePredicates(query.predicate);

  // Relations by predicate name: EDB fetched through the CMS, IDB built by
  // fixpoint iteration. Stored as shared so the resolver can hand them to
  // the query processor.
  std::map<std::string, std::shared_ptr<rel::Relation>> relations;

  for (const std::string& pred : reachable) {
    if (kb_->IsBaseRelation(pred)) {
      // One set-at-a-time fetch per base relation (through the CMS so the
      // cache is consulted and populated).
      auto attrs = kb_->BaseRelationAttributes(pred);
      CaqlQuery fetch;
      fetch.name = StrCat("compiled_", pred);
      std::vector<Term> args;
      for (size_t i = 0; i < attrs->size(); ++i) {
        args.push_back(Term::Var(StrCat("V", i)));
      }
      fetch.head_args = args;
      fetch.body = {Atom(pred, args)};
      BRAID_ASSIGN_OR_RETURN(cms::CmsAnswer answer, cms_->Query(fetch));
      ++stats_.caql_queries;
      rel::Relation data = answer.relation != nullptr
                               ? *answer.relation
                               : stream::Drain(*answer.stream, pred);
      data.set_name(pred);
      relations[pred] = std::make_shared<rel::Relation>(std::move(data));
      continue;
    }
    if (kb_->IsAggregate(pred)) {
      // Materialized after its body predicate's stratum completes.
      const logic::AggregateRule* agg = kb_->AggregateRuleFor(pred);
      std::vector<std::string> cols = agg->group_vars;
      cols.push_back(agg->result_var.empty() ? "agg" : agg->result_var);
      relations[pred] = std::make_shared<rel::Relation>(
          rel::Relation(pred, rel::Schema::FromNames(cols)));
      continue;
    }
    if (!kb_->IsUserDefined(pred)) {
      return Status::NotFound(StrCat("unknown predicate ", pred));
    }
    // Recursive-structure SOA: delegate to the CMS fixed-point operator
    // when the closure's base is an actual remote relation the CMS can
    // fetch; closures over derived predicates fall back to the ordinary
    // fixpoint below.
    auto closure_base = kb_->ClosureBaseOf(pred);
    if (closure_base.has_value() && PredicateArity(*kb_, pred) == 2 &&
        kb_->IsBaseRelation(*closure_base)) {
      BRAID_ASSIGN_OR_RETURN(rel::Relation closure,
                             cms_->TransitiveClosure(*closure_base));
      ++stats_.caql_queries;
      closure.set_name(pred);
      relations[pred] = std::make_shared<rel::Relation>(std::move(closure));
      continue;
    }
    // Plain IDB predicate: start empty.
    const size_t arity = PredicateArity(*kb_, pred);
    std::vector<std::string> cols;
    for (size_t i = 0; i < arity; ++i) cols.push_back(StrCat("c", i));
    relations[pred] = std::make_shared<rel::Relation>(
        rel::Relation(pred, rel::Schema::FromNames(cols)));
  }

  // Predicates still requiring fixpoint iteration (not EDB, not closures).
  std::vector<const Rule*> active_rules;
  std::set<std::string> idb;
  std::vector<const logic::AggregateRule*> aggregates;
  for (const std::string& pred : reachable) {
    if (kb_->IsBaseRelation(pred)) continue;
    if (kb_->IsAggregate(pred)) {
      idb.insert(pred);
      aggregates.push_back(kb_->AggregateRuleFor(pred));
      continue;
    }
    auto closure_base = kb_->ClosureBaseOf(pred);
    if (closure_base.has_value() && PredicateArity(*kb_, pred) == 2 &&
        kb_->IsBaseRelation(*closure_base)) {
      continue;
    }
    idb.insert(pred);
    for (const Rule& rule : kb_->RulesFor(pred)) {
      active_rules.push_back(&rule);
    }
  }

  cms::QueryProcessor::AtomResolver resolver =
      [&relations](const Atom& atom) -> std::shared_ptr<const rel::Relation> {
    auto it = relations.find(atom.predicate);
    return it == relations.end() ? nullptr : it->second;
  };

  // Stratify: stratum(head) >= stratum(body predicate) for positive
  // dependencies and strictly greater across negation. EDB relations and
  // closure-SOA predicates sit at stratum 0. A stratum value exceeding
  // the IDB size implies a cycle through negation.
  std::map<std::string, size_t> stratum;
  for (const std::string& pred : idb) stratum[pred] = 0;
  bool strat_changed = true;
  while (strat_changed) {
    strat_changed = false;
    // Aggregation, like negation, needs its input complete: the head sits
    // strictly above the body predicate.
    for (const logic::AggregateRule* agg : aggregates) {
      size_t& head_stratum = stratum[agg->head_predicate];
      auto it = stratum.find(agg->body.predicate);
      const size_t body_stratum = it == stratum.end() ? 0 : it->second;
      if (head_stratum < body_stratum + 1) {
        head_stratum = body_stratum + 1;
        strat_changed = true;
        if (head_stratum > idb.size()) {
          return Status::InvalidArgument(
              "knowledge base is not stratified (cycle through aggregation)");
        }
      }
    }
    for (const Rule* rule : active_rules) {
      size_t& head_stratum = stratum[rule->head.predicate];
      for (const Atom& lit : rule->body) {
        if (lit.IsComparison() ||
            caql::IsEvaluablePredicate(lit.predicate, lit.arity())) {
          continue;
        }
        auto it = stratum.find(lit.predicate);
        const size_t body_stratum = it == stratum.end() ? 0 : it->second;
        const size_t need = lit.negated ? body_stratum + 1 : body_stratum;
        if (head_stratum < need) {
          head_stratum = need;
          strat_changed = true;
          if (head_stratum > idb.size()) {
            return Status::InvalidArgument(
                "knowledge base is not stratified (cycle through negation)");
          }
        }
      }
    }
  }
  size_t max_stratum = 0;
  for (const auto& [pred, level] : stratum) {
    max_stratum = std::max(max_stratum, level);
  }

  // Naive fixpoint per stratum, bottom-up: lower strata are complete
  // before any rule that negates them runs. Duplicate suppression via
  // per-predicate tuple sets.
  std::map<std::string, std::unordered_set<rel::Tuple, rel::TupleHash>> seen;
  for (const std::string& pred : idb) {
    for (const rel::Tuple& t : relations[pred]->tuples()) {
      seen[pred].insert(t);
    }
  }

  for (size_t level = 0; level <= max_stratum; ++level) {
    // Aggregates of this stratum: their body predicate saturated in a
    // lower stratum, so one grouping pass materializes them.
    for (const logic::AggregateRule* agg : aggregates) {
      if (stratum[agg->head_predicate] != level) continue;
      auto src = relations.find(agg->body.predicate);
      if (src == relations.end()) {
        return Status::Internal(
            StrCat("aggregate body ", agg->body.predicate, " missing"));
      }
      cms::LocalWork work;
      BRAID_ASSIGN_OR_RETURN(
          rel::Relation bound,
          cms::QueryProcessor::BindAtom(agg->body, *src->second, &work));
      std::vector<size_t> group_cols;
      for (const std::string& g : agg->group_vars) {
        auto col = bound.schema().ColumnIndex(g);
        if (!col.has_value()) {
          return Status::InvalidArgument(
              StrCat("aggregate group variable ", g, " unbound"));
        }
        group_cols.push_back(*col);
      }
      size_t agg_col = 0;
      if (agg->fn != logic::AggregateFn::kCount) {
        auto col = bound.schema().ColumnIndex(agg->agg_var);
        if (!col.has_value()) {
          return Status::InvalidArgument(
              StrCat("aggregate variable ", agg->agg_var, " unbound"));
        }
        agg_col = *col;
      }
      rel::AggFn fn = rel::AggFn::kCount;
      switch (agg->fn) {
        case logic::AggregateFn::kCount: fn = rel::AggFn::kCount; break;
        case logic::AggregateFn::kSum: fn = rel::AggFn::kSum; break;
        case logic::AggregateFn::kMin: fn = rel::AggFn::kMin; break;
        case logic::AggregateFn::kMax: fn = rel::AggFn::kMax; break;
        case logic::AggregateFn::kAvg: fn = rel::AggFn::kAvg; break;
      }
      rel::Relation grouped = rel::Aggregate(
          bound, group_cols,
          {rel::AggSpec{fn, agg_col,
                        agg->result_var.empty() ? "agg" : agg->result_var}});
      grouped.set_name(agg->head_predicate);
      *relations[agg->head_predicate] = std::move(grouped);
    }

    std::vector<const Rule*> level_rules;
    for (const Rule* rule : active_rules) {
      if (stratum[rule->head.predicate] == level) level_rules.push_back(rule);
    }
    bool changed = !level_rules.empty();
    while (changed) {
      if (++stats_.iterations > config_.max_iterations) {
        return Status::ResourceExhausted("fixpoint iteration limit exceeded");
      }
      changed = false;
      for (const Rule* rule : level_rules) {
        CaqlQuery body_query;
        body_query.name = rule->id;
        body_query.head_args = rule->head.args;
        body_query.body = rule->body;
        cms::LocalWork work;
        auto derived =
            cms::QueryProcessor::Evaluate(body_query, resolver, &work);
        if (!derived.ok()) {
          return derived.status();
        }
        auto& target = relations[rule->head.predicate];
        auto& target_seen = seen[rule->head.predicate];
        for (const rel::Tuple& t : derived->tuples()) {
          if (target_seen.insert(t).second) {
            target->AppendUnchecked(t);
            changed = true;
          }
        }
      }
    }
  }

  for (const std::string& pred : idb) {
    stats_.idb_tuples += relations[pred]->NumTuples();
  }

  // Read the answer off the saturated database.
  CaqlQuery final_query;
  final_query.name = "answer";
  const std::vector<std::string> vars = query.Variables();
  for (const std::string& v : vars) final_query.head_args.push_back(Term::Var(v));
  final_query.body = {query};
  cms::LocalWork work;
  BRAID_ASSIGN_OR_RETURN(
      rel::Relation result,
      cms::QueryProcessor::Evaluate(final_query, resolver, &work));
  rel::Relation named(StrCat("solutions(", query.predicate, ")"),
                      rel::Schema::FromNames(vars));
  named.mutable_tuples() = std::move(result.mutable_tuples());
  return rel::Distinct(named);
}

}  // namespace braid::ie
