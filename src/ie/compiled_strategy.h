#ifndef BRAID_IE_COMPILED_STRATEGY_H_
#define BRAID_IE_COMPILED_STRATEGY_H_

#include <map>
#include <string>

#include "cms/cms.h"
#include "common/status.h"
#include "logic/knowledge_base.h"
#include "relational/relation.h"

namespace braid::ie {

struct CompiledConfig {
  size_t max_iterations = 10000;  // fixpoint guard
};

struct CompiledStats {
  size_t caql_queries = 0;  // base-relation fetches through the CMS
  size_t iterations = 0;    // fixpoint rounds
  size_t idb_tuples = 0;    // derived tuples at fixpoint
};

/// The compiled inference strategy: the set-at-a-time, all-solutions end
/// of the I-C range (paper §2). The portion of the knowledge base relevant
/// to the AI query is evaluated bottom-up: base relations are fetched
/// set-at-a-time through the CMS (one large request each, benefiting from
/// the cache like any other CAQL query), recursion is handled by fixpoint
/// iteration — with recursive-structure SOAs routed to the CMS's dedicated
/// transitive-closure operator — and the query's answer is read off the
/// saturated IDB.
class CompiledStrategy {
 public:
  CompiledStrategy(const logic::KnowledgeBase* kb, cms::Cms* cms,
                   CompiledConfig config)
      : kb_(kb), cms_(cms), config_(config) {}

  /// Solves the AI query; returns one row per distinct solution, columns
  /// named by the query's variables.
  Result<rel::Relation> Solve(const logic::Atom& query);

  const CompiledStats& stats() const { return stats_; }

 private:
  /// Predicates (user and base) reachable from `root` through rules.
  std::set<std::string> ReachablePredicates(const std::string& root) const;

  const logic::KnowledgeBase* kb_;
  cms::Cms* cms_;
  CompiledConfig config_;
  CompiledStats stats_;
};

}  // namespace braid::ie

#endif  // BRAID_IE_COMPILED_STRATEGY_H_
