#ifndef BRAID_IE_SHAPER_H_
#define BRAID_IE_SHAPER_H_

#include "cms/cache_model.h"
#include "common/status.h"
#include "dbms/database.h"
#include "ie/problem_graph.h"
#include "logic/knowledge_base.h"

namespace braid::ie {

struct ShaperConfig {
  bool cull = true;     // evaluate ground built-ins, drop dead alternatives
  bool reorder = true;  // producer/consumer conjunct ordering
};

/// The problem-graph shaper (paper §4.1): eagerly constrains the problem
/// graph before any DBMS access.
///
///  * Constant propagation happened during extraction (head unification
///    pushes query and rule constants along unification arcs); the shaper
///    finishes the job by evaluating built-ins whose arguments are all
///    constants, deleting those that hold and culling alternatives that
///    contain one that fails (and, transitively, OR nodes left with no
///    alternatives).
///  * Cardinality and selectivity information from the DBMS schema and
///    functional-dependency SOAs determine producer-consumer relationships,
///    realized as conjunct reorderings and binding patterns (`bound_vars`
///    on each OR node).
///  * Mutual-exclusion SOAs mark OR nodes whose alternatives are pairwise
///    exclusive (used by the path-expression creator for selection terms).
class ProblemGraphShaper {
 public:
  /// `cache_model` (optional) is the CMS's cache model — the IE "can
  /// access cache model information from the CMS" (§3) — letting the
  /// shaper discount subgoals whose data is already cache-resident when
  /// ordering conjuncts.
  ProblemGraphShaper(const logic::KnowledgeBase* kb,
                     const dbms::Database* schema, ShaperConfig config = {},
                     const cms::CacheModel* cache_model = nullptr)
      : kb_(kb), schema_(schema), config_(config),
        cache_model_(cache_model) {}

  Status Shape(ProblemGraph* graph) const;

 private:
  /// Bottom-up culling. Returns false if the node cannot succeed (caller
  /// culls the enclosing alternative).
  bool Cull(OrNode* node) const;

  /// Top-down: reorders each AND body and assigns binding patterns.
  void OrderAndBind(OrNode* node) const;

  /// Estimated result cardinality of a subgoal given bound variables.
  double EstimateGoal(const OrNode& node,
                      const std::set<std::string>& bound) const;

  void MarkMutex(OrNode* node) const;

  const logic::KnowledgeBase* kb_;
  const dbms::Database* schema_;
  ShaperConfig config_;
  const cms::CacheModel* cache_model_;
};

}  // namespace braid::ie

#endif  // BRAID_IE_SHAPER_H_
