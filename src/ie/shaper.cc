#include "ie/shaper.h"

#include <algorithm>
#include <limits>

#include "caql/caql_query.h"

namespace braid::ie {

namespace {

using logic::Atom;

bool IsGroundComparisonTrue(const Atom& atom) {
  return rel::EvalCompare(atom.comparison_op(), atom.args[0].value(),
                          atom.args[1].value());
}

bool AllArgsBound(const Atom& atom, const std::set<std::string>& bound) {
  for (const logic::Term& t : atom.args) {
    if (t.is_variable() && bound.count(t.var_name()) == 0) return false;
  }
  return true;
}

}  // namespace

Status ProblemGraphShaper::Shape(ProblemGraph* graph) const {
  if (graph->root == nullptr) {
    return Status::InvalidArgument("empty problem graph");
  }
  if (config_.cull) {
    Cull(graph->root.get());
  }
  // Root binding pattern: the AI query's constants are "bound"; its
  // variables are free (the application wants bindings for them).
  graph->root->bound_vars.clear();
  OrderAndBind(graph->root.get());
  MarkMutex(graph->root.get());
  return Status::Ok();
}

bool ProblemGraphShaper::Cull(OrNode* node) const {
  switch (node->leaf) {
    case OrNode::LeafKind::kBase:
    case OrNode::LeafKind::kRecursive:
    case OrNode::LeafKind::kAggregate:
      return true;
    case OrNode::LeafKind::kBuiltin:
      // A ground false built-in kills its alternative; anything else may
      // still succeed.
      if (node->goal.IsComparison() && node->goal.IsGround()) {
        return IsGroundComparisonTrue(node->goal);
      }
      return true;
    case OrNode::LeafKind::kExpanded:
      break;
  }
  auto& alts = node->alternatives;
  for (auto it = alts.begin(); it != alts.end();) {
    bool alive = true;
    for (auto& sub : (*it)->subgoals) {
      if (!Cull(sub.get())) {
        alive = false;
        break;
      }
    }
    // Drop ground-true comparisons from the body (they are satisfied).
    if (alive) {
      auto& subs = (*it)->subgoals;
      subs.erase(std::remove_if(subs.begin(), subs.end(),
                                [](const std::unique_ptr<OrNode>& s) {
                                  return s->leaf ==
                                             OrNode::LeafKind::kBuiltin &&
                                         s->goal.IsComparison() &&
                                         s->goal.IsGround() &&
                                         IsGroundComparisonTrue(s->goal);
                                }),
                 subs.end());
    }
    it = alive ? it + 1 : alts.erase(it);
  }
  return !alts.empty();
}

double ProblemGraphShaper::EstimateGoal(
    const OrNode& node, const std::set<std::string>& bound) const {
  const Atom& goal = node.goal;
  // Negated literals are cheap checks once ground, but must wait for
  // their variables to be produced.
  if (goal.negated) {
    return AllArgsBound(goal, bound) ? 0.6 : 1e9;
  }
  switch (node.leaf) {
    case OrNode::LeafKind::kBuiltin:
      return AllArgsBound(goal, bound) ? 0.5 : 1e9;  // defer until ready
    case OrNode::LeafKind::kBase: {
      const dbms::TableStats* stats =
          schema_ != nullptr ? schema_->GetStats(goal.predicate) : nullptr;
      double card = stats != nullptr
                        ? std::max<size_t>(1, stats->cardinality)
                        : 1000.0;
      // Selectivity of each bound position.
      std::set<size_t> bound_positions;
      for (size_t i = 0; i < goal.args.size(); ++i) {
        const logic::Term& t = goal.args[i];
        const bool is_bound =
            t.is_constant() ||
            (t.is_variable() && bound.count(t.var_name()) > 0);
        if (!is_bound) continue;
        bound_positions.insert(i);
        card *= stats != nullptr ? stats->EqSelectivity(i) : 0.1;
      }
      // Functional dependencies: if a determinant is fully bound, at most
      // one tuple matches per binding.
      for (const logic::FunctionalDependencySoa& fd : kb_->fd_soas()) {
        if (fd.predicate != goal.predicate) continue;
        const bool determined = std::all_of(
            fd.determinant.begin(), fd.determinant.end(),
            [&bound_positions](size_t p) {
              return bound_positions.count(p) > 0;
            });
        if (determined) card = std::min(card, 1.0);
      }
      // Cache-residency discount: a subgoal answerable from the cache
      // costs no communication, so prefer visiting it early.
      if (cache_model_ != nullptr &&
          cache_model_->HasMaterializedFor(goal.predicate)) {
        card *= 0.05;
      }
      return std::max(card, 0.01);
    }
    case OrNode::LeafKind::kAggregate:
    case OrNode::LeafKind::kRecursive:
    case OrNode::LeafKind::kExpanded: {
      // User-defined goals: a coarse guess favouring bound arguments.
      size_t bound_args = 0;
      for (const logic::Term& t : goal.args) {
        if (t.is_constant() ||
            (t.is_variable() && bound.count(t.var_name()) > 0)) {
          ++bound_args;
        }
      }
      return 1000.0 / static_cast<double>(1 + bound_args);
    }
  }
  return 1000.0;
}

void ProblemGraphShaper::OrderAndBind(OrNode* node) const {
  for (auto& alt : node->alternatives) {
    // Variables of the head bound at call time: head positions whose goal
    // argument is bound (a constant, or a bound variable of the caller).
    std::set<std::string> bound;
    for (size_t i = 0; i < alt->head.args.size() && i < node->goal.args.size();
         ++i) {
      const logic::Term& caller_arg = node->goal.args[i];
      const logic::Term& head_arg = alt->head.args[i];
      const bool caller_bound =
          caller_arg.is_constant() ||
          (caller_arg.is_variable() &&
           node->bound_vars.count(caller_arg.var_name()) > 0);
      if (caller_bound && head_arg.is_variable()) {
        bound.insert(head_arg.var_name());
      }
    }

    if (config_.reorder) {
      // Greedy producer-consumer ordering: repeatedly pick the cheapest
      // ready subgoal.
      std::vector<std::unique_ptr<OrNode>> ordered;
      auto& subs = alt->subgoals;
      while (!subs.empty()) {
        size_t best = 0;
        double best_cost = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < subs.size(); ++i) {
          const double cost = EstimateGoal(*subs[i], bound);
          if (cost < best_cost) {
            best_cost = cost;
            best = i;
          }
        }
        std::unique_ptr<OrNode> picked = std::move(subs[best]);
        subs.erase(subs.begin() + static_cast<long>(best));
        for (const std::string& v : picked->goal.Variables()) {
          bound.insert(v);
        }
        ordered.push_back(std::move(picked));
      }
      alt->subgoals = std::move(ordered);
      // Recompute binding patterns along the chosen order.
      bound.clear();
      for (size_t i = 0;
           i < alt->head.args.size() && i < node->goal.args.size(); ++i) {
        const logic::Term& caller_arg = node->goal.args[i];
        const logic::Term& head_arg = alt->head.args[i];
        const bool caller_bound =
            caller_arg.is_constant() ||
            (caller_arg.is_variable() &&
             node->bound_vars.count(caller_arg.var_name()) > 0);
        if (caller_bound && head_arg.is_variable()) {
          bound.insert(head_arg.var_name());
        }
      }
    }

    for (auto& sub : alt->subgoals) {
      sub->bound_vars.clear();
      for (const std::string& v : sub->goal.Variables()) {
        if (bound.count(v) > 0) sub->bound_vars.insert(v);
      }
      OrderAndBind(sub.get());
      for (const std::string& v : sub->goal.Variables()) bound.insert(v);
    }
  }
}

void ProblemGraphShaper::MarkMutex(OrNode* node) const {
  if (node->alternatives.size() >= 2) {
    bool all_pairs = true;
    for (size_t i = 0; i + 1 < node->alternatives.size() && all_pairs; ++i) {
      for (size_t j = i + 1; j < node->alternatives.size() && all_pairs;
           ++j) {
        bool pair_mutex = false;
        for (const auto& si : node->alternatives[i]->subgoals) {
          for (const auto& sj : node->alternatives[j]->subgoals) {
            if (kb_->AreMutuallyExclusive(si->goal.predicate,
                                          sj->goal.predicate)) {
              pair_mutex = true;
            }
          }
        }
        if (!pair_mutex) all_pairs = false;
      }
    }
    node->alternatives_mutex = all_pairs;
  }
  for (auto& alt : node->alternatives) {
    for (auto& sub : alt->subgoals) MarkMutex(sub.get());
  }
}

}  // namespace braid::ie
