#include "ie/interpreted_strategy.h"

#include <map>
#include <set>

#include "caql/caql_query.h"
#include "relational/operators.h"
#include "common/strings.h"
#include "logic/unify.h"

namespace braid::ie {

namespace {

using caql::CaqlQuery;
using logic::Atom;
using logic::Substitution;
using logic::Term;

Atom RenameAtom(const Atom& atom, const std::string& suffix) {
  return logic::RenameVariables(atom, suffix);
}

}  // namespace

Result<rel::Relation> InterpretedStrategy::Solve(const Atom& query) {
  aggregate_cache_.clear();
  const std::vector<std::string> vars = query.Variables();
  rel::Relation solutions(StrCat("solutions(", query.predicate, ")"),
                          rel::Schema::FromNames(vars));

  Emit collect = [&](const Substitution& subst) -> Result<bool> {
    Atom solved = subst.Apply(query);
    rel::Tuple row;
    row.reserve(vars.size());
    for (const std::string& v : vars) {
      auto bound = subst.Lookup(v);
      row.push_back(bound.has_value() && bound->is_constant()
                        ? bound->value()
                        : rel::Value::Null());
    }
    (void)solved;
    solutions.AppendUnchecked(std::move(row));
    ++stats_.solutions;
    return solutions.NumTuples() < config_.max_solutions;
  };

  BRAID_ASSIGN_OR_RETURN(bool keep_going,
                         SolveGoal(query, Substitution(), 0, collect));
  (void)keep_going;
  return solutions;
}

Result<bool> InterpretedStrategy::SolveGoal(const Atom& goal,
                                            const Substitution& subst,
                                            size_t depth, const Emit& emit) {
  if (depth > config_.max_depth) {
    ++stats_.depth_prunes;
    return true;  // Prune this branch, keep searching elsewhere.
  }
  const Atom g = subst.Apply(goal);

  if (g.negated) {
    // Negation as failure: succeed (without new bindings) iff the
    // positive goal has no solution under the current bindings.
    bool found = false;
    Emit probe = [&found](const Substitution&) -> Result<bool> {
      found = true;
      return false;  // One witness suffices.
    };
    BRAID_ASSIGN_OR_RETURN(bool keep,
                           SolveGoal(g.Positive(), subst, depth + 1, probe));
    (void)keep;
    if (found) return true;  // Positive succeeded: this branch fails.
    return emit(subst);
  }

  if (g.IsComparison() ||
      caql::IsEvaluablePredicate(g.predicate, g.arity())) {
    return SolveBuiltin(g, subst, emit);
  }

  if (kb_->IsBaseRelation(g.predicate)) {
    // A standalone base-relation goal (not absorbed into a run — possible
    // when recursion re-enters dynamically): issue a one-atom CAQL query.
    RuleItem item;
    item.kind = RuleItem::Kind::kRun;
    item.run_atoms = {goal};
    return SolveRun(item, "", subst, emit);
  }

  if (kb_->IsAggregate(g.predicate)) {
    return SolveAggregate(g, subst, depth, emit);
  }

  if (!kb_->IsUserDefined(g.predicate)) {
    return Status::NotFound(StrCat("unknown predicate ", g.predicate));
  }

  for (const logic::Rule& rule : kb_->RulesFor(g.predicate)) {
    auto plan_it = spec_->rule_plans.find(rule.id);
    if (plan_it == spec_->rule_plans.end()) {
      // Rule unreachable during pre-analysis (e.g. culled); interpret its
      // body directly as calls.
      const std::string suffix = StrCat("_i", invocation_counter_++);
      Atom head = RenameAtom(rule.head, suffix);
      auto unified = logic::UnifyAtoms(head, g, subst);
      if (!unified.has_value()) continue;
      // Build a transient plan of calls.
      RulePlan transient;
      transient.rule_id = rule.id;
      transient.head = rule.head;
      for (size_t bi = 0; bi < rule.body.size(); ++bi) {
        RuleItem item;
        item.kind = RuleItem::Kind::kCall;
        item.call = rule.body[bi];
        item.body_index = bi;
        transient.items.push_back(std::move(item));
      }
      BRAID_ASSIGN_OR_RETURN(
          bool keep, SolveItems(transient, suffix, 0, *unified, depth, emit));
      if (!keep) return false;
      continue;
    }
    const RulePlan& plan = plan_it->second;
    const std::string suffix = StrCat("_i", invocation_counter_++);
    Atom head = RenameAtom(plan.head, suffix);
    auto unified = logic::UnifyAtoms(head, g, subst);
    if (!unified.has_value()) continue;
    BRAID_ASSIGN_OR_RETURN(bool keep,
                           SolveItems(plan, suffix, 0, *unified, depth, emit));
    if (!keep) return false;
  }
  return true;
}

Result<bool> InterpretedStrategy::SolveItems(const RulePlan& plan,
                                             const std::string& suffix,
                                             size_t index,
                                             const Substitution& subst,
                                             size_t depth, const Emit& emit) {
  if (index == plan.items.size()) return emit(subst);
  const RuleItem& item = plan.items[index];

  Emit next = [&](const Substitution& s) -> Result<bool> {
    return SolveItems(plan, suffix, index + 1, s, depth, emit);
  };

  switch (item.kind) {
    case RuleItem::Kind::kRun:
      return SolveRun(item, suffix, subst, next);
    case RuleItem::Kind::kBuiltin:
      return SolveBuiltin(subst.Apply(RenameAtom(item.call, suffix)), subst,
                          next);
    case RuleItem::Kind::kCall:
      return SolveGoal(RenameAtom(item.call, suffix), subst, depth + 1, next);
  }
  return Status::Internal("unknown rule item kind");
}

Result<bool> InterpretedStrategy::SolveRun(
    const RuleItem& item, const std::string& suffix, const Substitution& subst,
    const std::function<Result<bool>(const Substitution&)>& next) {
  // Instantiate the run's CAQL query with the current bindings.
  CaqlQuery query;
  query.name = item.view_id;
  for (const Atom& atom : item.run_atoms) {
    query.body.push_back(subst.Apply(RenameAtom(atom, suffix)));
  }
  // Head: the view's argument set if known, otherwise all run variables.
  std::vector<Term> head_terms;
  const advice::ViewSpec* view =
      item.view_id.empty() ? nullptr : spec_->FindView(item.view_id);
  if (view != nullptr) {
    for (const advice::AnnotatedVar& av : view->head) {
      head_terms.push_back(
          subst.Apply(Term::Var(av.name + suffix)));
    }
  } else {
    std::set<std::string> seen;
    for (const Atom& atom : query.body) {
      for (const Term& t : atom.args) {
        if (t.is_variable() && seen.insert(t.var_name()).second) {
          head_terms.push_back(t);
        }
      }
    }
  }
  query.head_args = head_terms;

  BRAID_ASSIGN_OR_RETURN(cms::CmsAnswer answer, cms_->Query(query));
  ++stats_.caql_queries;

  // Consume the stream tuple-at-a-time; each tuple extends the bindings.
  while (true) {
    auto tuple = answer.stream->Next();
    if (!tuple.has_value()) break;
    ++stats_.tuples_consumed;
    Substitution extended = subst;
    bool consistent = true;
    for (size_t i = 0; i < head_terms.size() && consistent; ++i) {
      const Term& t = head_terms[i];
      const rel::Value& v = (*tuple)[i];
      if (t.is_constant()) {
        consistent = t.value() == v;
      } else {
        consistent = extended.Bind(t.var_name(), Term::Const(v));
      }
    }
    if (!consistent) continue;
    BRAID_ASSIGN_OR_RETURN(bool keep, next(extended));
    if (!keep) return false;
  }
  return true;
}

Result<bool> InterpretedStrategy::SolveAggregate(const Atom& goal,
                                                 const Substitution& subst,
                                                 size_t depth,
                                                 const Emit& emit) {
  const logic::AggregateRule* rule = kb_->AggregateRuleFor(goal.predicate);
  if (rule == nullptr) {
    return Status::Internal(StrCat("missing aggregate rule for ",
                                   goal.predicate));
  }
  if (goal.arity() != rule->HeadArity()) {
    return Status::InvalidArgument(
        StrCat("aggregate goal ", goal.ToString(), " arity mismatch"));
  }

  auto it = aggregate_cache_.find(goal.predicate);
  if (it == aggregate_cache_.end()) {
    // Materialize the body's solutions (group vars + aggregate var), then
    // group. The body may be a base relation or any derived predicate —
    // both go through the ordinary goal solver, so cached data is reused.
    const std::string suffix = StrCat("_g", invocation_counter_++);
    const Atom body = RenameAtom(rule->body, suffix);
    std::vector<std::string> input_cols = rule->group_vars;
    input_cols.push_back(rule->fn == logic::AggregateFn::kCount
                             ? rule->agg_var
                             : rule->agg_var);
    rel::Relation input("agg_input", rel::Schema::FromNames(input_cols));
    Emit collect = [&](const Substitution& s) -> Result<bool> {
      rel::Tuple row;
      row.reserve(rule->group_vars.size() + 1);
      for (const std::string& v : rule->group_vars) {
        auto bound = s.Lookup(v + suffix);
        row.push_back(bound.has_value() && bound->is_constant()
                          ? bound->value()
                          : rel::Value::Null());
      }
      auto agg_bound = s.Lookup(rule->agg_var + suffix);
      row.push_back(agg_bound.has_value() && agg_bound->is_constant()
                        ? agg_bound->value()
                        : rel::Value::Null());
      input.AppendUnchecked(std::move(row));
      return true;
    };
    BRAID_ASSIGN_OR_RETURN(
        bool keep, SolveGoal(body, Substitution(), depth + 1, collect));
    (void)keep;

    rel::AggFn fn = rel::AggFn::kCount;
    switch (rule->fn) {
      case logic::AggregateFn::kCount:
        fn = rel::AggFn::kCount;
        break;
      case logic::AggregateFn::kSum:
        fn = rel::AggFn::kSum;
        break;
      case logic::AggregateFn::kMin:
        fn = rel::AggFn::kMin;
        break;
      case logic::AggregateFn::kMax:
        fn = rel::AggFn::kMax;
        break;
      case logic::AggregateFn::kAvg:
        fn = rel::AggFn::kAvg;
        break;
    }
    std::vector<size_t> group_cols;
    for (size_t i = 0; i < rule->group_vars.size(); ++i) {
      group_cols.push_back(i);
    }
    rel::Relation grouped = rel::Aggregate(
        input, group_cols,
        {rel::AggSpec{fn, rule->group_vars.size(), rule->result_var}});
    it = aggregate_cache_.emplace(goal.predicate, std::move(grouped)).first;
  }

  // Match the goal against the grouped rows, tuple-at-a-time.
  for (const rel::Tuple& row : it->second.tuples()) {
    Substitution extended = subst;
    bool consistent = true;
    for (size_t i = 0; i < goal.arity() && consistent; ++i) {
      const Term& t = goal.args[i];
      if (t.is_constant()) {
        consistent = t.value() == row[i];
      } else {
        consistent = extended.Bind(t.var_name(), Term::Const(row[i]));
      }
    }
    if (!consistent) continue;
    ++stats_.tuples_consumed;
    BRAID_ASSIGN_OR_RETURN(bool keep, emit(extended));
    if (!keep) return false;
  }
  return true;
}

Result<bool> InterpretedStrategy::SolveBuiltin(const Atom& atom,
                                               const Substitution& subst,
                                               const Emit& emit) {
  ++stats_.builtin_evals;
  if (atom.IsComparison()) {
    if (!atom.IsGround()) {
      return Status::FailedPrecondition(
          StrCat("comparison ", atom.ToString(),
                 " is not ground at evaluation time"));
    }
    if (rel::EvalCompare(atom.comparison_op(), atom.args[0].value(),
                         atom.args[1].value())) {
      return emit(subst);
    }
    return true;  // Fails; backtrack.
  }
  // Evaluable function: inputs must be bound.
  const size_t result_pos = atom.arity() - 1;
  std::vector<double> inputs;
  for (size_t i = 0; i + 1 < atom.arity(); ++i) {
    if (!atom.args[i].is_constant() || !atom.args[i].value().IsNumeric()) {
      return Status::FailedPrecondition(
          StrCat("evaluable ", atom.ToString(), " has unbound inputs"));
    }
    inputs.push_back(atom.args[i].value().NumericValue());
  }
  double r = 0;
  const std::string& fn = atom.predicate;
  if (fn == "plus") r = inputs[0] + inputs[1];
  else if (fn == "minus") r = inputs[0] - inputs[1];
  else if (fn == "times") r = inputs[0] * inputs[1];
  else if (fn == "div") {
    if (inputs[1] == 0) return true;  // Fails; backtrack.
    r = inputs[0] / inputs[1];
  } else if (fn == "abs") {
    r = inputs[0] < 0 ? -inputs[0] : inputs[0];
  } else {
    return Status::InvalidArgument(StrCat("unknown evaluable ", fn));
  }
  rel::Value result = (r == static_cast<double>(static_cast<int64_t>(r)))
                          ? rel::Value::Int(static_cast<int64_t>(r))
                          : rel::Value::Double(r);
  const Term& rt = atom.args[result_pos];
  if (rt.is_constant()) {
    if (rt.value() == result) return emit(subst);
    return true;
  }
  Substitution extended = subst;
  if (!extended.Bind(rt.var_name(), Term::Const(result))) return true;
  return emit(extended);
}

}  // namespace braid::ie
