#ifndef BRAID_IE_INFERENCE_ENGINE_H_
#define BRAID_IE_INFERENCE_ENGINE_H_

#include <string>

#include "advice/advice.h"
#include "cms/cms.h"
#include "common/status.h"
#include "ie/compiled_strategy.h"
#include "ie/interpreted_strategy.h"
#include "ie/path_creator.h"
#include "ie/problem_graph.h"
#include "ie/shaper.h"
#include "ie/view_specifier.h"
#include "logic/knowledge_base.h"

namespace braid::ie {

/// Deductive search strategies available as "function suites" (paper §4:
/// the IE has no built-in strategy; components combine into strategies
/// along the I-C range, as in the FDE).
enum class StrategyKind {
  kInterpreted,  // depth-first, chronological backtracking, tuple-at-a-time
  kCompiled,     // bottom-up, set-at-a-time, all solutions
};

struct IeConfig {
  StrategyKind strategy = StrategyKind::kInterpreted;
  size_t max_conjunction_size = 3;  // view-specifier flattening parameter
  size_t max_depth = 64;
  size_t max_solutions = SIZE_MAX;  // 1 = single-solution (Prolog) mode
  bool send_advice = true;           // transmit view specs + path expression
  bool send_path_expression = true;
  bool shaper_reorder = true;
  bool shaper_cull = true;
};

/// The result of pre-analysis: the shaped problem graph, the view
/// specifications with rule plans, and the advice set that would be sent
/// to the CMS.
struct Preanalysis {
  ProblemGraph graph;
  ViewSpecification spec;
  advice::AdviceSet advice;
};

/// The outcome of answering one AI query.
struct AskOutcome {
  rel::Relation solutions;  // one row per solution, columns = query vars
  advice::AdviceSet advice;
  InterpreterStats interpreter_stats;  // meaningful for kInterpreted
  CompiledStats compiled_stats;        // meaningful for kCompiled
};

/// The BrAID inference engine (paper §4, Fig. 4). `Ask` runs the full
/// pipeline: query translation, problem-graph extraction, shaping, view
/// specification, path-expression creation, advice transmission (session
/// start), then inference under the configured strategy, with all database
/// access routed through the CMS as CAQL queries.
class InferenceEngine {
 public:
  InferenceEngine(const logic::KnowledgeBase* kb, cms::Cms* cms,
                  IeConfig config = {})
      : kb_(kb), cms_(cms), config_(config) {}

  /// Pre-analysis only (no session, no inference) — used by tests and by
  /// callers that want to inspect the advice.
  Result<Preanalysis> Analyze(const logic::Atom& query) const;

  /// Answers an AI query (an atomic formula, e.g. parsed from "k1(X,Y)?").
  Result<AskOutcome> Ask(const logic::Atom& query);

  /// Convenience: parses `query_text` with the query translator first.
  Result<AskOutcome> Ask(const std::string& query_text);

  const IeConfig& config() const { return config_; }
  void set_config(IeConfig config) { config_ = config; }

 private:
  const logic::KnowledgeBase* kb_;
  cms::Cms* cms_;
  IeConfig config_;
};

}  // namespace braid::ie

#endif  // BRAID_IE_INFERENCE_ENGINE_H_
