#ifndef BRAID_IE_INTERPRETED_STRATEGY_H_
#define BRAID_IE_INTERPRETED_STRATEGY_H_

#include <functional>
#include <string>

#include "cms/cms.h"
#include "common/status.h"
#include "ie/view_specifier.h"
#include "logic/knowledge_base.h"
#include "logic/substitution.h"
#include "relational/relation.h"

namespace braid::ie {

struct InterpreterConfig {
  size_t max_depth = 64;          // recursion guard (branches are pruned)
  size_t max_solutions = SIZE_MAX;  // 1 = Prolog-style single solution
};

struct InterpreterStats {
  size_t caql_queries = 0;    // queries emitted to the CMS
  size_t tuples_consumed = 0; // stream tuples actually pulled
  size_t builtin_evals = 0;
  size_t depth_prunes = 0;    // branches cut by the depth guard
  size_t solutions = 0;
};

/// The interpreted inference strategy: depth-first search with
/// chronological backtracking (the Prolog strategy the paper's detailed
/// discussion assumes). The strategy controller walks the rule plans
/// produced by the view specifier, sending one CAQL query per run and
/// consuming result streams tuple-at-a-time — so unneeded solutions are
/// never computed when the CMS evaluates lazily.
class InterpretedStrategy {
 public:
  InterpretedStrategy(const logic::KnowledgeBase* kb,
                      const ViewSpecification* spec, cms::Cms* cms,
                      InterpreterConfig config)
      : kb_(kb), spec_(spec), cms_(cms), config_(config) {}

  /// Solves the AI query; returns one row per solution, columns named by
  /// the query's variables (in first-occurrence order).
  Result<rel::Relation> Solve(const logic::Atom& query);

  const InterpreterStats& stats() const { return stats_; }

 private:
  /// Continuation: called per solution extension; returns false to stop
  /// the search (single-solution mode).
  using Emit = std::function<Result<bool>(const logic::Substitution&)>;

  Result<bool> SolveGoal(const logic::Atom& goal,
                         const logic::Substitution& subst, size_t depth,
                         const Emit& emit);
  Result<bool> SolveItems(const RulePlan& plan, const std::string& suffix,
                          size_t index, const logic::Substitution& subst,
                          size_t depth, const Emit& emit);
  Result<bool> SolveRun(const RuleItem& item, const std::string& suffix,
                        const logic::Substitution& subst,
                        const std::function<Result<bool>(
                            const logic::Substitution&)>& next);
  Result<bool> SolveBuiltin(const logic::Atom& atom,
                            const logic::Substitution& subst,
                            const Emit& emit);

  /// Solves a goal against an #agg rule: computes the full grouped
  /// aggregate relation once per Solve() (memoized), then matches the
  /// goal's arguments against its rows.
  Result<bool> SolveAggregate(const logic::Atom& goal,
                              const logic::Substitution& subst, size_t depth,
                              const Emit& emit);

  const logic::KnowledgeBase* kb_;
  const ViewSpecification* spec_;
  cms::Cms* cms_;
  InterpreterConfig config_;
  InterpreterStats stats_;
  int invocation_counter_ = 0;
  /// Aggregate relations computed this Solve() run, by head predicate.
  std::map<std::string, rel::Relation> aggregate_cache_;
};

}  // namespace braid::ie

#endif  // BRAID_IE_INTERPRETED_STRATEGY_H_
