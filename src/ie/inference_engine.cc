#include "ie/inference_engine.h"

#include "logic/parser.h"

namespace braid::ie {

Result<Preanalysis> InferenceEngine::Analyze(const logic::Atom& query) const {
  Preanalysis pre;

  ProblemGraphExtractor extractor(kb_);
  BRAID_ASSIGN_OR_RETURN(pre.graph, extractor.Extract(query));

  ProblemGraphShaper shaper(kb_, &cms_->RemoteSchema(),
                            ShaperConfig{config_.shaper_cull,
                                         config_.shaper_reorder},
                            &cms_->cache().model());
  BRAID_RETURN_IF_ERROR(shaper.Shape(&pre.graph));

  ViewSpecifier specifier(kb_,
                          ViewSpecifierConfig{config_.max_conjunction_size});
  BRAID_ASSIGN_OR_RETURN(pre.spec, specifier.Specify(pre.graph));

  pre.advice.base_relations = pre.graph.BaseRelations();
  pre.advice.view_specs = pre.spec.views;
  if (config_.send_path_expression) {
    PathExpressionCreator path_creator(&pre.spec);
    pre.advice.path_expression = path_creator.Create(pre.graph);
  }
  return pre;
}

Result<AskOutcome> InferenceEngine::Ask(const logic::Atom& query) {
  BRAID_ASSIGN_OR_RETURN(Preanalysis pre, Analyze(query));

  AskOutcome outcome;
  outcome.advice = pre.advice;

  // Session start: transmit advice, then the CAQL query sequence follows.
  cms_->BeginSession(config_.send_advice ? pre.advice : advice::AdviceSet{});

  switch (config_.strategy) {
    case StrategyKind::kInterpreted: {
      InterpretedStrategy strategy(
          kb_, &pre.spec, cms_,
          InterpreterConfig{config_.max_depth, config_.max_solutions});
      BRAID_ASSIGN_OR_RETURN(outcome.solutions, strategy.Solve(query));
      outcome.interpreter_stats = strategy.stats();
      break;
    }
    case StrategyKind::kCompiled: {
      CompiledStrategy strategy(kb_, cms_, CompiledConfig{});
      BRAID_ASSIGN_OR_RETURN(outcome.solutions, strategy.Solve(query));
      outcome.compiled_stats = strategy.stats();
      if (config_.max_solutions < outcome.solutions.NumTuples()) {
        outcome.solutions.mutable_tuples().resize(config_.max_solutions);
      }
      break;
    }
  }
  return outcome;
}

Result<AskOutcome> InferenceEngine::Ask(const std::string& query_text) {
  BRAID_ASSIGN_OR_RETURN(logic::Atom query,
                         logic::ParseQueryAtom(query_text));
  return Ask(query);
}

}  // namespace braid::ie
