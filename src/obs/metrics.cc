#include "obs/metrics.h"

#include <cmath>
#include <fstream>
#include <limits>
#include <iomanip>
#include <sstream>

namespace braid::obs {

namespace {

/// Bucket i holds observations in (BucketBound(i-1), BucketBound(i)]:
/// 0.001ms up to ~134s in powers of two, which spans everything from a
/// single morsel to a whole session.
double BoundFor(size_t i) {
  if (i + 1 >= Histogram::kNumBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return 0.001 * std::pow(2.0, static_cast<double>(i));
}

std::string JsonNumber(double v) {
  if (std::isinf(v)) return "1e308";
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

double Histogram::BucketBound(size_t i) { return BoundFor(i); }

void Histogram::Observe(double v) {
  size_t i = 0;
  while (i + 1 < kNumBuckets && v > BoundFor(i)) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  const double target = q * static_cast<double>(n);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += bucket_count(i);
    if (static_cast<double>(seen) >= target) {
      // Report the bucket's upper bound; the last bucket reports its
      // lower bound (its upper bound is infinite).
      return i + 1 < kNumBuckets ? BoundFor(i) : BoundFor(i - 1);
    }
  }
  return BoundFor(kNumBuckets - 2);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    " << JsonString(name) << ": "
       << c->value();
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    " << JsonString(name) << ": "
       << g->value();
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    " << JsonString(name) << ": {"
       << "\"count\": " << h->count() << ", \"sum\": " << JsonNumber(h->sum())
       << ", \"mean\": " << JsonNumber(h->mean())
       << ", \"p50\": " << JsonNumber(h->Quantile(0.5))
       << ", \"p99\": " << JsonNumber(h->Quantile(0.99)) << "}";
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  if (path.empty()) return false;
  std::ofstream out(path);
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace braid::obs
