#ifndef BRAID_OBS_TRACE_H_
#define BRAID_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace braid::obs {

/// Identifier of a span within one Tracer; 0 means "no span" and is the
/// parent of every root span.
using SpanId = uint64_t;

/// One timed step of a query's life cycle. Spans nest via `parent` and
/// carry two durations: `measured_ms` is wall-clock time on whatever
/// thread ran the step, `modeled_ms` is the analytic simulated cost the
/// cost model charged for it (negative = no modeled cost applies). The
/// two side by side are what exposes drift between the model and the
/// machine.
struct Span {
  SpanId id = 0;
  SpanId parent = 0;
  std::string name;
  double start_ms = 0;      // offset from the tracer's epoch
  double measured_ms = -1;  // wall duration; negative while still open
  double modeled_ms = -1;   // simulated cost; negative = not modeled
  uint64_t thread_id = 0;   // hash of the recording thread's id
  std::vector<std::pair<std::string, std::string>> attrs;

  bool open() const { return measured_ms < 0; }
};

/// Records nested spans for one or more queries. Thread-safe: the
/// Execution Monitor's remote-fetch tasks record spans from pool threads
/// while the calling thread records preparation spans. Parent links are
/// explicit (no thread-local ambient span), which is what makes
/// cross-thread nesting unambiguous.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  /// Opens a span; `parent` 0 makes it a root.
  SpanId StartSpan(const std::string& name, SpanId parent = 0);

  /// Closes a span, stamping its measured wall-clock duration.
  void EndSpan(SpanId id);

  /// Sets / accumulates the modeled (simulated-cost) duration of a span.
  void SetModeledMs(SpanId id, double ms);
  void AddModeledMs(SpanId id, double ms);

  /// Attaches a key/value annotation to a span.
  void Annotate(SpanId id, const std::string& key, const std::string& value);

  /// Drops every recorded span (per-query reuse of one tracer).
  void Clear();

  size_t NumSpans() const;
  /// Copy of all spans in creation order.
  std::vector<Span> Snapshot() const;
  /// First span with this name, if any (test/report convenience).
  bool FindSpan(const std::string& name, Span* out) const;

  /// Flat JSON: {"spans": [{id, parent, name, start_ms, measured_ms,
  /// modeled_ms, thread, attrs...}, ...]} — the same plain-JSON flavour
  /// as bench_util.h's table output so benches can dump both.
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

  /// Indented span tree with measured and modeled durations, e.g.
  ///   query q1                         measured=1.92ms modeled=3.10ms
  ///   ├─ plan                          measured=0.04ms
  ///   │  └─ subsumption                measured=0.03ms
  ///   └─ execute ...
  std::string PrettyTree() const;

 private:
  double NowMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  mutable Mutex mu_;
  const std::chrono::steady_clock::time_point epoch_;  // set once, immutable
  std::vector<Span> spans_ BRAID_GUARDED_BY(mu_);
};

/// RAII span: opens on construction, closes on destruction (or at an
/// explicit End()). Tolerates a null tracer, so instrumented code paths
/// need no branching when tracing is off.
class SpanScope {
 public:
  SpanScope(Tracer* tracer, const std::string& name, SpanId parent = 0)
      : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->StartSpan(name, parent);
  }
  ~SpanScope() { End(); }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// 0 when the scope is untraced; safe to pass as a parent either way.
  SpanId id() const { return id_; }

  void SetModeledMs(double ms) {
    if (tracer_ != nullptr && id_ != 0) tracer_->SetModeledMs(id_, ms);
  }
  void Annotate(const std::string& key, const std::string& value) {
    if (tracer_ != nullptr && id_ != 0) tracer_->Annotate(id_, key, value);
  }
  void End() {
    if (tracer_ != nullptr && id_ != 0 && !ended_) tracer_->EndSpan(id_);
    ended_ = true;
  }

 private:
  Tracer* tracer_;
  SpanId id_ = 0;
  bool ended_ = false;
};

}  // namespace braid::obs

#endif  // BRAID_OBS_TRACE_H_
