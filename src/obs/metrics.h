#ifndef BRAID_OBS_METRICS_H_
#define BRAID_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace braid::obs {

/// Monotonically increasing event count. Updates are lock-free; handles
/// returned by the registry stay valid for the registry's lifetime, so
/// hot paths can cache the pointer and skip the name lookup.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depth, bytes resident). Signed: transient
/// dips below zero during concurrent inc/dec interleavings are tolerated.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Distribution of a nonnegative quantity (latency in ms, tuples per
/// task) over fixed exponential buckets. Observation is lock-free.
class Histogram {
 public:
  /// Upper bounds of the buckets; the last bucket is unbounded.
  static constexpr size_t kNumBuckets = 28;

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// Approximate quantile (q in [0,1]) from the bucket upper bounds.
  double Quantile(double q) const;
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  static double BucketBound(size_t i);
  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Process-wide registry of named instruments, the single place the
/// subsystems (cache manager, remote DBMS, thread pool, path tracker,
/// subsumption search) publish their counters. Names are dotted paths,
/// e.g. "cache.evictions". Thread-safe; instruments are created on first
/// use and never destroyed before the registry.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Current value of a counter, or 0 when it was never touched (handy
  /// for tests and report code that must not create instruments).
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;

  /// Zeroes every registered instrument (tests, per-bench sections).
  void Reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, mean, p50, p99}}} — same flavour of plain JSON as
  /// bench_util.h's table output, so benches can dump both side by side.
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

  /// The process-wide instance.
  static MetricsRegistry& Global();

 private:
  // The maps are guarded; the instruments they point to are internally
  // atomic, so handles returned to callers stay lock-free to update.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      BRAID_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ BRAID_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      BRAID_GUARDED_BY(mu_);
};

}  // namespace braid::obs

#endif  // BRAID_OBS_METRICS_H_
