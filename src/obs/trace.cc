#include "obs/trace.h"

#include <fstream>
#include <functional>
#include <iomanip>
#include <sstream>
#include <thread>

namespace braid::obs {

namespace {

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

std::string Ms(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

}  // namespace

SpanId Tracer::StartSpan(const std::string& name, SpanId parent) {
  const double now = NowMs();
  MutexLock lock(&mu_);
  Span span;
  span.id = spans_.size() + 1;
  span.parent = parent;
  span.name = name;
  span.start_ms = now;
  span.thread_id =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  spans_.push_back(std::move(span));
  return spans_.back().id;
}

void Tracer::EndSpan(SpanId id) {
  const double now = NowMs();
  MutexLock lock(&mu_);
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (span.open()) span.measured_ms = now - span.start_ms;
}

void Tracer::SetModeledMs(SpanId id, double ms) {
  MutexLock lock(&mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].modeled_ms = ms;
}

void Tracer::AddModeledMs(SpanId id, double ms) {
  MutexLock lock(&mu_);
  if (id == 0 || id > spans_.size()) return;
  Span& span = spans_[id - 1];
  span.modeled_ms = (span.modeled_ms < 0 ? 0 : span.modeled_ms) + ms;
}

void Tracer::Annotate(SpanId id, const std::string& key,
                      const std::string& value) {
  MutexLock lock(&mu_);
  if (id == 0 || id > spans_.size()) return;
  spans_[id - 1].attrs.emplace_back(key, value);
}

void Tracer::Clear() {
  MutexLock lock(&mu_);
  spans_.clear();
}

size_t Tracer::NumSpans() const {
  MutexLock lock(&mu_);
  return spans_.size();
}

std::vector<Span> Tracer::Snapshot() const {
  MutexLock lock(&mu_);
  return spans_;
}

bool Tracer::FindSpan(const std::string& name, Span* out) const {
  MutexLock lock(&mu_);
  for (const Span& span : spans_) {
    if (span.name == name) {
      if (out != nullptr) *out = span;
      return true;
    }
  }
  return false;
}

std::string Tracer::ToJson() const {
  const std::vector<Span> spans = Snapshot();
  std::ostringstream os;
  os << "{\n  \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"id\": " << s.id
       << ", \"parent\": " << s.parent << ", \"name\": " << JsonString(s.name)
       << ", \"start_ms\": " << Ms(s.start_ms)
       << ", \"measured_ms\": " << Ms(s.measured_ms)
       << ", \"modeled_ms\": " << Ms(s.modeled_ms) << ", \"thread\": \""
       << std::hex << s.thread_id << std::dec << "\"";
    if (!s.attrs.empty()) {
      os << ", \"attrs\": {";
      for (size_t a = 0; a < s.attrs.size(); ++a) {
        if (a > 0) os << ", ";
        os << JsonString(s.attrs[a].first) << ": "
           << JsonString(s.attrs[a].second);
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bool Tracer::WriteJson(const std::string& path) const {
  if (path.empty()) return false;
  std::ofstream out(path);
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

std::string Tracer::PrettyTree() const {
  const std::vector<Span> spans = Snapshot();
  // Children in creation order (span ids are creation-ordered).
  std::vector<std::vector<size_t>> children(spans.size() + 1);
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanId parent = spans[i].parent;
    children[parent <= spans.size() ? parent : 0].push_back(i);
  }

  std::ostringstream os;
  std::function<void(size_t, const std::string&, bool, bool)> emit =
      [&](size_t index, const std::string& prefix, bool last, bool root) {
        const Span& s = spans[index];
        std::string line = root ? "" : prefix + (last ? "└─ " : "├─ ");
        line += s.name;
        for (const auto& [k, v] : s.attrs) {
          line += " " + k + "=" + v;
        }
        if (line.size() < 44) line.resize(44, ' ');
        os << line << "  measured=" << Ms(s.measured_ms) << "ms";
        if (s.modeled_ms >= 0) os << " modeled=" << Ms(s.modeled_ms) << "ms";
        os << "\n";
        const std::string child_prefix =
            root ? "" : prefix + (last ? "   " : "│  ");
        const auto& kids = children[s.id];
        for (size_t c = 0; c < kids.size(); ++c) {
          emit(kids[c], child_prefix, c + 1 == kids.size(), false);
        }
      };
  for (size_t c = 0; c < children[0].size(); ++c) {
    emit(children[0][c], "", true, true);
  }
  return os.str();
}

}  // namespace braid::obs
