#ifndef BRAID_COMMON_MUTEX_H_
#define BRAID_COMMON_MUTEX_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/thread_annotations.h"

namespace braid {

/// Annotated wrapper over std::mutex. Every mutex in `src/` goes through
/// this type (enforced by tools/braid_lint) so that Clang Thread Safety
/// Analysis sees every acquisition: fields are declared
/// `BRAID_GUARDED_BY(mu_)`, helpers that expect the lock are declared
/// `BRAID_REQUIRES(mu_)`, and the `-Wthread-safety -Werror` CI job turns
/// violations into build breaks.
class BRAID_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() BRAID_ACQUIRE() { mu_.lock(); }
  void Unlock() BRAID_RELEASE() { mu_.unlock(); }
  bool TryLock() BRAID_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documents (to the analysis and the reader) that the caller knows the
  /// lock is held on this path without holding a scoped lock object.
  void AssertHeld() const BRAID_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for `braid::Mutex`, annotated as a scoped capability so the
/// analysis tracks the critical section's extent.
class BRAID_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) BRAID_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() BRAID_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with `braid::Mutex`. There is deliberately no
/// predicate-lambda overload: the analysis cannot see a capability across
/// a lambda boundary, so waits are written as explicit loops in the
/// function that holds the lock —
///
///   MutexLock lock(&mu_);
///   while (!condition_over_guarded_fields) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and reacquires `mu`
  /// before returning. Spurious wakeups are possible; always re-test the
  /// condition in a loop.
  void Wait(Mutex& mu) BRAID_REQUIRES(mu) BRAID_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Like Wait but gives up after `timeout`; returns false on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      BRAID_REQUIRES(mu) BRAID_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool notified = cv_.wait_for(lock, timeout) == std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// Runtime-checked "capability" for components that are single-threaded by
/// design (CacheManager, CacheModel): the checker binds to the first
/// thread that touches the component and aborts the process if any other
/// thread ever does. To the static analysis it is a capability like a
/// mutex — fields are declared `BRAID_GUARDED_BY(sequence_)` and each
/// public method opens with `BRAID_SINGLE_THREAD(sequence_);`, so when the
/// ROADMAP-1 concurrent-CMS refactor starts moving these components across
/// threads, every unprotected field access is already enumerated by the
/// compiler instead of rediscovered by TSan.
class BRAID_CAPABILITY("sequence") SequenceChecker {
 public:
  SequenceChecker() = default;
  /// Copies and moves deliberately do not inherit the binding: the new
  /// object may legitimately live on a different thread.
  SequenceChecker(const SequenceChecker&) {}
  SequenceChecker& operator=(const SequenceChecker&) { return *this; }

  /// Binds to the calling thread on first use; aborts on any later call
  /// from a different thread. The check is one relaxed atomic load on the
  /// happy path — cheap enough to keep on in release builds.
  void Check() const BRAID_ASSERT_CAPABILITY(this) {
    const std::size_t me = SelfId();
    std::size_t expected = 0;
    if (owner_.compare_exchange_strong(expected, me,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      return;  // first use: bound to this thread
    }
    if (expected == me) return;
    std::fprintf(stderr,
                 "braid: FATAL: single-threaded component accessed from a "
                 "second thread (owner=%zx self=%zx); see DESIGN.md "
                 "\"Concurrency contract\"\n",
                 expected, me);
    std::abort();
  }

  /// Unbinds the checker; the next Check() rebinds to its calling thread.
  /// For explicit ownership handoff between phases (e.g. a session moved
  /// to a scheduler thread while quiesced).
  void Detach() { owner_.store(0, std::memory_order_release); }

 private:
  static std::size_t SelfId() {
    const std::size_t id =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return id == 0 ? 1 : id;  // reserve 0 for "unbound"
  }

  mutable std::atomic<std::size_t> owner_{0};
};

}  // namespace braid

/// Marks the start of a method of a single-threaded-by-design component:
/// runtime-checks the sequence binding and tells the static analysis the
/// `sequence` capability is held from here on.
#define BRAID_SINGLE_THREAD(checker) (checker).Check()

#endif  // BRAID_COMMON_MUTEX_H_
