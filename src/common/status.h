#ifndef BRAID_COMMON_STATUS_H_
#define BRAID_COMMON_STATUS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace braid {

/// Canonical error space for the BrAID library. Core code paths signal
/// failure through `Status` / `Result<T>` rather than exceptions, following
/// common practice in database engines (RocksDB, Arrow, LevelDB).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kParseError,
  kInternal,
  /// A transient failure of an external component (e.g. the remote DBMS
  /// link); the operation may succeed if retried.
  kUnavailable,
  /// The system refused the operation to protect its latency objectives
  /// (admission control): the scheduler queue is beyond its configured
  /// bound. Nothing was executed or dropped; retry after backing off.
  kOverloaded,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap, value-semantic success/error indicator with a message.
///
/// The default-constructed `Status` is OK. Error statuses carry a code and a
/// message describing the failure. `Status` is copyable and movable.
///
/// `[[nodiscard]]`: ignoring a returned Status silently swallows the error
/// (exactly the bug class the fault-injecting difftest exists to catch), so
/// the compiler flags every discarded call. A deliberate discard must be
/// spelled `(void)expr;` with a comment saying why losing the error is OK.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An OK code must
  /// not carry a message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type `T` or an error `Status`. Analogous to
/// absl::StatusOr / arrow::Result.
///
/// Accessing `value()` on an error result aborts in debug builds; call
/// `ok()` first or use the BRAID_ASSIGN_OR_RETURN macro.
///
/// `[[nodiscard]]` for the same reason as Status: a discarded Result drops
/// both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. The status must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is held.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

namespace internal {

inline void CheckOkImpl(const Status& status, const char* expr_text,
                        const char* file, int line) {
  if (status.ok()) return;
  std::fprintf(stderr, "%s:%d: BRAID_CHECK_OK(%s) failed: %s\n", file, line,
               expr_text, status.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

template <typename T>
void CheckOkImpl(const Result<T>& result, const char* expr_text,
                 const char* file, int line) {
  CheckOkImpl(result.status(), expr_text, file, line);
}

}  // namespace internal
}  // namespace braid

/// Aborts the process (with the status message) when `expr` — a Status or
/// Result<T> — is not OK. For call sites where failure is a programming
/// error (fixture setup, statically-known-valid programs): the alternative,
/// `(void)expr;`, swallows the error and surfaces as a confusing
/// missing-table/empty-KB failure far downstream.
#define BRAID_CHECK_OK(expr) \
  ::braid::internal::CheckOkImpl((expr), #expr, __FILE__, __LINE__)

/// Propagates a non-OK Status from an expression that evaluates to Status.
#define BRAID_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::braid::Status braid_status_ = (expr);    \
    if (!braid_status_.ok()) return braid_status_; \
  } while (false)

#define BRAID_CONCAT_IMPL_(x, y) x##y
#define BRAID_CONCAT_(x, y) BRAID_CONCAT_IMPL_(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns its status, otherwise
/// move-assigns the value into `lhs` (which may include a declaration).
#define BRAID_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  BRAID_ASSIGN_OR_RETURN_IMPL_(BRAID_CONCAT_(braid_result_, __LINE__), \
                               lhs, rexpr)

#define BRAID_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                 \
  if (!result.ok()) return result.status();              \
  lhs = std::move(result).value();

#endif  // BRAID_COMMON_STATUS_H_
