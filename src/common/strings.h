#ifndef BRAID_COMMON_STRINGS_H_
#define BRAID_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace braid {

/// Joins the elements of `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `text` on the single character `sep`. Adjacent separators produce
/// empty fields; an empty input produces a single empty field.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Returns `text` with leading and trailing ASCII whitespace removed.
std::string_view StrTrim(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Streams all arguments into one string (a light-weight StrCat).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

}  // namespace braid

#endif  // BRAID_COMMON_STRINGS_H_
