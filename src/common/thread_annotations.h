#ifndef BRAID_COMMON_THREAD_ANNOTATIONS_H_
#define BRAID_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attribute macros (no-ops on other
/// compilers), in the style of the macros shipped with the analysis
/// documentation and used by abseil. Together with the `braid::Mutex` /
/// `braid::MutexLock` / `braid::CondVar` wrappers in common/mutex.h they
/// make the locking discipline of every concurrent component a
/// compile-time contract: a dedicated CI job builds the tree with
/// `-Wthread-safety -Werror`, so a guarded field read without its mutex —
/// or a REQUIRES helper called unlocked — is a build break, not a TSan
/// coin-flip.
///
/// Vocabulary (see DESIGN.md §"Concurrency contract"):
///  * BRAID_CAPABILITY("mutex")   — class is a lockable capability
///  * BRAID_GUARDED_BY(mu)        — field may only be touched holding mu
///  * BRAID_REQUIRES(mu)          — function must be called holding mu
///  * BRAID_EXCLUDES(mu)          — function must NOT be called holding mu
///  * BRAID_ACQUIRE/RELEASE(mu)   — function takes / drops mu itself
///  * BRAID_ASSERT_CAPABILITY(mu) — function checks mu at runtime and the
///                                  analysis may assume it afterwards

#if defined(__clang__) && !defined(SWIG)
#define BRAID_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define BRAID_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

#define BRAID_CAPABILITY(x) BRAID_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

#define BRAID_SCOPED_CAPABILITY \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

#define BRAID_GUARDED_BY(x) BRAID_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define BRAID_PT_GUARDED_BY(x) \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

#define BRAID_ACQUIRED_BEFORE(...) \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

#define BRAID_ACQUIRED_AFTER(...) \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

#define BRAID_REQUIRES(...) \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define BRAID_REQUIRES_SHARED(...) \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

#define BRAID_ACQUIRE(...) \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define BRAID_ACQUIRE_SHARED(...) \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

#define BRAID_RELEASE(...) \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define BRAID_RELEASE_SHARED(...) \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

#define BRAID_TRY_ACQUIRE(...) \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

#define BRAID_EXCLUDES(...) \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define BRAID_ASSERT_CAPABILITY(x) \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

#define BRAID_RETURN_CAPABILITY(x) \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

#define BRAID_NO_THREAD_SAFETY_ANALYSIS \
  BRAID_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // BRAID_COMMON_THREAD_ANNOTATIONS_H_
