#include "common/status.h"

namespace braid {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace braid
