#ifndef BRAID_COMMON_RNG_H_
#define BRAID_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace braid {

/// Deterministic pseudo-random generator used by workload generators and
/// property tests. All BrAID randomness flows through explicit `Rng`
/// instances so experiments are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace braid

#endif  // BRAID_COMMON_RNG_H_
