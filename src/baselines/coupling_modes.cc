#include "baselines/coupling_modes.h"

namespace braid::baselines {

const char* CouplingModeName(CouplingMode mode) {
  switch (mode) {
    case CouplingMode::kLooseCoupling:
      return "loose-coupling";
    case CouplingMode::kExactMatchCache:
      return "exact-match";
    case CouplingMode::kSingleRelationCache:
      return "single-relation";
    case CouplingMode::kBraidNoAdvice:
      return "braid-no-advice";
    case CouplingMode::kBraid:
      return "braid";
  }
  return "?";
}

cms::CmsConfig ConfigFor(CouplingMode mode, size_t cache_budget_bytes) {
  cms::CmsConfig config;
  config.cache_budget_bytes = cache_budget_bytes;
  switch (mode) {
    case CouplingMode::kLooseCoupling:
      config.enable_caching = false;
      config.enable_subsumption = false;
      config.enable_advice = false;
      config.enable_prefetch = false;
      config.enable_generalization = false;
      config.enable_indexing = false;
      config.enable_lazy = false;
      break;
    case CouplingMode::kExactMatchCache:
      config.enable_caching = true;
      config.enable_subsumption = false;
      config.enable_advice = false;
      config.enable_prefetch = false;
      config.enable_generalization = false;
      config.enable_indexing = false;
      config.enable_lazy = false;
      break;
    case CouplingMode::kSingleRelationCache:
      config.enable_caching = true;
      config.enable_subsumption = true;  // re-selecting from cached relations
      config.single_relation_only = true;
      config.enable_advice = false;
      config.enable_prefetch = false;
      config.enable_generalization = false;
      config.enable_indexing = false;
      config.enable_lazy = false;
      break;
    case CouplingMode::kBraidNoAdvice:
      config.enable_caching = true;
      config.enable_subsumption = true;
      config.enable_advice = false;
      config.enable_prefetch = false;
      config.enable_generalization = false;
      config.enable_indexing = false;
      config.enable_lazy = true;  // lazy needs advice hints; effectively off
      break;
    case CouplingMode::kBraid:
      break;  // defaults = full system
  }
  return config;
}

}  // namespace braid::baselines
