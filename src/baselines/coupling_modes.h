#ifndef BRAID_BASELINES_COUPLING_MODES_H_
#define BRAID_BASELINES_COUPLING_MODES_H_

#include <string>

#include "cms/cms.h"

namespace braid::baselines {

/// The AI/DB coupling approaches of the paper's §1 taxonomy (Figure 1) and
/// prior caching designs it compares against, each realized as a CMS
/// policy configuration so experiments are controlled ablations:
///
///  * kLooseCoupling — a thin interface, no caching at all (KEE-Connection
///    / EDUCE class): every CAQL query becomes a remote request.
///  * kExactMatchCache — result caching with reuse only on an exact match
///    of a later query (BERMUDA [IOAN88] / [SELL87] class).
///  * kSingleRelationCache — only whole base-relation extensions are
///    cached; queries re-select from them locally (the [CERI86] class).
///  * kBraidNoAdvice — full BrAID CMS (subsumption, lazy evaluation) but
///    without advice: no prefetching, generalization, advised indexing, or
///    advised replacement.
///  * kBraid — the full system.
enum class CouplingMode {
  kLooseCoupling,
  kExactMatchCache,
  kSingleRelationCache,
  kBraidNoAdvice,
  kBraid,
};

const char* CouplingModeName(CouplingMode mode);

/// The CMS configuration realizing `mode` with the given cache budget.
cms::CmsConfig ConfigFor(CouplingMode mode, size_t cache_budget_bytes);

}  // namespace braid::baselines

#endif  // BRAID_BASELINES_COUPLING_MODES_H_
