#ifndef BRAID_BRAID_BRAID_SYSTEM_H_
#define BRAID_BRAID_BRAID_SYSTEM_H_

#include <memory>
#include <string>

#include "cms/cms.h"
#include "common/status.h"
#include "dbms/remote_dbms.h"
#include "ie/inference_engine.h"
#include "logic/knowledge_base.h"
#include "logic/parser.h"

namespace braid {

/// Wiring options for a BrAID instance.
struct BraidOptions {
  cms::CmsConfig cms;
  dbms::NetworkModel network;
  dbms::DbmsCostModel dbms_costs;
  ie::IeConfig ie;
};

/// The three-component BrAID system of Figure 3: an inference engine and a
/// Cache Management System on the "workstation", and a remote DBMS treated
/// as an independent component. Queries flow top-down only: the IE asks
/// the CMS, the CMS asks the DBMS; the DBMS never calls back.
///
/// Typical use:
///
///   logic::KnowledgeBase kb;
///   ParseProgram(program_text, &kb);
///   BraidSystem braid(std::move(database), std::move(kb));
///   auto outcome = braid.Ask("ancestor(42, Y)?");
class BraidSystem {
 public:
  BraidSystem(dbms::Database database, logic::KnowledgeBase kb,
              BraidOptions options = {})
      : kb_(std::move(kb)),
        remote_(std::make_unique<dbms::RemoteDbms>(
            std::move(database), options.network, options.dbms_costs)),
        cms_(std::make_unique<cms::Cms>(remote_.get(), options.cms)),
        ie_(std::make_unique<ie::InferenceEngine>(&kb_, cms_.get(),
                                                  options.ie)) {}

  /// Answers an AI query given as text, e.g. "ancestor(42, Y)?".
  Result<ie::AskOutcome> Ask(const std::string& query_text) {
    return ie_->Ask(query_text);
  }
  Result<ie::AskOutcome> Ask(const logic::Atom& query) {
    return ie_->Ask(query);
  }

  const logic::KnowledgeBase& kb() const { return kb_; }
  logic::KnowledgeBase& kb() { return kb_; }
  dbms::RemoteDbms& remote() { return *remote_; }
  cms::Cms& cms() { return *cms_; }
  ie::InferenceEngine& ie() { return *ie_; }

 private:
  logic::KnowledgeBase kb_;
  std::unique_ptr<dbms::RemoteDbms> remote_;
  std::unique_ptr<cms::Cms> cms_;
  std::unique_ptr<ie::InferenceEngine> ie_;
};

}  // namespace braid

#endif  // BRAID_BRAID_BRAID_SYSTEM_H_
