#include "testing/diff_runner.h"

#include <algorithm>
#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "cms/cms.h"
#include "common/strings.h"
#include "relational/value.h"
#include "testing/load_harness.h"
#include "testing/reference_eval.h"

namespace braid::testing {

namespace {

using caql::CaqlQuery;
using cms::CacheOutcome;
using cms::Cms;
using cms::CmsAnswer;
using cms::CmsConfig;
using rel::Relation;
using rel::Tuple;
using rel::Value;

CmsConfig MakeConfig(const DiffOptions& opts) {
  CmsConfig config;
  config.cache_budget_bytes = opts.cache_budget_bytes;
  config.enable_caching = opts.caching;
  config.enable_catalog = opts.catalog;
  config.enable_intermediates = opts.intermediates;
  config.enable_prefetch = opts.prefetch;
  config.prefetch_async = opts.prefetch_async;
  config.enable_parallel = opts.parallel;
  config.num_threads = opts.num_threads;
  config.parallel_threshold = opts.parallel_threshold;
  if (opts.open_loop) {
    // Tight on purpose: speculation sheds whenever anything is queued,
    // and the admission bound is low enough that the Poisson bursts draw
    // real kOverloaded refusals. The cell then proves both shed paths
    // leave answers untouched.
    config.enable_load_control = true;
    config.shed_queue_depth = 0;
    config.admission_queue_bound = 4;
  }
  return config;
}

/// Materializes a CMS answer (eager relation or lazy stream) into a
/// standalone relation.
Result<Relation> Materialize(const CmsAnswer& answer) {
  if (answer.relation != nullptr) return *answer.relation;
  if (answer.stream == nullptr) {
    return Status::Internal("CMS answer has neither relation nor stream");
  }
  Relation out("answer", answer.stream->schema());
  while (auto t = answer.stream->Next()) {
    out.AppendUnchecked(std::move(*t));
  }
  return out;
}

/// The deliberate-corruption hook: appends one out-of-domain poison tuple
/// to every materialized extension in the cache, bypassing the const
/// shield the way a real memory-safety bug would. Any later answer served
/// from a poisoned element gains a row the oracle does not have.
void CorruptCache(Cms* cms) {
  for (const auto& [id, element] : cms->cache().model().elements()) {
    if (!element->is_materialized()) continue;
    auto* extension =
        const_cast<Relation*>(element->extension().get());
    Tuple poison(extension->schema().size(), Value::Int(987654321));
    extension->AppendUnchecked(std::move(poison));
  }
}

struct StreamChecker {
  const DiffOptions& opts;
  const GeneratedWorkload& workload;
  const std::vector<Result<Relation>>& oracle;
  dbms::RemoteDbms* remote;
  Cms* cms;
  DiffReport* report;

  void Fail(size_t index, std::string kind, std::string outcome,
            std::string detail) {
    report->ok = false;
    report->failures.push_back(DiffFailure{
        index, workload.queries[index].ToString(), std::move(kind),
        std::move(outcome), std::move(detail)});
  }

  /// Checks one answered query against the oracle: status propagation,
  /// bag-equality, and the subsumption-containment invariant. Returns the
  /// outcome when the answer was well-formed (even if a check failed),
  /// nullopt on status failures and clean faults. Shared by the serial
  /// pass and the multi-session waves; thread-compatible (callers check
  /// from one thread).
  std::optional<CacheOutcome> CheckAnswer(size_t index, const char* pass_label,
                                          const Result<CmsAnswer>& got) {
    const Result<Relation>& want = oracle[index];
    if (!want.ok()) {
      Fail(index, "oracle", "", want.status().ToString());
      return std::nullopt;
    }
    ++report->queries_run;

    if (!got.ok()) {
      if (opts.faults && IsInjectedFault(got.status())) {
        ++report->queries_faulted;  // clean propagation — the contract
        return std::nullopt;
      }
      Fail(index, "status", "",
           StrCat(pass_label, ": ", got.status().ToString()));
      return std::nullopt;
    }
    const CmsAnswer& answer = got.value();
    const char* outcome = cms::CacheOutcomeName(answer.outcome);

    Result<Relation> materialized = Materialize(answer);
    if (!materialized.ok()) {
      Fail(index, "status", outcome,
           StrCat(pass_label, ": ", materialized.status().ToString()));
      return std::nullopt;
    }

    std::string diff;
    if (!BagEqual(want.value(), materialized.value(), &diff)) {
      Fail(index, "bag-mismatch", outcome,
           StrCat(pass_label, ": ", diff, "; oracle ",
                  want.value().NumTuples(), " rows, cms ",
                  materialized.value().NumTuples(), " rows"));
      return answer.outcome;
    }

    // Metamorphic invariant: answers derived from cached data via
    // subsumption must be contained in the oracle's bag. Bag-equality
    // already implies it; checking separately gives the sharper
    // "subsumption-unsound" failure kind if equality is ever relaxed.
    if (answer.outcome == CacheOutcome::kFullLocal ||
        answer.outcome == CacheOutcome::kPartial) {
      if (!BagContains(want.value(), materialized.value(), &diff)) {
        Fail(index, "invariant", outcome,
             StrCat(pass_label, ": subsumption-unsound: ", diff));
      }
    }
    if (answer.outcome == CacheOutcome::kExact) ++report->exact_hits;
    return answer.outcome;
  }

  /// The catalog/stripe agreement invariant (DESIGN.md §11): every cached
  /// element reachable through the catalog index via its own definition,
  /// no posting left pointing at an evicted id. Checked after every query
  /// of the serial pass and after every session wave, i.e. after each
  /// insert/eviction burst.
  void CheckCatalog(size_t index, const char* pass_label) {
    if (!opts.catalog) return;
    std::string problem = cms->cache().model().CheckCatalogConsistency();
    if (!problem.empty()) {
      Fail(index, "invariant", "",
           StrCat(pass_label, ": catalog/stripe disagreement: ", problem));
    }
  }

  /// Runs one stream pass; `pass_label` distinguishes the first pass from
  /// the warm-cache recheck in failure details.
  void RunPass(const std::vector<size_t>& indices, const char* pass_label) {
    for (size_t index : indices) {
      const CaqlQuery& query = workload.queries[index];

      // Exact-hit invariant bookkeeping is only meaningful when nothing
      // can touch the remote counters concurrently.
      const bool quiescent = !opts.prefetch;
      const size_t remote_before = quiescent ? remote->stats().queries : 0;

      Result<CmsAnswer> got = cms->Query(query);
      std::optional<CacheOutcome> outcome = CheckAnswer(index, pass_label, got);

      // Metamorphic invariant: an exact cache hit answers from memory —
      // the cache changes fetch counts and cost, never answers, and an
      // exact hit needs no new remote queries at all.
      if (quiescent && outcome == CacheOutcome::kExact) {
        const size_t remote_after = remote->stats().queries;
        if (remote_after != remote_before) {
          Fail(index, "invariant", "exact",
               StrCat(pass_label, ": exact hit issued ",
                      remote_after - remote_before, " remote queries"));
        }
      }

      CheckCatalog(index, pass_label);

      if (opts.corrupt_after_query >= 0 &&
          index == static_cast<size_t>(opts.corrupt_after_query)) {
        cms->DrainPrefetches();  // poison everything that will land, too
        CorruptCache(cms);
      }
    }
  }

  /// Interleaved multi-session run: `opts.sessions` sessions share the
  /// CMS, session s replaying the stream rotated by s. Queries go through
  /// the session scheduler in waves (one query per session per wave) so
  /// installs, evictions, prefetch joins, and snapshot reads genuinely
  /// race; every answer is still bag-checked against the oracle. The
  /// quiescence-dependent remote-counter invariant does not apply.
  void RunSessions(const std::vector<size_t>& indices) {
    std::vector<cms::CmsSession*> sessions;
    for (size_t s = 0; s < opts.sessions; ++s) {
      sessions.push_back(cms->OpenSession(workload.advice));
    }
    const size_t n = indices.size();
    std::vector<std::pair<size_t, std::future<Result<CmsAnswer>>>> wave;
    for (size_t w = 0; w < n; ++w) {
      wave.clear();
      for (size_t s = 0; s < sessions.size(); ++s) {
        const size_t index = indices[(w + s) % n];
        wave.emplace_back(
            index, cms->QueryAsync(*sessions[s], workload.queries[index]));
      }
      bool corrupt_now = false;
      for (auto& [index, future] : wave) {
        CheckAnswer(index, "sessions", future.get());
        corrupt_now |= opts.corrupt_after_query >= 0 &&
                       index == static_cast<size_t>(opts.corrupt_after_query);
      }
      // Every wave ends with an insert/eviction burst behind it; the
      // catalog must agree with the stripes at each such point.
      CheckCatalog(indices[w % n], "sessions");
      // The harness self-test hook, between waves so the poison lands at
      // a quiescent point and later waves must detect it.
      if (corrupt_now) {
        cms->DrainPrefetches();
        CorruptCache(cms);
      }
    }
    for (cms::CmsSession* s : sessions) cms->CloseSession(s);
  }

  /// Open-loop overload run: one shared Poisson arrival schedule at
  /// `opts.open_loop_rate` qps paced in real time, arrival i going to
  /// session i mod S with session s replaying the stream rotated by s.
  /// Arrivals are issued at their scheduled times whether or not earlier
  /// queries finished, so the scheduler queue genuinely builds and the
  /// tight MakeConfig policy sheds speculation and refuses admissions.
  /// Every completion is bag-checked; every kOverloaded refusal is
  /// retried synchronously after the drain — a refusal must be clean
  /// (nothing executed, nothing dropped), so the retry must agree with
  /// the oracle exactly like a first run would.
  void RunOpenLoop(const std::vector<size_t>& indices) {
    const size_t n = indices.size();
    if (n == 0) return;
    std::vector<cms::CmsSession*> sessions;
    const size_t num_sessions = std::max<size_t>(opts.sessions, 2);
    for (size_t s = 0; s < num_sessions; ++s) {
      sessions.push_back(cms->OpenSession(workload.advice));
    }

    ArrivalParams schedule;
    schedule.process = ArrivalProcess::kPoisson;
    schedule.rate_qps = opts.open_loop_rate;
    schedule.count = num_sessions * n;  // each session covers the stream
    schedule.seed = opts.seed + 1;      // decorrelate from the workload
    const std::vector<double> arrivals_ms = GenerateArrivals(schedule);

    struct Pending {
      size_t index;
      size_t session;
      std::future<Result<CmsAnswer>> future;
    };
    std::vector<Pending> pending;
    pending.reserve(arrivals_ms.size());
    std::vector<size_t> issued(num_sessions, 0);

    SteadyLoadClock clock;
    const double start_ms = clock.NowMs();
    for (size_t i = 0; i < arrivals_ms.size(); ++i) {
      clock.SleepUntilMs(start_ms + arrivals_ms[i]);
      const size_t s = i % num_sessions;
      const size_t index = indices[(issued[s]++ + s) % n];
      pending.push_back(Pending{
          index, s, cms->QueryAsync(*sessions[s], workload.queries[index])});
    }
    cms->DrainSessions();
    cms->DrainPrefetches();

    std::vector<std::pair<size_t, size_t>> refused;  // (index, session)
    for (Pending& p : pending) {
      Result<CmsAnswer> got = p.future.get();
      if (!got.ok() && got.status().code() == StatusCode::kOverloaded) {
        ++report->overload_rejections;
        refused.emplace_back(p.index, p.session);
        continue;
      }
      CheckAnswer(p.index, "open-loop", got);
    }
    CheckCatalog(indices[0], "open-loop");

    for (const auto& [index, s] : refused) {
      CheckAnswer(index, "open-loop-retry",
                  cms->Query(*sessions[s], workload.queries[index]));
    }
    CheckCatalog(indices[0], "open-loop-retry");

    for (cms::CmsSession* s : sessions) cms->CloseSession(s);
  }
};

}  // namespace

std::string DiffFailure::ToString() const {
  return StrCat("query #", query_index, " [", kind,
                outcome.empty() ? "" : StrCat(", outcome=", outcome),
                "]: ", detail, "\n  ", query);
}

std::string DiffReport::Summary() const {
  std::string out =
      StrCat("seed ", seed, ": ", ok ? "OK" : "FAIL", " — ", queries_run,
             " queries (", exact_hits, " exact hits, ", queries_faulted,
             " clean faults, ", overload_rejections, " overload rejections, ",
             remote_queries, " remote queries, ", evictions, " evictions)");
  for (const DiffFailure& f : failures) {
    out += "\n  " + f.ToString();
  }
  return out;
}

DiffReport RunDifferential(const DiffOptions& opts) {
  DiffReport report;
  report.seed = opts.seed;

  WorkloadParams params;
  params.seed = opts.seed;
  params.num_queries = opts.num_queries;
  GeneratedWorkload workload = GenerateWorkload(params);

  // Oracle answers, computed once straight over the base tables.
  std::vector<Result<Relation>> oracle;
  oracle.reserve(workload.queries.size());
  for (const CaqlQuery& q : workload.queries) {
    oracle.push_back(ReferenceEval(workload.database, q));
  }

  std::unique_ptr<dbms::RemoteDbms> remote;
  if (opts.faults) {
    FaultPlan plan = opts.fault_plan;
    if (plan.seed == 0) plan.seed = opts.seed;
    remote = std::make_unique<FaultyRemoteDbms>(workload.database, plan);
  } else if (opts.open_loop) {
    // A link that sleeps for real, so the arrival rate genuinely outruns
    // the service rate: the scheduler queue builds past the tight
    // admission bound and the kOverloaded refusal path draws real
    // coverage (cost modeling changes with the latency, answers cannot).
    dbms::NetworkModel net;
    net.msg_latency_ms = 5;
    net.wall_clock_scale = 1.0;
    remote = std::make_unique<dbms::RemoteDbms>(workload.database, net,
                                                dbms::DbmsCostModel{});
  } else {
    remote = std::make_unique<dbms::RemoteDbms>(workload.database);
  }

  Cms cms(remote.get(), MakeConfig(opts));
  cms.BeginSession(workload.advice);

  std::vector<size_t> indices = opts.keep;
  if (indices.empty()) {
    for (size_t i = 0; i < workload.queries.size(); ++i) indices.push_back(i);
  } else {
    indices.erase(std::remove_if(indices.begin(), indices.end(),
                                 [&](size_t i) {
                                   return i >= workload.queries.size();
                                 }),
                  indices.end());
  }

  StreamChecker checker{opts, workload, oracle, remote.get(), &cms, &report};
  if (opts.open_loop) {
    checker.RunOpenLoop(indices);
  } else if (opts.sessions > 1) {
    checker.RunSessions(indices);
    cms.DrainSessions();
    cms.DrainPrefetches();
  } else {
    checker.RunPass(indices, "pass1");

    // Settle the pipeline before reading cross-thread state.
    cms.DrainPrefetches();

    if (opts.recheck && !opts.faults) {
      checker.RunPass(indices, "recheck");
      cms.DrainPrefetches();
    }
  }

  report.remote_queries = remote->stats().queries;
  report.evictions = cms.cache().stats().evictions;
  return report;
}

std::vector<size_t> MinimizeFailure(const DiffOptions& opts) {
  DiffOptions work = opts;
  work.keep.clear();

  DiffReport full = RunDifferential(work);
  std::vector<size_t> kept;
  for (size_t i = 0; i < work.num_queries; ++i) kept.push_back(i);
  if (full.ok) return kept;  // nothing to minimize

  // Greedy backward elimination: drop one index at a time, keeping the
  // removal whenever the remaining stream still fails.
  bool shrunk = true;
  while (shrunk && kept.size() > 1) {
    shrunk = false;
    for (size_t drop = kept.size(); drop-- > 0;) {
      std::vector<size_t> candidate = kept;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(drop));
      work.keep = candidate;
      if (!RunDifferential(work).ok) {
        kept = std::move(candidate);
        shrunk = true;
      }
    }
  }
  return kept;
}

std::string ReproCommand(const DiffOptions& opts) {
  std::string cmd =
      StrCat("braid_difftest --seed ", opts.seed, " --queries ",
             opts.num_queries, " --threads ", opts.num_threads, " --prefetch ",
             opts.prefetch ? (opts.prefetch_async ? "async" : "sync") : "off",
             " --faults ", opts.faults ? "on" : "off");
  if (opts.sessions > 1) cmd += StrCat(" --sessions ", opts.sessions);
  if (opts.open_loop) {
    cmd += StrCat(" --open-loop --rate ",
                  static_cast<size_t>(opts.open_loop_rate));
  }
  if (!opts.caching) cmd += " --no-cache";
  if (!opts.catalog) cmd += " --no-catalog";
  if (!opts.intermediates) cmd += " --no-intermediates";
  if (!opts.keep.empty()) {
    cmd += " --keep ";
    for (size_t i = 0; i < opts.keep.size(); ++i) {
      if (i > 0) cmd += ",";
      cmd += std::to_string(opts.keep[i]);
    }
  }
  return cmd;
}

DiffReport RunSeedMatrix(uint64_t seed, size_t num_queries, bool with_faults,
                         DiffOptions* failing) {
  struct Cell {
    size_t threads;
    bool prefetch;
    bool prefetch_async;
    bool faults;
    bool catalog = true;
    bool intermediates = true;
  };
  std::vector<Cell> cells = {
      {1, false, false, false},
      {1, true, false, false},
      {1, true, true, false},
      {8, true, true, false},
      // Catalog off: the linear candidate scan must answer identically.
      {1, true, true, false, /*catalog=*/false},
      // Intermediates off: stage-result caching changes costs, never
      // answers — both sides equal the oracle, so on vs. off are
      // bag-equal on every query of the stream.
      {1, true, true, false, /*catalog=*/true, /*intermediates=*/false},
  };
  if (with_faults) {
    cells.push_back({1, true, true, true});
    cells.push_back({8, true, true, true});
  }

  DiffReport last;
  for (const Cell& cell : cells) {
    DiffOptions opts;
    opts.seed = seed;
    opts.num_queries = num_queries;
    opts.num_threads = cell.threads;
    opts.prefetch = cell.prefetch;
    opts.prefetch_async = cell.prefetch_async;
    opts.faults = cell.faults;
    opts.catalog = cell.catalog;
    opts.intermediates = cell.intermediates;
    if (cell.faults) {
      opts.fault_plan.error_rate = 0.15;
      opts.fault_plan.delay_rate = 0.2;
      opts.fault_plan.delay_ms = 1.0;
      opts.fault_plan.warmup_calls = 2;
    }
    last = RunDifferential(opts);
    if (!last.ok) {
      if (failing != nullptr) *failing = opts;
      return last;
    }
  }
  return last;
}

}  // namespace braid::testing
