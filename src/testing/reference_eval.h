#ifndef BRAID_TESTING_REFERENCE_EVAL_H_
#define BRAID_TESTING_REFERENCE_EVAL_H_

#include <string>

#include "caql/caql_query.h"
#include "common/status.h"
#include "dbms/database.h"
#include "relational/relation.h"

namespace braid::testing {

/// The differential oracle: evaluates `query` directly against the base
/// tables of `db` by naive backtracking enumeration — no cache, no
/// planner, no remote link, no shared code with the CMS answer path
/// beyond the Value/Tuple primitives. Bag semantics: one output row per
/// solution of the positive body atoms (deduplicated when
/// `query.distinct`). Comparisons use the same EvalCompare truth table as
/// the Query Processor; negated atoms are negation-as-failure against the
/// base tables. Evaluable-function atoms are not supported (the workload
/// generator never emits them) and yield kUnimplemented.
Result<rel::Relation> ReferenceEval(const dbms::Database& db,
                                    const caql::CaqlQuery& query);

/// True iff `a` and `b` hold the same bag of tuples (same arity, same
/// multiset under the Value total order; column names and types are
/// ignored). On mismatch, `diff` (if non-null) receives a short
/// human-readable description of the first discrepancy.
bool BagEqual(const rel::Relation& a, const rel::Relation& b,
              std::string* diff = nullptr);

/// True iff the bag `sub` is contained in the bag `super` (multiset
/// inclusion, multiplicity-aware).
bool BagContains(const rel::Relation& super, const rel::Relation& sub,
                 std::string* diff = nullptr);

}  // namespace braid::testing

#endif  // BRAID_TESTING_REFERENCE_EVAL_H_
