#ifndef BRAID_TESTING_DIFF_RUNNER_H_
#define BRAID_TESTING_DIFF_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "testing/fault_remote.h"
#include "testing/workload_gen.h"

namespace braid::testing {

/// One differential run's configuration: a seed (which fixes the whole
/// workload) plus the system settings under test. The oracle side is
/// always the same — ReferenceEval straight over the generated base
/// tables, no cache, no CMS.
struct DiffOptions {
  uint64_t seed = 0;
  size_t num_queries = 24;

  /// Concurrent IE sessions sharing the one CMS. 1 = the classic serial
  /// run. With N > 1, each session replays the same seeded stream rotated
  /// by its index through the session scheduler, every answer is
  /// bag-checked against the oracle, and the quiescence-dependent
  /// invariants (exact-hit remote counting, warm recheck) are skipped.
  size_t sessions = 1;

  /// CMS settings of the optimized side.
  size_t num_threads = 1;       // pool workers; 1 keeps the run serial-ish
  bool parallel = true;
  /// Deliberately tiny so the morsel machinery engages on the small
  /// generated relations instead of falling back to serial everywhere.
  size_t parallel_threshold = 2;
  bool prefetch = true;
  bool prefetch_async = true;
  bool caching = true;
  /// Subsumption candidates via the semantic catalog (on) or the linear
  /// predicate-index scan (off). Both must produce identical answers; the
  /// harness additionally checks the catalog/stripe consistency invariant
  /// after every query (serial pass) and every wave (session mode) while
  /// the catalog is on.
  bool catalog = true;
  /// Intermediate-result caching (DESIGN.md §12): admit assembly-stage
  /// results as derived cache elements. Both settings must produce
  /// bag-identical answers — the matrix runs one cell with this off so
  /// on-vs-off equality (through the shared oracle) stays pinned, and the
  /// catalog consistency check above covers derived elements too.
  bool intermediates = true;
  /// Small enough that eviction happens on realistic workloads.
  size_t cache_budget_bytes = 256ull << 10;

  /// Open-loop overload cell (DESIGN.md §13): arrivals follow a seeded
  /// Poisson schedule at `open_loop_rate` qps regardless of completions,
  /// under a deliberately tight load-control policy (shed_queue_depth 0 so
  /// speculation sheds whenever anything queues, admission bound 4 so the
  /// burst draws real kOverloaded refusals). Every completion is
  /// bag-checked against the oracle; every refusal is retried
  /// synchronously once the system is quiescent and must then agree with
  /// the oracle — shedding may change latency and cost, never answers.
  /// Uses `sessions` concurrent sessions (minimum 2).
  bool open_loop = false;
  double open_loop_rate = 500;

  /// Fault injection on the remote link.
  bool faults = false;
  FaultPlan fault_plan;

  /// After the first pass, replay the whole stream against the warm cache
  /// and re-check every answer (catches corruption that only later reuse
  /// exposes). Skipped when faults are on.
  bool recheck = true;

  /// Test hook: after the query at this stream index completes, append a
  /// poison tuple to every materialized cache extension. A correct harness
  /// MUST subsequently report a bag mismatch — this is how the harness
  /// itself is tested. -1 = never.
  int corrupt_after_query = -1;

  /// When non-empty, only these stream indices run (minimization).
  std::vector<size_t> keep;
};

/// One detected discrepancy.
struct DiffFailure {
  size_t query_index = 0;
  std::string query;    // CAQL text
  std::string kind;     // "bag-mismatch" | "status" | "invariant" | "oracle"
  std::string outcome;  // CacheOutcome name, when applicable
  std::string detail;

  std::string ToString() const;
};

/// Outcome of one differential run.
struct DiffReport {
  bool ok = true;
  uint64_t seed = 0;
  std::vector<DiffFailure> failures;

  size_t queries_run = 0;
  size_t queries_faulted = 0;  // clean injected-fault propagations
  size_t overload_rejections = 0;  // clean kOverloaded refusals (open loop)
  size_t exact_hits = 0;
  size_t remote_queries = 0;
  size_t evictions = 0;

  std::string Summary() const;
};

/// Runs the CAQL stream for `opts.seed` through the full CMS and through
/// the reference oracle, checking bag-equality per query plus the
/// metamorphic invariants (subsumption-derived answers contained in the
/// oracle's bag; exact cache hits answer without contacting the remote;
/// injected faults surface as clean Status propagation, never a wrong
/// answer).
DiffReport RunDifferential(const DiffOptions& opts);

/// Greedy backward elimination over the query stream: returns the
/// smallest `keep` set found that still fails (starting from the full
/// stream, dropping one index at a time). `opts.keep` is ignored.
std::vector<size_t> MinimizeFailure(const DiffOptions& opts);

/// The `tools/braid_difftest` invocation that reproduces `opts`.
std::string ReproCommand(const DiffOptions& opts);

/// Runs the standard configuration matrix for one seed — threads {1, 8} ×
/// prefetch {off, sync, async}, plus a fault-injected configuration —
/// and returns the first failing report (or the last passing one). When
/// `failing` is non-null it receives the options of the failing cell.
DiffReport RunSeedMatrix(uint64_t seed, size_t num_queries = 24,
                         bool with_faults = true,
                         DiffOptions* failing = nullptr);

}  // namespace braid::testing

#endif  // BRAID_TESTING_DIFF_RUNNER_H_
