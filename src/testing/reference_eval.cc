#include "testing/reference_eval.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "logic/atom.h"
#include "logic/term.h"
#include "relational/predicate.h"
#include "relational/value.h"

namespace braid::testing {

namespace {

using caql::CaqlQuery;
using logic::Atom;
using logic::Term;
using rel::EvalCompare;
using rel::Relation;
using rel::Tuple;
using rel::Value;

using VarBinding = std::map<std::string, Value>;

/// Resolves `term` under `binding`; returns nullptr when it is an unbound
/// variable. The returned pointer aliases `term` or the binding map.
const Value* Resolve(const Term& term, const VarBinding& binding) {
  if (term.is_constant()) return &term.value();
  auto it = binding.find(term.var_name());
  return it == binding.end() ? nullptr : &it->second;
}

/// True when every variable of `atom` is bound.
bool IsGroundUnder(const Atom& atom, const VarBinding& binding) {
  for (const Term& t : atom.args) {
    if (t.is_variable() && binding.count(t.var_name()) == 0) return false;
  }
  return true;
}

bool EvalComparisonAtom(const Atom& atom, const VarBinding& binding) {
  const Value* lhs = Resolve(atom.args[0], binding);
  const Value* rhs = Resolve(atom.args[1], binding);
  return EvalCompare(atom.comparison_op(), *lhs, *rhs);
}

/// True when some tuple of `table` matches `atom` ground under `binding`.
bool ExistsMatch(const Relation& table, const Atom& atom,
                 const VarBinding& binding) {
  for (const Tuple& t : table.tuples()) {
    bool match = true;
    for (size_t i = 0; i < atom.args.size() && match; ++i) {
      const Value* want = Resolve(atom.args[i], binding);
      match = want != nullptr && *want == t[i];
    }
    if (match) return true;
  }
  return false;
}

/// Backtracking enumerator over the positive relation atoms. Comparisons
/// are checked as soon as they become ground (pruning); negations are
/// checked at the leaves (safety guarantees they are ground there).
class Enumerator {
 public:
  Enumerator(const dbms::Database& db, const CaqlQuery& query,
             std::vector<Atom> relation_atoms, std::vector<Atom> comparisons,
             std::vector<Atom> negations, Relation* out)
      : db_(db),
        query_(query),
        relation_atoms_(std::move(relation_atoms)),
        comparisons_(std::move(comparisons)),
        negations_(std::move(negations)),
        out_(out) {}

  Status Run() {
    checked_.assign(comparisons_.size(), false);
    return Descend(0);
  }

 private:
  Status Descend(size_t atom_index) {
    if (atom_index == relation_atoms_.size()) return EmitIfSolution();
    const Atom& atom = relation_atoms_[atom_index];
    const Relation* table = db_.GetTable(atom.predicate);
    if (table == nullptr) {
      return Status::NotFound(
          StrCat("reference eval: no base table ", atom.predicate));
    }
    if (atom.arity() != table->schema().size()) {
      return Status::InvalidArgument(
          StrCat("reference eval: arity mismatch on ", atom.predicate));
    }
    for (const Tuple& t : table->tuples()) {
      std::vector<std::string> bound_here;
      if (!Unify(atom, t, &bound_here)) {
        Undo(bound_here);
        continue;
      }
      bool pruned = false;
      std::vector<size_t> checked_here;
      for (size_t c = 0; c < comparisons_.size(); ++c) {
        if (checked_[c] || !IsGroundUnder(comparisons_[c], binding_)) continue;
        checked_[c] = true;
        checked_here.push_back(c);
        if (!EvalComparisonAtom(comparisons_[c], binding_)) {
          pruned = true;
          break;
        }
      }
      if (!pruned) {
        BRAID_RETURN_IF_ERROR(Descend(atom_index + 1));
      }
      for (size_t c : checked_here) checked_[c] = false;
      Undo(bound_here);
    }
    return Status::Ok();
  }

  /// Extends the binding to match `atom` against `t`; on failure the
  /// caller must still Undo(bound_here).
  bool Unify(const Atom& atom, const Tuple& t,
             std::vector<std::string>* bound_here) {
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Term& arg = atom.args[i];
      if (arg.is_constant()) {
        if (arg.value() != t[i]) return false;
        continue;
      }
      auto it = binding_.find(arg.var_name());
      if (it != binding_.end()) {
        if (it->second != t[i]) return false;
      } else {
        binding_.emplace(arg.var_name(), t[i]);
        bound_here->push_back(arg.var_name());
      }
    }
    return true;
  }

  void Undo(const std::vector<std::string>& bound_here) {
    for (const std::string& name : bound_here) binding_.erase(name);
  }

  Status EmitIfSolution() {
    for (size_t c = 0; c < comparisons_.size(); ++c) {
      if (checked_[c]) continue;
      if (!IsGroundUnder(comparisons_[c], binding_)) {
        return Status::InvalidArgument(
            StrCat("reference eval: comparison over unbound variable in ",
                   query_.ToString()));
      }
      if (!EvalComparisonAtom(comparisons_[c], binding_)) return Status::Ok();
    }
    for (const Atom& neg : negations_) {
      if (!IsGroundUnder(neg, binding_)) {
        return Status::InvalidArgument(
            StrCat("reference eval: unsafe negation in ", query_.ToString()));
      }
      const Relation* table = db_.GetTable(neg.predicate);
      if (table == nullptr) {
        return Status::NotFound(
            StrCat("reference eval: no base table ", neg.predicate));
      }
      if (ExistsMatch(*table, neg, binding_)) return Status::Ok();
    }
    Tuple row;
    for (const Term& arg : query_.head_args) {
      const Value* v = Resolve(arg, binding_);
      if (v == nullptr) {
        return Status::InvalidArgument(
            StrCat("reference eval: unbound head variable in ",
                   query_.ToString()));
      }
      row.push_back(*v);
    }
    out_->AppendUnchecked(std::move(row));
    return Status::Ok();
  }

  const dbms::Database& db_;
  const CaqlQuery& query_;
  std::vector<Atom> relation_atoms_;
  std::vector<Atom> comparisons_;
  std::vector<Atom> negations_;
  Relation* out_;
  VarBinding binding_;
  std::vector<bool> checked_;
};

bool TupleLess(const Tuple& a, const Tuple& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}

using rel::TupleToString;

std::vector<Tuple> SortedTuples(const rel::Relation& r) {
  std::vector<Tuple> ts = r.tuples();
  std::sort(ts.begin(), ts.end(), TupleLess);
  return ts;
}

}  // namespace

Result<rel::Relation> ReferenceEval(const dbms::Database& db,
                                    const caql::CaqlQuery& query) {
  BRAID_RETURN_IF_ERROR(query.Validate());
  if (!query.EvaluableAtoms().empty()) {
    return Status::Unimplemented(
        "reference eval: evaluable-function atoms are not supported");
  }
  std::vector<Atom> positives;
  for (const Atom& a : query.RelationAtoms()) {
    if (!a.negated) positives.push_back(a);
  }

  std::vector<rel::Column> cols;
  for (size_t i = 0; i < query.head_args.size(); ++i) {
    cols.push_back(rel::Column{StrCat("h", i), rel::ValueType::kNull});
  }
  Relation out(query.name.empty() ? "oracle" : query.name,
               rel::Schema(std::move(cols)));

  Enumerator en(db, query, positives, query.ComparisonAtoms(),
                query.NegatedAtoms(), &out);
  BRAID_RETURN_IF_ERROR(en.Run());

  if (query.distinct) {
    std::vector<Tuple>& ts = out.mutable_tuples();
    std::sort(ts.begin(), ts.end(), TupleLess);
    ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  }
  return out;
}

bool BagEqual(const rel::Relation& a, const rel::Relation& b,
              std::string* diff) {
  if (a.NumTuples() != b.NumTuples()) {
    if (diff != nullptr) {
      *diff = StrCat("cardinality mismatch: ", a.NumTuples(), " vs ",
                     b.NumTuples());
    }
    return false;
  }
  const std::vector<Tuple> sa = SortedTuples(a);
  const std::vector<Tuple> sb = SortedTuples(b);
  for (size_t i = 0; i < sa.size(); ++i) {
    if (sa[i] != sb[i]) {
      if (diff != nullptr) {
        *diff = StrCat("first differing tuple at sorted index ", i, ": ",
                       TupleToString(sa[i]), " vs ", TupleToString(sb[i]));
      }
      return false;
    }
  }
  return true;
}

bool BagContains(const rel::Relation& super, const rel::Relation& sub,
                 std::string* diff) {
  const std::vector<Tuple> ss = SortedTuples(super);
  const std::vector<Tuple> sb = SortedTuples(sub);
  size_t i = 0;
  for (const Tuple& t : sb) {
    while (i < ss.size() && TupleLess(ss[i], t)) ++i;
    if (i == ss.size() || ss[i] != t) {
      if (diff != nullptr) {
        *diff = StrCat("tuple ", TupleToString(t),
                       " of subset missing from superset bag");
      }
      return false;
    }
    ++i;
  }
  return true;
}

}  // namespace braid::testing
