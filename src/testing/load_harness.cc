#include "testing/load_harness.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <thread>

#include "common/rng.h"

namespace braid::testing {

std::vector<double> GenerateArrivals(const ArrivalParams& params) {
  std::vector<double> arrivals;
  if (params.count == 0 || params.rate_qps <= 0) return arrivals;
  arrivals.reserve(params.count);
  const double mean_gap_ms = 1000.0 / params.rate_qps;
  if (params.process == ArrivalProcess::kFixed) {
    for (size_t i = 0; i < params.count; ++i) {
      arrivals.push_back(static_cast<double>(i) * mean_gap_ms);
    }
    return arrivals;
  }
  Rng rng(params.seed);
  std::exponential_distribution<double> gap(1.0 / mean_gap_ms);
  double t = 0;
  for (size_t i = 0; i < params.count; ++i) {
    t += gap(rng.engine());
    arrivals.push_back(t);
  }
  return arrivals;
}

double SteadyLoadClock::NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SteadyLoadClock::SleepUntilMs(double deadline_ms) {
  const double now = NowMs();
  if (deadline_ms <= now) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(deadline_ms - now));
}

ReplayStats ReplayClosedLoop(cms::Cms& cms,
                             const std::vector<ReplaySession>& sessions) {
  std::vector<ReplayStats> per_session(sessions.size());
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(sessions.size());
  for (size_t s = 0; s < sessions.size(); ++s) {
    drivers.emplace_back([&cms, &sessions, &per_session, s] {
      const ReplaySession& rs = sessions[s];
      ReplayStats& stats = per_session[s];
      stats.latencies_ms.reserve(rs.queries.size());
      for (const caql::CaqlQuery& q : rs.queries) {
        const auto start = std::chrono::steady_clock::now();
        auto answer = cms.QueryAsync(*rs.session, q).get();
        ++stats.issued;
        if (answer.ok()) {
          ++stats.completed;
          stats.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count());
        } else if (answer.status().code() == StatusCode::kOverloaded) {
          ++stats.rejected;
        } else {
          ++stats.failed;
        }
      }
    });
  }
  for (std::thread& t : drivers) t.join();

  ReplayStats total;
  total.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  for (const ReplayStats& s : per_session) {
    total.issued += s.issued;
    total.completed += s.completed;
    total.rejected += s.rejected;
    total.failed += s.failed;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              s.latencies_ms.begin(), s.latencies_ms.end());
  }
  return total;
}

namespace {

/// Completion-side accumulator: callbacks land on pool threads, so every
/// mutation sits behind one leaf mutex (a few fields per completion —
/// nothing the measured system contends on).
struct OpenLoopCollector {
  Mutex mu;
  size_t completed BRAID_GUARDED_BY(mu) = 0;
  size_t rejected BRAID_GUARDED_BY(mu) = 0;
  size_t failed BRAID_GUARDED_BY(mu) = 0;
  std::vector<double> latencies_ms BRAID_GUARDED_BY(mu);
};

}  // namespace

ReplayStats ReplayOpenLoop(cms::Cms& cms,
                           const std::vector<ReplaySession>& sessions,
                           const OpenLoopOptions& options) {
  ReplayStats stats;
  if (sessions.empty()) return stats;
  SteadyLoadClock real_clock;
  LoadClock* clock = options.clock != nullptr ? options.clock : &real_clock;

  OpenLoopCollector collector;
  collector.latencies_ms.reserve(options.arrivals_ms.size());
  std::vector<size_t> next_query(sessions.size(), 0);

  const double start_ms = clock->NowMs();
  for (size_t i = 0; i < options.arrivals_ms.size(); ++i) {
    const double scheduled_ms = start_ms + options.arrivals_ms[i];
    clock->SleepUntilMs(scheduled_ms);

    const size_t s = i % sessions.size();
    const ReplaySession& rs = sessions[s];
    if (rs.queries.empty()) continue;
    const caql::CaqlQuery& q = rs.queries[next_query[s] % rs.queries.size()];
    ++next_query[s];

    stats.max_queue_depth = std::max(stats.max_queue_depth,
                                     cms.QueuedQueries());
    ++stats.issued;
    // The future is deliberately dropped: completion is observed through
    // the callback, so thousands of in-flight queries cost no parked
    // threads. (A promise-backed future's destructor does not block.)
    (void)cms.QueryAsync(
        *rs.session, q,
        [clock, scheduled_ms, &collector](
            const Result<cms::CmsAnswer>& answer) {
          const double now_ms = clock->NowMs();
          MutexLock lock(&collector.mu);
          if (answer.ok()) {
            ++collector.completed;
            collector.latencies_ms.push_back(
                std::max(0.0, now_ms - scheduled_ms));
          } else if (answer.status().code() == StatusCode::kOverloaded) {
            ++collector.rejected;
          } else {
            ++collector.failed;
          }
        });
  }
  cms.DrainSessions();
  stats.wall_ms = clock->NowMs() - start_ms;
  {
    MutexLock lock(&collector.mu);
    stats.completed = collector.completed;
    stats.rejected = collector.rejected;
    stats.failed = collector.failed;
    stats.latencies_ms = std::move(collector.latencies_ms);
  }
  return stats;
}

}  // namespace braid::testing
