#ifndef BRAID_TESTING_FAULT_REMOTE_H_
#define BRAID_TESTING_FAULT_REMOTE_H_

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dbms/remote_dbms.h"

namespace braid::testing {

/// Parameters of the fault-injected workstation ↔ server link.
struct FaultPlan {
  uint64_t seed = 0;
  /// Probability that an Execute call fails with a transient kUnavailable
  /// error instead of answering.
  double error_rate = 0.0;
  /// Probability that an Execute call sleeps for `delay_ms` of real time
  /// before answering (exercises the in-flight windows of the prefetch
  /// pipeline and the parallel execution monitor).
  double delay_rate = 0.0;
  double delay_ms = 2.0;
  /// The first `warmup_calls` Execute calls are exempt from faults, so a
  /// session can always load something before the weather turns.
  size_t warmup_calls = 0;
};

/// Marker substring carried by every injected error's message, so tests
/// can tell injected faults from genuine system errors.
inline constexpr char kInjectedFaultMarker[] = "injected transient fault";

/// A RemoteDbms whose link drops queries and adds latency according to a
/// seeded plan. Decoration is by subclassing — the CMS holds a plain
/// `RemoteDbms*` and never knows. Fault draws are mutex-guarded so
/// concurrent Execute calls (pool fetches, async prefetches) see a
/// deterministic *set* of faults for a given (seed, call-ordinal) even
/// though thread interleaving may vary.
class FaultyRemoteDbms : public dbms::RemoteDbms {
 public:
  FaultyRemoteDbms(dbms::Database database, FaultPlan plan)
      : dbms::RemoteDbms(std::move(database)),
        plan_(plan),
        rng_(plan.seed ^ 0x9e3779b97f4a7c15ull) {}

  Result<dbms::RemoteResult> Execute(const dbms::SqlQuery& query) override {
    bool fail = false;
    bool delay = false;
    {
      MutexLock lock(&mu_);
      const size_t ordinal = calls_++;
      if (ordinal >= plan_.warmup_calls) {
        // Draw both coins unconditionally so the fault sequence for a
        // given seed is independent of which coin fires.
        fail = rng_.Bernoulli(plan_.error_rate);
        delay = rng_.Bernoulli(plan_.delay_rate);
      }
      if (fail) ++injected_errors_;
      if (delay) ++injected_delays_;
    }
    if (delay && plan_.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          plan_.delay_ms));
    }
    if (fail) {
      return Status::Unavailable(kInjectedFaultMarker);
    }
    return dbms::RemoteDbms::Execute(query);
  }

  size_t calls() const {
    MutexLock lock(&mu_);
    return calls_;
  }
  size_t injected_errors() const {
    MutexLock lock(&mu_);
    return injected_errors_;
  }
  size_t injected_delays() const {
    MutexLock lock(&mu_);
    return injected_delays_;
  }

 private:
  FaultPlan plan_;  // immutable after construction
  mutable Mutex mu_;
  Rng rng_ BRAID_GUARDED_BY(mu_);
  size_t calls_ BRAID_GUARDED_BY(mu_) = 0;
  size_t injected_errors_ BRAID_GUARDED_BY(mu_) = 0;
  size_t injected_delays_ BRAID_GUARDED_BY(mu_) = 0;
};

/// True if `status` is (or wraps) an injected fault from a
/// FaultyRemoteDbms.
bool IsInjectedFault(const Status& status);

}  // namespace braid::testing

#endif  // BRAID_TESTING_FAULT_REMOTE_H_
