#include "testing/workload_gen.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/strings.h"
#include "logic/atom.h"
#include "logic/term.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace braid::testing {

namespace {

using advice::AnnotatedVar;
using advice::Binding;
using advice::PathExpr;
using advice::RepBound;
using advice::ViewSpec;
using caql::CaqlQuery;
using logic::Atom;
using logic::Term;
using rel::Value;

/// Per-column value domain of the generated schema. Int columns share one
/// global [0, domain) pool so joins across relations are productive;
/// symbol columns share a small string pool for the same reason.
enum class ColKind { kInt, kSymbol };

struct GenState {
  Rng rng;
  const WorkloadParams& params;
  size_t num_relations = 0;
  /// kinds[r][c] — the domain of column c of relation "b<r>".
  std::vector<std::vector<ColKind>> kinds;

  explicit GenState(const WorkloadParams& p) : rng(p.seed), params(p) {}

  Value RandomValue(ColKind kind) {
    if (kind == ColKind::kInt) {
      return Value::Int(rng.Uniform(0, static_cast<int64_t>(params.domain) - 1));
    }
    return Value::String(
        StrCat("s", rng.Uniform(0, static_cast<int64_t>(params.domain / 2))));
  }
};

dbms::Database MakeDatabase(GenState* g) {
  dbms::Database db;
  g->kinds.resize(g->num_relations);
  for (size_t r = 0; r < g->num_relations; ++r) {
    const size_t arity = static_cast<size_t>(g->rng.Uniform(2, 3));
    std::vector<rel::Column> cols;
    for (size_t c = 0; c < arity; ++c) {
      const ColKind kind =
          g->rng.Bernoulli(0.75) ? ColKind::kInt : ColKind::kSymbol;
      g->kinds[r].push_back(kind);
      cols.push_back(rel::Column{
          StrCat("c", c),
          kind == ColKind::kInt ? rel::ValueType::kInt
                                : rel::ValueType::kString});
    }
    rel::Relation table(StrCat("b", r), rel::Schema(std::move(cols)));
    const size_t rows = static_cast<size_t>(
        g->rng.Uniform(8, static_cast<int64_t>(g->params.max_rows)));
    for (size_t i = 0; i < rows; ++i) {
      rel::Tuple t;
      for (size_t c = 0; c < arity; ++c) {
        t.push_back(g->RandomValue(g->kinds[r][c]));
      }
      table.AppendUnchecked(std::move(t));
    }
    BRAID_CHECK_OK(db.AddTable(std::move(table)));
  }
  return db;
}

/// A conjunctive body under construction: join-connected relation atoms
/// over the generated schema, tracking which domain each variable ranges
/// over so comparisons and instance constants are type-sensible.
struct BodyDraft {
  std::vector<Atom> atoms;
  /// First-occurrence order; values are the variable's column domain.
  std::vector<std::pair<std::string, ColKind>> vars;

  ColKind KindOf(const std::string& var) const {
    for (const auto& [name, kind] : vars) {
      if (name == var) return kind;
    }
    return ColKind::kInt;
  }
};

/// Draws a connected conjunctive body of `num_atoms` relation atoms: the
/// first atom introduces fresh variables; each later atom reuses at least
/// one existing variable so the query is one join component.
BodyDraft DrawBody(GenState* g, size_t num_atoms, const std::string& var_prefix,
                   double constant_prob) {
  BodyDraft draft;
  size_t next_var = 0;
  for (size_t a = 0; a < num_atoms; ++a) {
    const size_t r =
        static_cast<size_t>(g->rng.Uniform(0, g->num_relations - 1));
    const size_t arity = g->kinds[r].size();
    std::vector<Term> args(arity, Term::Int(0));
    // Pick one position to carry the join when prior atoms exist.
    std::vector<size_t> reusable;  // positions whose kind matches some var
    if (a > 0) {
      for (size_t c = 0; c < arity; ++c) {
        for (const auto& [name, kind] : draft.vars) {
          if (kind == g->kinds[r][c]) {
            reusable.push_back(c);
            break;
          }
        }
      }
    }
    size_t join_pos = arity;  // none
    if (!reusable.empty()) {
      join_pos = reusable[static_cast<size_t>(
          g->rng.Uniform(0, static_cast<int64_t>(reusable.size()) - 1))];
    }
    for (size_t c = 0; c < arity; ++c) {
      const ColKind kind = g->kinds[r][c];
      // Candidate existing variables of the same domain.
      std::vector<std::string> candidates;
      for (const auto& [name, vkind] : draft.vars) {
        if (vkind == kind) candidates.push_back(name);
      }
      const bool force_join = c == join_pos && !candidates.empty();
      if (force_join || (!candidates.empty() && g->rng.Bernoulli(0.4))) {
        args[c] = Term::Var(candidates[static_cast<size_t>(g->rng.Uniform(
            0, static_cast<int64_t>(candidates.size()) - 1))]);
      } else if (g->rng.Bernoulli(constant_prob)) {
        args[c] = Term::Const(g->RandomValue(kind));
      } else {
        const std::string name = StrCat(var_prefix, next_var++);
        draft.vars.emplace_back(name, kind);
        args[c] = Term::Var(name);
      }
    }
    draft.atoms.emplace_back(StrCat("b", r), std::move(args));
  }
  return draft;
}

/// Appends a comparison atom over an int variable of the draft, if any.
void MaybeAddComparison(GenState* g, BodyDraft* draft) {
  std::vector<std::string> int_vars;
  for (const auto& [name, kind] : draft->vars) {
    if (kind == ColKind::kInt) int_vars.push_back(name);
  }
  if (int_vars.empty()) return;
  static const char* kOps[] = {"<", "<=", ">", ">=", "!="};
  const std::string& var = int_vars[static_cast<size_t>(
      g->rng.Uniform(0, static_cast<int64_t>(int_vars.size()) - 1))];
  const char* op = kOps[g->rng.Uniform(0, 4)];
  // Mid-domain constants keep the selection from being trivially empty
  // or trivially full.
  const int64_t c = g->rng.Uniform(1, static_cast<int64_t>(g->params.domain) - 2);
  draft->atoms.emplace_back(op,
                            std::vector<Term>{Term::Var(var), Term::Int(c)});
}

std::vector<ViewSpec> MakeViews(GenState* g, size_t num_views) {
  std::vector<ViewSpec> views;
  for (size_t v = 0; v < num_views; ++v) {
    BodyDraft draft = DrawBody(g, static_cast<size_t>(g->rng.Uniform(1, 3)),
                               StrCat("V", v, "_"), /*constant_prob=*/0.1);
    if (g->rng.Bernoulli(g->params.comparison_prob)) {
      MaybeAddComparison(g, &draft);
    }
    ViewSpec view;
    view.id = StrCat("d", v);
    view.body = draft.atoms;
    // Head: 1..3 distinct body variables, producer or consumer annotated.
    const size_t head_size = std::min<size_t>(
        draft.vars.size(), static_cast<size_t>(g->rng.Uniform(1, 3)));
    for (size_t i = 0; i < head_size; ++i) {
      view.head.push_back(AnnotatedVar{
          draft.vars[i].first,
          g->rng.Bernoulli(0.4) ? Binding::kConsumer : Binding::kProducer});
    }
    if (view.head.empty()) continue;  // degenerate (all-constant body)
    views.push_back(std::move(view));
  }
  return views;
}

/// Builds a path expression mentioning every view: a top-level sequence of
/// patterns where one stretch is wrapped in an alternation and one element
/// carries a repetition bound — the constructs of paper §4.2.2.
advice::PathExprPtr MakePathExpr(GenState* g,
                                 const std::vector<ViewSpec>& views) {
  if (views.empty()) return nullptr;
  std::vector<advice::PathExprPtr> elements;
  for (const ViewSpec& v : views) {
    elements.push_back(PathExpr::Pattern(v.id, v.head));
  }
  // Wrap a random adjacent pair into an alternation.
  if (elements.size() >= 2 && g->rng.Bernoulli(0.7)) {
    const size_t i = static_cast<size_t>(
        g->rng.Uniform(0, static_cast<int64_t>(elements.size()) - 2));
    auto alt = PathExpr::Alternation({elements[i], elements[i + 1]},
                                     g->rng.Bernoulli(0.5) ? 1 : 0);
    elements[i] = std::move(alt);
    elements.erase(elements.begin() + static_cast<ptrdiff_t>(i) + 1);
  }
  // Give one element a repetition bound.
  if (g->rng.Bernoulli(0.7)) {
    const size_t i = static_cast<size_t>(
        g->rng.Uniform(0, static_cast<int64_t>(elements.size()) - 1));
    elements[i] = PathExpr::Sequence(
        {elements[i]}, RepBound::Fixed(1),
        RepBound::Fixed(static_cast<size_t>(g->rng.Uniform(1, 3))));
  }
  return PathExpr::Sequence(std::move(elements), RepBound::Fixed(1),
                            RepBound::Fixed(1));
}

/// Instance of `view` with consumer variables bound to constants from the
/// view's small pool (pool reuse is what creates recurrence for
/// generalization and the exact-match path).
CaqlQuery InstantiateView(GenState* g, const ViewSpec& view,
                          const std::vector<std::vector<Value>>& pools,
                          size_t view_index) {
  std::vector<Term> args;
  for (size_t i = 0; i < view.head.size(); ++i) {
    if (view.head[i].binding == Binding::kConsumer) {
      const std::vector<Value>& pool = pools[view_index];
      // Mostly pool constants (overlap), occasionally a fresh draw.
      if (!pool.empty() && g->rng.Bernoulli(0.8)) {
        args.push_back(Term::Const(pool[static_cast<size_t>(g->rng.Uniform(
            0, static_cast<int64_t>(pool.size()) - 1))]));
      } else {
        // Fresh constants share the pool's domain.
        args.push_back(Term::Const(g->RandomValue(ColKind::kInt)));
      }
    } else {
      args.push_back(Term::Var(view.head[i].name));
    }
  }
  return view.Instantiate(args);
}

CaqlQuery DrawAdhocQuery(GenState* g, size_t index) {
  BodyDraft draft = DrawBody(g, static_cast<size_t>(g->rng.Uniform(1, 3)),
                             StrCat("A", index, "_"), /*constant_prob=*/0.2);
  if (g->rng.Bernoulli(g->params.comparison_prob)) {
    MaybeAddComparison(g, &draft);
  }
  // Negation: a negated atom whose variables all come from positive atoms
  // (safety); remaining positions become constants.
  if (g->rng.Bernoulli(g->params.negation_prob) && !draft.vars.empty()) {
    const size_t r =
        static_cast<size_t>(g->rng.Uniform(0, g->num_relations - 1));
    std::vector<Term> args;
    for (size_t c = 0; c < g->kinds[r].size(); ++c) {
      const ColKind kind = g->kinds[r][c];
      std::vector<std::string> candidates;
      for (const auto& [name, vkind] : draft.vars) {
        if (vkind == kind) candidates.push_back(name);
      }
      if (!candidates.empty() && g->rng.Bernoulli(0.6)) {
        args.push_back(Term::Var(candidates[static_cast<size_t>(g->rng.Uniform(
            0, static_cast<int64_t>(candidates.size()) - 1))]));
      } else {
        args.push_back(Term::Const(g->RandomValue(kind)));
      }
    }
    draft.atoms.emplace_back(StrCat("b", r), std::move(args), /*neg=*/true);
  }

  CaqlQuery q;
  q.name = StrCat("q", index);
  q.distinct = g->rng.Bernoulli(g->params.distinct_prob);
  const size_t head_size = std::max<size_t>(
      1, std::min<size_t>(draft.vars.size(),
                          static_cast<size_t>(g->rng.Uniform(1, 3))));
  for (size_t i = 0; i < head_size && i < draft.vars.size(); ++i) {
    q.head_args.push_back(Term::Var(draft.vars[i].first));
  }
  if (g->rng.Bernoulli(g->params.constant_head_prob)) {
    q.head_args.push_back(Term::Const(g->RandomValue(ColKind::kInt)));
  }
  q.body = std::move(draft.atoms);
  return q;
}

}  // namespace

GeneratedWorkload GenerateWorkload(const WorkloadParams& params) {
  GenState g(params);
  g.num_relations = params.num_relations != 0
                        ? params.num_relations
                        : static_cast<size_t>(g.rng.Uniform(3, 6));
  const size_t num_views = params.num_views != 0
                               ? params.num_views
                               : static_cast<size_t>(g.rng.Uniform(2, 4));

  GeneratedWorkload out;
  out.database = MakeDatabase(&g);
  std::vector<ViewSpec> views = MakeViews(&g, num_views);

  // Per-view constant pools for consumer arguments: three values each, so
  // instances recur and generalization pays off.
  std::vector<std::vector<Value>> pools(views.size());
  for (size_t v = 0; v < views.size(); ++v) {
    for (int i = 0; i < 3; ++i) {
      pools[v].push_back(g.RandomValue(ColKind::kInt));
    }
  }

  std::set<std::string> mentioned;
  for (const ViewSpec& v : views) {
    for (const Atom& a : v.body) {
      if (!a.IsComparison()) mentioned.insert(a.predicate);
    }
  }
  out.advice.base_relations.assign(mentioned.begin(), mentioned.end());
  out.advice.view_specs = views;
  out.advice.path_expression = MakePathExpr(&g, views);

  for (size_t i = 0; i < params.num_queries; ++i) {
    CaqlQuery q;
    const bool can_repeat = !out.queries.empty();
    if (can_repeat && g.rng.Bernoulli(params.repeat_prob)) {
      q = out.queries[static_cast<size_t>(g.rng.Uniform(
          0, static_cast<int64_t>(out.queries.size()) - 1))];
    } else if (!views.empty() && !g.rng.Bernoulli(params.adhoc_prob)) {
      // Bias view choice toward path order so the tracker's predictions
      // come true often enough for prefetch to matter.
      const size_t v = g.rng.Bernoulli(0.6)
                           ? i % views.size()
                           : static_cast<size_t>(g.rng.Uniform(
                                 0, static_cast<int64_t>(views.size()) - 1));
      q = InstantiateView(&g, views[v], pools, v);
    } else {
      q = DrawAdhocQuery(&g, i);
    }
    // The generator aims to always produce valid CAQL; skip (rare)
    // degenerate draws rather than feeding known-invalid queries to a
    // differential run that asserts clean behaviour on valid input.
    if (!q.Validate().ok()) {
      q = DrawAdhocQuery(&g, i);
      if (!q.Validate().ok()) continue;
    }
    out.queries.push_back(std::move(q));
  }
  return out;
}

}  // namespace braid::testing
