#include "testing/fault_remote.h"

#include <string>

namespace braid::testing {

bool IsInjectedFault(const Status& status) {
  return !status.ok() &&
         status.message().find(kInjectedFaultMarker) != std::string::npos;
}

}  // namespace braid::testing
