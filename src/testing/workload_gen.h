#ifndef BRAID_TESTING_WORKLOAD_GEN_H_
#define BRAID_TESTING_WORKLOAD_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "advice/advice.h"
#include "caql/caql_query.h"
#include "common/rng.h"
#include "dbms/database.h"

namespace braid::testing {

/// Tuning knobs of the random-workload generator. Everything downstream of
/// `seed` is deterministic: one uint64_t reproduces the schema, the base
/// data, the advice, and the whole query stream.
struct WorkloadParams {
  uint64_t seed = 0;

  /// Base relations ("b0".."bN-1", arity 2-3). 0 = derive 3..6 from seed.
  size_t num_relations = 0;
  /// View specifications ("d0".."dM-1"). 0 = derive 2..4 from seed.
  size_t num_views = 0;
  size_t num_queries = 24;

  /// Rows per base relation are drawn from [8, max_rows].
  size_t max_rows = 48;
  /// Int column values come from [0, domain); symbol columns from a pool
  /// of domain/2 strings. A small domain makes joins productive and makes
  /// repeated constants likely, which is what drives cache overlap.
  size_t domain = 12;

  /// Probability that a stream entry is an ad-hoc conjunctive query
  /// rather than a view-specification instance.
  double adhoc_prob = 0.3;
  /// Probability that an ad-hoc query repeats an earlier stream entry
  /// verbatim (exercises the exact-match fast path).
  double repeat_prob = 0.25;
  double distinct_prob = 0.15;
  double negation_prob = 0.1;
  double comparison_prob = 0.35;
  double constant_head_prob = 0.15;
};

/// One generated session: a remote database, the advice the IE would send
/// at session start (view specs with producer/consumer annotations and a
/// path expression with repetition and alternation), and the CAQL stream.
struct GeneratedWorkload {
  dbms::Database database;
  advice::AdviceSet advice;
  std::vector<caql::CaqlQuery> queries;
};

/// Builds the workload for `params`. Queries are biased toward overlap —
/// view instances reuse small per-view constant pools and ad-hoc queries
/// repeat earlier entries — so subsumption, generalization, and prefetch
/// actually fire instead of every query going remote.
GeneratedWorkload GenerateWorkload(const WorkloadParams& params);

}  // namespace braid::testing

#endif  // BRAID_TESTING_WORKLOAD_GEN_H_
