#ifndef BRAID_TESTING_LOAD_HARNESS_H_
#define BRAID_TESTING_LOAD_HARNESS_H_

#include <cstdint>
#include <vector>

#include "caql/caql_query.h"
#include "cms/cms.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace braid::testing {

/// How query arrival times are spaced.
enum class ArrivalProcess {
  kFixed,    // exactly 1000/rate_qps ms apart
  kPoisson,  // exponential inter-arrival times with mean 1000/rate_qps ms
};

/// Parameters of one arrival schedule. Everything downstream of `seed` is
/// deterministic: the schedule is a pure function of this struct, with no
/// wall-clock dependence (satellite requirement of ISSUE 10) — the clock
/// only enters when a replay *paces* the schedule.
struct ArrivalParams {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  double rate_qps = 100;
  size_t count = 0;
  uint64_t seed = 0;
};

/// The schedule: `count` arrival offsets in ms from the replay start,
/// non-decreasing, first arrival at 0 (kFixed) or after one inter-arrival
/// draw (kPoisson). rate_qps <= 0 or count == 0 yields an empty schedule.
std::vector<double> GenerateArrivals(const ArrivalParams& params);

/// Clock used by the open-loop replay, injectable so arrival pacing and
/// latency measurement are unit-testable without waiting for real time.
class LoadClock {
 public:
  virtual ~LoadClock() = default;
  /// Milliseconds since an arbitrary fixed origin; monotone.
  virtual double NowMs() = 0;
  /// Blocks until NowMs() >= deadline_ms (no-op when already past).
  virtual void SleepUntilMs(double deadline_ms) = 0;
};

/// Real time: steady_clock now, real sleeps for pacing.
class SteadyLoadClock : public LoadClock {
 public:
  double NowMs() override;
  void SleepUntilMs(double deadline_ms) override;
};

/// Deterministic time: SleepUntilMs jumps the clock forward instantly.
/// Thread-safe (completion callbacks read NowMs from pool threads).
class FakeLoadClock : public LoadClock {
 public:
  double NowMs() override {
    MutexLock lock(&mu_);
    return now_ms_;
  }
  void SleepUntilMs(double deadline_ms) override {
    MutexLock lock(&mu_);
    if (deadline_ms > now_ms_) now_ms_ = deadline_ms;
  }

 private:
  Mutex mu_;
  double now_ms_ BRAID_GUARDED_BY(mu_) = 0;
};

/// One session's replay input: the CMS session and its query stream, in
/// issue order.
struct ReplaySession {
  cms::CmsSession* session = nullptr;
  std::vector<caql::CaqlQuery> queries;
};

/// Outcome counters and latency samples of one replay. issued ==
/// completed + rejected + failed once the replay returns (it drains).
struct ReplayStats {
  size_t issued = 0;
  size_t completed = 0;
  size_t rejected = 0;  // kOverloaded admission refusals
  size_t failed = 0;    // any other error
  /// Completed foreground queries only. Closed loop: issue → completion.
  /// Open loop: *scheduled arrival* → completion, so queueing delay —
  /// including dispatcher lag when the generator itself falls behind —
  /// counts against the system, the property that makes open-loop numbers
  /// honest about overload.
  std::vector<double> latencies_ms;
  /// Largest scheduler queue depth observed at any issue point.
  size_t max_queue_depth = 0;
  double wall_ms = 0;
};

/// Closed-loop replay (bench_sessions' driving loop, hoisted): one driver
/// thread per session issues that session's queries in order, each waiting
/// for completion before the next — so concurrency equals the session
/// count and the system is never offered more load than it just absorbed.
ReplayStats ReplayClosedLoop(cms::Cms& cms,
                             const std::vector<ReplaySession>& sessions);

/// Open-loop replay controls.
struct OpenLoopOptions {
  /// Arrival offsets in ms from replay start (GenerateArrivals output).
  std::vector<double> arrivals_ms;
  /// Null = a SteadyLoadClock local to the call.
  LoadClock* clock = nullptr;
};

/// Open-loop replay: a single dispatcher issues one query per scheduled
/// arrival — round-robin across sessions, each session's stream in order,
/// wrapping when arrivals outnumber its queries — WITHOUT waiting for
/// completions (completions are timestamped by a QueryAsync callback).
/// Arrivals keep coming at the configured rate no matter how far behind
/// the system is; DrainSessions() is called before returning, so every
/// issued query is accounted for in the stats.
ReplayStats ReplayOpenLoop(cms::Cms& cms,
                           const std::vector<ReplaySession>& sessions,
                           const OpenLoopOptions& options);

}  // namespace braid::testing

#endif  // BRAID_TESTING_LOAD_HARNESS_H_
