#include "caql/caql_query.h"

#include <map>
#include <sstream>

#include "common/strings.h"
#include "logic/parser.h"

namespace braid::caql {

bool IsEvaluablePredicate(const std::string& name, size_t arity) {
  if (arity == 3) {
    return name == "plus" || name == "minus" || name == "times" ||
           name == "div";
  }
  if (arity == 2) return name == "abs";
  return false;
}

namespace {

enum class AtomClass { kRelation, kComparison, kEvaluable, kNegated };

AtomClass Classify(const logic::Atom& atom) {
  if (atom.negated) return AtomClass::kNegated;
  if (atom.IsComparison()) return AtomClass::kComparison;
  if (IsEvaluablePredicate(atom.predicate, atom.arity())) {
    return AtomClass::kEvaluable;
  }
  return AtomClass::kRelation;
}

}  // namespace

std::vector<logic::Atom> CaqlQuery::RelationAtoms() const {
  std::vector<logic::Atom> out;
  for (const auto& a : body) {
    if (Classify(a) == AtomClass::kRelation) out.push_back(a);
  }
  return out;
}

std::vector<logic::Atom> CaqlQuery::ComparisonAtoms() const {
  std::vector<logic::Atom> out;
  for (const auto& a : body) {
    if (Classify(a) == AtomClass::kComparison) out.push_back(a);
  }
  return out;
}

std::vector<logic::Atom> CaqlQuery::EvaluableAtoms() const {
  std::vector<logic::Atom> out;
  for (const auto& a : body) {
    if (Classify(a) == AtomClass::kEvaluable) out.push_back(a);
  }
  return out;
}

std::vector<logic::Atom> CaqlQuery::NegatedAtoms() const {
  std::vector<logic::Atom> out;
  for (const auto& a : body) {
    if (Classify(a) == AtomClass::kNegated) out.push_back(a);
  }
  return out;
}

std::vector<std::string> CaqlQuery::AllVariables() const {
  std::vector<std::string> vars;
  auto add = [&vars](const logic::Term& t) {
    if (!t.is_variable()) return;
    for (const std::string& v : vars) {
      if (v == t.var_name()) return;
    }
    vars.push_back(t.var_name());
  };
  for (const logic::Term& t : head_args) add(t);
  for (const logic::Atom& a : body) {
    for (const logic::Term& t : a.args) add(t);
  }
  return vars;
}

std::vector<std::string> CaqlQuery::HeadVariables() const {
  std::vector<std::string> vars;
  for (const logic::Term& t : head_args) {
    if (!t.is_variable()) continue;
    bool seen = false;
    for (const std::string& v : vars) {
      if (v == t.var_name()) {
        seen = true;
        break;
      }
    }
    if (!seen) vars.push_back(t.var_name());
  }
  return vars;
}

CaqlQuery CaqlQuery::Substitute(const logic::Substitution& subst) const {
  CaqlQuery out = *this;
  for (logic::Term& t : out.head_args) t = subst.Apply(t);
  for (logic::Atom& a : out.body) a = subst.Apply(a);
  return out;
}

std::string CaqlQuery::CanonicalKey() const {
  std::map<std::string, std::string> renaming;
  auto canon = [&renaming](const logic::Term& t) -> std::string {
    if (!t.is_variable()) return t.ToString();
    auto [it, inserted] =
        renaming.emplace(t.var_name(), StrCat("V", renaming.size()));
    (void)inserted;
    return it->second;
  };
  std::ostringstream os;
  os << name << (distinct ? "!(" : "(");
  for (size_t i = 0; i < head_args.size(); ++i) {
    if (i > 0) os << ",";
    os << canon(head_args[i]);
  }
  os << "):-";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) os << "&";
    if (body[i].negated) os << "!";
    os << body[i].predicate << "(";
    for (size_t j = 0; j < body[i].args.size(); ++j) {
      if (j > 0) os << ",";
      os << canon(body[i].args[j]);
    }
    os << ")";
  }
  return os.str();
}

std::string CaqlQuery::ToString() const {
  std::ostringstream os;
  os << (name.empty() ? "q" : name) << (distinct ? " setof" : "") << "(";
  for (size_t i = 0; i < head_args.size(); ++i) {
    if (i > 0) os << ", ";
    os << head_args[i].ToString();
  }
  os << ")";
  if (!body.empty()) {
    os << " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i > 0) os << " & ";
      os << body[i].ToString();
    }
  }
  return os.str();
}

Status CaqlQuery::Validate() const {
  std::set<std::string> body_vars;
  logic::CollectVariables(body, &body_vars);
  for (const logic::Term& t : head_args) {
    if (t.is_variable() && body_vars.count(t.var_name()) == 0) {
      return Status::InvalidArgument(
          StrCat("head variable ", t.var_name(), " of ", name,
                 " does not occur in the body"));
    }
  }
  bool has_relation = false;
  std::set<std::string> positive_vars;
  for (const logic::Atom& a : body) {
    if (Classify(a) == AtomClass::kRelation) {
      for (const std::string& v : a.Variables()) positive_vars.insert(v);
    }
  }
  for (const logic::Atom& a : body) {
    switch (Classify(a)) {
      case AtomClass::kRelation:
        has_relation = true;
        if (a.arity() == 0) {
          return Status::InvalidArgument(
              StrCat("zero-arity relation atom ", a.predicate));
        }
        break;
      case AtomClass::kNegated:
        // Safety: every variable of a negated literal must be bound by a
        // positive relation atom.
        for (const std::string& v : a.Variables()) {
          if (positive_vars.count(v) == 0) {
            return Status::InvalidArgument(
                StrCat("unsafe negation: variable ", v, " of ",
                       a.ToString(), " occurs in no positive atom"));
          }
        }
        break;
      case AtomClass::kComparison:
      case AtomClass::kEvaluable:
        break;
    }
  }
  if (!has_relation && !body.empty()) {
    // Pure comparison/evaluable bodies are only legal when fully ground.
    for (const logic::Atom& a : body) {
      if (!a.IsGround()) {
        return Status::InvalidArgument(
            StrCat("query ", name,
                   " has no relation atom but non-ground built-ins"));
      }
    }
  }
  return Status::Ok();
}

Result<CaqlQuery> ParseCaql(std::string_view text) {
  std::string padded(text);
  // The rule parser requires a terminating '.'.
  std::string_view trimmed = StrTrim(padded);
  std::string source(trimmed);
  if (source.empty() || source.back() != '.') source += '.';
  BRAID_ASSIGN_OR_RETURN(logic::Rule rule, logic::ParseRuleText(source));
  CaqlQuery q;
  q.name = rule.head.predicate;
  q.head_args = rule.head.args;
  q.body = rule.body;
  BRAID_RETURN_IF_ERROR(q.Validate());
  return q;
}

}  // namespace braid::caql
