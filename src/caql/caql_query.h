#ifndef BRAID_CAQL_CAQL_QUERY_H_
#define BRAID_CAQL_CAQL_QUERY_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "logic/atom.h"
#include "logic/substitution.h"
#include "logic/term.h"

namespace braid::caql {

/// True for the evaluable built-in functions CAQL supports beyond
/// comparisons: plus/minus/times/div with arity 3 (last argument is the
/// result) and abs with arity 2. Evaluable functions are computed by the
/// CMS Query Processor, never shipped to the remote DBMS, and require an
/// exact match during subsumption (paper §5.3.2).
bool IsEvaluablePredicate(const std::string& name, size_t arity);

/// A CAQL query: a conjunctive (PSJ-class) expression with a distinguished
/// head. This is the language of the IE ↔ CMS interface (paper §3, §5).
///
///   d2(X, c6) :- b2(X, Z) & b3(Z, c2, c6)
///
/// `head_args` are the distinguished terms (variables produce bindings;
/// constants act as selections via the body). The body mixes relation
/// atoms (over base relations or cached views), comparison atoms, and
/// evaluable-function atoms. CAQL queries double as view *definitions*:
/// a cache element's definition is a CaqlQuery whose head args are all
/// variables.
struct CaqlQuery {
  std::string name;                   // e.g. "d2"; may be empty for ad hoc.
  std::vector<logic::Term> head_args;
  std::vector<logic::Atom> body;
  /// SETOF semantics (paper §5's second-order predicates): duplicate
  /// solutions are eliminated. Default is BAGOF (bag semantics).
  bool distinct = false;

  /// Body atoms that reference stored relations (not comparisons, not
  /// evaluable functions), in body order.
  std::vector<logic::Atom> RelationAtoms() const;
  std::vector<logic::Atom> ComparisonAtoms() const;
  std::vector<logic::Atom> EvaluableAtoms() const;
  /// Negated literals ("not p(X)"), evaluated by anti-join; every
  /// variable of a negated literal must also occur in a positive relation
  /// atom (safety, checked by Validate).
  std::vector<logic::Atom> NegatedAtoms() const;

  /// Distinct variable names across head and body, in first-occurrence
  /// order (head first).
  std::vector<std::string> AllVariables() const;

  /// Variables appearing in head_args, first-occurrence order.
  std::vector<std::string> HeadVariables() const;

  /// Applies a substitution to head and body.
  CaqlQuery Substitute(const logic::Substitution& subst) const;

  /// Structural equality.
  bool operator==(const CaqlQuery& other) const {
    return name == other.name && head_args == other.head_args &&
           body == other.body && distinct == other.distinct;
  }

  /// A canonical string with variables renamed V0, V1, ... in order of first
  /// occurrence. Two queries with the same canonical key are identical up
  /// to variable renaming — the exact-match fast path of result caching.
  std::string CanonicalKey() const;

  /// Renders "d2(X, c6) :- b2(X, Z) & b3(Z, c2, c6)".
  std::string ToString() const;

  /// Validates well-formedness: at least one relation atom or a fully
  /// ground body; every head variable appears in the body; evaluable and
  /// comparison atoms have legal arity.
  Status Validate() const;
};

/// Parses CAQL text in the shared rule syntax, e.g.
/// "d2(X, c6) :- b2(X, Z) & b3(Z, c2, c6)." (trailing '.' optional).
Result<CaqlQuery> ParseCaql(std::string_view text);

}  // namespace braid::caql

#endif  // BRAID_CAQL_CAQL_QUERY_H_
