#ifndef BRAID_EXEC_PARALLEL_OPS_H_
#define BRAID_EXEC_PARALLEL_OPS_H_

#include <vector>

#include "exec/exec_context.h"
#include "relational/operators.h"
#include "relational/predicate.h"
#include "relational/relation.h"

namespace braid::exec {

/// Morsel-parallel variants of the hot relational operators. Every
/// function produces output byte-identical to its serial counterpart in
/// `braid::rel` (same tuples, same order) — parallelism changes wall-clock
/// time, never results — and falls back to the serial implementation when
/// `ctx.ShouldParallelize` rejects the input size. The one caveat is
/// floating-point SUM/AVG, whose additions re-associate across morsels;
/// over exactly-representable addends (integer columns) the results are
/// still bit-identical (see DESIGN.md).
///
/// Determinism recipe, shared by all of them: workers claim fixed-size
/// morsels of the input, write into per-morsel output buffers, and the
/// buffers are concatenated (or merged) in morsel order afterwards, which
/// reproduces the serial input-order traversal exactly.

/// σ in parallel: per-morsel filtered buffers concatenated in input order.
rel::Relation Select(const ExecContext& ctx, const rel::Relation& input,
                     const rel::Predicate& pred);

/// π in parallel.
rel::Relation Project(const ExecContext& ctx, const rel::Relation& input,
                      const std::vector<size_t>& columns);

/// Composite-key equi-join: parallel partitioned build (rows are hashed
/// into partitions morsel-by-morsel, then one hash table per partition is
/// built concurrently with rows in input order) and parallel probe with
/// per-morsel output buffers merged in probe order.
rel::Relation HashJoin(const ExecContext& ctx, const rel::Relation& left,
                       const rel::Relation& right,
                       const std::vector<rel::JoinKey>& keys,
                       const rel::PredicatePtr& residual = nullptr);

/// Duplicate elimination: per-morsel local dedup, then a serial merge over
/// the (much smaller) per-morsel survivors keeps global first-occurrence
/// order.
rel::Relation Distinct(const ExecContext& ctx, const rel::Relation& input);

/// Grouped aggregation: per-morsel partial AggState maps merged in morsel
/// order, so groups appear in global first-occurrence order as in the
/// serial operator.
rel::Relation Aggregate(const ExecContext& ctx, const rel::Relation& input,
                        const std::vector<size_t>& group_by,
                        const std::vector<rel::AggSpec>& aggs);

}  // namespace braid::exec

#endif  // BRAID_EXEC_PARALLEL_OPS_H_
