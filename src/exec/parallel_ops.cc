#include "exec/parallel_ops.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace braid::exec {

namespace {

using rel::Relation;
using rel::Tuple;
using rel::TupleHash;

/// Number of morsels a ParallelFor over `n` items with this context's
/// grain will produce; parallel operators size their per-morsel output
/// buffers with it.
size_t NumMorsels(const ExecContext& ctx, size_t n) {
  return (n + ctx.morsel_tuples - 1) / ctx.morsel_tuples;
}

/// Concatenates per-morsel buffers in morsel order — the step that
/// restores the serial input-order traversal after a parallel pass.
void ConcatInOrder(std::vector<std::vector<Tuple>> parts, Relation* out) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  out->mutable_tuples().reserve(total);
  for (auto& p : parts) {
    for (Tuple& t : p) out->AppendUnchecked(std::move(t));
  }
}

}  // namespace

Relation Select(const ExecContext& ctx, const Relation& input,
                const rel::Predicate& pred) {
  const size_t n = input.NumTuples();
  if (!ctx.ShouldParallelize(n)) return rel::Select(input, pred);

  std::vector<std::vector<Tuple>> parts(NumMorsels(ctx, n));
  ctx.pool->ParallelFor(n, ctx.morsel_tuples, [&](size_t begin, size_t end) {
    std::vector<Tuple>& local = parts[begin / ctx.morsel_tuples];
    local.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const Tuple& t = input.tuple(i);
      if (pred.Eval(t)) local.push_back(t);
    }
  });
  Relation out(StrCat("select(", input.name(), ")"), input.schema());
  ConcatInOrder(std::move(parts), &out);
  return out;
}

Relation Project(const ExecContext& ctx, const Relation& input,
                 const std::vector<size_t>& columns) {
  const size_t n = input.NumTuples();
  if (!ctx.ShouldParallelize(n)) return rel::Project(input, columns);

  std::vector<std::vector<Tuple>> parts(NumMorsels(ctx, n));
  ctx.pool->ParallelFor(n, ctx.morsel_tuples, [&](size_t begin, size_t end) {
    std::vector<Tuple>& local = parts[begin / ctx.morsel_tuples];
    local.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const Tuple& t = input.tuple(i);
      Tuple projected;
      projected.reserve(columns.size());
      for (size_t c : columns) projected.push_back(t[c]);
      local.push_back(std::move(projected));
    }
  });
  Relation out(StrCat("project(", input.name(), ")"),
               input.schema().Project(columns));
  ConcatInOrder(std::move(parts), &out);
  return out;
}

Relation HashJoin(const ExecContext& ctx, const Relation& left,
                  const Relation& right,
                  const std::vector<rel::JoinKey>& keys,
                  const rel::PredicatePtr& residual) {
  const size_t total = left.NumTuples() + right.NumTuples();
  if (keys.empty() || !ctx.ShouldParallelize(total)) {
    return rel::HashJoin(left, right, keys, residual);
  }

  // Same build-side choice as the serial operator so the output order
  // (probe order, then build-row order per key) is identical.
  const bool build_left = left.NumTuples() <= right.NumTuples();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;

  // Partition count: a few per lane, rounded to a power of two so the
  // partition of a hash is a mask.
  size_t partitions = 8;
  while (partitions < 4 * ctx.Lanes() && partitions < 256) partitions *= 2;
  const size_t mask = partitions - 1;
  const TupleHash hasher;

  // Build phase 1 — morsel-parallel partitioning: each morsel bins its
  // build rows (kept in row order) by key-hash partition.
  const size_t nb = build.NumTuples();
  const size_t build_morsels = NumMorsels(ctx, nb);
  std::vector<std::vector<std::vector<size_t>>> binned(
      build_morsels, std::vector<std::vector<size_t>>(partitions));
  ctx.pool->ParallelFor(nb, ctx.morsel_tuples, [&](size_t begin, size_t end) {
    auto& local = binned[begin / ctx.morsel_tuples];
    for (size_t row = begin; row < end; ++row) {
      const Tuple key = rel::JoinKeyTuple(build.tuple(row), keys, build_left);
      local[hasher(key) & mask].push_back(row);
    }
  });

  // Build phase 2 — one composite-key hash table per partition, built
  // concurrently across partitions. Scanning the morsel bins in morsel
  // order keeps each bucket's row list ascending, matching the serial
  // build scan.
  std::vector<std::unordered_map<Tuple, std::vector<size_t>, TupleHash>>
      tables(partitions);
  ctx.pool->ParallelFor(partitions, 1, [&](size_t begin, size_t end) {
    for (size_t p = begin; p < end; ++p) {
      auto& table = tables[p];
      for (const auto& morsel_bins : binned) {
        for (size_t row : morsel_bins[p]) {
          table[rel::JoinKeyTuple(build.tuple(row), keys, build_left)]
              .push_back(row);
        }
      }
    }
  });

  // Probe phase — morsel-parallel with per-morsel output buffers.
  const size_t np = probe.NumTuples();
  std::vector<std::vector<Tuple>> parts(NumMorsels(ctx, np));
  ctx.pool->ParallelFor(np, ctx.morsel_tuples, [&](size_t begin, size_t end) {
    std::vector<Tuple>& local = parts[begin / ctx.morsel_tuples];
    for (size_t i = begin; i < end; ++i) {
      const Tuple& pt = probe.tuple(i);
      const Tuple key = rel::JoinKeyTuple(pt, keys, !build_left);
      const auto& table = tables[hasher(key) & mask];
      auto it = table.find(key);
      if (it == table.end()) continue;
      for (size_t row : it->second) {
        const Tuple& bt = build.tuple(row);
        const Tuple& lt = build_left ? bt : pt;
        const Tuple& rt = build_left ? pt : bt;
        Tuple combined = lt;
        combined.insert(combined.end(), rt.begin(), rt.end());
        if (residual != nullptr && !residual->Eval(combined)) continue;
        local.push_back(std::move(combined));
      }
    }
  });

  Relation out(StrCat("join(", left.name(), ",", right.name(), ")"),
               left.schema().Concat(right.schema()));
  ConcatInOrder(std::move(parts), &out);
  return out;
}

Relation Distinct(const ExecContext& ctx, const Relation& input) {
  const size_t n = input.NumTuples();
  if (!ctx.ShouldParallelize(n)) return rel::Distinct(input);

  // Per-morsel local dedup keeps each morsel's first occurrences in order;
  // the serial merge then walks morsels in order against a global set, so
  // the output is the global first-occurrence order.
  std::vector<std::vector<Tuple>> survivors(NumMorsels(ctx, n));
  ctx.pool->ParallelFor(n, ctx.morsel_tuples, [&](size_t begin, size_t end) {
    std::vector<Tuple>& local = survivors[begin / ctx.morsel_tuples];
    std::unordered_set<Tuple, TupleHash> seen;
    seen.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const Tuple& t = input.tuple(i);
      if (seen.insert(t).second) local.push_back(t);
    }
  });

  Relation out(StrCat("distinct(", input.name(), ")"), input.schema());
  std::unordered_set<Tuple, TupleHash> seen;
  seen.reserve(n);
  for (const auto& part : survivors) {
    for (const Tuple& t : part) {
      if (seen.insert(t).second) out.AppendUnchecked(t);
    }
  }
  return out;
}

Relation Aggregate(const ExecContext& ctx, const Relation& input,
                   const std::vector<size_t>& group_by,
                   const std::vector<rel::AggSpec>& aggs) {
  const size_t n = input.NumTuples();
  if (!ctx.ShouldParallelize(n)) {
    return rel::Aggregate(input, group_by, aggs);
  }

  // Per-morsel partials: a map of group key -> AggState per aggregate,
  // plus the morsel-local first-occurrence order of the keys.
  struct Partial {
    std::unordered_map<Tuple, std::vector<rel::AggState>, TupleHash> groups;
    std::vector<Tuple> order;
  };
  std::vector<Partial> partials(NumMorsels(ctx, n));
  ctx.pool->ParallelFor(n, ctx.morsel_tuples, [&](size_t begin, size_t end) {
    Partial& local = partials[begin / ctx.morsel_tuples];
    for (size_t i = begin; i < end; ++i) {
      const Tuple& t = input.tuple(i);
      Tuple key;
      key.reserve(group_by.size());
      for (size_t c : group_by) key.push_back(t[c]);
      auto [it, inserted] =
          local.groups.emplace(key, std::vector<rel::AggState>());
      if (inserted) {
        it->second.resize(aggs.size());
        local.order.push_back(key);
      }
      for (size_t a = 0; a < aggs.size(); ++a) {
        if (aggs[a].fn == rel::AggFn::kCount) {
          it->second[a].Add(rel::Value::Int(1));
        } else {
          it->second[a].Add(t[aggs[a].column]);
        }
      }
    }
  });

  // Merge in morsel order: global first-occurrence order equals the
  // serial scan's, and each group's states fold partials in input order.
  std::unordered_map<Tuple, std::vector<rel::AggState>, TupleHash> groups;
  std::vector<Tuple> group_order;
  for (Partial& partial : partials) {
    for (Tuple& key : partial.order) {
      auto local_it = partial.groups.find(key);
      auto [it, inserted] =
          groups.emplace(std::move(key), std::vector<rel::AggState>());
      if (inserted) {
        it->second = std::move(local_it->second);
        group_order.push_back(it->first);
      } else {
        for (size_t a = 0; a < aggs.size(); ++a) {
          it->second[a].Merge(local_it->second[a]);
        }
      }
    }
  }

  rel::Schema out_schema = input.schema().Project(group_by);
  for (const rel::AggSpec& a : aggs) {
    out_schema.AddColumn(rel::Column{a.output_name, rel::ValueType::kNull});
  }
  Relation out(StrCat("agg(", input.name(), ")"), std::move(out_schema));
  // n >= threshold > 0, so the empty-input global-aggregate case is the
  // serial fallback's business.
  out.mutable_tuples().reserve(group_order.size());
  for (const Tuple& key : group_order) {
    const std::vector<rel::AggState>& states = groups.at(key);
    Tuple row = key;
    for (size_t a = 0; a < aggs.size(); ++a) {
      row.push_back(states[a].Finish(aggs[a].fn));
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

}  // namespace braid::exec
