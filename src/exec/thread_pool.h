#ifndef BRAID_EXEC_THREAD_POOL_H_
#define BRAID_EXEC_THREAD_POOL_H_

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace braid::exec {

/// Fixed-size worker pool with a shared FIFO task queue, in the style of
/// morsel-driven in-memory executors. Two entry points:
///
///  - `Submit`: enqueue an arbitrary task, get a future (used by the
///    Execution Monitor to overlap remote subqueries with cache-side
///    preparation).
///  - `ParallelFor`: split a tuple range into fixed-size morsels that the
///    workers *and the calling thread* claim from a shared cursor, so load
///    imbalance self-corrects without work stealing. The caller always
///    participates, which makes nested use deadlock-free: a loop never
///    blocks on queue capacity, only on morsels that some live thread is
///    already executing.
///
/// With zero workers every operation degenerates to running inline on the
/// caller, so a `ThreadPool(0)` is a valid serial executor.
///
/// Tasks come in two classes. *Inner* tasks (the default: remote fetches,
/// prefetch jobs, morsel helpers) are short and are preferred by workers.
/// *Session* tasks (whole `Cms::Query` calls multiplexed by the session
/// scheduler) are long and may themselves submit inner tasks and block on
/// them — so a session task waiting for an inner task must call
/// `HelpOne()` in its wait loop: with every worker occupied by session
/// tasks, the queued inner work would otherwise never run (deadlock).
/// Workers drain the inner queue before taking the next session task,
/// which keeps intra-query parallelism ahead of admission of more
/// concurrent queries.
class ThreadPool {
 public:
  enum class TaskClass { kInner, kSession };

  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Enqueues `fn` for execution on a worker and returns a future for its
  /// result. With zero workers `fn` runs inline before Submit returns.
  template <typename F>
  auto Submit(F&& fn, TaskClass cls = TaskClass::kInner)
      -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    tasks_submitted_->Increment();
    if (workers_.empty()) {
      const auto start = std::chrono::steady_clock::now();
      (*task)();
      task_ms_->Observe(MsSince(start));
      return result;
    }
    {
      MutexLock lock(&mu_);
      auto& queue = cls == TaskClass::kSession ? session_queue_ : queue_;
      queue.emplace_back([task, this] {
        const auto start = std::chrono::steady_clock::now();
        (*task)();
        task_ms_->Observe(MsSince(start));
      });
      queue_depth_->Set(
          static_cast<int64_t>(queue_.size() + session_queue_.size()));
    }
    cv_.NotifyOne();
    return result;
  }

  /// Runs one queued *inner* task on the calling thread, if any; returns
  /// whether it ran one. Called by code that blocks on inner-task results
  /// (fetch joins, prefetch joins) so those tasks make progress even when
  /// every worker is busy with a session task.
  bool HelpOne();

  /// Session-class tasks waiting in the pool queue (submitted, not yet
  /// picked up by a worker). The session scheduler dispatches a session's
  /// next query here as soon as the session is idle, so under many-session
  /// load the foreground backlog sits in this queue rather than in the
  /// scheduler's per-session queues — the LoadController counts both.
  size_t NumQueuedSession() const {
    MutexLock lock(&mu_);
    return session_queue_.size();
  }

  /// Morsel-driven loop over [0, n): chunks of `grain` indices are claimed
  /// from a shared cursor by up to num_workers() pool threads plus the
  /// caller, each invoking `fn(begin, end)` with begin % grain == 0 (so
  /// the morsel index is begin / grain). Returns once every index has been
  /// processed; the first exception thrown by `fn` is rethrown on the
  /// caller.
  void ParallelFor(size_t n, size_t grain,
                   std::function<void(size_t, size_t)> fn);

 private:
  void WorkerLoop();

  static double MsSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  }

  // `workers_` is written only during construction/destruction, before any
  // worker can observe it / after all have joined, so it needs no guard.
  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  std::deque<std::function<void()>> queue_ BRAID_GUARDED_BY(mu_);
  std::deque<std::function<void()>> session_queue_ BRAID_GUARDED_BY(mu_);
  CondVar cv_;
  bool stop_ BRAID_GUARDED_BY(mu_) = false;

  // Process-wide instruments (resolved once; updates are lock-free).
  obs::Counter* tasks_submitted_;
  obs::Counter* morsels_executed_;
  obs::Counter* parallel_loops_;
  obs::Counter* help_runs_;
  obs::Gauge* queue_depth_;
  obs::Histogram* task_ms_;
};

}  // namespace braid::exec

#endif  // BRAID_EXEC_THREAD_POOL_H_
