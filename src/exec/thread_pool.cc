#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace braid::exec {

ThreadPool::ThreadPool(size_t num_threads) {
  auto& registry = obs::MetricsRegistry::Global();
  tasks_submitted_ = &registry.counter("exec.pool.tasks_submitted");
  morsels_executed_ = &registry.counter("exec.pool.morsels_executed");
  parallel_loops_ = &registry.counter("exec.pool.parallel_loops");
  help_runs_ = &registry.counter("exec.pool.help_runs");
  queue_depth_ = &registry.gauge("exec.pool.queue_depth");
  task_ms_ = &registry.histogram("exec.pool.task_ms");
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty() && session_queue_.empty()) {
        cv_.Wait(mu_);
      }
      // Inner tasks first: a queued fetch or prefetch is work some
      // already-running query is (or will be) waiting on; a session task
      // is a whole new query.
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else if (!session_queue_.empty()) {
        task = std::move(session_queue_.front());
        session_queue_.pop_front();
      } else {
        return;  // stop_ set and nothing left to run
      }
      queue_depth_->Set(
          static_cast<int64_t>(queue_.size() + session_queue_.size()));
    }
    task();
  }
}

bool ThreadPool::HelpOne() {
  std::function<void()> task;
  {
    MutexLock lock(&mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    queue_depth_->Set(
        static_cast<int64_t>(queue_.size() + session_queue_.size()));
  }
  help_runs_->Increment();
  task();
  return true;
}

namespace {

/// Shared state of one ParallelFor. Helper tasks may outlive the call (a
/// busy worker can pick one up after the caller has drained every morsel),
/// so the state is heap-allocated and the helpers only touch it through a
/// shared_ptr; such late helpers see an exhausted cursor and return
/// immediately.
struct LoopState {
  std::atomic<size_t> cursor{0};
  std::atomic<size_t> completed{0};
  size_t n = 0;
  size_t grain = 1;
  size_t morsels = 0;
  obs::Counter* morsels_executed = nullptr;
  std::function<void(size_t, size_t)> fn;
  Mutex mu;
  CondVar done;
  std::exception_ptr error BRAID_GUARDED_BY(mu);  // first exception wins

  void Drain() {
    for (;;) {
      const size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const size_t end = std::min(begin + grain, n);
      if (morsels_executed != nullptr) morsels_executed->Increment();
      try {
        fn(begin, end);
      } catch (...) {
        MutexLock lock(&mu);
        if (!error) error = std::current_exception();
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == morsels) {
        MutexLock lock(&mu);  // pair with the waiter
        done.NotifyAll();
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             std::function<void(size_t, size_t)> fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->grain = grain;
  state->morsels = (n + grain - 1) / grain;
  state->morsels_executed = morsels_executed_;
  state->fn = std::move(fn);
  parallel_loops_->Increment();

  // One helper per worker, capped at morsels-1 (the caller takes at least
  // one). Futures are deliberately discarded: completion is tracked by the
  // morsel counter, never by task execution, so a saturated pool cannot
  // deadlock a nested loop.
  const size_t helpers =
      std::min(workers_.size(), state->morsels > 0 ? state->morsels - 1 : 0);
  if (helpers > 0) {
    {
      MutexLock lock(&mu_);
      for (size_t i = 0; i < helpers; ++i) {
        queue_.emplace_back([state] { state->Drain(); });
      }
    }
    cv_.NotifyAll();
  }

  state->Drain();
  {
    MutexLock lock(&state->mu);
    while (state->completed.load(std::memory_order_acquire) !=
           state->morsels) {
      state->done.Wait(state->mu);
    }
    if (state->error) std::rethrow_exception(state->error);
  }
}

}  // namespace braid::exec
