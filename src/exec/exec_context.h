#ifndef BRAID_EXEC_EXEC_CONTEXT_H_
#define BRAID_EXEC_EXEC_CONTEXT_H_

#include <cstddef>

#include "exec/thread_pool.h"

namespace braid::exec {

/// Execution policy handed to the parallel operators and the Execution
/// Monitor. A default-constructed context (null pool) is a fully serial
/// executor, so call sites can take an ExecContext unconditionally; the
/// operators fall back to their single-threaded implementations whenever
/// `ShouldParallelize` says the input is too small to amortize the
/// fan-out, keeping the morsel machinery off the small-query hot path.
struct ExecContext {
  ThreadPool* pool = nullptr;
  /// Inputs below this many tuples run on the caller's thread.
  size_t parallel_threshold = 4096;
  /// Tuples per morsel claimed from the shared cursor.
  size_t morsel_tuples = 1024;

  bool ShouldParallelize(size_t num_tuples) const {
    return pool != nullptr && pool->num_workers() > 0 &&
           num_tuples >= parallel_threshold;
  }

  /// Parallel fan-out of a loop, counting the participating caller.
  size_t Lanes() const {
    return pool == nullptr ? 1 : pool->num_workers() + 1;
  }
};

}  // namespace braid::exec

#endif  // BRAID_EXEC_EXEC_CONTEXT_H_
