#include "stream/stream_ops.h"

namespace braid::stream {

rel::Relation Drain(TupleStream& stream, const std::string& name) {
  rel::Relation out(name, stream.schema());
  while (auto t = stream.Next()) {
    out.AppendUnchecked(std::move(*t));
  }
  return out;
}

std::optional<rel::Tuple> ScanStream::Next() {
  if (pos_ >= relation_->NumTuples()) return std::nullopt;
  ++produced_;
  return relation_->tuple(pos_++);
}

std::optional<rel::Tuple> SelectStream::Next() {
  while (auto t = input_->Next()) {
    if (pred_->Eval(*t)) {
      ++produced_;
      return t;
    }
  }
  return std::nullopt;
}

std::optional<rel::Tuple> ProjectStream::Next() {
  auto t = input_->Next();
  if (!t.has_value()) return std::nullopt;
  rel::Tuple projected;
  projected.reserve(columns_.size());
  for (size_t c : columns_) projected.push_back((*t)[c]);
  ++produced_;
  return projected;
}

IndexJoinStream::IndexJoinStream(
    TupleStreamPtr left, std::shared_ptr<const rel::Relation> right,
    std::vector<rel::JoinKey> keys,
    std::shared_ptr<const rel::HashIndex> right_index,
    rel::PredicatePtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      keys_(std::move(keys)),
      right_index_(std::move(right_index)),
      residual_(std::move(residual)),
      schema_(left_->schema().Concat(right_->schema())) {
  scan_all_ = right_index_ == nullptr || keys_.empty();
}

bool IndexJoinStream::AdvanceLeft() {
  current_left_ = left_->Next();
  if (!current_left_.has_value()) return false;
  candidate_pos_ = 0;
  if (scan_all_) {
    candidates_.clear();
    candidates_.reserve(right_->NumTuples());
    for (size_t i = 0; i < right_->NumTuples(); ++i) candidates_.push_back(i);
  } else {
    const rel::Value& key = (*current_left_)[keys_[0].left_col];
    candidates_ = right_index_->Lookup(key);
  }
  return true;
}

std::optional<rel::Tuple> IndexJoinStream::Next() {
  while (true) {
    if (!current_left_.has_value()) {
      if (!AdvanceLeft()) return std::nullopt;
    }
    while (candidate_pos_ < candidates_.size()) {
      const rel::Tuple& rt = right_->tuple(candidates_[candidate_pos_++]);
      ++work_;
      bool match = true;
      // When an index served key 0, start checking from key 1.
      const size_t first_key = scan_all_ ? 0 : 1;
      for (size_t k = first_key; k < keys_.size(); ++k) {
        if ((*current_left_)[keys_[k].left_col] != rt[keys_[k].right_col]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      rel::Tuple combined = *current_left_;
      combined.insert(combined.end(), rt.begin(), rt.end());
      if (residual_ != nullptr && !residual_->Eval(combined)) continue;
      ++produced_;
      return combined;
    }
    current_left_.reset();
  }
}

std::optional<rel::Tuple> DistinctStream::Next() {
  while (auto t = input_->Next()) {
    if (seen_.insert(*t).second) {
      ++produced_;
      return t;
    }
  }
  return std::nullopt;
}

std::optional<rel::Tuple> ConcatStream::Next() {
  while (current_ < inputs_.size()) {
    auto t = inputs_[current_]->Next();
    if (t.has_value()) {
      ++produced_;
      return t;
    }
    ++current_;
  }
  return std::nullopt;
}

size_t ConcatStream::WorkDone() const {
  size_t total = 0;
  for (const auto& in : inputs_) total += in->WorkDone();
  return total;
}

}  // namespace braid::stream
