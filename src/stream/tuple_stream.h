#ifndef BRAID_STREAM_TUPLE_STREAM_H_
#define BRAID_STREAM_TUPLE_STREAM_H_

#include <memory>
#include <optional>

#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace braid::stream {

/// Pull-based stream of tuples — the data-transfer interface between the
/// CMS and the IE (paper §3: "The CMS returns the result for the query
/// using a stream") and the representation of *generators*, the CMS's lazy
/// form of a relation (§5.1).
///
/// `Next()` produces the next tuple or nullopt at end of stream. Streams
/// are single-pass; the CMS materializes an extension when multiple passes
/// or random access are required.
class TupleStream {
 public:
  virtual ~TupleStream() = default;

  /// The schema of produced tuples.
  virtual const rel::Schema& schema() const = 0;

  /// Produces the next tuple, or nullopt when exhausted.
  virtual std::optional<rel::Tuple> Next() = 0;

  /// Total tuples this node has produced so far.
  size_t produced() const { return produced_; }

  /// Cumulative work units (tuples examined) performed by this node and
  /// its inputs — the measure of lazy-evaluation effort.
  virtual size_t WorkDone() const { return produced_; }

 protected:
  size_t produced_ = 0;
};

using TupleStreamPtr = std::unique_ptr<TupleStream>;

/// Pulls every remaining tuple of `stream` into a relation named `name`.
rel::Relation Drain(TupleStream& stream, const std::string& name = "drained");

}  // namespace braid::stream

#endif  // BRAID_STREAM_TUPLE_STREAM_H_
