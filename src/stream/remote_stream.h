#ifndef BRAID_STREAM_REMOTE_STREAM_H_
#define BRAID_STREAM_REMOTE_STREAM_H_

#include <memory>

#include "stream/tuple_stream.h"

namespace braid::stream {

/// Timing parameters of a buffered remote result (paper §5.5: "The CMS's
/// interface to the remote DBMS provides buffers for the data returned by
/// the DBMS. The interface also allows pipelining...").
struct RemoteStreamTiming {
  double server_ms = 0;        // total server production time
  double msg_latency_ms = 0;   // per-message round-trip latency
  double per_tuple_ms = 0;     // transfer cost per tuple
  size_t buffer_tuples = 64;   // tuples per buffer (one message each)
  bool pipelining = true;      // server produces while earlier buffers ship
};

/// A remote result consumed buffer-at-a-time: tuples are all present (the
/// simulation is deterministic), but each carries the simulated time at
/// which its buffer arrived at the workstation. With pipelining the
/// server's production overlaps the transfer of earlier buffers, so the
/// first buffer arrives long before the full result — the time-to-first-
/// tuple advantage stream processing exists to provide.
class BufferedRemoteStream : public TupleStream {
 public:
  BufferedRemoteStream(std::shared_ptr<const rel::Relation> result,
                       RemoteStreamTiming timing)
      : result_(std::move(result)), timing_(timing) {}

  const rel::Schema& schema() const override { return result_->schema(); }

  std::optional<rel::Tuple> Next() override {
    if (pos_ >= result_->NumTuples()) return std::nullopt;
    ++produced_;
    return result_->tuple(pos_++);
  }

  size_t WorkDone() const override { return pos_; }

  size_t NumBuffers() const {
    const size_t n = result_->NumTuples();
    const size_t b = timing_.buffer_tuples == 0 ? 1 : timing_.buffer_tuples;
    return n == 0 ? 1 : (n + b - 1) / b;
  }

  /// Simulated arrival time (ms after the request was issued) of the
  /// buffer containing tuple `index`.
  double ArrivalMs(size_t index) const {
    const size_t b = timing_.buffer_tuples == 0 ? 1 : timing_.buffer_tuples;
    const size_t buffer = index / b;                    // 0-based
    const size_t buffers = NumBuffers();
    const double per_buffer_transfer =
        timing_.msg_latency_ms +
        static_cast<double>(b) * timing_.per_tuple_ms;
    if (!timing_.pipelining) {
      // The server finishes the whole result first, then ships buffers.
      return timing_.server_ms +
             static_cast<double>(buffer + 1) * per_buffer_transfer;
    }
    // Pipelined: buffer k is ready at the server after a proportional
    // share of production, and its transfer overlaps later production.
    const double produced_at = timing_.server_ms *
                               static_cast<double>(buffer + 1) /
                               static_cast<double>(buffers);
    return std::max(produced_at,
                    static_cast<double>(buffer) * per_buffer_transfer) +
           per_buffer_transfer;
  }

  /// Arrival of the last buffer (total response time of the transfer).
  double CompletionMs() const {
    return result_->NumTuples() == 0
               ? timing_.server_ms + timing_.msg_latency_ms
               : ArrivalMs(result_->NumTuples() - 1);
  }

 private:
  std::shared_ptr<const rel::Relation> result_;
  RemoteStreamTiming timing_;
  size_t pos_ = 0;
};

}  // namespace braid::stream

#endif  // BRAID_STREAM_REMOTE_STREAM_H_
