#ifndef BRAID_STREAM_STREAM_OPS_H_
#define BRAID_STREAM_STREAM_OPS_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/index.h"
#include "relational/operators.h"
#include "relational/predicate.h"
#include "stream/tuple_stream.h"

namespace braid::stream {

/// Scans a shared, immutable relation (typically a cached extension).
class ScanStream : public TupleStream {
 public:
  explicit ScanStream(std::shared_ptr<const rel::Relation> relation)
      : relation_(std::move(relation)) {}

  const rel::Schema& schema() const override { return relation_->schema(); }
  std::optional<rel::Tuple> Next() override;
  size_t WorkDone() const override { return pos_; }

 private:
  std::shared_ptr<const rel::Relation> relation_;
  size_t pos_ = 0;
};

/// Lazy selection.
class SelectStream : public TupleStream {
 public:
  SelectStream(TupleStreamPtr input, rel::PredicatePtr pred)
      : input_(std::move(input)), pred_(std::move(pred)) {}

  const rel::Schema& schema() const override { return input_->schema(); }
  std::optional<rel::Tuple> Next() override;
  size_t WorkDone() const override { return input_->WorkDone(); }

 private:
  TupleStreamPtr input_;
  rel::PredicatePtr pred_;
};

/// Lazy projection.
class ProjectStream : public TupleStream {
 public:
  ProjectStream(TupleStreamPtr input, std::vector<size_t> columns)
      : input_(std::move(input)),
        columns_(std::move(columns)),
        schema_(input_->schema().Project(columns_)) {}

  const rel::Schema& schema() const override { return schema_; }
  std::optional<rel::Tuple> Next() override;
  size_t WorkDone() const override { return input_->WorkDone(); }

 private:
  TupleStreamPtr input_;
  std::vector<size_t> columns_;
  rel::Schema schema_;
};

/// Lazy join: pulls left tuples one at a time and probes the (materialized,
/// typically cached) right relation, through a hash index when one is
/// supplied. This is the shape of generator the CMS plans when all
/// required data is in the cache (§5.1).
class IndexJoinStream : public TupleStream {
 public:
  IndexJoinStream(TupleStreamPtr left,
                  std::shared_ptr<const rel::Relation> right,
                  std::vector<rel::JoinKey> keys,
                  std::shared_ptr<const rel::HashIndex> right_index = nullptr,
                  rel::PredicatePtr residual = nullptr);

  const rel::Schema& schema() const override { return schema_; }
  std::optional<rel::Tuple> Next() override;
  size_t WorkDone() const override { return work_ + left_->WorkDone(); }

 private:
  /// Advances to the next left tuple and computes its match candidates.
  bool AdvanceLeft();

  TupleStreamPtr left_;
  std::shared_ptr<const rel::Relation> right_;
  std::vector<rel::JoinKey> keys_;
  std::shared_ptr<const rel::HashIndex> right_index_;
  rel::PredicatePtr residual_;
  rel::Schema schema_;

  std::optional<rel::Tuple> current_left_;
  std::vector<size_t> candidates_;  // rows of right_ to test
  size_t candidate_pos_ = 0;
  bool scan_all_ = false;  // no index: candidates are all rows
  size_t work_ = 0;
};

/// Duplicate elimination on a stream (stateful: remembers emitted tuples).
class DistinctStream : public TupleStream {
 public:
  explicit DistinctStream(TupleStreamPtr input) : input_(std::move(input)) {}

  const rel::Schema& schema() const override { return input_->schema(); }
  std::optional<rel::Tuple> Next() override;
  size_t WorkDone() const override { return input_->WorkDone(); }

 private:
  TupleStreamPtr input_;
  std::unordered_set<rel::Tuple, rel::TupleHash> seen_;
};

/// Concatenates a fixed list of streams with identical schemas.
class ConcatStream : public TupleStream {
 public:
  explicit ConcatStream(std::vector<TupleStreamPtr> inputs)
      : inputs_(std::move(inputs)) {}

  const rel::Schema& schema() const override {
    return inputs_.front()->schema();
  }
  std::optional<rel::Tuple> Next() override;
  size_t WorkDone() const override;

 private:
  std::vector<TupleStreamPtr> inputs_;
  size_t current_ = 0;
};

}  // namespace braid::stream

#endif  // BRAID_STREAM_STREAM_OPS_H_
