#include "advice/path_expr.h"

#include <sstream>

namespace braid::advice {

PathExprPtr PathExpr::Pattern(std::string view_id,
                              std::vector<AnnotatedVar> args) {
  auto e = std::shared_ptr<PathExpr>(new PathExpr(Kind::kQueryPattern));
  e->view_id_ = std::move(view_id);
  e->args_ = std::move(args);
  return e;
}

PathExprPtr PathExpr::Sequence(std::vector<PathExprPtr> elements, RepBound lo,
                               RepBound hi) {
  auto e = std::shared_ptr<PathExpr>(new PathExpr(Kind::kSequence));
  e->elements_ = std::move(elements);
  e->lo_ = std::move(lo);
  e->hi_ = std::move(hi);
  return e;
}

PathExprPtr PathExpr::Alternation(std::vector<PathExprPtr> elements,
                                  size_t selection) {
  auto e = std::shared_ptr<PathExpr>(new PathExpr(Kind::kAlternation));
  e->elements_ = std::move(elements);
  e->selection_ = selection;
  return e;
}

namespace {

void Collect(const PathExpr& expr, std::vector<std::string>* out) {
  if (expr.kind() == PathExpr::Kind::kQueryPattern) {
    for (const std::string& v : *out) {
      if (v == expr.view_id()) return;
    }
    out->push_back(expr.view_id());
    return;
  }
  for (const auto& child : expr.elements()) Collect(*child, out);
}

}  // namespace

std::vector<std::string> PathExpr::MentionedViews() const {
  std::vector<std::string> out;
  Collect(*this, &out);
  return out;
}

std::string PathExpr::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kQueryPattern: {
      os << view_id_ << "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) os << ", ";
        os << args_[i].name << BindingSuffix(args_[i].binding);
      }
      os << ")";
      break;
    }
    case Kind::kSequence: {
      os << "(";
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) os << ", ";
        os << elements_[i]->ToString();
      }
      os << ")<" << lo_.ToString() << "," << hi_.ToString() << ">";
      break;
    }
    case Kind::kAlternation: {
      os << "[";
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) os << ", ";
        os << elements_[i]->ToString();
      }
      os << "]";
      if (selection_ > 0) os << "^" << selection_;
      break;
    }
  }
  return os.str();
}

}  // namespace braid::advice
