#include "advice/view_spec.h"

#include <sstream>

#include "common/strings.h"
#include "logic/substitution.h"

namespace braid::advice {

const char* BindingSuffix(Binding b) {
  switch (b) {
    case Binding::kNone:
      return "";
    case Binding::kProducer:
      return "^";
    case Binding::kConsumer:
      return "?";
  }
  return "";
}

caql::CaqlQuery ViewSpec::AsCaql() const {
  caql::CaqlQuery q;
  q.name = id;
  q.head_args.reserve(head.size());
  for (const AnnotatedVar& v : head) {
    q.head_args.push_back(logic::Term::Var(v.name));
  }
  q.body = body;
  return q;
}

caql::CaqlQuery ViewSpec::Instantiate(
    const std::vector<logic::Term>& args) const {
  caql::CaqlQuery def = AsCaql();
  logic::Substitution subst;
  const size_t n = std::min(args.size(), head.size());
  for (size_t i = 0; i < n; ++i) {
    subst.Bind(head[i].name, args[i]);
  }
  return def.Substitute(subst);
}

std::vector<std::string> ViewSpec::ConsumerVariables() const {
  std::vector<std::string> out;
  for (const AnnotatedVar& v : head) {
    if (v.binding == Binding::kConsumer) out.push_back(v.name);
  }
  return out;
}

bool ViewSpec::AllProducers() const {
  for (const AnnotatedVar& v : head) {
    if (v.binding == Binding::kConsumer) return false;
  }
  return true;
}

std::string ViewSpec::ToString() const {
  std::ostringstream os;
  os << id << "(";
  for (size_t i = 0; i < head.size(); ++i) {
    if (i > 0) os << ", ";
    os << head[i].name << BindingSuffix(head[i].binding);
  }
  os << ") =def ";
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0) os << " & ";
    os << body[i].ToString();
  }
  if (!source_rules.empty()) {
    os << "  (" << StrJoin(source_rules, ",") << ")";
  }
  return os.str();
}

}  // namespace braid::advice
