#ifndef BRAID_ADVICE_ADVICE_H_
#define BRAID_ADVICE_ADVICE_H_

#include <optional>
#include <string>
#include <vector>

#include "advice/path_expr.h"
#include "advice/view_spec.h"

namespace braid::advice {

/// The advice the IE transmits to the CMS at the start of a session
/// (paper §3: "At the beginning of each session, the IE submits a set of
/// advice. This is followed by a sequence of CAQL queries.").
///
/// `base_relations` is the simplest form of advice the paper describes —
/// the unordered list of base relations relevant to the current problem.
/// View specifications and the path expression are the two richer forms.
struct AdviceSet {
  std::vector<std::string> base_relations;
  std::vector<ViewSpec> view_specs;
  PathExprPtr path_expression;  // may be null

  /// The view spec with the given id, or nullptr.
  const ViewSpec* FindView(const std::string& id) const {
    for (const ViewSpec& v : view_specs) {
      if (v.id == id) return &v;
    }
    return nullptr;
  }

  /// Multi-line rendering of all advice components.
  std::string ToString() const;
};

}  // namespace braid::advice

#endif  // BRAID_ADVICE_ADVICE_H_
