#include "advice/path_tracker.h"

#include <deque>
#include <limits>

#include "obs/metrics.h"

namespace braid::advice {

PathTracker::PathTracker(PathExprPtr expr) {
  Fragment f = Build(*expr);
  accept_state_ = f.accept;
  current_ = Closure({f.start});
}

int PathTracker::NewState() {
  eps_.emplace_back();
  sym_.emplace_back();
  return static_cast<int>(eps_.size()) - 1;
}

int PathTracker::SymbolId(const std::string& view_id) {
  auto [it, inserted] =
      symbol_ids_.emplace(view_id, static_cast<int>(symbol_names_.size()));
  if (inserted) symbol_names_.push_back(view_id);
  return it->second;
}

PathTracker::Fragment PathTracker::Build(const PathExpr& expr) {
  switch (expr.kind()) {
    case PathExpr::Kind::kQueryPattern: {
      int s = NewState();
      int a = NewState();
      AddSym(s, SymbolId(expr.view_id()), a);
      return {s, a};
    }
    case PathExpr::Kind::kSequence: {
      int s = NewState();
      int a = NewState();
      // Chain the members. Each junction also gets an early-exit epsilon:
      // the IE may abandon the rest of a sequence when a subgoal fails
      // (the paper's tracking example predicts d1 directly after d2,
      // without requiring d3).
      int prev = s;
      for (const auto& child : expr.elements()) {
        Fragment cf = Build(*child);
        AddEps(prev, cf.start);
        if (prev != s) AddEps(prev, a);
        prev = cf.accept;
      }
      AddEps(prev, a);
      const bool lo_zero = !expr.lo().symbolic && expr.lo().count == 0;
      if (lo_zero) AddEps(s, a);
      const bool repeats =
          expr.hi().symbolic || expr.hi().count > 1 || expr.lo().symbolic ||
          expr.lo().count > 1;
      if (repeats) AddEps(prev, s);  // loop back for further iterations
      return {s, a};
    }
    case PathExpr::Kind::kAlternation: {
      int s = NewState();
      int a = NewState();
      for (const auto& child : expr.elements()) {
        Fragment cf = Build(*child);
        AddEps(s, cf.start);
        AddEps(cf.accept, a);
      }
      // Members may be skipped entirely.
      AddEps(s, a);
      // A selection term of exactly 1 forbids picking twice in one
      // occurrence; anything else may select multiple members.
      if (expr.selection() != 1) AddEps(a, s);
      return {s, a};
    }
  }
  int s = NewState();
  return {s, s};
}

std::set<int> PathTracker::Closure(const std::set<int>& states) const {
  std::set<int> closed = states;
  std::deque<int> frontier(states.begin(), states.end());
  while (!frontier.empty()) {
    int st = frontier.front();
    frontier.pop_front();
    for (int next : eps_[st]) {
      if (closed.insert(next).second) frontier.push_back(next);
    }
  }
  return closed;
}

bool PathTracker::Advance(const std::string& view_id) {
  ++advances_;
  auto& registry = obs::MetricsRegistry::Global();
  registry.counter("advice.tracker.advances").Increment();
  auto it = symbol_ids_.find(view_id);
  if (it == symbol_ids_.end()) {
    ++mispredictions_;
    registry.counter("advice.tracker.mispredictions").Increment();
    return false;
  }
  const int symbol = it->second;
  std::set<int> next;
  for (int st : current_) {
    for (const auto& [sym, to] : sym_[st]) {
      if (sym == symbol) next.insert(to);
    }
  }
  if (next.empty()) {
    ++mispredictions_;
    registry.counter("advice.tracker.mispredictions").Increment();
    return false;  // Hold position: the query was outside the prediction.
  }
  current_ = Closure(next);
  return true;
}

std::set<std::string> PathTracker::PredictNext() const {
  std::set<std::string> out;
  for (int st : current_) {
    for (const auto& [sym, to] : sym_[st]) {
      (void)to;
      out.insert(symbol_names_[sym]);
    }
  }
  return out;
}

std::optional<size_t> PathTracker::MinDistanceTo(
    const std::string& view_id) const {
  auto it = symbol_ids_.find(view_id);
  if (it == symbol_ids_.end()) return std::nullopt;
  const int target = it->second;
  // BFS over states where symbol transitions cost 1; current_ is already
  // epsilon-closed and every Advance re-closes, so only symbol edges need
  // closure expansion here.
  std::map<int, size_t> dist;
  std::deque<int> frontier;
  for (int st : current_) {
    dist[st] = 0;
    frontier.push_back(st);
  }
  size_t best = std::numeric_limits<size_t>::max();
  while (!frontier.empty()) {
    int st = frontier.front();
    frontier.pop_front();
    const size_t d = dist[st];
    if (d >= best) continue;
    for (const auto& [sym, to] : sym_[st]) {
      if (sym == target && d < best) best = d;
      std::set<int> closed = Closure({to});
      for (int nxt : closed) {
        auto [dit, inserted] = dist.emplace(nxt, d + 1);
        if (inserted) {
          frontier.push_back(nxt);
        } else if (dit->second > d + 1) {
          dit->second = d + 1;
          frontier.push_back(nxt);
        }
      }
    }
  }
  if (best == std::numeric_limits<size_t>::max()) return std::nullopt;
  return best;
}

std::set<std::string> PathTracker::PossibleWithin(size_t horizon) const {
  std::set<std::string> out;
  for (const std::string& name : symbol_names_) {
    auto d = MinDistanceTo(name);
    if (d.has_value() && *d < horizon) out.insert(name);
  }
  return out;
}

bool PathTracker::MayBeFinished() const {
  return current_.count(accept_state_) > 0;
}

}  // namespace braid::advice
