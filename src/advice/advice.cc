#include "advice/advice.h"

#include <sstream>

#include "common/strings.h"

namespace braid::advice {

std::string AdviceSet::ToString() const {
  std::ostringstream os;
  if (!base_relations.empty()) {
    os << "base relations: " << StrJoin(base_relations, ", ") << "\n";
  }
  for (const ViewSpec& v : view_specs) {
    os << v.ToString() << "\n";
  }
  if (path_expression != nullptr) {
    os << "path: " << path_expression->ToString() << "\n";
  }
  return os.str();
}

}  // namespace braid::advice
