#ifndef BRAID_ADVICE_PATH_TRACKER_H_
#define BRAID_ADVICE_PATH_TRACKER_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "advice/path_expr.h"

namespace braid::advice {

/// Path-expression tracking (paper §4.2.2): keeps an association between
/// the CAQL queries arriving from the IE and the positions in the session's
/// path expression, so the CMS can predict which view ids may be requested
/// next — the basis of its prefetching and replacement decisions.
///
/// The expression is compiled into an NFA over view-id symbols:
///  * a query pattern is a single symbol transition;
///  * a sequence repeats: a lower bound of 0 adds a bypass, an upper bound
///    greater than one (or symbolic, e.g. |Y|) adds a loop — bounded counts
///    above one are approximated by an unbounded loop, which can only make
///    predictions more permissive, never unsound for replacement;
///  * an alternation branches over its members and may be skipped entirely
///    ("some members may never appear at all"); a selection term of 1 means
///    at most one member per occurrence (no loop), any other value loops.
class PathTracker {
 public:
  explicit PathTracker(PathExprPtr expr);

  /// Consumes the next observed query's view id. Returns true if the query
  /// was predicted by the expression from the current position; an
  /// unpredicted id is counted and ignored (the tracker holds position).
  bool Advance(const std::string& view_id);

  /// View ids that could be the very next query.
  std::set<std::string> PredictNext() const;

  /// Minimum number of intervening queries before `view_id` could appear
  /// (0 = it could be next), or nullopt if it can no longer appear.
  std::optional<size_t> MinDistanceTo(const std::string& view_id) const;

  /// View ids that could appear within the next `horizon` queries.
  std::set<std::string> PossibleWithin(size_t horizon) const;

  /// True if the session could be complete at the current position.
  bool MayBeFinished() const;

  size_t mispredictions() const { return mispredictions_; }
  size_t advances() const { return advances_; }

 private:
  struct Fragment {
    int start;
    int accept;
  };

  int NewState();
  void AddEps(int from, int to) { eps_[from].push_back(to); }
  void AddSym(int from, int symbol, int to) {
    sym_[from].push_back({symbol, to});
  }
  int SymbolId(const std::string& view_id);
  Fragment Build(const PathExpr& expr);

  /// Epsilon closure of a state set.
  std::set<int> Closure(const std::set<int>& states) const;

  std::vector<std::vector<int>> eps_;
  std::vector<std::vector<std::pair<int, int>>> sym_;
  std::map<std::string, int> symbol_ids_;
  std::vector<std::string> symbol_names_;
  int accept_state_ = -1;

  std::set<int> current_;
  size_t mispredictions_ = 0;
  size_t advances_ = 0;
};

}  // namespace braid::advice

#endif  // BRAID_ADVICE_PATH_TRACKER_H_
