#ifndef BRAID_ADVICE_PATH_EXPR_H_
#define BRAID_ADVICE_PATH_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "advice/view_spec.h"

namespace braid::advice {

/// Upper/lower bound of a sequence repetition count. The upper bound may
/// be *symbolic* — "|Y|", the cardinality of the bindings produced for a
/// variable by an earlier query — which is unknown until runtime (paper
/// §4.2.2, Example 1).
struct RepBound {
  bool symbolic = false;
  size_t count = 1;            // used when !symbolic
  std::string cardinality_of;  // variable name, used when symbolic

  static RepBound Fixed(size_t n) { return RepBound{false, n, ""}; }
  static RepBound Cardinality(std::string var) {
    return RepBound{true, 0, std::move(var)};
  }

  std::string ToString() const {
    return symbolic ? "|" + cardinality_of + "|" : std::to_string(count);
  }
};

/// A path expression: the IE's prediction of the order, repetition, and
/// alternation of the CAQL queries it will emit during a session (paper
/// §4.2.2). Nodes are query patterns, sequences "(...)<lo,hi>", or
/// alternations "[...]^s" with an optional selection term s bounding how
/// many members may be selected per occurrence (s == 0 means unbounded).
class PathExpr {
 public:
  enum class Kind { kQueryPattern, kSequence, kAlternation };

  /// Leaf: "d2(X^, Y?)" — a view id plus its argument annotations.
  static std::shared_ptr<PathExpr> Pattern(std::string view_id,
                                           std::vector<AnnotatedVar> args);
  /// "(e1, e2, ...)<lo,hi>"
  static std::shared_ptr<PathExpr> Sequence(
      std::vector<std::shared_ptr<PathExpr>> elements, RepBound lo,
      RepBound hi);
  /// "[e1, e2, ...]^selection"
  static std::shared_ptr<PathExpr> Alternation(
      std::vector<std::shared_ptr<PathExpr>> elements, size_t selection = 0);

  Kind kind() const { return kind_; }
  const std::string& view_id() const { return view_id_; }
  const std::vector<AnnotatedVar>& args() const { return args_; }
  const std::vector<std::shared_ptr<PathExpr>>& elements() const {
    return elements_;
  }
  const RepBound& lo() const { return lo_; }
  const RepBound& hi() const { return hi_; }
  size_t selection() const { return selection_; }

  /// All view ids mentioned anywhere in the expression, deduplicated in
  /// first-occurrence order.
  std::vector<std::string> MentionedViews() const;

  /// Paper notation, e.g. "(d1(Y^), [d2(X^, Y?), d3(X^, Y?)]<0,|Y|>)<1,1>".
  std::string ToString() const;

 private:
  explicit PathExpr(Kind kind) : kind_(kind) {}

  Kind kind_;
  // Pattern:
  std::string view_id_;
  std::vector<AnnotatedVar> args_;
  // Sequence / alternation:
  std::vector<std::shared_ptr<PathExpr>> elements_;
  RepBound lo_ = RepBound::Fixed(1);
  RepBound hi_ = RepBound::Fixed(1);
  size_t selection_ = 0;
};

using PathExprPtr = std::shared_ptr<PathExpr>;

}  // namespace braid::advice

#endif  // BRAID_ADVICE_PATH_EXPR_H_
