#ifndef BRAID_ADVICE_VIEW_SPEC_H_
#define BRAID_ADVICE_VIEW_SPEC_H_

#include <string>
#include <vector>

#include "caql/caql_query.h"
#include "logic/atom.h"

namespace braid::advice {

/// Producer/consumer binding annotation on a view-specification argument
/// (paper §4.2.1). A producer ("^", free) argument will be produced as a
/// binding by executing the corresponding CAQL query; a consumer ("?",
/// bound) argument will arrive as a constant in the query instance.
/// Consumer attributes are prime candidates for indexing; all-producer
/// views are candidates for lazy, unindexed evaluation.
enum class Binding {
  kNone,      // unannotated (e.g. variables internal to the body)
  kProducer,  // "^" — free variable, produced by the query
  kConsumer,  // "?" — bound variable, supplied as a constant
};

const char* BindingSuffix(Binding b);

/// One head argument of a view specification.
struct AnnotatedVar {
  std::string name;
  Binding binding = Binding::kNone;

  bool operator==(const AnnotatedVar& other) const {
    return name == other.name && binding == other.binding;
  }
};

/// A view specification: the first kind of advice the IE sends the CMS.
///
///   d2(X^, Y?) =def b2(X^, Z) & b3(Z, c2, Y?)   (R2)
///
/// Every CAQL query the IE later emits is an instance of one of its view
/// specifications with constants substituted for consumer variables
/// (paper: "any given CAQL query will necessarily be a single view
/// specification with zero or more query constants and/or variables").
struct ViewSpec {
  std::string id;                        // "d1", "d2", ...
  std::vector<AnnotatedVar> head;        // minimum argument set
  std::vector<logic::Atom> body;         // base relations + built-ins
  std::vector<std::string> source_rules; // rule ids, for human consumption

  /// The view definition as a CAQL query (head variables unannotated).
  caql::CaqlQuery AsCaql() const;

  /// Builds the CAQL query instance for this view with the given argument
  /// terms substituted positionally for the head variables.
  caql::CaqlQuery Instantiate(const std::vector<logic::Term>& args) const;

  /// Head variable names that carry a consumer ("?") annotation.
  std::vector<std::string> ConsumerVariables() const;
  /// True if every annotated head variable is a producer.
  bool AllProducers() const;

  /// Renders "d2(X^, Y?) =def b2(X^, Z) & b3(Z, c2, Y?)  (R2)".
  std::string ToString() const;
};

}  // namespace braid::advice

#endif  // BRAID_ADVICE_VIEW_SPEC_H_
