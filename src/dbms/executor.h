#ifndef BRAID_DBMS_EXECUTOR_H_
#define BRAID_DBMS_EXECUTOR_H_

#include "common/status.h"
#include "dbms/database.h"
#include "dbms/sql.h"
#include "relational/relation.h"

namespace braid::dbms {

/// Work performed while executing one query, used by the cost model to
/// derive simulated server time.
struct WorkCounters {
  size_t tuples_scanned = 0;       // base-table tuples read
  size_t tuples_intermediate = 0;  // materialized intermediate tuples
  size_t tuples_output = 0;        // final result tuples
};

/// Evaluates SqlQuery plans against a Database. Single-table predicates are
/// pushed below joins; join order is chosen greedily by actual intermediate
/// cardinality (smallest-first, connected tables preferred), with hash
/// joins on equality conditions and nested-loop fallback for the rest.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  /// Runs `query`; on success fills `work` (if non-null) with the effort
  /// expended.
  Result<rel::Relation> Execute(const SqlQuery& query,
                                WorkCounters* work) const;

 private:
  const Database* db_;
};

}  // namespace braid::dbms

#endif  // BRAID_DBMS_EXECUTOR_H_
