#include "dbms/remote_dbms.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "obs/metrics.h"

namespace braid::dbms {

std::string RemoteStats::ToString() const {
  std::ostringstream os;
  os << "queries=" << queries << " messages=" << messages
     << " tuples_shipped=" << tuples_shipped << " bytes=" << bytes_shipped
     << " server_ms=" << server_ms << " total_ms=" << total_ms;
  return os.str();
}

Result<RemoteResult> RemoteDbms::Execute(const SqlQuery& query) {
  WorkCounters work;
  BRAID_ASSIGN_OR_RETURN(rel::Relation result, executor_.Execute(query, &work));

  RemoteCost cost;
  cost.server_ms = costs_.query_overhead_ms +
                   work.tuples_scanned * costs_.per_tuple_scan_ms +
                   work.tuples_intermediate * costs_.per_tuple_intermediate_ms +
                   work.tuples_output * costs_.per_tuple_output_ms;

  cost.tuples_shipped = result.NumTuples();
  cost.bytes_shipped = result.ByteSize();
  // One request message plus one message per result buffer (at least one
  // reply even for an empty result).
  const size_t buffers =
      std::max<size_t>(1, (cost.tuples_shipped + network_.buffer_tuples - 1) /
                              std::max<size_t>(1, network_.buffer_tuples));
  cost.messages = 1 + buffers;
  cost.transfer_ms = cost.messages * network_.msg_latency_ms +
                     cost.tuples_shipped * network_.per_tuple_ms +
                     cost.bytes_shipped * network_.per_byte_ms;
  // With pipelining the server's production overlaps the transfer of
  // earlier buffers; without it the result is fully produced first.
  if (network_.pipelining) {
    cost.total_ms = std::max(cost.server_ms, cost.transfer_ms) +
                    network_.msg_latency_ms;
  } else {
    cost.total_ms = cost.server_ms + cost.transfer_ms;
  }

  {
    MutexLock lock(&stats_mu_);
    stats_.queries += 1;
    stats_.messages += cost.messages;
    stats_.tuples_shipped += cost.tuples_shipped;
    stats_.bytes_shipped += cost.bytes_shipped;
    stats_.server_ms += cost.server_ms;
    stats_.total_ms += cost.total_ms;
  }
  {
    auto& registry = obs::MetricsRegistry::Global();
    registry.counter("remote.queries").Increment();
    registry.counter("remote.messages").Increment(cost.messages);
    registry.counter("remote.tuples_shipped").Increment(cost.tuples_shipped);
    registry.counter("remote.bytes_shipped").Increment(cost.bytes_shipped);
    registry.histogram("remote.fetch_modeled_ms").Observe(cost.total_ms);
  }

  if (network_.wall_clock_scale > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        cost.total_ms * network_.wall_clock_scale));
  }

  return RemoteResult{std::move(result), cost};
}

double RemoteDbms::EstimateCardinality(const SqlQuery& query) const {
  // Cardinality estimate: product of table cardinalities, discounted by
  // the selectivity of each condition (equality via distinct counts,
  // inequality with the textbook 1/3 guess).
  double card = 1.0;
  for (const std::string& name : query.from) {
    const TableStats* stats = database_.GetStats(name);
    card *= stats == nullptr ? 1000.0
                             : std::max<size_t>(1, stats->cardinality);
  }
  for (const Condition& c : query.where) {
    const TableStats* lhs_stats =
        c.lhs.table < query.from.size()
            ? database_.GetStats(query.from[c.lhs.table])
            : nullptr;
    double sel = 0.33;
    if (c.op == rel::CompareOp::kEq) {
      sel = lhs_stats != nullptr ? lhs_stats->EqSelectivity(c.lhs.column)
                                 : 0.1;
      if (c.rhs_is_column && c.rhs_col.table < query.from.size()) {
        const TableStats* rhs_stats =
            database_.GetStats(query.from[c.rhs_col.table]);
        if (rhs_stats != nullptr) {
          sel = std::min(sel, rhs_stats->EqSelectivity(c.rhs_col.column));
        }
      }
    }
    card *= sel;
  }
  return std::max(card, 0.0);
}

double RemoteDbms::EstimateServerMs(const SqlQuery& query) const {
  double scanned = 0;
  for (const std::string& name : query.from) {
    const TableStats* stats = database_.GetStats(name);
    if (stats != nullptr) scanned += static_cast<double>(stats->cardinality);
  }
  const double output = EstimateCardinality(query);
  // Intermediate work approximated as twice the output.
  return costs_.query_overhead_ms + scanned * costs_.per_tuple_scan_ms +
         2.0 * output * costs_.per_tuple_intermediate_ms +
         output * costs_.per_tuple_output_ms;
}

}  // namespace braid::dbms
