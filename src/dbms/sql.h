#ifndef BRAID_DBMS_SQL_H_
#define BRAID_DBMS_SQL_H_

#include <string>
#include <vector>

#include "relational/predicate.h"
#include "relational/value.h"

namespace braid::dbms {

/// Reference to a column of one of the query's FROM entries: `table` is the
/// position in SqlQuery::from (so self-joins are expressible), `column` is
/// the column position within that table.
struct ColRef {
  size_t table = 0;
  size_t column = 0;

  bool operator==(const ColRef& other) const {
    return table == other.table && column == other.column;
  }
};

/// One WHERE conjunct: column-op-constant or column-op-column.
struct Condition {
  ColRef lhs;
  rel::CompareOp op = rel::CompareOp::kEq;
  bool rhs_is_column = false;
  ColRef rhs_col;
  rel::Value constant;

  bool IsEquiJoin() const {
    return rhs_is_column && op == rel::CompareOp::kEq &&
           lhs.table != rhs_col.table;
  }
};

/// The DML of the simulated remote DBMS: a conjunctive SELECT-PROJECT-JOIN
/// query. This deliberately models the restricted query interface of a
/// conventional early-90s relational DBMS: conjunctive SPJ with optional
/// DISTINCT — no recursion, no disjunction, none of CAQL's second-order or
/// evaluable predicates. The CMS executes anything beyond this itself
/// (paper §5.3: "the remote DBMS does not support all CAQL operations, but
/// the CMS does").
struct SqlQuery {
  std::vector<std::string> from;  // table names, position = ColRef::table
  std::vector<ColRef> select;     // projection; empty means SELECT *
  std::vector<Condition> where;   // conjunctive
  bool distinct = false;

  /// Renders "SELECT t0.c1, t1.c0 FROM b1 t0, b2 t1 WHERE t0.c0 = t1.c1".
  std::string ToString() const;
};

}  // namespace braid::dbms

#endif  // BRAID_DBMS_SQL_H_
