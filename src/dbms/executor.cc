#include "dbms/executor.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"
#include "relational/operators.h"

namespace braid::dbms {

namespace {

/// True if `cond` references only tables in `bound` (positions into
/// SqlQuery::from marked as already joined).
bool ConditionBound(const Condition& cond, const std::vector<bool>& bound) {
  if (!bound[cond.lhs.table]) return false;
  if (cond.rhs_is_column && !bound[cond.rhs_col.table]) return false;
  return true;
}

}  // namespace

Result<rel::Relation> Executor::Execute(const SqlQuery& query,
                                        WorkCounters* work) const {
  WorkCounters local;
  if (query.from.empty()) {
    return Status::InvalidArgument("query has no FROM tables");
  }

  // Resolve and validate tables.
  std::vector<const rel::Relation*> tables;
  tables.reserve(query.from.size());
  for (const std::string& name : query.from) {
    const rel::Relation* t = db_->GetTable(name);
    if (t == nullptr) {
      return Status::NotFound(StrCat("table ", name));
    }
    tables.push_back(t);
  }
  auto column_ok = [&tables](const ColRef& ref) {
    return ref.table < tables.size() &&
           ref.column < tables[ref.table]->schema().size();
  };
  for (const Condition& c : query.where) {
    if (!column_ok(c.lhs) || (c.rhs_is_column && !column_ok(c.rhs_col))) {
      return Status::InvalidArgument("condition references unknown column");
    }
  }
  for (const ColRef& ref : query.select) {
    if (!column_ok(ref)) {
      return Status::InvalidArgument("select list references unknown column");
    }
  }

  // Phase 1: push single-table selections below the joins.
  std::vector<rel::Relation> filtered(query.from.size());
  std::vector<bool> condition_used(query.where.size(), false);
  for (size_t i = 0; i < query.from.size(); ++i) {
    std::vector<rel::PredicatePtr> preds;
    for (size_t ci = 0; ci < query.where.size(); ++ci) {
      const Condition& c = query.where[ci];
      if (c.lhs.table != i) continue;
      if (c.rhs_is_column) {
        if (c.rhs_col.table != i) continue;
        preds.push_back(
            rel::Predicate::ColumnColumn(c.lhs.column, c.op, c.rhs_col.column));
      } else {
        preds.push_back(
            rel::Predicate::ColumnConst(c.lhs.column, c.op, c.constant));
      }
      condition_used[ci] = true;
    }
    local.tuples_scanned += tables[i]->NumTuples();
    if (preds.empty()) {
      filtered[i] = *tables[i];
    } else {
      filtered[i] = rel::Select(*tables[i], *rel::Predicate::And(preds));
      local.tuples_intermediate += filtered[i].NumTuples();
    }
  }

  // Phase 2: greedy join ordering over the filtered tables.
  std::vector<bool> joined(query.from.size(), false);
  std::vector<size_t> offset(query.from.size(), 0);

  size_t first = 0;
  for (size_t i = 1; i < filtered.size(); ++i) {
    if (filtered[i].NumTuples() < filtered[first].NumTuples()) first = i;
  }
  rel::Relation current = filtered[first];
  joined[first] = true;
  offset[first] = 0;

  size_t remaining = query.from.size() - 1;
  while (remaining > 0) {
    // Prefer a table connected to the joined set by an equi-join; among
    // candidates pick the one with the smallest filtered cardinality.
    size_t best = std::numeric_limits<size_t>::max();
    bool best_connected = false;
    for (size_t i = 0; i < query.from.size(); ++i) {
      if (joined[i]) continue;
      bool connected = false;
      for (size_t ci = 0; ci < query.where.size(); ++ci) {
        const Condition& c = query.where[ci];
        if (condition_used[ci] || !c.IsEquiJoin()) continue;
        const bool links =
            (c.lhs.table == i && joined[c.rhs_col.table]) ||
            (c.rhs_col.table == i && joined[c.lhs.table]);
        if (links) {
          connected = true;
          break;
        }
      }
      if (best == std::numeric_limits<size_t>::max() ||
          (connected && !best_connected) ||
          (connected == best_connected &&
           filtered[i].NumTuples() < filtered[best].NumTuples())) {
        best = i;
        best_connected = connected;
      }
    }

    const size_t next = best;
    const size_t next_offset = current.schema().size();

    // Gather equality keys between `current` and `next`.
    std::vector<rel::JoinKey> keys;
    std::vector<rel::PredicatePtr> residual;
    for (size_t ci = 0; ci < query.where.size(); ++ci) {
      if (condition_used[ci]) continue;
      const Condition& c = query.where[ci];
      if (!c.rhs_is_column) continue;
      const bool lhs_in_next = c.lhs.table == next;
      const bool rhs_in_next = c.rhs_col.table == next;
      const bool lhs_joined = joined[c.lhs.table];
      const bool rhs_joined = joined[c.rhs_col.table];
      size_t left_col, right_col;
      rel::CompareOp op = c.op;
      if (lhs_joined && rhs_in_next) {
        left_col = offset[c.lhs.table] + c.lhs.column;
        right_col = c.rhs_col.column;
      } else if (rhs_joined && lhs_in_next) {
        left_col = offset[c.rhs_col.table] + c.rhs_col.column;
        right_col = c.lhs.column;
        op = rel::ReverseCompareOp(op);
      } else if (lhs_in_next && rhs_in_next) {
        // Both sides within `next` (self-condition not caught in phase 1
        // because it spans... actually phase 1 caught same-table; this
        // covers self-join aliases resolved to the same position).
        residual.push_back(rel::Predicate::ColumnColumn(
            next_offset + c.lhs.column, c.op, next_offset + c.rhs_col.column));
        condition_used[ci] = true;
        continue;
      } else {
        continue;  // Spans a table not yet joined.
      }
      condition_used[ci] = true;
      if (op == rel::CompareOp::kEq) {
        keys.push_back(rel::JoinKey{left_col, right_col});
      } else {
        residual.push_back(rel::Predicate::ColumnColumn(left_col, op,
                                                        next_offset + right_col));
      }
    }

    rel::PredicatePtr residual_pred =
        residual.empty() ? nullptr : rel::Predicate::And(residual);
    current = rel::HashJoin(current, filtered[next], keys, residual_pred);
    local.tuples_intermediate += current.NumTuples();
    joined[next] = true;
    offset[next] = next_offset;
    --remaining;
  }

  // Phase 3: any conditions not yet applied (e.g. cross-table inequalities
  // that became applicable only after later joins).
  std::vector<rel::PredicatePtr> leftover;
  for (size_t ci = 0; ci < query.where.size(); ++ci) {
    if (condition_used[ci]) continue;
    const Condition& c = query.where[ci];
    if (!ConditionBound(c, joined)) {
      return Status::Internal("unapplied condition after join phase");
    }
    const size_t lhs_col = offset[c.lhs.table] + c.lhs.column;
    if (c.rhs_is_column) {
      leftover.push_back(rel::Predicate::ColumnColumn(
          lhs_col, c.op, offset[c.rhs_col.table] + c.rhs_col.column));
    } else {
      leftover.push_back(rel::Predicate::ColumnConst(lhs_col, c.op,
                                                     c.constant));
    }
  }
  if (!leftover.empty()) {
    current = rel::Select(current, *rel::Predicate::And(leftover));
    local.tuples_intermediate += current.NumTuples();
  }

  // Phase 4: projection and DISTINCT. SELECT * returns columns in FROM
  // order regardless of the join order chosen internally.
  {
    std::vector<size_t> cols;
    if (query.select.empty()) {
      for (size_t t = 0; t < query.from.size(); ++t) {
        for (size_t c = 0; c < tables[t]->schema().size(); ++c) {
          cols.push_back(offset[t] + c);
        }
      }
    } else {
      cols.reserve(query.select.size());
      for (const ColRef& ref : query.select) {
        cols.push_back(offset[ref.table] + ref.column);
      }
    }
    current = rel::Project(current, cols);
  }
  if (query.distinct) {
    current = rel::Distinct(current);
  }

  local.tuples_output = current.NumTuples();
  if (work != nullptr) *work = local;
  current.set_name("result");
  return current;
}

}  // namespace braid::dbms
