#include "dbms/sql.h"

#include <sstream>

namespace braid::dbms {

std::string SqlQuery::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  if (distinct) os << "DISTINCT ";
  if (select.empty()) {
    os << "*";
  } else {
    for (size_t i = 0; i < select.size(); ++i) {
      if (i > 0) os << ", ";
      os << "t" << select[i].table << ".c" << select[i].column;
    }
  }
  os << " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) os << ", ";
    os << from[i] << " t" << i;
  }
  if (!where.empty()) {
    os << " WHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) os << " AND ";
      const Condition& c = where[i];
      os << "t" << c.lhs.table << ".c" << c.lhs.column << " "
         << rel::CompareOpSymbol(c.op) << " ";
      if (c.rhs_is_column) {
        os << "t" << c.rhs_col.table << ".c" << c.rhs_col.column;
      } else {
        os << c.constant.ToString();
      }
    }
  }
  return os.str();
}

}  // namespace braid::dbms
