#include "dbms/database.h"

#include <unordered_set>

#include "common/strings.h"

namespace braid::dbms {

TableStats ComputeStats(const rel::Relation& relation) {
  TableStats stats;
  stats.cardinality = relation.NumTuples();
  stats.distinct.resize(relation.schema().size(), 0);
  for (size_t col = 0; col < relation.schema().size(); ++col) {
    std::unordered_set<size_t> hashes;
    hashes.reserve(relation.NumTuples());
    for (const rel::Tuple& t : relation.tuples()) {
      hashes.insert(t[col].Hash());
    }
    stats.distinct[col] = hashes.size();
  }
  return stats;
}

Status Database::AddTable(rel::Relation table) {
  const std::string name = table.name();
  if (name.empty()) {
    return Status::InvalidArgument("table must have a name");
  }
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("table ", name));
  }
  stats_.emplace(name, ComputeStats(table));
  tables_.emplace(name, std::move(table));
  return Status::Ok();
}

const rel::Relation* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const TableStats* Database::GetStats(const std::string& name) const {
  auto it = stats_.find(name);
  return it == stats_.end() ? nullptr : &it->second;
}

std::optional<size_t> Database::ColumnIndex(
    const std::string& table, const std::string& attribute) const {
  const rel::Relation* rel = GetTable(table);
  if (rel == nullptr) return std::nullopt;
  return rel->schema().ColumnIndex(attribute);
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table.NumTuples();
  return total;
}

}  // namespace braid::dbms
