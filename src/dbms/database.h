#ifndef BRAID_DBMS_DATABASE_H_
#define BRAID_DBMS_DATABASE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"

namespace braid::dbms {

/// Optimizer-facing statistics for one stored table.
struct TableStats {
  size_t cardinality = 0;
  /// Number of distinct values per column. distinct[i] == 0 for an empty
  /// table.
  std::vector<size_t> distinct;

  /// Estimated selectivity of an equality predicate on `column`
  /// (1/distinct), or 0.1 as a default guess when unknown.
  double EqSelectivity(size_t column) const {
    if (column < distinct.size() && distinct[column] > 0) {
      return 1.0 / static_cast<double>(distinct[column]);
    }
    return 0.1;
  }
};

/// The catalog and storage of the simulated remote database: named tables
/// with schemas, plus derived statistics. The CMS holds a copy of this
/// schema (paper §5: the Cache Manager manages "(a copy of) the remote
/// database schema") and the IE reads cardinality/selectivity from it via
/// the CMS for problem-graph shaping.
class Database {
 public:
  Database() = default;

  /// Adds a table; statistics are computed immediately.
  Status AddTable(rel::Relation table);

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }
  const rel::Relation* GetTable(const std::string& name) const;
  const TableStats* GetStats(const std::string& name) const;

  /// Column index of `attribute` in `table`, if both exist.
  std::optional<size_t> ColumnIndex(const std::string& table,
                                    const std::string& attribute) const;

  const std::map<std::string, rel::Relation>& tables() const {
    return tables_;
  }

  /// Total stored tuples across all tables.
  size_t TotalTuples() const;

 private:
  std::map<std::string, rel::Relation> tables_;
  std::map<std::string, TableStats> stats_;
};

/// Computes statistics for a relation (cardinality + per-column distinct
/// counts). Exposed for tests and for the CMS's cache model.
TableStats ComputeStats(const rel::Relation& relation);

}  // namespace braid::dbms

#endif  // BRAID_DBMS_DATABASE_H_
