#ifndef BRAID_DBMS_REMOTE_DBMS_H_
#define BRAID_DBMS_REMOTE_DBMS_H_

#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dbms/database.h"
#include "dbms/executor.h"
#include "dbms/sql.h"

namespace braid::dbms {

/// Parameters of the simulated workstation ↔ database-server link. The
/// paper's prototype talked to INGRES / a Britton-Lee IDM-500 over Ethernet;
/// the defaults here approximate a LAN of that class scaled to readable
/// magnitudes. All times are simulated milliseconds on a deterministic
/// clock — no wall-clock measurement is involved.
struct NetworkModel {
  double msg_latency_ms = 5.0;  // round-trip latency per message
  double per_tuple_ms = 0.05;   // marshalling + transfer per result tuple
  double per_byte_ms = 0.0;     // optional bandwidth term
  size_t buffer_tuples = 64;    // result tuples per transfer message
  bool pipelining = true;       // server production overlaps transfer
  /// When > 0, Execute() also sleeps for total_ms * wall_clock_scale real
  /// milliseconds, making the simulated link physically observable so the
  /// Execution Monitor's remote/local overlap can be validated against
  /// wall-clock time (bench E10, test_exec).
  double wall_clock_scale = 0.0;
};

/// Per-tuple cost coefficients of the simulated server.
struct DbmsCostModel {
  double query_overhead_ms = 2.0;          // parse/optimize/setup per query
  double per_tuple_scan_ms = 0.001;
  double per_tuple_intermediate_ms = 0.002;
  double per_tuple_output_ms = 0.002;
};

/// Cost of one remote execution.
struct RemoteCost {
  double server_ms = 0;
  double transfer_ms = 0;
  double total_ms = 0;
  size_t messages = 0;
  size_t tuples_shipped = 0;
  size_t bytes_shipped = 0;
};

/// Accumulated communication statistics for a session; the quantities the
/// paper's cost definition names: "volume of communication between the
/// workstation and the remote system [and] computational demands made on
/// the database server" (§3).
struct RemoteStats {
  size_t queries = 0;
  size_t messages = 0;
  size_t tuples_shipped = 0;
  size_t bytes_shipped = 0;
  double server_ms = 0;
  double total_ms = 0;

  std::string ToString() const;
};

/// One remote query's outcome: the result relation plus its cost.
struct RemoteResult {
  rel::Relation relation;
  RemoteCost cost;
};

/// The remote DBMS as seen from the workstation: executes SqlQuery requests
/// against its database and charges simulated time and message counts. Per
/// the paper's architecture the DBMS is an independent component — it
/// answers queries and exposes its schema, and never calls into the CMS or
/// IE.
class RemoteDbms {
 public:
  RemoteDbms(Database database, NetworkModel network, DbmsCostModel costs)
      : database_(std::move(database)),
        network_(network),
        costs_(costs),
        executor_(&database_) {}

  explicit RemoteDbms(Database database)
      : RemoteDbms(std::move(database), NetworkModel{}, DbmsCostModel{}) {}

  virtual ~RemoteDbms() = default;

  /// Executes `query`, returning the result and charging its cost to the
  /// session statistics. Thread-safe: the Execution Monitor issues
  /// concurrent subqueries from pool workers; execution reads the
  /// immutable database and the statistics update is mutex-guarded.
  ///
  /// Virtual so test harnesses can decorate the link (fault injection,
  /// added latency) without the CMS knowing; see
  /// `testing::FaultyRemoteDbms`.
  virtual Result<RemoteResult> Execute(const SqlQuery& query);

  /// Estimated server-side cost of `query` without executing it, derived
  /// from catalog statistics. Used by the CMS planner to compare remote
  /// vs. local execution.
  double EstimateServerMs(const SqlQuery& query) const;

  /// Estimated result cardinality from catalog statistics.
  double EstimateCardinality(const SqlQuery& query) const;

  const Database& database() const { return database_; }
  const NetworkModel& network() const { return network_; }
  const DbmsCostModel& costs() const { return costs_; }

  /// Snapshot of the accumulated session statistics. Returns a copy taken
  /// under the lock: concurrent Execute calls (pool fetches, async
  /// prefetches) mutate the counters, so handing out a reference would
  /// let callers read a struct mid-update.
  RemoteStats stats() const {
    MutexLock lock(&stats_mu_);
    return stats_;
  }
  void ResetStats() {
    MutexLock lock(&stats_mu_);
    stats_ = RemoteStats{};
  }

 private:
  Database database_;
  NetworkModel network_;
  DbmsCostModel costs_;
  Executor executor_;
  mutable Mutex stats_mu_;
  RemoteStats stats_ BRAID_GUARDED_BY(stats_mu_);
};

}  // namespace braid::dbms

#endif  // BRAID_DBMS_REMOTE_DBMS_H_
