// E1 — Caching reduces remote-DBMS communication (paper abstract, §3, §5.3).
//
// Workload: a genealogy expert-system session issuing repeated
// grandparent(c, Y)? AI queries whose constants are drawn from a pool of
// `distinct` values (40 queries per run). The smaller the pool, the more
// repetition a cache can exploit.
//
// Expectation (paper claim): BrAID's caching cuts remote queries, shipped
// tuples, and response time versus loose coupling; the advantage shrinks
// as the constant pool grows (less reuse), but subsumption keeps even the
// first repetition of each constant local once base data is cached.

#include "baselines/coupling_modes.h"
#include "bench/bench_util.h"
#include "braid/braid_system.h"
#include "common/rng.h"
#include "common/strings.h"
#include "workload/generators.h"

namespace braid {
namespace {

struct RunResult {
  size_t remote_queries;
  size_t tuples_shipped;
  double response_ms;
};

RunResult RunSession(baselines::CouplingMode mode, size_t distinct,
                     size_t queries) {
  workload::GenealogyParams params;
  params.people = 400;
  BraidOptions options;
  options.cms = baselines::ConfigFor(mode, 8 << 20);
  BraidSystem braid(workload::MakeGenealogyDatabase(params),
                    [] {
                      logic::KnowledgeBase kb;
                      BRAID_CHECK_OK(logic::ParseProgram(workload::GenealogyKb(), &kb));
                      return kb;
                    }(),
                    options);
  Rng rng(1234);
  double response = 0;
  for (size_t i = 0; i < queries; ++i) {
    const int64_t person =
        100 + rng.Uniform(0, static_cast<int64_t>(distinct) - 1);
    auto out = braid.Ask(StrCat("grandparent(", person, ", Y)?"));
    if (!out.ok()) {
      std::fprintf(stderr, "E1 query failed: %s\n",
                   out.status().ToString().c_str());
      std::exit(1);
    }
  }
  braid.cms().DrainPrefetches();  // settle background work before reading
  response = braid.cms().metrics().response_ms;
  return RunResult{braid.remote().stats().queries,
                   braid.remote().stats().tuples_shipped, response};
}

}  // namespace
}  // namespace braid

int main() {
  using braid::baselines::CouplingMode;
  braid::benchutil::Table table(
      "E1: caching vs loose coupling — 40 grandparent(c,Y) queries, "
      "sweep distinct constants",
      {"distinct", "mode", "remote_queries", "tuples_shipped",
       "response_ms"});
  for (size_t distinct : {1, 2, 5, 10, 20}) {
    for (CouplingMode mode :
         {CouplingMode::kLooseCoupling, CouplingMode::kBraid}) {
      auto r = braid::RunSession(mode, distinct, 40);
      table.AddRow(distinct, braid::baselines::CouplingModeName(mode),
                   r.remote_queries, r.tuples_shipped, r.response_ms);
    }
  }
  table.Print();
  return 0;
}
