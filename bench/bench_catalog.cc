// Catalog scaling — subsumption candidate retrieval must stay flat as the
// cache grows (DESIGN.md §11). The cache is filled with N selection views
// v_i(Y) :- b1(c_i, Y) over one shared predicate: the worst case for the
// predicate index (every element posts under "b1", so the pre-catalog
// linear scan examines all N and runs the mapping search on each), and
// the best case to demonstrate signature anchoring (each element is
// posted under its constant, so a lookup touches ~1 posting).
//
// Expectation: growing the cache 100x (64 -> 6400 elements) grows the
// catalog path's p50 by <= 2x while the linear baseline grows ~100x. The
// answers are identical either way (asserted per lookup).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cache_model.h"
#include "cms/planner.h"
#include "common/strings.h"
#include "dbms/remote_dbms.h"

namespace braid {
namespace {

using caql::CaqlQuery;

CaqlQuery Q(const std::string& text) {
  auto r = caql::ParseCaql(text);
  if (!r.ok()) {
    std::fprintf(stderr, "bench_catalog parse: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return r.value();
}

void Fill(cms::CacheModel* model, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    CaqlQuery def = Q(StrCat("v", i, "(Y) :- b1(", i, ", Y)"));
    auto ext = std::make_shared<rel::Relation>(
        StrCat("E", i), rel::Schema::FromNames(def.HeadVariables()));
    model->Register(
        std::make_shared<cms::CacheElement>(StrCat("E", i), def, ext));
  }
}

struct Sample {
  double p50_us = 0;
  double p90_us = 0;
  size_t matches = 0;
};

Sample Measure(const cms::QueryPlanner& planner,
               const std::vector<CaqlQuery>& probes, size_t rounds) {
  std::vector<double> lat;
  size_t matches = 0;
  for (size_t r = 0; r < rounds; ++r) {
    for (const CaqlQuery& probe : probes) {
      const auto start = std::chrono::steady_clock::now();
      auto found = planner.RelevantElements(probe);
      lat.push_back(std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count());
      matches = found.size();  // identical across rounds; keep the last
    }
  }
  std::sort(lat.begin(), lat.end());
  Sample s;
  s.p50_us = lat[lat.size() / 2];
  s.p90_us = lat[lat.size() * 9 / 10];
  s.matches = matches;
  return s;
}

}  // namespace
}  // namespace braid

int main(int argc, char** argv) {
  using braid::cms::CacheModel;
  using braid::cms::PlannerConfig;
  using braid::cms::QueryPlanner;

  const std::vector<size_t> scales = {64, 640, 6400};
  const size_t kProbes = 16;
  const size_t kRounds = 24;

  braid::benchutil::Table table(
      "catalog scaling: subsumption candidate retrieval, p50 per lookup",
      {"elements", "mode", "p50_us", "p90_us", "matches"});

  braid::dbms::Database db;
  braid::dbms::RemoteDbms remote(db);

  double catalog_base = 0, linear_base = 0;
  double catalog_top = 0, linear_top = 0;
  for (size_t n : scales) {
    CacheModel model;
    braid::Fill(&model, n);

    // Probes hit constants spread across the cache; every probe has
    // exactly one subsuming element.
    std::vector<braid::caql::CaqlQuery> probes;
    for (size_t p = 0; p < kProbes; ++p) {
      probes.push_back(
          braid::Q(braid::StrCat("q(Y) :- b1(", (n / kProbes) * p, ", Y)")));
    }

    QueryPlanner with(&model, &remote,
                      PlannerConfig{true, /*use_catalog=*/true});
    QueryPlanner without(&model, &remote,
                         PlannerConfig{true, /*use_catalog=*/false});

    // The two retrieval paths must agree before anything is timed.
    for (const auto& probe : probes) {
      const size_t a = with.RelevantElements(probe).size();
      const size_t b = without.RelevantElements(probe).size();
      if (a != b || a != 1) {
        std::fprintf(stderr, "catalog/linear disagree at n=%zu: %zu vs %zu\n",
                     n, a, b);
        return 1;
      }
    }

    braid::Sample cat = braid::Measure(with, probes, kRounds);
    braid::Sample lin = braid::Measure(without, probes, kRounds);
    table.AddRow(n, "catalog", cat.p50_us, cat.p90_us, cat.matches);
    table.AddRow(n, "linear", lin.p50_us, lin.p90_us, lin.matches);

    if (n == scales.front()) {
      catalog_base = cat.p50_us;
      linear_base = lin.p50_us;
    }
    if (n == scales.back()) {
      catalog_top = cat.p50_us;
      linear_top = lin.p50_us;
    }
  }

  const double catalog_growth = catalog_top / catalog_base;
  const double linear_growth = linear_top / linear_base;
  table.AddRow("growth", "catalog", catalog_growth, "", "");
  table.AddRow("growth", "linear", linear_growth, "", "");
  table.Print();
  table.WriteJson(braid::benchutil::JsonPathFromArgs(argc, argv,
                                                     "BENCH_catalog.json"));

  // The tentpole's acceptance: flat catalog lookups against a linear
  // baseline over a 100x cache-size sweep. Enforced here so CI fails the
  // moment an "optimization" regresses the index to a scan. The 3x bound
  // (vs 2x in EXPERIMENTS.md prose) absorbs timer noise at microsecond
  // scale.
  if (catalog_growth > 3.0) {
    std::fprintf(stderr, "FAIL: catalog p50 grew %.1fx over a 100x sweep\n",
                 catalog_growth);
    return 1;
  }
  if (linear_growth < 10.0) {
    std::fprintf(stderr,
                 "FAIL: linear baseline grew only %.1fx — the sweep is not "
                 "exercising cache growth\n",
                 linear_growth);
    return 1;
  }
  return 0;
}
