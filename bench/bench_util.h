#ifndef BRAID_BENCH_BENCH_UTIL_H_
#define BRAID_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace braid::benchutil {

/// Nearest-rank quantile of a sample (q in [0, 1]); 0 for an empty sample.
/// Takes the vector by value — the sample is sorted internally.
inline double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t rank = std::min(
      values.size() - 1,
      static_cast<size_t>(q * static_cast<double>(values.size())));
  return values[rank];
}

inline double P50(const std::vector<double>& values) {
  return Quantile(values, 0.50);
}
inline double P95(const std::vector<double>& values) {
  return Quantile(values, 0.95);
}
inline double P99(const std::vector<double>& values) {
  return Quantile(values, 0.99);
}
inline double P999(const std::vector<double>& values) {
  return Quantile(values, 0.999);
}

/// Returns the value following a `--json` flag in argv, or `fallback` when
/// the flag is absent. Pass an empty fallback to make JSON opt-in; pass a
/// default filename (e.g. "BENCH_e10.json") to make it opt-out via
/// `--json ""`.
inline std::string JsonPathFromArgs(int argc, char** argv,
                                    const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return fallback;
}

/// Fixed-width console table used by the experiment harnesses so every
/// bench prints the same style of rows the EXPERIMENTS.md index refers to.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  template <typename... Cells>
  void AddRow(const Cells&... cells) {
    std::vector<std::string> row;
    (row.push_back(ToCell(cells)), ...);
    rows_.push_back(std::move(row));
  }

  void Print() const {
    std::cout << "\n== " << title_ << "\n";
    std::vector<size_t> widths(columns_.size());
    for (size_t i = 0; i < columns_.size(); ++i) {
      widths[i] = columns_[i].size();
    }
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    auto print_row = [&widths](const std::vector<std::string>& cells) {
      std::cout << "  ";
      for (size_t i = 0; i < cells.size(); ++i) {
        std::cout << std::left << std::setw(static_cast<int>(widths[i]) + 2)
                  << cells[i];
      }
      std::cout << "\n";
    };
    print_row(columns_);
    std::vector<std::string> rule;
    for (size_t w : widths) rule.push_back(std::string(w, '-'));
    print_row(rule);
    for (const auto& row : rows_) print_row(row);
    std::cout.flush();
  }

  /// Writes the table as a JSON document: {"title": ..., "rows": [{col:
  /// cell, ...}, ...]}. Cells that parse as numbers are emitted unquoted so
  /// downstream tooling (plot scripts, regression checks) can consume them
  /// without coercion. A no-op when `path` is empty.
  void WriteJson(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench_util: cannot open " << path << " for writing\n";
      return;
    }
    out << "{\n  \"title\": " << JsonString(title_) << ",\n  \"rows\": [";
    for (size_t r = 0; r < rows_.size(); ++r) {
      out << (r == 0 ? "\n" : ",\n") << "    {";
      const auto& row = rows_[r];
      for (size_t i = 0; i < row.size() && i < columns_.size(); ++i) {
        if (i > 0) out << ", ";
        out << JsonString(columns_[i]) << ": " << JsonValue(row[i]);
      }
      out << "}";
    }
    out << "\n  ]\n}\n";
    std::cout << "wrote " << path << "\n";
  }

 private:
  static std::string JsonString(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    out += '"';
    return out;
  }

  /// Numeric-looking cells are emitted bare; everything else as a string.
  static std::string JsonValue(const std::string& s) {
    if (!s.empty()) {
      char* end = nullptr;
      std::strtod(s.c_str(), &end);
      if (end != nullptr && *end == '\0') return s;
    }
    return JsonString(s);
  }

  static std::string ToCell(const std::string& s) { return s; }
  static std::string ToCell(const char* s) { return s; }
  static std::string ToCell(double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
  }
  template <typename T>
  static std::string ToCell(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace braid::benchutil

#endif  // BRAID_BENCH_BENCH_UTIL_H_
