#ifndef BRAID_BENCH_BENCH_UTIL_H_
#define BRAID_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace braid::benchutil {

/// Fixed-width console table used by the experiment harnesses so every
/// bench prints the same style of rows the EXPERIMENTS.md index refers to.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  template <typename... Cells>
  void AddRow(const Cells&... cells) {
    std::vector<std::string> row;
    (row.push_back(ToCell(cells)), ...);
    rows_.push_back(std::move(row));
  }

  void Print() const {
    std::cout << "\n== " << title_ << "\n";
    std::vector<size_t> widths(columns_.size());
    for (size_t i = 0; i < columns_.size(); ++i) {
      widths[i] = columns_[i].size();
    }
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    auto print_row = [&widths](const std::vector<std::string>& cells) {
      std::cout << "  ";
      for (size_t i = 0; i < cells.size(); ++i) {
        std::cout << std::left << std::setw(static_cast<int>(widths[i]) + 2)
                  << cells[i];
      }
      std::cout << "\n";
    };
    print_row(columns_);
    std::vector<std::string> rule;
    for (size_t w : widths) rule.push_back(std::string(w, '-'));
    print_row(rule);
    for (const auto& row : rows_) print_row(row);
    std::cout.flush();
  }

 private:
  static std::string ToCell(const std::string& s) { return s; }
  static std::string ToCell(const char* s) { return s; }
  static std::string ToCell(double v) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2) << v;
    return os.str();
  }
  template <typename T>
  static std::string ToCell(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace braid::benchutil

#endif  // BRAID_BENCH_BENCH_UTIL_H_
