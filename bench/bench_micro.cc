// M1-M4 — google-benchmark micro-benchmarks for the substrate operations
// the architecture leans on: unification, the subsumption test, hash
// joins, canonical-key computation, and path-tracker advances. Also the
// morsel-parallel operator variants (exec::) at several worker counts,
// with threads=0 rows running the serial rel:: baseline.
//
// Results are written to BENCH_micro.json by default; pass `--json <path>`
// (or any --benchmark_out=... flag) to override.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "advice/path_tracker.h"
#include "caql/caql_query.h"
#include "cms/query_processor.h"
#include "cms/subsumption.h"
#include "common/rng.h"
#include "exec/parallel_ops.h"
#include "exec/thread_pool.h"
#include "logic/parser.h"
#include "logic/unify.h"
#include "relational/operators.h"

namespace braid {
namespace {

void BM_UnifyAtoms(benchmark::State& state) {
  logic::Atom a = logic::ParseQueryAtom("p(X, Y, Z, W)").value();
  logic::Atom b = logic::ParseQueryAtom("p(1, B, C, 4)").value();
  for (auto _ : state) {
    auto mgu = logic::UnifyAtoms(a, b);
    benchmark::DoNotOptimize(mgu);
  }
}
BENCHMARK(BM_UnifyAtoms);

void BM_MatchOneWay(benchmark::State& state) {
  logic::Atom general = logic::ParseQueryAtom("b(X, Y, Z)").value();
  logic::Atom specific = logic::ParseQueryAtom("b(1, Q, 3)").value();
  for (auto _ : state) {
    auto m = logic::MatchOneWay(general, specific);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_MatchOneWay);

void BM_Subsumption(benchmark::State& state) {
  caql::CaqlQuery def =
      caql::ParseCaql("e(X, Y, Z) :- b1(X, Y) & b2(Y, Z)").value();
  caql::CaqlQuery query =
      caql::ParseCaql("q(A, C) :- b1(A, 7) & b2(7, C)").value();
  for (auto _ : state) {
    auto m = cms::ComputeSubsumption(def, query);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_Subsumption);

void BM_CanonicalKey(benchmark::State& state) {
  caql::CaqlQuery q =
      caql::ParseCaql("d(X, Y, Z) :- b1(X, W) & b2(W, Y) & b3(Y, Z) & Z > 3")
          .value();
  for (auto _ : state) {
    std::string key = q.CanonicalKey();
    benchmark::DoNotOptimize(key);
  }
}
BENCHMARK(BM_CanonicalKey);

void BM_HashJoin(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(42);
  rel::Relation left("l", rel::Schema::FromNames({"k", "v"}));
  rel::Relation right("r", rel::Schema::FromNames({"k", "w"}));
  for (int64_t i = 0; i < rows; ++i) {
    left.AppendUnchecked({rel::Value::Int(rng.Uniform(0, rows / 4 + 1)),
                          rel::Value::Int(i)});
    right.AppendUnchecked({rel::Value::Int(rng.Uniform(0, rows / 4 + 1)),
                           rel::Value::Int(i)});
  }
  for (auto _ : state) {
    rel::Relation out = rel::HashJoin(left, right, {rel::JoinKey{0, 0}});
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_HashJoin)->Arg(256)->Arg(1024)->Arg(4096);

void BM_AntiJoin(benchmark::State& state) {
  const int64_t rows = state.range(0);
  Rng rng(7);
  rel::Relation input("in", rel::Schema::FromNames({"X", "Y"}));
  rel::Relation anti("anti", rel::Schema::FromNames({"X"}));
  for (int64_t i = 0; i < rows; ++i) {
    input.AppendUnchecked({rel::Value::Int(rng.Uniform(0, rows / 2 + 1)),
                           rel::Value::Int(i)});
    if (i % 3 == 0) {
      anti.AppendUnchecked({rel::Value::Int(rng.Uniform(0, rows / 2 + 1))});
    }
  }
  for (auto _ : state) {
    cms::LocalWork work;
    rel::Relation out = cms::QueryProcessor::AntiJoin(input, anti, &work);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_AntiJoin)->Arg(256)->Arg(2048);

void BM_TransitiveClosure(benchmark::State& state) {
  const int64_t nodes = state.range(0);
  Rng rng(9);
  rel::Relation edges("e", rel::Schema::FromNames({"s", "d"}));
  for (int64_t i = 0; i < nodes * 3; ++i) {
    int64_t a = rng.Uniform(0, nodes - 1);
    int64_t b = rng.Uniform(0, nodes - 1);
    if (a > b) std::swap(a, b);
    if (a == b) continue;
    edges.AppendUnchecked({rel::Value::Int(a), rel::Value::Int(b)});
  }
  for (auto _ : state) {
    cms::LocalWork work;
    rel::Relation tc =
        cms::QueryProcessor::TransitiveClosure(edges, 0, 1, &work);
    benchmark::DoNotOptimize(tc);
  }
}
BENCHMARK(BM_TransitiveClosure)->Arg(64)->Arg(256);

// Builds the same join inputs as BM_HashJoin for the parallel variants.
void MakeJoinInputs(int64_t rows, rel::Relation* left, rel::Relation* right) {
  Rng rng(42);
  *left = rel::Relation("l", rel::Schema::FromNames({"k", "v"}));
  *right = rel::Relation("r", rel::Schema::FromNames({"k", "w"}));
  for (int64_t i = 0; i < rows; ++i) {
    left->AppendUnchecked({rel::Value::Int(rng.Uniform(0, rows / 4 + 1)),
                           rel::Value::Int(i)});
    right->AppendUnchecked({rel::Value::Int(rng.Uniform(0, rows / 4 + 1)),
                            rel::Value::Int(i)});
  }
}

// threads == 0 runs the serial rel:: operator as the baseline; otherwise a
// pool with `threads` workers and a zero threshold forces the parallel
// path regardless of input size.
void BM_ParallelHashJoin(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const int64_t threads = state.range(1);
  rel::Relation left("l", {}), right("r", {});
  MakeJoinInputs(rows, &left, &right);
  std::unique_ptr<exec::ThreadPool> pool;
  exec::ExecContext ctx;
  if (threads > 0) {
    pool = std::make_unique<exec::ThreadPool>(static_cast<size_t>(threads));
    ctx.pool = pool.get();
    ctx.parallel_threshold = 0;
  }
  for (auto _ : state) {
    rel::Relation out =
        threads > 0
            ? exec::HashJoin(ctx, left, right, {rel::JoinKey{0, 0}})
            : rel::HashJoin(left, right, {rel::JoinKey{0, 0}});
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ParallelHashJoin)
    ->ArgsProduct({{4096, 65536}, {0, 1, 2, 4, 8}});

void BM_ParallelAggregate(benchmark::State& state) {
  const int64_t rows = state.range(0);
  const int64_t threads = state.range(1);
  Rng rng(13);
  rel::Relation input("in", rel::Schema::FromNames({"g", "v"}));
  for (int64_t i = 0; i < rows; ++i) {
    input.AppendUnchecked({rel::Value::Int(rng.Uniform(0, 255)),
                           rel::Value::Int(rng.Uniform(0, 1000))});
  }
  const std::vector<size_t> group_by = {0};
  const std::vector<rel::AggSpec> aggs = {
      {rel::AggFn::kSum, 1, "sum_v"}, {rel::AggFn::kCount, 0, "n"}};
  std::unique_ptr<exec::ThreadPool> pool;
  exec::ExecContext ctx;
  if (threads > 0) {
    pool = std::make_unique<exec::ThreadPool>(static_cast<size_t>(threads));
    ctx.pool = pool.get();
    ctx.parallel_threshold = 0;
  }
  for (auto _ : state) {
    rel::Relation out = threads > 0
                            ? exec::Aggregate(ctx, input, group_by, aggs)
                            : rel::Aggregate(input, group_by, aggs);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ParallelAggregate)
    ->ArgsProduct({{4096, 65536}, {0, 1, 2, 4, 8}});

void BM_PathTrackerAdvance(benchmark::State& state) {
  using advice::PathExpr;
  using advice::RepBound;
  auto d1 = PathExpr::Pattern("d1", {});
  auto d2 = PathExpr::Pattern("d2", {});
  auto d3 = PathExpr::Pattern("d3", {});
  auto inner = PathExpr::Sequence({d2, d3}, RepBound::Fixed(0),
                                  RepBound::Cardinality("Y"));
  auto whole =
      PathExpr::Sequence({d1, inner}, RepBound::Fixed(1), RepBound::Fixed(1));
  for (auto _ : state) {
    advice::PathTracker tracker(whole);
    tracker.Advance("d1");
    for (int i = 0; i < 8; ++i) {
      tracker.Advance("d2");
      tracker.Advance("d3");
    }
    benchmark::DoNotOptimize(tracker.mispredictions());
  }
}
BENCHMARK(BM_PathTrackerAdvance);

}  // namespace
}  // namespace braid

// BENCHMARK_MAIN, plus JSON output to BENCH_micro.json by default.
// `--json <path>` is translated to google-benchmark's --benchmark_out;
// an explicit --benchmark_out flag wins; `--json ""` disables the file.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string json_path = "BENCH_micro.json";
  bool explicit_out = false;
  for (int i = 0; i < argc; ++i) {
    if (i + 1 < argc && std::strcmp(argv[i], "--json") == 0) {
      json_path = argv[++i];
      continue;
    }
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
      explicit_out = true;
    }
    args.emplace_back(argv[i]);
  }
  if (!explicit_out && !json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& a : args) argv2.push_back(a.data());
  int argc2 = static_cast<int>(argv2.size());
  ::benchmark::Initialize(&argc2, argv2.data());
  if (::benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
