// bench_intermediates — intermediate-result caching on the genealogy /
// transitive-closure workload (DESIGN.md §12): median response time with
// the cost-based admission gate on vs. off.
//
// Two phases, each run with `enable_intermediates` on and off:
//
//  * shared: after warming the `parent` and `person` base relations, a
//    seed query evaluates an expensive ancestor-chain core — parent(X,P)
//    & parent(P,G) & person(G,A,C) & A >= 97 — projecting its head down
//    to X alone. N distinct follow-up queries need the same core *plus*
//    the interface variable G (kept in their heads) and a private
//    selection person(X, k, CX): the seed's cached result lacks G and
//    each follower's result carries a constant the next one lacks, so no
//    final result ever subsumes the core. With intermediates on, the
//    seed's assembly join stage keeps every binding variable (G
//    included), is admitted as a derived element, and every follower
//    reuses it through ordinary subsumption instead of re-joining ~1800
//    base tuples down to ~20; off, each follower recomputes the chain
//    from the warm base relations.
//
//  * noshare: N queries with pairwise-distinct constants and no common
//    subplan. Stages are offered and admitted but never reused — the
//    phase bounds the cost of a gate that only ever guesses wrong
//    (acceptance: <= 5% median regression).
//
// The speedup_p50 column is off-p50 / on-p50 for the phase; the ISSUE 9
// acceptance numbers are speedup_p50 >= 1.5 on `shared` and >= 0.95 on
// `noshare`. `--json <path>` (default BENCH_intermediates.json) dumps the
// table.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "workload/generators.h"

namespace braid {
namespace {

constexpr size_t kQueries = 12;  // per phase

caql::CaqlQuery Parse(const std::string& text) {
  auto q = caql::ParseCaql(text);
  if (!q.ok()) {
    std::fprintf(stderr, "bench_intermediates parse failed: %s\n",
                 q.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(q.value());
}

struct PhaseResult {
  std::vector<double> response_ms;
  double wall_ms = 0;
  size_t remote_queries = 0;
  size_t admitted = 0;
  uint64_t hits = 0;
};

PhaseResult RunPhase(bool intermediates, bool shared) {
  workload::GenealogyParams params;
  params.people = 600;
  dbms::RemoteDbms remote(workload::MakeGenealogyDatabase(params),
                          dbms::NetworkModel{}, dbms::DbmsCostModel{});

  cms::CmsConfig config;
  config.enable_intermediates = intermediates;
  config.enable_advice = false;  // isolate the gate's no-prediction default
  config.enable_prefetch = false;
  config.enable_generalization = false;
  config.enable_parallel = false;  // deterministic modeled times
  cms::Cms cms(&remote, config);

  auto ask = [&cms](const caql::CaqlQuery& q) -> double {
    auto a = cms.Query(q);
    if (!a.ok()) {
      std::fprintf(stderr, "bench_intermediates query failed: %s\n",
                   a.status().ToString().c_str());
      std::exit(1);
    }
    return a->response_ms;
  };

  // Warm the base relations (one remote fetch each, both modes): the
  // measured queries then exercise local recomputation vs. stage reuse.
  ask(Parse("warm_parent(C, P) :- parent(C, P)"));
  ask(Parse("warm_person(I, A, C) :- person(I, A, C)"));
  if (shared) {
    // Seed: evaluates the shared core once (both modes pay it). Its head
    // keeps only X, so its cached *result* cannot serve the followers —
    // but with intermediates on, its join stages keep G and can.
    ask(Parse("seed(X) :- parent(X, P) & parent(P, G)"
              " & person(G, A, C) & A >= 97"));
  }
  const size_t warm_remote = remote.stats().queries;

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const uint64_t hits_before = reg.counter("intermediate.hits").value();
  const size_t admitted_before =
      cms.cache().stats().intermediates_admitted.load();

  PhaseResult out;
  const auto wall_start = std::chrono::steady_clock::now();
  for (size_t k = 0; k < kQueries; ++k) {
    caql::CaqlQuery q =
        shared
            // Distinct per-query age constant k on X; the 3-atom core +
            // comparison is identical across all of them.
            ? Parse(StrCat("t", k, "(X, G) :- parent(X, P) & parent(P, G)",
                           " & person(G, A, C) & A >= 97",
                           " & person(X, ", k, ", CX)"))
            // Distinct constants, no shared subplan.
            : Parse(StrCat("u", k, "(P, A) :- parent(", 100 + k,
                           ", P) & person(P, A, C)"));
    out.response_ms.push_back(ask(q));
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  out.remote_queries = remote.stats().queries - warm_remote;
  out.admitted =
      cms.cache().stats().intermediates_admitted.load() - admitted_before;
  out.hits = reg.counter("intermediate.hits").value() - hits_before;
  return out;
}

}  // namespace
}  // namespace braid

int main(int argc, char** argv) {
  using braid::benchutil::P50;
  using braid::benchutil::P95;
  using braid::benchutil::P99;
  braid::benchutil::Table table(
      "Intermediate-result caching: shared ancestor-chain core vs. "
      "no-sharing control (modeled ms per query)",
      {"phase", "mode", "queries", "p50_ms", "p95_ms", "p99_ms", "wall_ms",
       "remote_queries", "admitted", "hits", "speedup_p50"});
  for (const bool shared : {true, false}) {
    const braid::PhaseResult off = braid::RunPhase(false, shared);
    const braid::PhaseResult on = braid::RunPhase(true, shared);
    const char* phase = shared ? "shared" : "noshare";
    const double speedup =
        P50(on.response_ms) > 0 ? P50(off.response_ms) / P50(on.response_ms)
                                : 0;
    table.AddRow(phase, "off", off.response_ms.size(), P50(off.response_ms),
                 P95(off.response_ms), P99(off.response_ms), off.wall_ms,
                 off.remote_queries, off.admitted, off.hits, 1.0);
    table.AddRow(phase, "on", on.response_ms.size(), P50(on.response_ms),
                 P95(on.response_ms), P99(on.response_ms), on.wall_ms,
                 on.remote_queries, on.admitted, on.hits, speedup);
  }
  table.Print();
  table.WriteJson(braid::benchutil::JsonPathFromArgs(
      argc, argv, "BENCH_intermediates.json"));
  return 0;
}
