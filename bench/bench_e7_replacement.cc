// E7 — Advice-aware replacement beats plain LRU under cache pressure
// (paper §4.2.2's tracking discussion: "If the CMS needs to replace some
// cache element it is clear that d1 is not the best candidate"; §5.4: LRU
// "which may be modified due to advice").
//
// Workload: a looping session over three views; the path expression says
// d1 recurs every round. The cache budget holds only two view extensions,
// so every round something must be evicted. Plain LRU evicts d1 right
// before it is needed again; advice protects it.
//
// Expectation: remote re-fetches per round drop when advice informs
// replacement.

#include "advice/advice.h"
#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "common/strings.h"
#include "workload/generators.h"

namespace braid {
namespace {

advice::AdviceSet SessionAdvice() {
  using advice::AnnotatedVar;
  using advice::Binding;
  advice::AdviceSet advice;
  const char* preds[] = {"supplier", "part", "supplies"};
  const char* ids[] = {"d1", "d2", "d3"};
  std::vector<advice::PathExprPtr> elems;
  for (int i = 0; i < 3; ++i) {
    advice::ViewSpec v;
    v.id = ids[i];
    const size_t arity = std::string(preds[i]) == "part" ? 3
                         : std::string(preds[i]) == "supplies" ? 3
                                                               : 2;
    std::vector<logic::Term> args;
    for (size_t a = 0; a < arity; ++a) {
      const std::string name = StrCat("V", a);
      v.head.push_back(AnnotatedVar{name, Binding::kProducer});
      args.push_back(logic::Term::Var(name));
    }
    v.body = {logic::Atom(preds[i], args)};
    advice.view_specs.push_back(v);
    elems.push_back(advice::PathExpr::Pattern(ids[i], v.head));
  }
  // (d1, d2, d3) repeated — d1 always comes back around.
  advice.path_expression =
      advice::PathExpr::Sequence(std::move(elems), advice::RepBound::Fixed(1),
                                 advice::RepBound::Cardinality("rounds"));
  return advice;
}

struct RunResult {
  size_t remote_queries;
  size_t evictions;
  double response_ms;
};

RunResult Run(bool enable_advice, size_t rounds, size_t budget) {
  workload::SupplierParams params;
  params.suppliers = 150;
  params.parts = 150;
  params.supplies = 300;
  dbms::RemoteDbms remote(workload::MakeSupplierDatabase(params));
  cms::CmsConfig config;
  config.cache_budget_bytes = budget;
  config.enable_advice = enable_advice;
  config.enable_prefetch = false;
  config.enable_generalization = false;
  config.replacement_horizon = 4;
  cms::Cms cms(&remote, config);
  cms.BeginSession(SessionAdvice());

  const char* queries[] = {
      "d1(V0, V1) :- supplier(V0, V1)",
      "d2(V0, V1, V2) :- part(V0, V1, V2)",
      "d3(V0, V1, V2) :- supplies(V0, V1, V2)",
  };
  for (size_t round = 0; round < rounds; ++round) {
    for (const char* text : queries) {
      auto q = caql::ParseCaql(text);
      auto a = cms.Query(q.value());
      if (!a.ok()) {
        std::fprintf(stderr, "E7 query failed: %s\n",
                     a.status().ToString().c_str());
        std::exit(1);
      }
    }
  }
  cms.DrainPrefetches();  // settle background work before reading
  return RunResult{remote.stats().queries, cms.cache().stats().evictions,
                   cms.metrics().response_ms};
}

}  // namespace
}  // namespace braid

int main() {
  braid::benchutil::Table table(
      "E7: advised replacement vs plain LRU — looping 3-view session, "
      "cache holds ~2 views, 8 rounds",
      {"budget_bytes", "advice", "remote_queries", "evictions",
       "response_ms"});
  for (size_t budget : {16000, 24000, 64000}) {
    for (bool advice : {false, true}) {
      auto r = braid::Run(advice, 8, budget);
      table.AddRow(budget, advice ? "on" : "off", r.remote_queries,
                   r.evictions, r.response_ms);
    }
  }
  table.Print();
  return 0;
}
