// E6 — Consumer-annotation-driven attribute indexing (paper §4.2.1: "the
// consumer annotation ('?') constitutes advice to the CMS that the given
// attribute ... is a prime candidate for indexing"; §5.3.3's plan builds
// an index on the consumer attribute before repeated probes).
//
// Workload: a generalized edge view is cached once; then N probe queries
// edge(c_i, Y) select by the consumer attribute. With indexing each probe
// is a hash lookup; without, each probe scans the cached extension.
//
// Expectation: local work (tuples examined) scales as N × |relation|
// without an index and roughly as N × matches with one; the gap widens
// with relation size.

#include "advice/advice.h"
#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "common/strings.h"
#include "workload/generators.h"

namespace braid {
namespace {

advice::AdviceSet SessionAdvice() {
  using advice::AnnotatedVar;
  using advice::Binding;
  advice::AdviceSet advice;
  advice::ViewSpec probe;
  probe.id = "probe";
  probe.head = {AnnotatedVar{"X", Binding::kConsumer},
                AnnotatedVar{"Y", Binding::kProducer}};
  probe.body = {logic::Atom("edge", {logic::Term::Var("X"),
                                     logic::Term::Var("Y")})};
  advice.view_specs = {probe};
  advice.path_expression = advice::PathExpr::Sequence(
      {advice::PathExpr::Pattern("probe", probe.head)},
      advice::RepBound::Fixed(0), advice::RepBound::Cardinality("X"));
  return advice;
}

struct RunResult {
  double local_ms;
  size_t remote_queries;
};

RunResult Run(bool enable_indexing, size_t nodes, size_t probes) {
  workload::GraphParams params;
  params.nodes = nodes;
  params.edges = nodes * 4;
  dbms::RemoteDbms remote(workload::MakeGraphDatabase(params));
  cms::CmsConfig config;
  config.enable_indexing = enable_indexing;
  config.enable_prefetch = false;
  cms::Cms cms(&remote, config);
  cms.BeginSession(SessionAdvice());

  for (size_t i = 0; i < probes; ++i) {
    auto q = caql::ParseCaql(StrCat("probe(", i % nodes, ", Y) :- edge(",
                                    i % nodes, ", Y)"));
    auto a = cms.Query(q.value());
    if (!a.ok()) {
      std::fprintf(stderr, "E6 query failed: %s\n",
                   a.status().ToString().c_str());
      std::exit(1);
    }
  }
  cms.DrainPrefetches();  // settle background work before reading
  return RunResult{cms.metrics().local_ms, remote.stats().queries};
}

}  // namespace
}  // namespace braid

int main() {
  braid::benchutil::Table table(
      "E6: advised attribute indexing — 64 probes on the consumer "
      "attribute of a cached edge view, sweep relation size",
      {"nodes", "edges", "indexing", "local_ms", "remote_queries"});
  for (size_t nodes : {100, 400, 1600}) {
    for (bool indexing : {false, true}) {
      auto r = braid::Run(indexing, nodes, 64);
      table.AddRow(nodes, nodes * 4, indexing ? "on" : "off", r.local_ms,
                   r.remote_queries);
    }
  }
  table.Print();
  return 0;
}
