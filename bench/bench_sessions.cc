// bench_sessions — multi-session scaling of the concurrent CMS: aggregate
// QPS and per-query latency (p50/p95) against one shared warm cache, for
// 1/2/4/8 concurrent IE sessions.
//
// Each session interleaves two kinds of queries per iteration:
//  * a warm query answered exactly from a shared cached element — the
//    striped cache's snapshot-read path under concurrent lookups;
//  * a cold query with a session-and-iteration-unique constant, forcing a
//    remote fetch. The simulated link sleeps for real (wall_clock_scale),
//    so with N sessions the link latencies overlap on the pool and
//    aggregate QPS scales with N even on one core — the same
//    latency-hiding argument as prefetching (paper §4.2.2), applied
//    across sessions instead of within one.
//
// Sessions go through the session scheduler (QueryAsync) with one
// outstanding query each — the closed-loop replay core shared with
// tools/braid_loadgen (src/testing/load_harness.h); installs and
// evictions race for real. The speedup column at 8 sessions is the
// ROADMAP-1 acceptance number (>= 3x over 1 session).
//
// `--json <path>` (default BENCH_sessions.json) dumps the table; the obs
// registry (cache.lock_wait_ms, cache.stripe_contention, sessions.*) is
// printed afterwards so lock behavior ships with the bench output.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "testing/load_harness.h"
#include "workload/generators.h"

namespace braid {
namespace {

constexpr size_t kIterations = 30;  // per session; 2 queries per iteration

caql::CaqlQuery Parse(const std::string& text) {
  auto q = caql::ParseCaql(text);
  if (!q.ok()) {
    std::fprintf(stderr, "bench_sessions parse failed: %s\n",
                 q.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(q.value());
}

struct RunResult {
  double wall_ms = 0;
  double qps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  size_t queries = 0;
  size_t exact_hits = 0;
  size_t remote_queries = 0;
};

RunResult Run(size_t num_sessions) {
  workload::GenealogyParams params;
  params.people = 600;
  dbms::NetworkModel net;
  net.msg_latency_ms = 10;
  net.wall_clock_scale = 0.25;  // every remote fetch sleeps ~3ms for real
  dbms::RemoteDbms remote(workload::MakeGenealogyDatabase(params), net,
                          dbms::DbmsCostModel{});

  cms::CmsConfig config;
  config.enable_advice = false;  // isolate the session-scaling effect
  config.enable_prefetch = false;
  config.enable_generalization = false;
  config.num_threads = 8;  // constant across rows; workers sleep on the link
  cms::Cms cms(&remote, config);

  // Warm the shared cache: the full parent relation, which every
  // session's warm query then answers exactly.
  const caql::CaqlQuery warm = Parse("warm(X, Y) :- parent(X, Y)");
  if (auto a = cms.Query(warm); !a.ok()) {
    std::fprintf(stderr, "bench_sessions warm-up failed: %s\n",
                 a.status().ToString().c_str());
    std::exit(1);
  }
  const size_t warm_remote = remote.stats().queries;

  // Each session replays {warm, cold} pairs: the cold query of each
  // (session, iteration) binds a distinct constant over `person` — a
  // relation the warm `parent` element cannot subsume — so every one pays
  // one real (scaled) link sleep.
  std::vector<testing::ReplaySession> sessions(num_sessions);
  for (size_t s = 0; s < num_sessions; ++s) {
    sessions[s].session = cms.OpenSession();
    sessions[s].queries.reserve(2 * kIterations);
    for (size_t i = 0; i < kIterations; ++i) {
      const size_t id = s * kIterations + i;
      sessions[s].queries.push_back(warm);
      sessions[s].queries.push_back(Parse(StrCat(
          "cold", s, "_", i, "(A, C) :- person(", id, ", A, C)")));
    }
  }

  const testing::ReplayStats stats = testing::ReplayClosedLoop(cms, sessions);
  if (stats.failed > 0 || stats.rejected > 0) {
    std::fprintf(stderr, "bench_sessions: %zu failed, %zu rejected queries\n",
                 stats.failed, stats.rejected);
    std::exit(1);
  }

  RunResult result;
  result.wall_ms = stats.wall_ms;
  result.queries = stats.completed;
  for (const testing::ReplaySession& s : sessions) {
    result.exact_hits += s.session->metrics().exact_hits;
  }
  result.qps = static_cast<double>(result.queries) / (stats.wall_ms / 1000.0);
  result.p50_ms = benchutil::P50(stats.latencies_ms);
  result.p95_ms = benchutil::P95(stats.latencies_ms);
  result.remote_queries = remote.stats().queries - warm_remote;

  cms.DrainSessions();
  for (testing::ReplaySession& s : sessions) cms.CloseSession(s.session);
  return result;
}

}  // namespace
}  // namespace braid

int main(int argc, char** argv) {
  braid::benchutil::Table table(
      "Sessions: N concurrent IE sessions over one shared CMS — 30 "
      "iterations each of {warm exact hit, cold remote fetch}, 10ms link "
      "at 0.25 wall-clock scale, 8 pool workers",
      {"sessions", "queries", "wall_ms", "qps", "speedup", "p50_ms",
       "p95_ms", "exact_hits", "remote_queries"});
  double base_qps = 0;
  double speedup_at_8 = 0;
  for (size_t n : {1, 2, 4, 8}) {
    auto r = braid::Run(n);
    if (n == 1) base_qps = r.qps;
    const double speedup = base_qps > 0 ? r.qps / base_qps : 0;
    if (n == 8) speedup_at_8 = speedup;
    table.AddRow(n, r.queries, r.wall_ms, r.qps, speedup, r.p50_ms,
                 r.p95_ms, r.exact_hits, r.remote_queries);
  }
  table.Print();
  table.WriteJson(braid::benchutil::JsonPathFromArgs(argc, argv,
                                                     "BENCH_sessions.json"));
  std::printf("\n-- obs registry after final run --\n%s\n",
              braid::obs::MetricsRegistry::Global().ToJson().c_str());
  if (speedup_at_8 < 3.0) {
    std::fprintf(stderr,
                 "WARN: 8-session speedup %.2fx below the 3x target\n",
                 speedup_at_8);
  }
  return 0;
}
