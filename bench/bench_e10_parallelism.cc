// E10 — Parallel execution of subqueries on the CMS and the remote DBMS
// (paper §5: "Subqueries to the remote DBMS can be executed in parallel
// with the subqueries to the Cache Manager"; §5.3 lists it among the
// planner's efficiency techniques).
//
// Workload: a partial plan whose cache-side preparation (a selection over
// a large cached relation) overlaps a remote subquery. Sweep link
// latency; toggle enable_parallel.
//
// Expectation: response_ms with parallelism ≈ max(local, remote) +
// assembly, versus their sum without; the saving approaches the smaller
// branch's full cost.

#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "workload/generators.h"

namespace braid {
namespace {

struct RunResult {
  double response_ms;
  double local_ms;
};

RunResult Run(bool parallel, double latency_ms) {
  workload::GenealogyParams params;
  params.people = 5000;  // sizable local work
  dbms::NetworkModel net;
  net.msg_latency_ms = latency_ms;
  dbms::RemoteDbms remote(workload::MakeGenealogyDatabase(params), net,
                          dbms::DbmsCostModel{});
  cms::CmsConfig config;
  config.enable_parallel = parallel;
  config.local_per_tuple_ms = 0.02;  // workstation slower than server LAN
  cms::Cms cms(&remote, config);

  auto ask = [&cms](const std::string& text) {
    auto q = caql::ParseCaql(text);
    auto a = cms.Query(q.value());
    if (!a.ok()) {
      std::fprintf(stderr, "E10 query failed: %s\n",
                   a.status().ToString().c_str());
      std::exit(1);
    }
  };

  ask("all(X, Y) :- parent(X, Y)");  // cache the parent relation
  remote.ResetStats();
  cms.ResetMetrics();

  // The plan: parent part from the cache (local prep), person part remote.
  ask("j(X, C) :- parent(X, Y) & person(Y, A, C)");
  return RunResult{cms.metrics().response_ms, cms.metrics().local_ms};
}

}  // namespace
}  // namespace braid

int main() {
  braid::benchutil::Table table(
      "E10: parallel CMS/remote execution — partial plan, sweep link "
      "latency",
      {"latency_ms", "parallel", "response_ms", "local_ms"});
  for (double latency : {1.0, 10.0, 50.0}) {
    for (bool parallel : {false, true}) {
      auto r = braid::Run(parallel, latency);
      table.AddRow(latency, parallel ? "on" : "off", r.response_ms,
                   r.local_ms);
    }
  }
  table.Print();
  return 0;
}
