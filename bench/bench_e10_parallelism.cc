// E10 — Parallel execution of subqueries on the CMS and the remote DBMS
// (paper §5: "Subqueries to the remote DBMS can be executed in parallel
// with the subqueries to the Cache Manager"; §5.3 lists it among the
// planner's efficiency techniques).
//
// Two parts:
//
//  A. Modeled overlap (as before): a partial plan whose cache-side
//     preparation (a selection over a large cached relation) overlaps a
//     remote subquery. Sweep link latency; toggle enable_parallel. The
//     reported response_ms comes from the analytic cost model:
//     max(remote, prep) + assembly when parallel, the sum otherwise.
//
//  B. Measured overlap: the same monitor driven with a hand-built plan
//     holding TWO remote sources, with `NetworkModel::wall_clock_scale`
//     set so each simulated fetch physically sleeps its modeled cost.
//     With a thread pool the fetches are launched concurrently, so
//     measured wall time is ~the slower fetch; without one it is their
//     sum. This cross-checks that the modeled overlap corresponds to
//     genuine concurrency, not just arithmetic.
//
// Pass `--json <path>` to override the default BENCH_e10.json output.

#include <chrono>

#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "cms/execution_monitor.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"
#include "workload/generators.h"

namespace braid {
namespace {

double WallMsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// ---------------------------------------------------------------------------
// Part A: modeled overlap through the full CMS facade.

struct RunResult {
  double response_ms;
  double local_ms;
  double measured_ms;
};

RunResult Run(bool parallel, double latency_ms) {
  workload::GenealogyParams params;
  params.people = 5000;  // sizable local work
  dbms::NetworkModel net;
  net.msg_latency_ms = latency_ms;
  net.wall_clock_scale = 1.0;  // simulated fetch cost becomes real sleep
  dbms::RemoteDbms remote(workload::MakeGenealogyDatabase(params), net,
                          dbms::DbmsCostModel{});
  cms::CmsConfig config;
  config.enable_parallel = parallel;
  config.local_per_tuple_ms = 0.02;  // workstation slower than server LAN
  cms::Cms cms(&remote, config);

  auto ask = [&cms](const std::string& text) {
    auto q = caql::ParseCaql(text);
    auto a = cms.Query(q.value());
    if (!a.ok()) {
      std::fprintf(stderr, "E10 query failed: %s\n",
                   a.status().ToString().c_str());
      std::exit(1);
    }
  };

  ask("all(X, Y) :- parent(X, Y)");  // cache the parent relation
  remote.ResetStats();
  cms.ResetMetrics();

  // The plan: parent part from the cache (local prep), person part remote.
  auto start = std::chrono::steady_clock::now();
  ask("j(X, C) :- parent(X, Y) & person(Y, A, C)");
  double measured = WallMsSince(start);
  cms.DrainPrefetches();  // settle background work before reading
  return RunResult{cms.metrics().response_ms, cms.metrics().local_ms,
                   measured};
}

// ---------------------------------------------------------------------------
// Part B: measured overlap of two concurrent remote fetches.

dbms::Database TwoTableDb() {
  dbms::Database db;
  rel::Relation b1("b1", rel::Schema::FromNames({"a", "b"}));
  rel::Relation b2("b2", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 512; ++i) {
    b1.AppendUnchecked({rel::Value::Int(i % 64), rel::Value::Int(i)});
    b2.AppendUnchecked({rel::Value::Int(i), rel::Value::Int(i + 1000)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(b1)));
  BRAID_CHECK_OK(db.AddTable(std::move(b2)));
  return db;
}

/// A plan joining two independent remote subqueries — the shape the
/// monitor overlaps when a pool is available.
cms::Plan TwoRemotePlan() {
  cms::Plan plan;
  plan.query = caql::ParseCaql("q(X, Z) :- b1(X, Y) & b2(Y, Z)").value();
  cms::PlanSource s1;
  s1.kind = cms::PlanSource::Kind::kRemote;
  s1.remote_query = caql::ParseCaql("s1(X, Y) :- b1(X, Y)").value();
  s1.remote_vars = {"X", "Y"};
  cms::PlanSource s2;
  s2.kind = cms::PlanSource::Kind::kRemote;
  s2.remote_query = caql::ParseCaql("s2(Y, Z) :- b2(Y, Z)").value();
  s2.remote_vars = {"Y", "Z"};
  plan.sources.push_back(std::move(s1));
  plan.sources.push_back(std::move(s2));
  return plan;
}

struct OverlapResult {
  double modeled_ms;
  double measured_ms;
  size_t tuples;
};

OverlapResult RunTwoFetch(bool parallel, double latency_ms,
                          obs::Tracer* tracer = nullptr) {
  dbms::NetworkModel net;
  net.msg_latency_ms = latency_ms;
  net.wall_clock_scale = 1.0;
  dbms::RemoteDbms remote(TwoTableDb(), net, dbms::DbmsCostModel{});
  cms::RemoteDbmsInterface rdi(&remote);
  cms::CacheManager cache(1 << 20, 4);

  exec::ThreadPool pool(2);
  exec::ExecContext ctx{&pool, /*parallel_threshold=*/4096};
  cms::ExecutionMonitor monitor(&cache, &rdi, 0.01, parallel,
                                parallel ? ctx : exec::ExecContext{});

  cms::Plan plan = TwoRemotePlan();
  obs::SpanId root = 0;
  if (tracer != nullptr) root = tracer->StartSpan("two_fetch_plan");
  auto start = std::chrono::steady_clock::now();
  auto outcome = monitor.ExecutePlan(plan, tracer, root);
  double measured = WallMsSince(start);
  if (tracer != nullptr) {
    tracer->SetModeledMs(root, outcome.ok() ? outcome->response_ms : -1);
    tracer->EndSpan(root);
  }
  if (!outcome.ok()) {
    std::fprintf(stderr, "E10 two-fetch plan failed: %s\n",
                 outcome.status().ToString().c_str());
    std::exit(1);
  }
  return OverlapResult{outcome->response_ms, measured,
                       outcome->result.NumTuples()};
}

}  // namespace
}  // namespace braid

int main(int argc, char** argv) {
  braid::benchutil::Table table(
      "E10: parallel CMS/remote execution — partial plan, sweep link "
      "latency",
      {"latency_ms", "parallel", "response_ms", "local_ms", "measured_ms"});
  for (double latency : {1.0, 10.0, 50.0}) {
    for (bool parallel : {false, true}) {
      auto r = braid::Run(parallel, latency);
      table.AddRow(latency, parallel ? "on" : "off", r.response_ms,
                   r.local_ms, r.measured_ms);
    }
  }
  table.Print();

  braid::benchutil::Table overlap(
      "E10b: two remote fetches — modeled vs measured wall time "
      "(wall_clock_scale=1)",
      {"latency_ms", "parallel", "modeled_ms", "measured_ms", "tuples"});
  for (double latency : {5.0, 20.0, 50.0}) {
    for (bool parallel : {false, true}) {
      auto r = braid::RunTwoFetch(parallel, latency);
      overlap.AddRow(latency, parallel ? "on" : "off", r.modeled_ms,
                     r.measured_ms, r.tuples);
    }
  }
  overlap.Print();

  const std::string json =
      braid::benchutil::JsonPathFromArgs(argc, argv, "BENCH_e10.json");
  table.WriteJson(json);
  if (!json.empty()) {
    auto sibling = [&json](const std::string& suffix) {
      std::string path = json;
      const auto dot = path.rfind(".json");
      if (dot != std::string::npos) {
        path.insert(dot, suffix);
      } else {
        path += suffix + ".json";
      }
      return path;
    };
    // Sibling file for the measured-overlap table.
    overlap.WriteJson(sibling("_overlap"));

    // One traced run of the two-fetch plan: the span tree (per-fetch
    // modeled cost, pool-thread fetch spans, prep/assembly) alongside
    // the aggregate tables.
    braid::obs::Tracer tracer;
    (void)braid::RunTwoFetch(/*parallel=*/true, /*latency_ms=*/20.0, &tracer);
    const std::string trace_path = sibling("_trace");
    tracer.WriteJson(trace_path);
    std::printf("\ntraced two-fetch run (parallel, latency 20ms) -> %s\n%s",
                trace_path.c_str(), tracer.PrettyTree().c_str());
  }
  return 0;
}
