// E8 — The optimum point on the interpreted-compiled range is
// workload-dependent (paper §2: "it is simply not the case that more
// fully compiled systems are always preferable. The optimum point on the
// I-C range will differ with application domains and even from problem to
// problem").
//
// Workload: the recursive AI query ancestor(c, Y)? over a genealogy of
// 400 people. Sweep: strategy (interpreted = tuple-at-a-time DFS with
// backtracking; compiled = set-at-a-time bottom-up with the CMS
// fixed-point operator) × view-specifier max-conjunction size × solutions
// wanted (all vs first).
//
// Expectation (the paper's crossover): compiled wins for all-solutions
// (few large set-oriented requests); interpreted wins when a single
// solution suffices (it stops after one binding, while compiled always
// saturates). Larger conjunction sizes reduce the interpreter's CAQL
// query count — moving along the I-C range.

#include "bench/bench_util.h"
#include "braid/braid_system.h"
#include "workload/generators.h"

namespace braid {
namespace {

struct RunResult {
  size_t caql_queries;
  size_t remote_messages;
  size_t tuples_shipped;
  double response_ms;
  size_t solutions;
};

RunResult Run(ie::StrategyKind strategy, size_t conj, size_t max_solutions,
              bool advice, const char* query = "ancestor(390, Y)?") {
  workload::GenealogyParams params;
  params.people = 400;
  BraidOptions options;
  options.ie.strategy = strategy;
  options.ie.max_conjunction_size = conj;
  options.ie.max_solutions = max_solutions;
  options.cms.enable_advice = advice;
  options.cms.enable_prefetch = advice;
  options.cms.enable_generalization = advice;
  logic::KnowledgeBase kb;
  BRAID_CHECK_OK(logic::ParseProgram(workload::GenealogyKb(), &kb));
  BraidSystem braid(workload::MakeGenealogyDatabase(params), std::move(kb),
                    options);
  auto out = braid.Ask(query);
  if (!out.ok()) {
    std::fprintf(stderr, "E8 query failed: %s\n",
                 out.status().ToString().c_str());
    std::exit(1);
  }
  const size_t caql = strategy == ie::StrategyKind::kInterpreted
                          ? out->interpreter_stats.caql_queries
                          : out->compiled_stats.caql_queries;
  braid.cms().DrainPrefetches();  // settle background work before reading
  return RunResult{caql, braid.remote().stats().messages,
                   braid.remote().stats().tuples_shipped,
                   braid.cms().metrics().response_ms,
                   out->solutions.NumTuples()};
}

}  // namespace
}  // namespace braid

int main() {
  braid::benchutil::Table table(
      "E8: interpreted-compiled range — recursive ancestor(390, Y), "
      "genealogy of 400 people",
      {"strategy", "max_conj", "solutions_wanted", "caql_queries",
       "remote_messages", "tuples_shipped", "response_ms", "solutions"});
  struct Config {
    braid::ie::StrategyKind strategy;
    size_t conj;
    size_t max_solutions;
    bool advice;
    const char* strategy_name;
    const char* wanted;
  };
  const Config configs[] = {
      {braid::ie::StrategyKind::kInterpreted, 1, SIZE_MAX, true,
       "interpreted", "all"},
      {braid::ie::StrategyKind::kInterpreted, 3, SIZE_MAX, true,
       "interpreted", "all"},
      {braid::ie::StrategyKind::kCompiled, 3, SIZE_MAX, true, "compiled",
       "all"},
      {braid::ie::StrategyKind::kInterpreted, 1, 1, true, "interpreted",
       "first"},
      {braid::ie::StrategyKind::kInterpreted, 3, 1, true, "interpreted",
       "first"},
      {braid::ie::StrategyKind::kCompiled, 3, 1, true, "compiled", "first"},
  };
  for (const Config& c : configs) {
    auto r = braid::Run(c.strategy, c.conj, c.max_solutions, c.advice);
    table.AddRow(c.strategy_name, c.conj, c.wanted, r.caql_queries,
                 r.remote_messages, r.tuples_shipped, r.response_ms,
                 r.solutions);
  }
  table.Print();

  // Second axis: the view-specifier conjunction-size parameter, on the
  // 3-atom chain greatgrand(X, A) & parent(A, B) & parent(B, Y), with
  // advice off so generalization does not mask the query stream.
  braid::benchutil::Table conj_table(
      "E8b: conjunction-size parameter — greatgrand(390, Y) (3-atom "
      "chain), advice off",
      {"strategy", "max_conj", "caql_queries", "remote_messages",
       "tuples_shipped", "response_ms"});
  for (size_t conj : {1, 2, 3}) {
    auto r = braid::Run(braid::ie::StrategyKind::kInterpreted, conj,
                        SIZE_MAX, false, "greatgrand(390, Y)?");
    conj_table.AddRow("interp/no-advice", conj, r.caql_queries,
                      r.remote_messages, r.tuples_shipped, r.response_ms);
  }
  {
    auto r = braid::Run(braid::ie::StrategyKind::kCompiled, 3, SIZE_MAX,
                        false, "greatgrand(390, Y)?");
    conj_table.AddRow("compiled/no-advice", 3, r.caql_queries,
                      r.remote_messages, r.tuples_shipped, r.response_ms);
  }
  conj_table.Print();
  return 0;
}
