// E3 — Lazy evaluation wins when only part of the result is consumed
// (paper §2: "only those tuples that are required by the AI system will be
// produced rather than eagerly computing the entire result relation";
// §5.1 generators).
//
// Workload: the join view j(X, Z) :- parent(X, Y) & parent(Y, Z) over
// cached data (grandparent pairs). The consumer pulls a fraction f of the
// stream, modelling a single-solution / early-cut inference strategy.
//
// Expectation: lazy work scales with f while eager work is flat at 100%;
// lazy ≈ eager at f = 1.0 (plus bounded overhead), and the advantage is
// largest at one-tuple consumption.

#include "advice/advice.h"
#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "workload/generators.h"

namespace braid {
namespace {

advice::AdviceSet LazyAdvice() {
  advice::AdviceSet advice;
  advice::ViewSpec view;
  view.id = "j";
  view.head = {advice::AnnotatedVar{"X", advice::Binding::kProducer},
               advice::AnnotatedVar{"Z", advice::Binding::kProducer}};
  view.body = {
      logic::Atom("parent", {logic::Term::Var("X"), logic::Term::Var("Y")}),
      logic::Atom("parent", {logic::Term::Var("Y"), logic::Term::Var("Z")})};
  advice.view_specs.push_back(view);
  return advice;
}

struct RunResult {
  size_t tuples_consumed;
  size_t work_done;    // tuples examined by the generator / materializer
  bool lazy;
};

RunResult Run(bool enable_lazy, double fraction) {
  workload::GenealogyParams params;
  params.people = 800;
  dbms::RemoteDbms remote(workload::MakeGenealogyDatabase(params));
  cms::CmsConfig config;
  config.enable_lazy = enable_lazy;
  cms::Cms cms(&remote, config);
  cms.BeginSession(LazyAdvice());

  // Prime the cache so the join is fully local (lazy evaluation requires
  // all data in the cache, §5.1).
  auto prime = caql::ParseCaql("all(X, Y) :- parent(X, Y)");
  BRAID_CHECK_OK(cms.Query(prime.value()));

  auto q = caql::ParseCaql("j(X, Z) :- parent(X, Y) & parent(Y, Z)");
  auto a = cms.Query(q.value());
  if (!a.ok()) {
    std::fprintf(stderr, "E3 query failed: %s\n",
                 a.status().ToString().c_str());
    std::exit(1);
  }

  // Determine the full result size once (from an eager reference).
  static size_t full_size = 0;
  if (a->relation != nullptr) full_size = a->relation->NumTuples();

  size_t want = fraction <= 0
                    ? 1
                    : static_cast<size_t>(fraction * (full_size == 0
                                                          ? 1200
                                                          : full_size));
  if (want == 0) want = 1;
  size_t consumed = 0;
  while (consumed < want) {
    auto t = a->stream->Next();
    if (!t.has_value()) break;
    ++consumed;
  }
  cms.DrainPrefetches();  // settle background work before reading
  const size_t work = a->lazy ? a->stream->WorkDone() : full_size;
  return RunResult{consumed, work, a->lazy};
}

}  // namespace
}  // namespace braid

int main() {
  braid::benchutil::Table table(
      "E3: lazy vs eager evaluation — grandparent join over cached data, "
      "sweep fraction of result consumed",
      {"fraction", "mode", "tuples_consumed", "work_tuples"});
  // Run eager first so the full size is known.
  for (double fraction : {1.0, 0.5, 0.1, 0.001}) {
    auto eager = braid::Run(false, fraction);
    table.AddRow(fraction, "eager", eager.tuples_consumed, eager.work_done);
    auto lazy = braid::Run(true, fraction);
    table.AddRow(fraction, lazy.lazy ? "lazy" : "eager(!)",
                 lazy.tuples_consumed, lazy.work_done);
  }
  table.Print();
  return 0;
}
