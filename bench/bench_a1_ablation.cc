// A1 — Per-technique ablation. Figure 2 of the paper assigns each
// impedance-mismatch aspect to a technique; this harness runs one mixed
// expert-system session with the full system and then disables exactly one
// technique per row, so each technique's marginal contribution is visible
// in one table.
//
// Session: 60 AI queries over the genealogy workload — repeated
// grandparent/sibling instances with overlapping constants (exercises
// result caching, subsumption, generalization, prefetching, indexing) on
// a 10 ms link.

#include "bench/bench_util.h"
#include "braid/braid_system.h"
#include "common/rng.h"
#include "common/strings.h"
#include "workload/generators.h"

namespace braid {
namespace {

struct RunResult {
  size_t remote_queries;
  size_t tuples_shipped;
  double response_ms;
  double prefetch_ms;
};

RunResult RunSession(const cms::CmsConfig& config) {
  workload::GenealogyParams params;
  params.people = 500;
  dbms::NetworkModel net;
  net.msg_latency_ms = 10;
  BraidOptions options;
  options.cms = config;
  options.network = net;
  logic::KnowledgeBase kb;
  BRAID_CHECK_OK(logic::ParseProgram(workload::GenealogyKb(), &kb));
  BraidSystem braid(workload::MakeGenealogyDatabase(params), std::move(kb),
                    options);

  Rng rng(2024);
  for (int i = 0; i < 60; ++i) {
    const int64_t person = 200 + rng.Uniform(0, 11);
    std::string query;
    switch (rng.Uniform(0, 2)) {
      case 0:
        // Recursive: its path expression loops, so advice predicts
        // recurrence — the generalization/prefetch trigger.
        query = StrCat("ancestor(", person, ", Y)?");
        break;
      case 1:
        query = StrCat("grandparent(", person, ", Y)?");
        break;
      default:
        query = StrCat("sibling(", person, ", Y)?");
        break;
    }
    auto out = braid.Ask(query);
    if (!out.ok()) {
      std::fprintf(stderr, "A1 query failed: %s\n",
                   out.status().ToString().c_str());
      std::exit(1);
    }
  }
  braid.cms().DrainPrefetches();  // settle background work before reading
  return RunResult{braid.remote().stats().queries,
                   braid.remote().stats().tuples_shipped,
                   braid.cms().metrics().response_ms,
                   braid.cms().metrics().prefetch_ms};
}

}  // namespace
}  // namespace braid

int main() {
  braid::benchutil::Table table(
      "A1: ablation — full BrAID vs one technique disabled per row "
      "(60 mixed AI queries, 12 hot constants, 10ms link)",
      {"configuration", "remote_queries", "tuples_shipped", "response_ms",
       "prefetch_ms"});

  struct Variant {
    const char* name;
    void (*tweak)(braid::cms::CmsConfig*);
  };
  const Variant variants[] = {
      {"full braid", [](braid::cms::CmsConfig*) {}},
      {"- caching",
       [](braid::cms::CmsConfig* c) { c->enable_caching = false; }},
      {"- subsumption",
       [](braid::cms::CmsConfig* c) { c->enable_subsumption = false; }},
      {"- advice (all)",
       [](braid::cms::CmsConfig* c) { c->enable_advice = false; }},
      {"- prefetch",
       [](braid::cms::CmsConfig* c) { c->enable_prefetch = false; }},
      {"- generalization",
       [](braid::cms::CmsConfig* c) { c->enable_generalization = false; }},
      {"- indexing",
       [](braid::cms::CmsConfig* c) { c->enable_indexing = false; }},
      {"- lazy",
       [](braid::cms::CmsConfig* c) { c->enable_lazy = false; }},
      {"- parallel",
       [](braid::cms::CmsConfig* c) { c->enable_parallel = false; }},
  };
  for (const Variant& v : variants) {
    braid::cms::CmsConfig config;
    v.tweak(&config);
    auto r = braid::RunSession(config);
    table.AddRow(v.name, r.remote_queries, r.tuples_shipped, r.response_ms,
                 r.prefetch_ms);
  }
  table.Print();
  return 0;
}
