// E4 — Path-expression-driven prefetching hides remote latency (paper
// §4.2.2, §5.3.1: "the CMS may decide processing d3(X,c) soon after it
// processes d2(X,c) and before it actually receives d3(X,c) from the
// IE").
//
// Workload: the paper's Example-1 session shape at CAQL level — d1(Y^)
// followed by |Y| instances of d2(X^, Y?). The advice includes the path
// expression (d1, (d2)<0,|Y|>), so after answering d1 the CMS prefetches
// the generalized d2 in the background while the IE is consuming d1's
// stream.
//
// Two modes, side by side:
//  * modeled — simulated clock only: with prefetching the remote work
//    moves off the response path (response_ms drops, prefetch_ms absorbs
//    it) and |Y| small fetches collapse into one generalized fetch;
//  * measured — wall_clock_scale=1 makes every simulated fetch sleep for
//    real, and an IE think-time pause follows d1. The column reports the
//    wall-clock time spent inside Query() calls: with the async pipeline
//    the prefetch completes during think time and the d2 instances cost
//    ~nothing; without it every instance pays its fetch for real.
//
// `--json <path>` (default BENCH_e4.json) dumps the table for CI.

#include <chrono>
#include <thread>

#include "advice/advice.h"
#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "common/strings.h"
#include "workload/generators.h"

namespace braid {
namespace {

advice::AdviceSet SessionAdvice() {
  using advice::AnnotatedVar;
  using advice::Binding;
  advice::AdviceSet advice;

  advice::ViewSpec d1;
  d1.id = "d1";
  d1.head = {AnnotatedVar{"Y", Binding::kProducer}};
  d1.body = {logic::Atom("parent", {logic::Term::Int(350),
                                    logic::Term::Var("Y")})};
  advice::ViewSpec d2;
  d2.id = "d2";
  d2.head = {AnnotatedVar{"X", Binding::kProducer},
             AnnotatedVar{"Y", Binding::kConsumer}};
  d2.body = {logic::Atom("parent", {logic::Term::Var("X"),
                                    logic::Term::Var("Y")})};
  advice.view_specs = {d1, d2};
  advice.path_expression = advice::PathExpr::Sequence(
      {advice::PathExpr::Pattern("d1", d1.head),
       advice::PathExpr::Sequence({advice::PathExpr::Pattern("d2", d2.head)},
                                  advice::RepBound::Fixed(0),
                                  advice::RepBound::Cardinality("Y"))},
      advice::RepBound::Fixed(1), advice::RepBound::Fixed(1));
  return advice;
}

struct RunResult {
  double response_ms;   // simulated time the IE waited
  double prefetch_ms;   // simulated remote time hidden by prefetching
  double measured_ms;   // wall clock inside Query() calls (measured mode)
  size_t remote_queries;
  size_t prefetches;
  size_t joins;
};

/// One session: d1, then `instances` constant-bound d2 queries. With
/// `measure` the simulated link physically sleeps and an IE think-time
/// pause follows d1 — the window the background prefetch has to land in.
RunResult Run(bool enable_prefetch, size_t instances, bool measure) {
  workload::GenealogyParams params;
  params.people = 600;
  dbms::NetworkModel net;
  net.msg_latency_ms = 20;  // slow link makes hiding latency matter
  net.wall_clock_scale = measure ? 1.0 : 0.0;
  dbms::RemoteDbms remote(workload::MakeGenealogyDatabase(params), net,
                          dbms::DbmsCostModel{});
  cms::CmsConfig config;
  config.enable_prefetch = enable_prefetch;
  config.enable_generalization = false;  // isolate the prefetch effect
  cms::Cms cms(&remote, config);
  cms.BeginSession(SessionAdvice());

  double measured_ms = 0;
  auto ask = [&cms, &measured_ms](const std::string& text) {
    auto q = caql::ParseCaql(text);
    const auto start = std::chrono::steady_clock::now();
    auto a = cms.Query(q.value());
    measured_ms += std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (!a.ok()) {
      std::fprintf(stderr, "E4 query failed: %s\n",
                   a.status().ToString().c_str());
      std::exit(1);
    }
  };

  ask("d1(Y) :- parent(350, Y)");
  if (measure) {
    // The IE "processes" d1's answer; the prefetched generalized fetch
    // sleeps its ~270ms of simulated link time concurrently with this
    // pause, so the d2 instances find the data already resident.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }
  for (size_t i = 0; i < instances; ++i) {
    ask(StrCat("d2(X, ", 200 + i, ") :- parent(X, ", 200 + i, ")"));
  }
  cms.DrainPrefetches();  // settle in-flight work before reading metrics
  return RunResult{cms.metrics().response_ms,    cms.metrics().prefetch_ms,
                   measured_ms,                  remote.stats().queries,
                   cms.metrics().prefetches,     cms.metrics().prefetch_joins};
}

}  // namespace
}  // namespace braid

int main(int argc, char** argv) {
  braid::benchutil::Table table(
      "E4: path-expression prefetching — d1 then |Y| instances of d2, "
      "20ms link latency; measured rows sleep the link for real",
      {"mode", "instances", "prefetch", "response_ms", "prefetch_ms",
       "measured_ms", "remote_queries", "prefetches", "joined"});
  for (size_t n : {1, 4, 8, 16}) {
    for (bool prefetch : {false, true}) {
      auto r = braid::Run(prefetch, n, /*measure=*/false);
      table.AddRow("modeled", n, prefetch ? "on" : "off", r.response_ms,
                   r.prefetch_ms, "-", r.remote_queries, r.prefetches,
                   r.joins);
    }
  }
  for (size_t n : {4, 8}) {
    for (bool prefetch : {false, true}) {
      auto r = braid::Run(prefetch, n, /*measure=*/true);
      table.AddRow("measured", n, prefetch ? "on" : "off", r.response_ms,
                   r.prefetch_ms, r.measured_ms, r.remote_queries,
                   r.prefetches, r.joins);
    }
  }
  table.Print();
  table.WriteJson(
      braid::benchutil::JsonPathFromArgs(argc, argv, "BENCH_e4.json"));
  return 0;
}
