// E4 — Path-expression-driven prefetching hides remote latency (paper
// §4.2.2, §5.3.1: "the CMS may decide processing d3(X,c) soon after it
// processes d2(X,c) and before it actually receives d3(X,c) from the
// IE").
//
// Workload: the paper's Example-1 session shape at CAQL level — d1(Y^)
// followed by |Y| instances of d2(X^, Y?). The advice includes the path
// expression (d1, (d2)<0,|Y|>), so after answering d1 the CMS can prefetch
// the generalized d2 while the IE is consuming d1's stream.
//
// Expectation: with prefetching the remote work moves off the response
// path (response_ms drops, prefetch_ms absorbs it); total communication
// stays comparable or lower (one generalized fetch replaces |Y| small
// ones).

#include "advice/advice.h"
#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "common/strings.h"
#include "workload/generators.h"

namespace braid {
namespace {

advice::AdviceSet SessionAdvice() {
  using advice::AnnotatedVar;
  using advice::Binding;
  advice::AdviceSet advice;

  advice::ViewSpec d1;
  d1.id = "d1";
  d1.head = {AnnotatedVar{"Y", Binding::kProducer}};
  d1.body = {logic::Atom("parent", {logic::Term::Int(350),
                                    logic::Term::Var("Y")})};
  advice::ViewSpec d2;
  d2.id = "d2";
  d2.head = {AnnotatedVar{"X", Binding::kProducer},
             AnnotatedVar{"Y", Binding::kConsumer}};
  d2.body = {logic::Atom("parent", {logic::Term::Var("X"),
                                    logic::Term::Var("Y")})};
  advice.view_specs = {d1, d2};
  advice.path_expression = advice::PathExpr::Sequence(
      {advice::PathExpr::Pattern("d1", d1.head),
       advice::PathExpr::Sequence({advice::PathExpr::Pattern("d2", d2.head)},
                                  advice::RepBound::Fixed(0),
                                  advice::RepBound::Cardinality("Y"))},
      advice::RepBound::Fixed(1), advice::RepBound::Fixed(1));
  return advice;
}

struct RunResult {
  double response_ms;
  double prefetch_ms;
  size_t remote_queries;
  size_t prefetches;
};

RunResult Run(bool enable_prefetch, size_t instances) {
  workload::GenealogyParams params;
  params.people = 600;
  dbms::NetworkModel net;
  net.msg_latency_ms = 20;  // slow link makes hiding latency matter
  dbms::RemoteDbms remote(workload::MakeGenealogyDatabase(params), net,
                          dbms::DbmsCostModel{});
  cms::CmsConfig config;
  config.enable_prefetch = enable_prefetch;
  config.enable_generalization = false;  // isolate the prefetch effect
  cms::Cms cms(&remote, config);
  cms.BeginSession(SessionAdvice());

  auto ask = [&cms](const std::string& text) {
    auto q = caql::ParseCaql(text);
    auto a = cms.Query(q.value());
    if (!a.ok()) {
      std::fprintf(stderr, "E4 query failed: %s\n",
                   a.status().ToString().c_str());
      std::exit(1);
    }
  };

  ask("d1(Y) :- parent(350, Y)");
  for (size_t i = 0; i < instances; ++i) {
    ask(StrCat("d2(X, ", 200 + i, ") :- parent(X, ", 200 + i, ")"));
  }
  return RunResult{cms.metrics().response_ms, cms.metrics().prefetch_ms,
                   remote.stats().queries, cms.metrics().prefetches};
}

}  // namespace
}  // namespace braid

int main() {
  braid::benchutil::Table table(
      "E4: path-expression prefetching — d1 then |Y| instances of d2, "
      "20ms link latency",
      {"instances", "prefetch", "response_ms", "prefetch_ms",
       "remote_queries", "prefetches"});
  for (size_t n : {1, 4, 8, 16}) {
    for (bool prefetch : {false, true}) {
      auto r = braid::Run(prefetch, n);
      table.AddRow(n, prefetch ? "on" : "off", r.response_ms, r.prefetch_ms,
                   r.remote_queries, r.prefetches);
    }
  }
  table.Print();
  return 0;
}
