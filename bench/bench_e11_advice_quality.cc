// E11 — Advice quality matters (paper §4.2.2: "The closer that
// abstraction is to the actual output of the IE, the better the CMS will
// be able to plan query executions and manage the cache").
//
// Workload: a fixed CAQL session — the sequence (d1, d2, d3) repeated 6
// times over three base relations, on a 15 ms link with a cache budget
// that holds two of the three views. Rows vary only the *path expression*
// handed to the CMS:
//   exact    — the true looping sequence (d1, d2, d3)<1,|rounds|>
//   reversed — predicts (d3, d2, d1): prefetching fetches the wrong view
//              next and replacement protects the wrong elements
//   foreign  — predicts views (x1, x2, x3) that never occur
//   none     — no path expression at all (tracker-driven features idle)
//
// Expectation: exact advice minimizes response; degraded advice does no
// better — and through wasted prefetches strictly worse in communication —
// than no advice, reproducing the claim's monotone dependence on quality.

#include "advice/advice.h"
#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "common/strings.h"
#include "workload/generators.h"

namespace braid {
namespace {

using advice::AnnotatedVar;
using advice::Binding;
using advice::PathExpr;
using advice::RepBound;

advice::ViewSpec View(const std::string& id, const std::string& table,
                      size_t arity) {
  advice::ViewSpec v;
  v.id = id;
  std::vector<logic::Term> args;
  for (size_t a = 0; a < arity; ++a) {
    const std::string name = StrCat("V", a);
    v.head.push_back(AnnotatedVar{name, Binding::kProducer});
    args.push_back(logic::Term::Var(name));
  }
  v.body = {logic::Atom(table, args)};
  return v;
}

struct RunResult {
  size_t remote_queries;
  size_t tuples_shipped;
  double response_ms;
  double prefetch_ms;
};

RunResult Run(const std::string& advice_kind, size_t rounds) {
  workload::SupplierParams params;
  params.suppliers = 120;
  params.parts = 120;
  params.supplies = 240;
  dbms::NetworkModel net;
  net.msg_latency_ms = 15;
  dbms::RemoteDbms remote(workload::MakeSupplierDatabase(params), net,
                          dbms::DbmsCostModel{});

  // Budget sized to hold roughly two of the three view extensions, so
  // replacement quality matters as well as prefetch accuracy.
  cms::CmsConfig config;
  config.cache_budget_bytes = 24000;
  config.enable_generalization = false;  // isolate tracker-driven features
  cms::Cms cms(&remote, config);

  advice::AdviceSet advice;
  advice.view_specs = {View("d1", "supplier", 2), View("d2", "part", 3),
                       View("d3", "supplies", 3),
                       View("x1", "supplier", 2), View("x2", "part", 3),
                       View("x3", "supplies", 3)};
  auto pattern = [&advice](const std::string& id) {
    return PathExpr::Pattern(id, advice.FindView(id)->head);
  };
  if (advice_kind == "exact") {
    advice.path_expression = PathExpr::Sequence(
        {pattern("d1"), pattern("d2"), pattern("d3")}, RepBound::Fixed(1),
        RepBound::Cardinality("rounds"));
  } else if (advice_kind == "reversed") {
    advice.path_expression = PathExpr::Sequence(
        {pattern("d3"), pattern("d2"), pattern("d1")}, RepBound::Fixed(1),
        RepBound::Cardinality("rounds"));
  } else if (advice_kind == "foreign") {
    advice.path_expression = PathExpr::Sequence(
        {pattern("x1"), pattern("x2"), pattern("x3")}, RepBound::Fixed(1),
        RepBound::Cardinality("rounds"));
  }  // "none": no path expression
  cms.BeginSession(advice);

  const char* queries[] = {
      "d1(V0, V1) :- supplier(V0, V1)",
      "d2(V0, V1, V2) :- part(V0, V1, V2)",
      "d3(V0, V1, V2) :- supplies(V0, V1, V2)",
  };
  for (size_t round = 0; round < rounds; ++round) {
    for (const char* text : queries) {
      auto q = caql::ParseCaql(text);
      auto a = cms.Query(q.value());
      if (!a.ok()) {
        std::fprintf(stderr, "E11 query failed: %s\n",
                     a.status().ToString().c_str());
        std::exit(1);
      }
    }
  }
  cms.DrainPrefetches();  // settle background work before reading metrics
  return RunResult{remote.stats().queries, remote.stats().tuples_shipped,
                   cms.metrics().response_ms, cms.metrics().prefetch_ms};
}

}  // namespace
}  // namespace braid

int main() {
  braid::benchutil::Table table(
      "E11: path-expression quality — looping 3-view session, cache holds "
      "~2 views, 6 rounds, 15ms link",
      {"advice", "remote_queries", "tuples_shipped", "response_ms",
       "prefetch_ms"});
  for (const char* kind : {"exact", "reversed", "foreign", "none"}) {
    auto r = braid::Run(kind, 6);
    table.AddRow(kind, r.remote_queries, r.tuples_shipped, r.response_ms,
                 r.prefetch_ms);
  }
  table.Print();
  return 0;
}
