// E9 — Cache-vs-DBMS execution split (paper §5.3.3: "which parts of a
// CAQL query should be executed locally by the CMS and which parts ... on
// the remote DBMS"; complicating factor (c): "the cost of communicating
// with remote DBMS is significant").
//
// Workload: the fan-out join
//   j(X, Y2) :- parent(X, Y) & person(Y, A, C) & person(Y2, B, C)
// ("relatives of X's parent's townsfolk") with the person relation already
// cached. BrAID evaluates both person parts locally and ships only the
// parent subquery (590 tuples); loose coupling exports the whole join and
// ships its multi-thousand-tuple result. Sweep the per-tuple transfer
// cost (link bandwidth).
//
// Expectation: at cheap transfer the server-side join is competitive; as
// transfer cost grows, the split plan's smaller shipment wins — the
// crossover the paper's cost discussion predicts.

#include "baselines/coupling_modes.h"
#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "workload/generators.h"

namespace braid {
namespace {

struct RunResult {
  double response_ms;
  size_t tuples_shipped;
  size_t remote_queries;
};

RunResult Run(baselines::CouplingMode mode, double per_tuple_ms) {
  workload::GenealogyParams params;
  params.people = 600;
  dbms::NetworkModel net;
  net.msg_latency_ms = 5;
  net.per_tuple_ms = per_tuple_ms;
  dbms::RemoteDbms remote(workload::MakeGenealogyDatabase(params), net,
                          dbms::DbmsCostModel{});
  cms::Cms cms(&remote, baselines::ConfigFor(mode, 16 << 20));

  auto ask = [&cms](const std::string& text) {
    auto q = caql::ParseCaql(text);
    auto a = cms.Query(q.value());
    if (!a.ok()) {
      std::fprintf(stderr, "E9 query failed: %s\n",
                   a.status().ToString().c_str());
      std::exit(1);
    }
  };

  // Prime: the person relation (the larger operand) is in the cache
  // (ignored by loose coupling, which never caches).
  ask("allp(X, A, C) :- person(X, A, C)");
  remote.ResetStats();
  cms.ResetMetrics();

  ask("j(X, Y2) :- parent(X, Y) & person(Y, A, C) & person(Y2, B, C)");
  cms.DrainPrefetches();  // settle background work before reading
  return RunResult{cms.metrics().response_ms, remote.stats().tuples_shipped,
                   remote.stats().queries};
}

}  // namespace
}  // namespace braid

int main() {
  using braid::baselines::CouplingMode;
  braid::benchutil::Table table(
      "E9: cache/DBMS execution split — join with the larger operand "
      "cached, sweep per-tuple transfer cost",
      {"per_tuple_ms", "mode", "response_ms", "tuples_shipped",
       "remote_queries"});
  for (double per_tuple : {0.001, 0.01, 0.05, 0.25}) {
    for (CouplingMode mode :
         {CouplingMode::kLooseCoupling, CouplingMode::kBraidNoAdvice}) {
      auto r = braid::Run(mode, per_tuple);
      table.AddRow(per_tuple, braid::baselines::CouplingModeName(mode),
                   r.response_ms, r.tuples_shipped, r.remote_queries);
    }
  }
  table.Print();
  return 0;
}
