// E5 — Query generalization amortizes remote requests (paper §4.2,
// §5.3.1: replace constants with variables, fetch the general form once,
// answer later instances from the cache).
//
// Workload: N instance queries d2(X, c_i) of a consumer-annotated view
// whose path expression predicts recurrence. With generalization the
// first instance triggers one generalized fetch; all later instances are
// subsumption hits.
//
// Expectation: remote queries: N without generalization vs 1 with;
// tuples shipped: higher for the single generalized fetch at small N (the
// paper's noted trade-off), amortized far below the per-instance total as
// N grows.

#include "advice/advice.h"
#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "common/strings.h"
#include "workload/generators.h"

namespace braid {
namespace {

advice::AdviceSet SessionAdvice() {
  using advice::AnnotatedVar;
  using advice::Binding;
  advice::AdviceSet advice;
  advice::ViewSpec d2;
  d2.id = "d2";
  d2.head = {AnnotatedVar{"X", Binding::kProducer},
             AnnotatedVar{"Y", Binding::kConsumer}};
  d2.body = {logic::Atom("parent", {logic::Term::Var("X"),
                                    logic::Term::Var("Y")})};
  advice.view_specs = {d2};
  advice.path_expression = advice::PathExpr::Sequence(
      {advice::PathExpr::Pattern("d2", d2.head)}, advice::RepBound::Fixed(0),
      advice::RepBound::Cardinality("Y"));
  return advice;
}

struct RunResult {
  size_t remote_queries;
  size_t tuples_shipped;
  double response_ms;
  size_t generalizations;
};

RunResult Run(bool enable_generalization, size_t instances) {
  workload::GenealogyParams params;
  params.people = 600;
  dbms::RemoteDbms remote(workload::MakeGenealogyDatabase(params));
  cms::CmsConfig config;
  config.enable_generalization = enable_generalization;
  config.enable_prefetch = false;  // isolate the generalization effect
  cms::Cms cms(&remote, config);
  cms.BeginSession(SessionAdvice());

  for (size_t i = 0; i < instances; ++i) {
    auto q = caql::ParseCaql(
        StrCat("d2(X, ", 100 + i, ") :- parent(X, ", 100 + i, ")"));
    auto a = cms.Query(q.value());
    if (!a.ok()) {
      std::fprintf(stderr, "E5 query failed: %s\n",
                   a.status().ToString().c_str());
      std::exit(1);
    }
  }
  cms.DrainPrefetches();  // settle background work before reading
  return RunResult{remote.stats().queries, remote.stats().tuples_shipped,
                   cms.metrics().response_ms,
                   cms.metrics().generalizations};
}

}  // namespace
}  // namespace braid

int main() {
  braid::benchutil::Table table(
      "E5: query generalization — N instances d2(X, c_i) of a recurring "
      "view",
      {"instances", "generalization", "remote_queries", "tuples_shipped",
       "response_ms"});
  for (size_t n : {1, 2, 5, 10, 25}) {
    for (bool gen : {false, true}) {
      auto r = braid::Run(gen, n);
      table.AddRow(n, gen ? "on" : "off", r.remote_queries, r.tuples_shipped,
                   r.response_ms);
    }
  }
  table.Print();
  return 0;
}
