// E2 — Subsumption-based reuse beats exact-match-only reuse (paper §2,
// §5.3.2: "the cached results must exactly match the query" in BERMUDA /
// [SELL87], whereas BrAID's subsumption reuses a general cached view for
// any narrower query).
//
// Workload: the session first evaluates the general view b1(X, Y) (a
// producer view, cached by both systems), then issues N selection queries
// b1(c, Y) with distinct constants c. An exact-match cache cannot reuse
// the general result; subsumption answers every selection locally.
//
// Expectation: remote queries grow linearly with N for exact-match and
// stay at 1 for BrAID; the crossover in total response appears as soon as
// the cost of one remote round trip exceeds a local selection.

#include "baselines/coupling_modes.h"
#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "common/strings.h"
#include "workload/generators.h"

namespace braid {
namespace {

struct RunResult {
  size_t remote_queries;
  size_t messages;
  double response_ms;
};

RunResult Run(baselines::CouplingMode mode, size_t selections) {
  workload::GenealogyParams params;
  params.people = 500;
  dbms::RemoteDbms remote(workload::MakeGenealogyDatabase(params));
  cms::Cms cms(&remote, baselines::ConfigFor(mode, 8 << 20));

  auto ask = [&cms](const std::string& text) {
    auto q = caql::ParseCaql(text);
    auto a = cms.Query(q.value());
    if (!a.ok()) {
      std::fprintf(stderr, "E2 query failed: %s\n",
                   a.status().ToString().c_str());
      std::exit(1);
    }
  };

  ask("all(X, Y) :- parent(X, Y)");  // prime the cache with the general view
  for (size_t i = 0; i < selections; ++i) {
    ask(StrCat("sel", i, "(Y) :- parent(", 100 + i, ", Y)"));
  }
  cms.DrainPrefetches();  // settle background work before reading
  return RunResult{remote.stats().queries, remote.stats().messages,
                   cms.metrics().response_ms};
}

}  // namespace
}  // namespace braid

int main() {
  using braid::baselines::CouplingMode;
  braid::benchutil::Table table(
      "E2: subsumption vs exact-match reuse — 1 general fetch + N distinct "
      "selections",
      {"selections", "mode", "remote_queries", "messages", "response_ms"});
  for (size_t n : {1, 5, 10, 25, 50}) {
    for (CouplingMode mode :
         {CouplingMode::kExactMatchCache, CouplingMode::kBraidNoAdvice}) {
      auto r = braid::Run(mode, n);
      table.AddRow(n, braid::baselines::CouplingModeName(mode),
                   r.remote_queries, r.messages, r.response_ms);
    }
  }
  table.Print();
  return 0;
}
