// braid_difftest — differential oracle harness for the BrAID CMS.
//
// Runs seeded random CAQL workloads through the full optimized system and
// through a cache-bypass reference evaluator, asserting bag-equality per
// query plus the metamorphic invariants documented in DESIGN.md. On
// failure it prints the failing seed, a minimized query-index set, and
// the exact command to reproduce.
//
// Usage:
//   braid_difftest --seeds 0:200            # seed range, full config matrix
//   braid_difftest --seed 17 --threads 8    # one seed, one configuration
//   braid_difftest --seed 17 --keep 3,9     # replay a minimized stream
//   braid_difftest --seeds 0:400 --shard 2/8

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "testing/diff_runner.h"
#include "testing/workload_gen.h"

namespace {

using braid::testing::DiffOptions;
using braid::testing::DiffReport;
using braid::testing::MinimizeFailure;
using braid::testing::ReproCommand;
using braid::testing::RunDifferential;
using braid::testing::RunSeedMatrix;

struct CliArgs {
  uint64_t seed_lo = 0;
  uint64_t seed_hi = 0;      // inclusive; run [lo, hi]
  bool single_config = false;  // --seed given: run one explicit config
  size_t num_queries = 24;
  size_t num_threads = 1;
  size_t sessions = 1;
  std::string prefetch = "async";  // off | sync | async
  bool faults = false;
  bool open_loop = false;
  double rate = 500;
  bool caching = true;
  bool catalog = true;
  bool intermediates = true;
  bool minimize = true;
  bool dump = false;
  size_t shard_index = 0;
  size_t shard_count = 1;
  std::vector<size_t> keep;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: braid_difftest [--seeds LO:HI | --seed S]\n"
      "  --seeds LO:HI       run the full config matrix for each seed in\n"
      "                      [LO, HI) (default 0:50)\n"
      "  --seed S            run one seed with the explicit config below\n"
      "  --queries N         stream length (default 24)\n"
      "  --threads N         pool workers (default 1; matrix uses 1 and 8)\n"
      "  --sessions N        N concurrent sessions share the CMS, each\n"
      "                      replaying the stream rotated by its index\n"
      "                      through the session scheduler (default 1)\n"
      "  --prefetch MODE     off | sync | async (default async)\n"
      "  --faults on|off     fault-injected remote link (default off)\n"
      "  --open-loop         replay as open-loop Poisson arrivals under a\n"
      "                      deliberately tight overload policy; refused\n"
      "                      queries retry after the drain and every answer\n"
      "                      is still bag-checked (shedding never changes\n"
      "                      answers)\n"
      "  --rate QPS          open-loop arrival rate (default 500)\n"
      "  --no-cache          disable caching on the system side\n"
      "  --no-catalog        linear subsumption candidate scan instead of\n"
      "                      the semantic catalog (answers must not change)\n"
      "  --no-intermediates  disable intermediate-result caching (answers\n"
      "                      must not change; costs may)\n"
      "  --keep I,J,...      only run these stream indices (repro)\n"
      "  --no-minimize       skip failure minimization\n"
      "  --shard I/M         run only seeds with seed %% M == I\n");
}

bool ParseSizeList(const char* s, std::vector<size_t>* out) {
  std::string token;
  for (const char* p = s;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (token.empty()) return false;
      out->push_back(static_cast<size_t>(std::strtoull(token.c_str(),
                                                       nullptr, 10)));
      token.clear();
      if (*p == '\0') return true;
    } else {
      token += *p;
    }
  }
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  args->seed_lo = 0;
  args->seed_hi = 49;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = next();
      uint64_t lo = 0, hi = 0;
      if (v == nullptr || std::sscanf(v, "%lu:%lu", &lo, &hi) != 2 ||
          hi <= lo) {
        return false;
      }
      args->seed_lo = lo;
      args->seed_hi = hi - 1;  // LO:HI is half-open on the command line
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args->seed_lo = args->seed_hi = std::strtoull(v, nullptr, 10);
      args->single_config = true;
    } else if (arg == "--queries") {
      const char* v = next();
      if (v == nullptr) return false;
      args->num_queries = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      args->num_threads = static_cast<size_t>(std::strtoull(v, nullptr, 10));
      args->single_config = true;
    } else if (arg == "--sessions") {
      const char* v = next();
      if (v == nullptr) return false;
      args->sessions = static_cast<size_t>(std::strtoull(v, nullptr, 10));
      if (args->sessions == 0) return false;
      args->single_config = true;
    } else if (arg == "--prefetch") {
      const char* v = next();
      if (v == nullptr) return false;
      args->prefetch = v;
      if (args->prefetch != "off" && args->prefetch != "sync" &&
          args->prefetch != "async") {
        return false;
      }
      args->single_config = true;
    } else if (arg == "--faults") {
      const char* v = next();
      if (v == nullptr) return false;
      args->faults = std::strcmp(v, "on") == 0;
      args->single_config = true;
    } else if (arg == "--open-loop") {
      args->open_loop = true;
      args->single_config = true;
    } else if (arg == "--rate") {
      const char* v = next();
      if (v == nullptr) return false;
      args->rate = std::strtod(v, nullptr);
      if (args->rate <= 0) return false;
      args->single_config = true;
    } else if (arg == "--no-cache") {
      args->caching = false;
      args->single_config = true;
    } else if (arg == "--no-catalog") {
      args->catalog = false;
      args->single_config = true;
    } else if (arg == "--no-intermediates") {
      args->intermediates = false;
      args->single_config = true;
    } else if (arg == "--keep") {
      const char* v = next();
      if (v == nullptr || !ParseSizeList(v, &args->keep)) return false;
      args->single_config = true;
    } else if (arg == "--no-minimize") {
      args->minimize = false;
    } else if (arg == "--dump") {
      args->dump = true;
    } else if (arg == "--shard") {
      const char* v = next();
      unsigned long idx = 0, count = 0;  // NOLINT(runtime/int)
      if (v == nullptr || std::sscanf(v, "%lu/%lu", &idx, &count) != 2 ||
          count == 0 || idx >= count) {
        return false;
      }
      args->shard_index = idx;
      args->shard_count = count;
    } else {
      return false;
    }
  }
  return true;
}

DiffOptions OptionsFor(const CliArgs& args, uint64_t seed) {
  DiffOptions opts;
  opts.seed = seed;
  opts.num_queries = args.num_queries;
  opts.num_threads = args.num_threads;
  opts.sessions = args.sessions;
  opts.prefetch = args.prefetch != "off";
  opts.prefetch_async = args.prefetch == "async";
  opts.caching = args.caching;
  opts.catalog = args.catalog;
  opts.intermediates = args.intermediates;
  opts.faults = args.faults;
  opts.open_loop = args.open_loop;
  opts.open_loop_rate = args.rate;
  if (args.faults) {
    opts.fault_plan.error_rate = 0.15;
    opts.fault_plan.delay_rate = 0.2;
    opts.fault_plan.delay_ms = 1.0;
    opts.fault_plan.warmup_calls = 2;
  }
  opts.keep = args.keep;
  return opts;
}

int HandleFailure(const CliArgs& args, const DiffReport& report,
                  const DiffOptions& opts) {
  std::printf("FAIL %s\n", report.Summary().c_str());
  DiffOptions repro = opts;
  // Open-loop timing is wall-clock dependent; a minimized stream would
  // not reproduce the same queue dynamics, so don't pretend it does.
  if (args.minimize && opts.keep.empty() && !opts.faults && !opts.open_loop) {
    std::printf("minimizing...\n");
    repro.keep = MinimizeFailure(opts);
    std::printf("minimized to %zu quer%s\n", repro.keep.size(),
                repro.keep.size() == 1 ? "y" : "ies");
  }
  std::printf("repro: %s\n", ReproCommand(repro).c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  if (args.dump) {
    braid::testing::WorkloadParams params;
    params.seed = args.seed_lo;
    params.num_queries = args.num_queries;
    braid::testing::GeneratedWorkload w =
        braid::testing::GenerateWorkload(params);
    std::printf("%s\n", w.advice.ToString().c_str());
    for (size_t i = 0; i < w.queries.size(); ++i) {
      std::printf("#%zu: %s%s\n", i, w.queries[i].distinct ? "SETOF " : "",
                  w.queries[i].ToString().c_str());
    }
    return 0;
  }

  size_t seeds_run = 0;
  for (uint64_t seed = args.seed_lo; seed <= args.seed_hi; ++seed) {
    if (seed % args.shard_count != args.shard_index) continue;
    ++seeds_run;
    if (args.single_config) {
      DiffOptions opts = OptionsFor(args, seed);
      DiffReport report = RunDifferential(opts);
      std::printf("%s\n", report.Summary().c_str());
      if (!report.ok) return HandleFailure(args, report, opts);
    } else {
      DiffOptions failing;
      DiffReport report =
          RunSeedMatrix(seed, args.num_queries, /*with_faults=*/true,
                        &failing);
      if (!report.ok) return HandleFailure(args, report, failing);
      if (seed == args.seed_lo || (seed - args.seed_lo) % 10 == 0) {
        std::printf("%s\n", report.Summary().c_str());
      }
    }
  }
  std::printf("OK: %zu seed%s passed\n", seeds_run, seeds_run == 1 ? "" : "s");
  return 0;
}
