// braid_loadgen — open-loop load generator for the concurrent CMS
// (ROADMAP item 4; ISSUE 10 tentpole).
//
// Replays seeded sessions (src/testing workload generation — the same
// generator the differential harness uses) against one shared CMS at a
// configured Poisson or fixed arrival rate, WITHOUT waiting for
// completions: arrivals keep coming however far behind the system falls,
// so queueing delay shows up in the latency numbers instead of silently
// throttling the offered load the way a closed-loop driver does. Latency
// of each query is measured from its *scheduled arrival* to completion.
//
// Sweeps rate × pool threads × cache budget × admission {on, off} and
// emits BENCH_load.json (arrivals, completions, kOverloaded rejections,
// throughput, p50/p95/p99/p99.9 per measured phase, max queue depth, shed
// counters) as a CI artifact. Each cell runs a warmup phase at the same
// rate first (excluded from the quantiles), then the measured phase.
//
// The claim this tool defends (EXPERIMENTS.md L1): with the LoadController
// ON, foreground p99 stays within 3x of the low-rate p99 up to the
// saturation knee — speculation is shed first, then admission refuses
// cleanly — while OFF the queue grows without bound and p99 with it.
//
// Flags:
//   --rates R1,R2,...    arrival rates to sweep (qps; default sweep)
//   --threads T1,...     pool worker counts to sweep (default 8)
//   --budgets B1,...     cache budgets in bytes to sweep (default 256KiB)
//   --sessions N         concurrent sessions (default 1000)
//   --arrivals N         measured arrivals per cell (default 2000)
//   --process poisson|fixed (default poisson)
//   --admission on|off|both (default both)
//   --seed S             workload + schedule seed (default 0)
//   --smoke              small per-PR CI preset (few hundred arrivals)
//   --json PATH          output path (default BENCH_load.json)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "common/strings.h"
#include "dbms/remote_dbms.h"
#include "obs/metrics.h"
#include "testing/load_harness.h"
#include "testing/workload_gen.h"

namespace braid {
namespace {

struct Args {
  /// The lowest rate must sit below service capacity (~170 qps at 1000
  /// sessions over the 2KiB-budget cell on 4 workers) so the base p99 the
  /// knee is measured against reflects service time, not queueing.
  std::vector<double> rates = {100, 250, 500, 1000, 2000, 4000};
  std::vector<size_t> threads = {4};
  /// 2KiB keeps the cache under constant eviction pressure, so a steady
  /// share of queries pays the (real-sleeping) link — that sustained
  /// service cost is what makes the high end of the rate sweep saturate.
  /// The second budget holds the whole working set: the no-pressure
  /// control, where even the top rate stays far from the knee.
  std::vector<size_t> budgets = {2048, 256 * 1024};
  size_t sessions = 1000;
  size_t arrivals = 2000;
  testing::ArrivalProcess process = testing::ArrivalProcess::kPoisson;
  bool admission_on = true;
  bool admission_off = true;
  uint64_t seed = 0;
  std::string json = "BENCH_load.json";
};

std::vector<double> ParseDoubles(const char* text) {
  std::vector<double> out;
  std::string s(text);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtod(s.substr(pos, comma - pos).c_str(), nullptr));
    pos = comma + 1;
  }
  return out;
}

std::vector<size_t> ParseSizes(const char* text) {
  std::vector<size_t> out;
  for (double v : ParseDoubles(text)) out.push_back(static_cast<size_t>(v));
  return out;
}

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rates R,..] [--threads T,..] [--budgets B,..]\n"
               "          [--sessions N] [--arrivals N] [--process "
               "poisson|fixed]\n"
               "          [--admission on|off|both] [--seed S] [--smoke]\n"
               "          [--json PATH]\n",
               argv0);
  std::exit(2);
}

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--rates") {
      args.rates = ParseDoubles(next());
    } else if (flag == "--threads") {
      args.threads = ParseSizes(next());
    } else if (flag == "--budgets") {
      args.budgets = ParseSizes(next());
    } else if (flag == "--sessions") {
      args.sessions = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (flag == "--arrivals") {
      args.arrivals = static_cast<size_t>(std::strtoull(next(), nullptr, 10));
    } else if (flag == "--process") {
      const std::string p = next();
      if (p == "poisson") {
        args.process = testing::ArrivalProcess::kPoisson;
      } else if (p == "fixed") {
        args.process = testing::ArrivalProcess::kFixed;
      } else {
        Usage(argv[0]);
      }
    } else if (flag == "--admission") {
      const std::string a = next();
      args.admission_on = (a == "on" || a == "both");
      args.admission_off = (a == "off" || a == "both");
      if (!args.admission_on && !args.admission_off) Usage(argv[0]);
    } else if (flag == "--seed") {
      args.seed = std::strtoull(next(), nullptr, 10);
    } else if (flag == "--smoke") {
      // Per-PR CI preset: seconds, not minutes, and still past the knee.
      args.rates = {500, 4000};
      args.threads = {4};
      args.budgets = {2048};
      args.sessions = 32;
      args.arrivals = 300;
    } else if (flag == "--json") {
      args.json = next();
    } else {
      Usage(argv[0]);
    }
  }
  return args;
}

struct CellResult {
  testing::ReplayStats measured;
  double p50 = 0, p95 = 0, p99 = 0, p999 = 0;
  double qps = 0;
  uint64_t shed_prefetch = 0;
  uint64_t shed_generalize = 0;
  uint64_t shed_intermediate = 0;
  uint64_t rejected_counter = 0;
};

/// One sweep cell: fresh CMS + sessions, warmup replay, measured replay.
CellResult RunCell(const Args& args, const testing::GeneratedWorkload& wl,
                   double rate, size_t threads, size_t budget,
                   bool admission) {
  dbms::NetworkModel net;
  net.msg_latency_ms = 5;
  net.wall_clock_scale = 0.2;  // remote fetches consume real worker time
  dbms::RemoteDbms remote(wl.database, net, dbms::DbmsCostModel{});

  cms::CmsConfig config;
  config.cache_budget_bytes = budget;
  config.num_threads = threads;
  config.enable_load_control = admission;
  // Production-shaped thresholds relative to the pool, not the offered
  // load: shed speculation once a pool's worth of queries is waiting;
  // refuse admission once the backlog reaches 8 queries per worker —
  // past that point added queue depth adds only latency, never goodput,
  // so bounding it is what keeps the admitted p99 near the knee value.
  config.shed_queue_depth = threads;
  config.admission_queue_bound = 8 * threads;
  cms::Cms cms(&remote, config);

  std::vector<testing::ReplaySession> sessions(args.sessions);
  for (size_t s = 0; s < args.sessions; ++s) {
    sessions[s].session = cms.OpenSession(wl.advice);
    // Rotate the shared stream so concurrent sessions hit overlapping but
    // differently-ordered queries (same scheme as the difftest's
    // session mode).
    sessions[s].queries.reserve(wl.queries.size());
    for (size_t q = 0; q < wl.queries.size(); ++q) {
      sessions[s].queries.push_back(
          wl.queries[(q + s) % wl.queries.size()]);
    }
  }

  // Warmup phase: same rate, a quarter of the measured arrivals; fills
  // the cache and primes the latency EWMA. Excluded from the quantiles.
  testing::ArrivalParams warm_params;
  warm_params.process = args.process;
  warm_params.rate_qps = rate;
  warm_params.count = args.arrivals / 4;
  warm_params.seed = args.seed ^ 0x9e3779b97f4a7c15ull;
  testing::OpenLoopOptions warm_opts;
  warm_opts.arrivals_ms = testing::GenerateArrivals(warm_params);
  (void)testing::ReplayOpenLoop(cms, sessions, warm_opts);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const uint64_t shed_p0 = reg.CounterValue("load.shed_prefetch");
  const uint64_t shed_g0 = reg.CounterValue("load.shed_generalize");
  const uint64_t shed_i0 = reg.CounterValue("load.shed_intermediate");
  const uint64_t rej0 = reg.CounterValue("load.rejected_sessions");

  testing::ArrivalParams params;
  params.process = args.process;
  params.rate_qps = rate;
  params.count = args.arrivals;
  params.seed = args.seed;
  testing::OpenLoopOptions opts;
  opts.arrivals_ms = testing::GenerateArrivals(params);

  CellResult cell;
  cell.measured = testing::ReplayOpenLoop(cms, sessions, opts);
  cell.p50 = benchutil::P50(cell.measured.latencies_ms);
  cell.p95 = benchutil::P95(cell.measured.latencies_ms);
  cell.p99 = benchutil::P99(cell.measured.latencies_ms);
  cell.p999 = benchutil::P999(cell.measured.latencies_ms);
  cell.qps = cell.measured.wall_ms > 0
                 ? static_cast<double>(cell.measured.completed) /
                       (cell.measured.wall_ms / 1000.0)
                 : 0;
  cell.shed_prefetch = reg.CounterValue("load.shed_prefetch") - shed_p0;
  cell.shed_generalize = reg.CounterValue("load.shed_generalize") - shed_g0;
  cell.shed_intermediate =
      reg.CounterValue("load.shed_intermediate") - shed_i0;
  cell.rejected_counter = reg.CounterValue("load.rejected_sessions") - rej0;

  if (cell.measured.failed > 0) {
    std::fprintf(stderr, "braid_loadgen: %zu queries FAILED (rate=%g)\n",
                 cell.measured.failed, rate);
    std::exit(1);
  }
  if (cell.rejected_counter != cell.measured.rejected) {
    std::fprintf(stderr,
                 "braid_loadgen: rejection counter %llu != observed "
                 "kOverloaded futures %zu\n",
                 static_cast<unsigned long long>(cell.rejected_counter),
                 cell.measured.rejected);
    std::exit(1);
  }
  for (testing::ReplaySession& s : sessions) cms.CloseSession(s.session);
  return cell;
}

}  // namespace
}  // namespace braid

int main(int argc, char** argv) {
  using braid::testing::ArrivalProcess;
  braid::Args args = braid::Parse(argc, argv);

  braid::testing::WorkloadParams wp;
  wp.seed = args.seed;
  wp.num_queries = 24;
  const braid::testing::GeneratedWorkload wl =
      braid::testing::GenerateWorkload(wp);

  braid::benchutil::Table table(
      braid::StrCat(
          "Open-loop load sweep — ", args.sessions, " sessions, ",
          args.arrivals, " arrivals/cell, ",
          args.process == ArrivalProcess::kPoisson ? "poisson" : "fixed",
          " arrivals, 5ms link at 0.2 wall-clock scale; latency is "
          "scheduled-arrival to completion (ms)"),
      {"rate_qps", "threads", "budget", "admission", "arrivals", "completed",
       "rejected", "qps", "p50_ms", "p95_ms", "p99_ms", "p999_ms",
       "max_queue", "shed_prefetch", "shed_generalize", "shed_intermediate"});

  // Knee detection over the admission-ON rows of the first threads×budget
  // combination: the knee is the last swept rate whose p99 is still within
  // 3x of the lowest rate's p99 (EXPERIMENTS.md L1).
  double base_p99_on = -1;
  double knee_rate = -1;
  bool past_knee = false;

  for (size_t threads : args.threads) {
    for (size_t budget : args.budgets) {
      const bool knee_row = threads == args.threads.front() &&
                            budget == args.budgets.front();
      for (double rate : args.rates) {
        for (int admission = 1; admission >= 0; --admission) {
          if (admission == 1 && !args.admission_on) continue;
          if (admission == 0 && !args.admission_off) continue;
          const braid::CellResult cell = braid::RunCell(
              args, wl, rate, threads, budget, admission == 1);
          table.AddRow(rate, threads, budget, admission ? "on" : "off",
                       cell.measured.issued, cell.measured.completed,
                       cell.measured.rejected, cell.qps, cell.p50, cell.p95,
                       cell.p99, cell.p999, cell.measured.max_queue_depth,
                       cell.shed_prefetch, cell.shed_generalize,
                       cell.shed_intermediate);
          if (admission == 1 && knee_row) {
            if (base_p99_on < 0) base_p99_on = cell.p99;
            if (!past_knee && base_p99_on > 0 &&
                cell.p99 <= 3.0 * base_p99_on) {
              knee_rate = rate;
            } else {
              past_knee = true;
            }
          }
        }
      }
    }
  }

  table.Print();
  if (base_p99_on >= 0) {
    std::printf(
        "\nadmission-ON saturation knee: p99 within 3x of the low-rate p99 "
        "(%.2f ms) up to %.0f qps\n",
        base_p99_on, knee_rate);
  }
  table.WriteJson(
      braid::benchutil::JsonPathFromArgs(argc, argv, args.json));
  std::printf("\n-- obs registry after final cell --\n%s\n",
              braid::obs::MetricsRegistry::Global().ToJson().c_str());
  return 0;
}
