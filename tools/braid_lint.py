#!/usr/bin/env python3
"""braid_lint: project-invariant checker for the BrAID tree.

Enforces the rules that are regex-checkable without libclang and that the
compiler cannot (or does not) check for us; see DESIGN.md §"Concurrency
contract" for the rationale of each:

  naked-mutex      No std::mutex / std::lock_guard / std::unique_lock /
                   std::condition_variable / std::shared_mutex outside the
                   annotated wrappers in src/common/mutex.h. Naked
                   primitives are invisible to Clang Thread Safety
                   Analysis, so a lock taken through them is a lock the
                   compiler cannot reason about.

  wall-clock       No rand()/srand()/std::random_device or calendar time
                   (time(), system_clock, localtime, ...) in src/.
                   Deterministic components draw randomness from the
                   seeded braid::Rng and charge time to the simulated
                   NetworkModel clock; nondeterminism here breaks the
                   differential oracle's seed-reproducibility.

  sleep            No sleeping in src/ (sleep_for/sleep_until/usleep/
                   nanosleep). Blocking waits go through braid::CondVar;
                   sleeps hide latency bugs and slow the whole suite.

  single-thread    No BRAID_SINGLE_THREAD / SequenceChecker outside
                   src/common/mutex.h. The CMS is multi-session now; a
                   component claiming the single-thread capability opts
                   out of the real locking discipline the concurrent
                   cache and session scheduler rely on.

  include-guard    Every header under src/ uses a BRAID_<PATH>_H_ include
                   guard matching its path (#ifndef/#define pair and a
                   trailing #endif comment).

  stray-artifact   No tracked file anywhere in the tree whose *name* looks
                   like shell debris: a comma, quote, backtick, `$`, `;`,
                   `|`, `&`, parentheses, whitespace, `=`, or a leading
                   `-`. Such names are almost always an accidentally
                   committed redirect/typo artifact (a file literally
                   named `hich,$p` — stray `git log | w...` output —
                   shipped in one PR), never a real source file.

  bench-artifact   Every BENCH_*.json name mentioned in a bench/bench_*.cc
                   or a tools/*.cc must appear in .github/workflows/ci.yml
                   — the bench jobs and bench-style tools (braid_loadgen)
                   write these files and an upload-artifact step must
                   ship them, otherwise the output is silently dropped on
                   every CI run. (Literal names only: a path computed at
                   runtime is invisible to this check.)

Legitimate exceptions are listed in tools/braid_lint_allowlist.txt as
"<rule> <path> — <reason>" lines; an allowlist entry that no longer
matches anything is itself an error, so the list cannot rot.

Exit status: 0 clean, 1 violations, 2 usage/internal error.

Run locally:  python3 tools/braid_lint.py
Self-test:    python3 tools/braid_lint.py --self-test
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# (rule, regex, message). Patterns are matched per line with comments and
# string literals stripped, so a mention in a doc comment does not trip.
LINE_RULES = [
    (
        "naked-mutex",
        re.compile(
            r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|"
            r"lock_guard|unique_lock|shared_lock|scoped_lock|"
            r"condition_variable(_any)?)\b"
        ),
        "naked std synchronization primitive; use braid::Mutex / "
        "braid::MutexLock / braid::CondVar from common/mutex.h so Clang "
        "Thread Safety Analysis can see the lock",
    ),
    (
        "wall-clock",
        re.compile(
            r"(\brand\s*\(|\bsrand\s*\(|std::random_device\b|"
            r"std::time\b|[^\w.]time\s*\(\s*(NULL|nullptr|0)?\s*\)|"
            r"system_clock\b|\blocaltime\s*\(|\bgmtime\s*\()"
        ),
        "unseeded randomness / calendar time in deterministic code; use "
        "braid::Rng (seeded) or the simulated NetworkModel clock",
    ),
    (
        "sleep",
        re.compile(r"(sleep_for|sleep_until|\busleep\s*\(|\bnanosleep\s*\()"),
        "sleeping in src/; block on a braid::CondVar or model the delay in "
        "simulated time",
    ),
    (
        "single-thread",
        re.compile(r"\b(BRAID_SINGLE_THREAD|SequenceChecker)\b"),
        "single-thread capability in a component; the CMS is multi-session "
        "— guard shared state with braid::Mutex and annotations instead",
    ),
]

GUARD_RULE = "include-guard"
STRAY_RULE = "stray-artifact"
BENCH_RULE = "bench-artifact"

BENCH_JSON_RE = re.compile(r"\bBENCH_[A-Za-z0-9_]+\.json\b")
CI_WORKFLOW = os.path.join(".github", "workflows", "ci.yml")

# Shell-metacharacter debris in a file name. A leading '-' is flagged too:
# such names read as option flags to most tools and only ever appear by
# accident ("git diff > -o").
STRAY_NAME_RE = re.compile(r"[,;|&()<>*?!\s='\"`$\\]|^-")

# Directories never scanned for stray names (build output is untracked and
# full of generated names; .git has its own naming rules).
STRAY_SKIP_DIRS = {".git"}
STRAY_SKIP_PREFIXES = ("build",)

COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
CHAR_RE = re.compile(r"'(?:[^'\\]|\\.)*'")


def strip_noncode(line, in_block_comment):
    """Removes string literals and comments; tracks /* */ state."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block_comment = True
            i += 2
            continue
        if line[i] == '"':
            m = STRING_RE.match(line, i)
            if m:
                out.append('""')
                i = m.end()
                continue
        if line[i] == "'":
            m = CHAR_RE.match(line, i)
            if m:
                out.append("''")
                i = m.end()
                continue
        out.append(line[i])
        i += 1
    return "".join(out), in_block_comment


def expected_guard(relpath):
    """src/cms/cache_model.h -> BRAID_CMS_CACHE_MODEL_H_"""
    assert relpath.startswith("src" + os.sep)
    stem = relpath[len("src" + os.sep):]
    token = re.sub(r"[^A-Za-z0-9]", "_", stem).upper()
    return "BRAID_" + token + "_"


def check_include_guard(relpath, text):
    want = expected_guard(relpath)
    lines = text.splitlines()
    code = [l for l in lines if l.strip() and not l.strip().startswith("//")]
    problems = []
    if (
        len(code) < 2
        or code[0].strip() != "#ifndef " + want
        or code[1].strip() != "#define " + want
    ):
        problems.append(
            (1, "expected include guard '#ifndef %s' / '#define %s'"
             % (want, want))
        )
    endif_ok = any(
        l.strip() == "#endif  // " + want or l.strip() == "#endif // " + want
        for l in reversed(lines[-5:])
    )
    if not endif_ok:
        problems.append(
            (len(lines), "expected closing '#endif  // %s'" % want)
        )
    return problems


def load_allowlist(path):
    """Returns {(rule, relpath): reason}."""
    allow = {}
    if not os.path.exists(path):
        return allow
    with open(path, encoding="utf-8") as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 2)
            if len(parts) < 2:
                print("braid_lint: malformed allowlist line: %r" % line,
                      file=sys.stderr)
                sys.exit(2)
            rule, rel = parts[0], parts[1]
            reason = parts[2] if len(parts) > 2 else ""
            allow[(rule, rel.replace("/", os.sep))] = reason
    return allow


def lint_file(relpath, text):
    """Returns [(rule, line_number, message)] for one file."""
    findings = []
    in_block = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        code, in_block = strip_noncode(line, in_block)
        if "braid-lint: allow-next-line" in line:
            # (the directive lives in a comment; it suppresses nothing by
            # itself — allowlisting is per-file, to keep review pressure on)
            pass
        for rule, pattern, message in LINE_RULES:
            if pattern.search(code):
                findings.append((rule, lineno, message))
    if relpath.endswith(".h") and relpath.startswith("src" + os.sep):
        for lineno, message in check_include_guard(relpath, text):
            findings.append((GUARD_RULE, lineno, message))
    return findings


def check_stray_artifacts(root):
    """Returns [(relpath, message)] for files whose names look like shell
    debris, anywhere under root outside build output and .git."""
    findings = []
    for dirpath, dirnames, filenames in os.walk(root):
        rel_dir = os.path.relpath(dirpath, root)
        if rel_dir == ".":
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in STRAY_SKIP_DIRS
                and not d.startswith(STRAY_SKIP_PREFIXES)
            )
        else:
            dirnames.sort()
        for name in sorted(filenames):
            if STRAY_NAME_RE.search(name):
                rel = os.path.normpath(os.path.join(rel_dir, name))
                findings.append(
                    (rel,
                     "file name %r looks like an accidentally committed "
                     "shell artifact (metacharacter debris); delete it or "
                     "allowlist it with a reason" % name)
                )
    return findings


def check_bench_artifacts(root):
    """Every BENCH_*.json mentioned in a bench/bench_*.cc or a tools/*.cc
    must appear in the CI workflow (an upload-artifact path); returns
    [(relpath, msg)]."""
    ci_path = os.path.join(root, CI_WORKFLOW)
    if not os.path.exists(ci_path):
        return []
    with open(ci_path, encoding="utf-8") as f:
        ci_text = f.read()
    findings = []
    scanned = (
        ("bench", lambda n: n.startswith("bench_") and n.endswith(".cc")),
        ("tools", lambda n: n.endswith(".cc")),
    )
    for subdir, wanted in scanned:
        dir_path = os.path.join(root, subdir)
        if not os.path.isdir(dir_path):
            continue
        for name in sorted(os.listdir(dir_path)):
            if not wanted(name):
                continue
            with open(os.path.join(dir_path, name), encoding="utf-8") as f:
                text = f.read()
            for json_name in sorted(set(BENCH_JSON_RE.findall(text))):
                if json_name not in ci_text:
                    findings.append(
                        (os.path.join(subdir, name),
                         "writes %s but %s never mentions it; add an "
                         "actions/upload-artifact step so the bench output "
                         "is not silently dropped (or allowlist with a "
                         "reason)"
                         % (json_name, CI_WORKFLOW.replace(os.sep, "/")))
                    )
    return findings


def iter_source_files(root):
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                full = os.path.join(dirpath, name)
                yield os.path.relpath(full, root)


def run_lint(root, allowlist_path, verbose=False):
    allow = load_allowlist(allowlist_path)
    used = set()
    violations = []
    for rel in iter_source_files(root):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            text = f.read()
        for rule, lineno, message in lint_file(rel, text):
            key = (rule, rel.replace(os.sep, "/"))
            oskey = (rule, rel)
            if oskey in allow or key in allow:
                used.add(oskey if oskey in allow else key)
                continue
            violations.append("%s:%d: [%s] %s" % (rel, lineno, rule, message))
    for rel, message in check_stray_artifacts(root):
        key = (STRAY_RULE, rel.replace(os.sep, "/"))
        oskey = (STRAY_RULE, rel)
        if oskey in allow or key in allow:
            used.add(oskey if oskey in allow else key)
            continue
        violations.append("%s: [%s] %s" % (rel, STRAY_RULE, message))
    for rel, message in check_bench_artifacts(root):
        key = (BENCH_RULE, rel.replace(os.sep, "/"))
        oskey = (BENCH_RULE, rel)
        if oskey in allow or key in allow:
            used.add(oskey if oskey in allow else key)
            continue
        violations.append("%s: [%s] %s" % (rel, BENCH_RULE, message))
    for key, reason in allow.items():
        if key not in used:
            violations.append(
                "%s: [allowlist] entry for rule '%s' matches nothing "
                "(%s); remove it" % (key[1], key[0], reason or "no reason")
            )
    for v in violations:
        print(v)
    if verbose and not violations:
        print("braid_lint: clean")
    return 0 if not violations else 1


# ---------------------------------------------------------------------------
# Self-test: deliberately bad snippets must be rejected, good ones accepted.

BAD_SNIPPETS = {
    "naked-mutex": "#include <mutex>\nstd::mutex mu;\n",
    "naked-mutex-lock": "void F() { std::lock_guard<std::mutex> l(m); }\n",
    "naked-condvar": "std::condition_variable cv;\n",
    "wall-clock-rand": "int X() { return rand() % 7; }\n",
    "wall-clock-time": "long Y() { return time(nullptr); }\n",
    "wall-clock-chrono":
        "auto Z() { return std::chrono::system_clock::now(); }\n",
    "sleep":
        "void W() { std::this_thread::sleep_for(std::chrono::seconds(1)); }\n",
    "single-thread-macro": "void T() { BRAID_SINGLE_THREAD(sequence_); }\n",
    "single-thread-member": "braid::SequenceChecker sequence_;\n",
}

GOOD_SNIPPETS = {
    # Mentions in comments and strings must NOT trip the linter.
    "comment": "// std::mutex is banned; use braid::Mutex\n",
    "string": 'const char* kMsg = "do not call rand() here";\n',
    "wrapper": "braid::MutexLock lock(&mu_);\n",
    "member-time": "double t = sim.time_ms();  // simulated, fine\n",
    "single-thread-comment":
        "// SequenceChecker is gone from components; see DESIGN.md §10\n",
}

GOOD_HEADER = (
    "#ifndef BRAID_SELFTEST_GOOD_H_\n"
    "#define BRAID_SELFTEST_GOOD_H_\n"
    "int F();\n"
    "#endif  // BRAID_SELFTEST_GOOD_H_\n"
)

BAD_HEADER = "#pragma once\nint F();\n"


def self_test():
    failures = []

    def expect(name, text, relpath, want_dirty):
        findings = lint_file(relpath, text)
        dirty = bool(findings)
        if dirty != want_dirty:
            failures.append(
                "%s: expected %s, got %s (%r)"
                % (name, "violations" if want_dirty else "clean",
                   "violations" if dirty else "clean", findings)
            )

    for name, text in BAD_SNIPPETS.items():
        expect(name, text, os.path.join("src", "x", "snippet.cc"), True)
    for name, text in GOOD_SNIPPETS.items():
        expect(name, text, os.path.join("src", "x", "snippet.cc"), False)
    expect("good-header", GOOD_HEADER,
           os.path.join("src", "selftest", "good.h"), False)
    expect("bad-header", BAD_HEADER,
           os.path.join("src", "selftest", "bad.h"), True)

    # Stray-artifact name matching, including the exact artifact that
    # shipped once ("hich,$p" — redirected git-log output).
    for name in ("hich,$p", "a b.txt", "out|sort", "-o", "x;y", "res`t`"):
        if not STRAY_NAME_RE.search(name):
            failures.append("stray-artifact: %r not flagged" % name)
    for name in ("cache_model.cc", "BENCH_micro.json", ".clang-tidy",
                 "CMakeLists.txt", "braid_lint_allowlist.txt"):
        if STRAY_NAME_RE.search(name):
            failures.append("stray-artifact: %r falsely flagged" % name)

    # bench-artifact: a dropped BENCH json must be flagged — whether the
    # writer lives in bench/ or tools/ — while an uploaded or
    # runtime-computed one must not.
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "bench"))
        os.makedirs(os.path.join(tmp, "tools"))
        os.makedirs(os.path.join(tmp, ".github", "workflows"))
        with open(os.path.join(tmp, "bench", "bench_x.cc"), "w") as f:
            f.write('const char* kJson = "BENCH_x.json";\n')
        with open(os.path.join(tmp, "bench", "bench_y.cc"), "w") as f:
            f.write('const char* kJson = "BENCH_y.json";\n'
                    'std::string sibling = base + "_trace.json";\n')
        with open(os.path.join(tmp, "tools", "braid_toolgen.cc"), "w") as f:
            f.write('const char* kJson = "BENCH_tool.json";\n')
        with open(os.path.join(tmp, "tools", "braid_okgen.cc"), "w") as f:
            f.write('const char* kJson = "BENCH_ok.json";\n')
        with open(os.path.join(tmp, CI_WORKFLOW), "w") as f:
            f.write("      - uses: actions/upload-artifact@v4\n"
                    "        with:\n"
                    "          path: |\n"
                    "            BENCH_y.json\n"
                    "            BENCH_ok.json\n")
        flagged = check_bench_artifacts(tmp)
        names = [rel for rel, _msg in flagged]
        if os.path.join("bench", "bench_x.cc") not in names:
            failures.append("bench-artifact: dropped BENCH_x.json not "
                            "flagged (%r)" % flagged)
        if os.path.join("bench", "bench_y.cc") in names:
            failures.append("bench-artifact: uploaded BENCH_y.json falsely "
                            "flagged (%r)" % flagged)
        if os.path.join("tools", "braid_toolgen.cc") not in names:
            failures.append("bench-artifact: dropped BENCH_tool.json from "
                            "tools/ not flagged (%r)" % flagged)
        if os.path.join("tools", "braid_okgen.cc") in names:
            failures.append("bench-artifact: uploaded BENCH_ok.json falsely "
                            "flagged (%r)" % flagged)

    # End-to-end over a temp tree: one bad file, one stray artifact, plus
    # a stale allowlist entry that must itself be flagged.
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "src", "x"))
        with open(os.path.join(tmp, "src", "x", "bad.cc"), "w") as f:
            f.write(BAD_SNIPPETS["naked-mutex"])
        with open(os.path.join(tmp, "hich,$p"), "w") as f:
            f.write("commit 0000000\n")
        # Build output must not be scanned for stray names.
        os.makedirs(os.path.join(tmp, "build-dbg"))
        with open(os.path.join(tmp, "build-dbg", "log (1).txt"), "w") as f:
            f.write("x\n")
        allowlist = os.path.join(tmp, "allow.txt")
        with open(allowlist, "w") as f:
            f.write("sleep src/x/never.cc — stale entry\n")
        import contextlib
        import io
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = run_lint(tmp, allowlist)
        out = buf.getvalue()
        if rc != 1:
            failures.append("end-to-end: expected exit 1, got %d" % rc)
        if "naked-mutex" not in out:
            failures.append("end-to-end: naked-mutex not reported: %r" % out)
        if "hich,$p" not in out:
            failures.append("end-to-end: stray artifact not reported: %r"
                            % out)
        if "log (1).txt" in out:
            failures.append("end-to-end: build output scanned for strays")
        if "matches nothing" not in out:
            failures.append("end-to-end: stale allowlist not reported")

    if failures:
        for f in failures:
            print("braid_lint self-test FAILED: " + f)
        return 1
    print("braid_lint self-test: all %d snippets behaved"
          % (len(BAD_SNIPPETS) + len(GOOD_SNIPPETS) + 2))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root (default: the checkout)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist path (default: "
                             "tools/braid_lint_allowlist.txt under root)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own snippet tests")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test())
    allowlist = args.allowlist or os.path.join(
        args.root, "tools", "braid_lint_allowlist.txt")
    sys.exit(run_lint(args.root, allowlist, verbose=args.verbose))


if __name__ == "__main__":
    main()
