// Tests for the semantic catalog (DESIGN.md §11): signature computation,
// the admission pre-filter, its soundness against the real containment-
// mapping search, catalog/stripe consistency, the configurable mapping
// cap with truncation surfacing, and the interval-implication property
// the range filter relies on.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "caql/caql_query.h"
#include "cms/cache_model.h"
#include "cms/catalog.h"
#include "cms/planner.h"
#include "cms/subsumption.h"
#include "dbms/remote_dbms.h"
#include "obs/trace.h"
#include "relational/predicate.h"

namespace braid::cms {
namespace {

using caql::CaqlQuery;
using caql::ParseCaql;
using rel::CompareOp;
using rel::EvalCompare;
using rel::Value;

// Parses CAQL; a "SETOF " prefix sets the distinct flag (the parser has
// no surface syntax for it).
CaqlQuery Q(const std::string& text) {
  std::string body = text;
  bool distinct = false;
  if (body.rfind("SETOF ", 0) == 0) {
    distinct = true;
    body = body.substr(6);
  }
  auto r = ParseCaql(body);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  CaqlQuery q = r.value();
  q.distinct = distinct;
  return q;
}

CacheElementPtr MakeElement(const std::string& id, const std::string& def) {
  CaqlQuery q = Q(def);
  auto ext = std::make_shared<rel::Relation>(
      id, rel::Schema::FromNames(q.HeadVariables()));
  return std::make_shared<CacheElement>(id, q, ext);
}

// ---------------------------------------------------------------------------
// Signatures.

TEST(CatalogSignature, PlainConjunctiveView) {
  CatalogSignature sig = ComputeSignature(Q("v(X, Y) :- b1(X, Y) & b2(Y, Z)"));
  EXPECT_FALSE(sig.exact_only);
  EXPECT_FALSE(sig.distinct);
  ASSERT_EQ(sig.predicate_counts.size(), 2u);
  EXPECT_EQ(sig.predicate_counts[0].first, "b1");
  EXPECT_EQ(sig.predicate_counts[0].second, 1u);
  EXPECT_EQ(sig.predicate_counts[1].first, "b2");
  EXPECT_TRUE(sig.constants.empty());
  EXPECT_TRUE(sig.ranges.empty());
  EXPECT_NE(sig.predicate_mask, 0u);
}

TEST(CatalogSignature, SelfJoinCountsAtoms) {
  CatalogSignature sig = ComputeSignature(Q("v(X, Z) :- b(X, Y) & b(Y, Z)"));
  ASSERT_EQ(sig.predicate_counts.size(), 1u);
  EXPECT_EQ(sig.predicate_counts[0].second, 2u);
}

TEST(CatalogSignature, ConstantsAndRangesRecorded) {
  CatalogSignature sig = ComputeSignature(Q("v(Y) :- b1(7, Y) & Y < 100"));
  ASSERT_EQ(sig.constants.size(), 1u);
  EXPECT_EQ(sig.constants[0].predicate, "b1");
  EXPECT_EQ(sig.constants[0].pos, 0u);
  EXPECT_EQ(sig.constants[0].value, Value::Int(7));
  ASSERT_EQ(sig.ranges.size(), 1u);
  EXPECT_EQ(sig.ranges[0].predicate, "b1");
  EXPECT_EQ(sig.ranges[0].pos, 1u);
  EXPECT_EQ(sig.ranges[0].op, CompareOp::kLt);
  EXPECT_EQ(sig.ranges[0].bound, Value::Int(100));
}

TEST(CatalogSignature, EvaluableAndNegationAreExactOnly) {
  EXPECT_TRUE(
      ComputeSignature(Q("v(W) :- b1(X, Y) & plus(X, Y, W)")).exact_only);
  EXPECT_TRUE(ComputeSignature(Q("v(X) :- b1(X, Y) & not b2(Y, X)")).exact_only);
  EXPECT_FALSE(ComputeSignature(Q("v(X) :- b1(X, Y)")).exact_only);
}

// ---------------------------------------------------------------------------
// Admission filter.

TEST(SignatureAdmits, PredicateSubsetRequired) {
  CatalogSignature sig = ComputeSignature(Q("v(X) :- b1(X, Y) & b2(Y, Z)"));
  EXPECT_TRUE(
      SignatureAdmits(sig, DescribeQuery(Q("q(X) :- b1(X, Y) & b2(Y, Z)"))));
  // Query lacks b2 entirely: the injective mapping cannot exist.
  EXPECT_FALSE(SignatureAdmits(sig, DescribeQuery(Q("q(X) :- b1(X, Y)"))));
}

TEST(SignatureAdmits, MultisetCountsRequired) {
  CatalogSignature sig = ComputeSignature(Q("v(X, Z) :- b(X, Y) & b(Y, Z)"));
  EXPECT_FALSE(SignatureAdmits(sig, DescribeQuery(Q("q(X) :- b(X, Y)"))));
  EXPECT_TRUE(
      SignatureAdmits(sig, DescribeQuery(Q("q(X, Z) :- b(X, Y) & b(Y, Z)"))));
}

TEST(SignatureAdmits, DefinitionConstantMustAppearInQuery) {
  CatalogSignature sig = ComputeSignature(Q("v(Y) :- b1(7, Y)"));
  EXPECT_TRUE(SignatureAdmits(sig, DescribeQuery(Q("q(Y) :- b1(7, Y)"))));
  // One-way matching never maps a definition constant onto a query
  // variable or a different constant.
  EXPECT_FALSE(SignatureAdmits(sig, DescribeQuery(Q("q(Y) :- b1(8, Y)"))));
  EXPECT_FALSE(SignatureAdmits(sig, DescribeQuery(Q("q(X, Y) :- b1(X, Y)"))));
}

TEST(SignatureAdmits, RangeSatisfiabilityViaConstant) {
  CatalogSignature sig = ComputeSignature(Q("v(X, Y) :- b1(X, Y) & Y < 10"));
  // Query constant 5 satisfies Y < 10 after mapping.
  EXPECT_TRUE(SignatureAdmits(sig, DescribeQuery(Q("q(X) :- b1(X, 5)"))));
  // Query constant 50 cannot: the definition is strictly narrower.
  EXPECT_FALSE(SignatureAdmits(sig, DescribeQuery(Q("q(X) :- b1(X, 50)"))));
}

TEST(SignatureAdmits, RangeSatisfiabilityViaImpliedComparison) {
  CatalogSignature sig = ComputeSignature(Q("v(X, Y) :- b1(X, Y) & Y < 10"));
  EXPECT_TRUE(
      SignatureAdmits(sig, DescribeQuery(Q("q(X, Y) :- b1(X, Y) & Y < 5"))));
  EXPECT_FALSE(
      SignatureAdmits(sig, DescribeQuery(Q("q(X, Y) :- b1(X, Y) & Y < 50"))));
  EXPECT_FALSE(SignatureAdmits(sig, DescribeQuery(Q("q(X, Y) :- b1(X, Y)"))));
}

TEST(SignatureAdmits, DistinctElementCannotServeBagQuery) {
  CatalogSignature sig = ComputeSignature(Q("SETOF v(X) :- b1(X, Y)"));
  ASSERT_TRUE(sig.distinct);
  EXPECT_FALSE(SignatureAdmits(sig, DescribeQuery(Q("q(X) :- b1(X, Y)"))));
  EXPECT_TRUE(SignatureAdmits(sig, DescribeQuery(Q("SETOF q(X) :- b1(X, Y)"))));
}

// ---------------------------------------------------------------------------
// Soundness: the filter never rejects a pair the mapping search matches,
// and the model-level candidate set is a superset of the matched set.
// Swept over a deliberately diverse def × query cross product.

TEST(CatalogSoundness, CandidatesSupersetOfSubsumptionMatches) {
  const std::vector<std::string> defs = {
      "v0(X, Y) :- b1(X, Y)",
      "v1(X, Y) :- b1(X, Y) & Y > 3",
      "v2(Y) :- b1(7, Y)",
      "v3(X, Z) :- b1(X, Y) & b2(Y, Z)",
      "v4(X, Z) :- b1(X, Y) & b1(Y, Z)",
      "SETOF v5(X) :- b1(X, Y)",
      "v6(W) :- b1(X, Y) & plus(X, Y, W)",
      "v7(X) :- b1(X, Y) & not b2(Y, X)",
      "v8(X, Y) :- b2(X, Y) & X >= 2 & Y <= 9",
  };
  const std::vector<std::string> queries = {
      "q(X, Y) :- b1(X, Y)",
      "q(X, Y) :- b1(X, Y) & Y > 5",
      "q(Y) :- b1(7, Y)",
      "q(Y) :- b1(7, Y) & Y > 4",
      "q(X, Z) :- b1(X, Y) & b2(Y, Z)",
      "q(X, Z) :- b1(X, Y) & b1(Y, Z)",
      "q(X, Z) :- b1(X, Y) & b1(Y, Z) & b2(Z, W)",
      "SETOF q(X) :- b1(X, Y)",
      "q(W) :- b1(X, Y) & plus(X, Y, W)",
      "q(X) :- b1(X, Y) & not b2(Y, X)",
      "q(X, Y) :- b2(X, Y) & X >= 2 & Y <= 9",
      "q(X, Y) :- b2(X, Y) & X > 2 & Y < 9",
      "q(X) :- b2(X, 5)",
  };

  CacheModel model;
  for (size_t i = 0; i < defs.size(); ++i) {
    model.Register(MakeElement("E" + std::to_string(i), defs[i]));
  }
  ASSERT_EQ(model.CheckCatalogConsistency(), "");

  for (const std::string& qt : queries) {
    const CaqlQuery query = Q(qt);
    const QueryDescriptor descriptor = DescribeQuery(query);

    std::set<std::string> candidate_ids;
    for (const CacheElementPtr& e : model.SubsumptionCandidates(descriptor)) {
      EXPECT_TRUE(candidate_ids.insert(e->id()).second)
          << "duplicate candidate " << e->id() << " for " << qt;
    }

    for (size_t i = 0; i < defs.size(); ++i) {
      const bool matches =
          !ComputeSubsumptionAll(Q(defs[i]), query).empty();
      const std::string id = "E" + std::to_string(i);
      if (matches) {
        EXPECT_TRUE(candidate_ids.count(id))
            << "catalog rejected a true match: " << defs[i] << " vs " << qt;
        EXPECT_TRUE(
            SignatureAdmits(ComputeSignature(Q(defs[i])), descriptor))
            << defs[i] << " vs " << qt;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Planner equivalence: catalog-on and catalog-off retrieval feed the same
// matches to the planner.

TEST(CatalogPlanner, OnOffRelevantElementsAgree) {
  CacheModel model;
  model.Register(MakeElement("E1", "v1(X, Y) :- b1(X, Y)"));
  model.Register(MakeElement("E2", "v2(X, Y) :- b1(X, Y) & Y > 3"));
  model.Register(MakeElement("E3", "v3(X, Z) :- b1(X, Y) & b2(Y, Z)"));
  model.Register(MakeElement("E4", "v4(Y) :- b2(9, Y)"));

  dbms::Database db;
  dbms::RemoteDbms remote(db);
  QueryPlanner with(&model, &remote, PlannerConfig{true, /*use_catalog=*/true});
  QueryPlanner without(&model, &remote,
                       PlannerConfig{true, /*use_catalog=*/false});

  for (const std::string& qt :
       {std::string("q(X, Y) :- b1(X, Y) & Y > 5"),
        std::string("q(X, Z) :- b1(X, Y) & b2(Y, Z)"),
        std::string("q(Y) :- b2(9, Y)")}) {
    const CaqlQuery query = Q(qt);
    std::multiset<std::string> a, b;
    for (const auto& [element, match] : with.RelevantElements(query)) {
      a.insert(element->id() + "/" + match.ToString());
    }
    for (const auto& [element, match] : without.RelevantElements(query)) {
      b.insert(element->id() + "/" + match.ToString());
    }
    EXPECT_EQ(a, b) << qt;
  }
}

// ---------------------------------------------------------------------------
// Consistency invariant.

TEST(CatalogConsistency, SurvivesInsertAndRemoveWaves) {
  CacheModel model;
  for (int wave = 0; wave < 4; ++wave) {
    for (int i = 0; i < 12; ++i) {
      const std::string n = std::to_string(wave * 12 + i);
      model.Register(
          MakeElement("E" + n, "v" + n + "(X, Y) :- b1(X, " + n + ") & b2(Y, Z)"));
    }
    EXPECT_EQ(model.CheckCatalogConsistency(), "") << "wave " << wave;
    for (int i = 0; i < 12; i += 2) {
      model.Remove("E" + std::to_string(wave * 12 + i));
    }
    EXPECT_EQ(model.CheckCatalogConsistency(), "") << "wave " << wave;
  }
  // Re-registering an existing id under a different definition moves it
  // between stripes; the catalog must follow.
  model.Register(MakeElement("E1", "w(X) :- b2(X, 1)"));
  EXPECT_EQ(model.CheckCatalogConsistency(), "");
}

TEST(CatalogConsistency, DanglingPostingReported) {
  CatalogShard shard;
  CacheElementPtr element = MakeElement("E1", "v(X) :- b1(X, Y)");
  shard.Insert("E1", std::make_shared<const CatalogSignature>(
                         ComputeSignature(element->definition())));
  // Build against a map that is missing the posted element — the shape of
  // a maintenance bug (eviction skipped the catalog).
  std::map<std::string, CacheElementPtr> empty;
  auto index = shard.Build(empty);
  EXPECT_NE(index->CheckConsistency(empty), "");

  std::map<std::string, CacheElementPtr> full = {{"E1", element}};
  auto ok = shard.Build(full);
  EXPECT_EQ(ok->CheckConsistency(full), "");
  // An element the shard never saw must be flagged as unposted.
  full["E2"] = MakeElement("E2", "w(X) :- b2(X, Y)");
  EXPECT_NE(ok->CheckConsistency(full), "");
}

// ---------------------------------------------------------------------------
// Configurable mapping cap.

TEST(SubsumptionCap, TruncatesAtConfiguredBoundary) {
  const CaqlQuery def = Q("v(X, Y) :- b(X, Y)");
  const CaqlQuery query = Q("q(X, Y) :- b(X, Y) & b(Y, X)");

  // Two mappings exist (the element atom can cover either query atom).
  SubsumptionInfo info;
  auto all = ComputeSubsumptionAll(def, query, SubsumptionOptions{}, &info);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_FALSE(info.truncated);

  // Cap exactly at the mapping count: complete, not truncated.
  info = SubsumptionInfo{};
  all = ComputeSubsumptionAll(def, query, SubsumptionOptions{2}, &info);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_FALSE(info.truncated);

  // One below: a mapping is dropped and the truncation is surfaced.
  info = SubsumptionInfo{};
  all = ComputeSubsumptionAll(def, query, SubsumptionOptions{1}, &info);
  EXPECT_EQ(all.size(), 1u);
  EXPECT_TRUE(info.truncated);
}

TEST(SubsumptionCap, PlannerSurfacesTruncationOnSpan) {
  CacheModel model;
  model.Register(MakeElement("E1", "v(X, Y) :- b(X, Y)"));
  dbms::Database db;
  dbms::RemoteDbms remote(db);
  QueryPlanner planner(&model, &remote,
                       PlannerConfig{true, true, /*max_mappings=*/1});

  obs::Tracer tracer;
  planner.RelevantElements(Q("q(X, Y) :- b(X, Y) & b(Y, X)"), &tracer);
  obs::Span span;
  ASSERT_TRUE(tracer.FindSpan("subsumption", &span));
  bool annotated = false;
  for (const auto& [key, value] : span.attrs) {
    if (key == "truncated") {
      annotated = true;
      EXPECT_EQ(value, "1");
    }
  }
  EXPECT_TRUE(annotated);

  // With the default cap nothing is truncated and no annotation appears.
  QueryPlanner roomy(&model, &remote, PlannerConfig{true});
  obs::Tracer clean;
  roomy.RelevantElements(Q("q(X, Y) :- b(X, Y) & b(Y, X)"), &clean);
  ASSERT_TRUE(clean.FindSpan("subsumption", &span));
  for (const auto& [key, value] : span.attrs) {
    EXPECT_NE(key, "truncated");
  }
}

// ---------------------------------------------------------------------------
// Interval-implication property: IntervalImplies(op1, a, op2, b) claims
// "forall x: (x op1 a) -> (x op2 b)". Check every claim against
// brute-force evaluation over a domain that straddles both bounds, and
// require the obviously-true diagonal so the test cannot pass vacuously.

TEST(IntervalImpliesProperty, SoundOverSmallIntegerDomain) {
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  size_t claims = 0;
  for (CompareOp op1 : ops) {
    for (CompareOp op2 : ops) {
      for (int64_t a = -2; a <= 2; ++a) {
        for (int64_t b = -2; b <= 2; ++b) {
          if (!IntervalImplies(op1, Value::Int(a), op2, Value::Int(b))) {
            continue;
          }
          ++claims;
          for (int64_t x = -5; x <= 5; ++x) {
            if (EvalCompare(op1, Value::Int(x), Value::Int(a))) {
              EXPECT_TRUE(EvalCompare(op2, Value::Int(x), Value::Int(b)))
                  << "x=" << x << " op1=" << static_cast<int>(op1)
                  << " a=" << a << " op2=" << static_cast<int>(op2)
                  << " b=" << b;
            }
          }
        }
      }
      // Reflexive implication must always be claimed.
      EXPECT_TRUE(IntervalImplies(op1, Value::Int(0), op1, Value::Int(0)));
    }
  }
  EXPECT_GT(claims, 36u);  // far more than just the reflexive diagonal
}

TEST(IntervalImpliesProperty, SoundOverDoubleBounds) {
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  const double bounds[] = {-1.5, 0.0, 0.25, 2.0};
  const double domain[] = {-3.0, -1.5, -0.1, 0.0, 0.25, 0.3, 2.0, 4.5};
  for (CompareOp op1 : ops) {
    for (CompareOp op2 : ops) {
      for (double a : bounds) {
        for (double b : bounds) {
          if (!IntervalImplies(op1, Value::Double(a), op2,
                               Value::Double(b))) {
            continue;
          }
          for (double x : domain) {
            if (EvalCompare(op1, Value::Double(x), Value::Double(a))) {
              EXPECT_TRUE(
                  EvalCompare(op2, Value::Double(x), Value::Double(b)))
                  << "x=" << x << " a=" << a << " b=" << b;
            }
          }
        }
      }
    }
  }
}

// ComparisonImplied over single-variable atoms must agree with the same
// brute-force ground truth (it layers syntactic and interval reasoning).
TEST(ComparisonImpliedProperty, SoundOverSmallIntegerDomain) {
  const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                           CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  auto atom = [](CompareOp op, int64_t bound) {
    return logic::Atom(rel::CompareOpSymbol(op),
                       {logic::Term::Var("X"), logic::Term::Int(bound)});
  };
  for (CompareOp op1 : ops) {
    for (CompareOp op2 : ops) {
      for (int64_t a = -2; a <= 2; ++a) {
        for (int64_t b = -2; b <= 2; ++b) {
          if (!ComparisonImplied({atom(op1, a)}, atom(op2, b))) continue;
          for (int64_t x = -5; x <= 5; ++x) {
            if (EvalCompare(op1, Value::Int(x), Value::Int(a))) {
              EXPECT_TRUE(EvalCompare(op2, Value::Int(x), Value::Int(b)))
                  << "x=" << x << " a=" << a << " b=" << b;
            }
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace braid::cms
