// Tests for the inference engine: problem-graph extraction, shaping,
// view specification, path-expression creation, advice management, and
// the two inference strategies.

#include <gtest/gtest.h>

#include "cms/advice_manager.h"
#include "ie/inference_engine.h"
#include "logic/parser.h"
#include "workload/generators.h"

namespace braid::ie {
namespace {

using logic::Atom;
using logic::ParseProgram;
using logic::ParseQueryAtom;
using rel::Value;

logic::KnowledgeBase Kb(const std::string& text) {
  logic::KnowledgeBase kb;
  Status s = ParseProgram(text, &kb);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return kb;
}

Atom QA(const std::string& text) { return ParseQueryAtom(text).value(); }

const char* kExampleKb = R"(
#base b1(a, b).
#base b2(a, b).
#base b3(a, b, c).
k1(X, Y) :- b1(c1, Y), k2(X, Y).
k2(X, Y) :- b2(X, Z), b3(Z, c2, Y).
k2(X, Y) :- b3(X, c3, Z), b1(Z, Y).
)";

// ---------------------------------------------------------------------------
// Extractor

TEST(Extractor, BuildsAndOrGraph) {
  logic::KnowledgeBase kb = Kb(kExampleKb);
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("k1(X, Y)"));
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->root->alternatives.size(), 1u);
  const AndNode& r1 = *g->root->alternatives[0];
  EXPECT_EQ(r1.rule_id, "R1");
  ASSERT_EQ(r1.subgoals.size(), 2u);
  EXPECT_EQ(r1.subgoals[0]->leaf, OrNode::LeafKind::kBase);
  EXPECT_EQ(r1.subgoals[1]->leaf, OrNode::LeafKind::kExpanded);
  EXPECT_EQ(r1.subgoals[1]->alternatives.size(), 2u);
}

TEST(Extractor, ConstantsPropagateThroughUnification) {
  logic::KnowledgeBase kb = Kb(kExampleKb);
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("k1(7, Y)"));
  ASSERT_TRUE(g.ok());
  // X=7 must reach k2's subgoals: b2(7, Z) under R2.
  const OrNode& k2 = *g->root->alternatives[0]->subgoals[1];
  const Atom& b2 = k2.alternatives[0]->subgoals[0]->goal;
  EXPECT_EQ(b2.args[0], logic::Term::Int(7));
}

TEST(Extractor, FailedHeadUnificationCullsAlternative) {
  logic::KnowledgeBase kb = Kb(R"(
#base b(x).
p(1) :- b(X).
p(2) :- b(X).
)");
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("p(1)"));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->root->alternatives.size(), 1u);
}

TEST(Extractor, RecursionMarkedNotExpanded) {
  logic::KnowledgeBase kb = Kb(workload::GraphKb());
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("reachable(X, Y)"));
  ASSERT_TRUE(g.ok());
  const AndNode& rec_rule = *g->root->alternatives[1];
  ASSERT_EQ(rec_rule.subgoals.size(), 2u);
  EXPECT_EQ(rec_rule.subgoals[1]->leaf, OrNode::LeafKind::kRecursive);
}

TEST(Extractor, UnknownPredicateErrors) {
  logic::KnowledgeBase kb = Kb("#base b(x).");
  ProblemGraphExtractor ex(&kb);
  EXPECT_EQ(ex.Extract(QA("nosuch(X)")).status().code(),
            StatusCode::kNotFound);
}

TEST(Extractor, BaseRelationsListsAll) {
  logic::KnowledgeBase kb = Kb(kExampleKb);
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("k1(X, Y)"));
  ASSERT_TRUE(g.ok());
  auto bases = g->BaseRelations();
  EXPECT_EQ(std::set<std::string>(bases.begin(), bases.end()),
            (std::set<std::string>{"b1", "b2", "b3"}));
}

// ---------------------------------------------------------------------------
// Shaper

TEST(Shaper, GroundFalseComparisonCullsAlternative) {
  logic::KnowledgeBase kb = Kb(R"(
#base b(x).
p(X) :- b(X), 1 > 2.
p(X) :- b(X), 2 > 1.
)");
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("p(X)"));
  ASSERT_TRUE(g.ok());
  ProblemGraphShaper shaper(&kb, nullptr);
  ASSERT_TRUE(shaper.Shape(&g.value()).ok());
  // The impossible alternative is culled; the satisfied ground comparison
  // is deleted from the surviving body.
  ASSERT_EQ(g->root->alternatives.size(), 1u);
  EXPECT_EQ(g->root->alternatives[0]->subgoals.size(), 1u);
}

TEST(Shaper, DeadSubtreeCullsParent) {
  logic::KnowledgeBase kb = Kb(R"(
#base b(x).
p(X) :- q(X).
q(X) :- b(X), 1 > 2.
)");
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("p(X)"));
  ASSERT_TRUE(g.ok());
  ProblemGraphShaper shaper(&kb, nullptr);
  ASSERT_TRUE(shaper.Shape(&g.value()).ok());
  EXPECT_TRUE(g->root->alternatives.empty());
}

TEST(Shaper, ReordersSelectiveConjunctFirst) {
  // big has 1000 rows, small has 2: the shaper should visit small first.
  dbms::Database db;
  rel::Relation big("big", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 1000; ++i) {
    big.AppendUnchecked({Value::Int(i), Value::Int(i)});
  }
  rel::Relation small("small", rel::Schema::FromNames({"a", "b"}));
  small.AppendUnchecked({Value::Int(1), Value::Int(2)});
  small.AppendUnchecked({Value::Int(3), Value::Int(4)});
  BRAID_CHECK_OK(db.AddTable(std::move(big)));
  BRAID_CHECK_OK(db.AddTable(std::move(small)));

  logic::KnowledgeBase kb = Kb(R"(
#base big(a, b).
#base small(a, b).
p(X, Z) :- big(X, Y), small(Y, Z).
)");
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("p(X, Z)"));
  ASSERT_TRUE(g.ok());
  ProblemGraphShaper shaper(&kb, &db);
  ASSERT_TRUE(shaper.Shape(&g.value()).ok());
  const AndNode& rule = *g->root->alternatives[0];
  EXPECT_EQ(rule.subgoals[0]->goal.predicate, "small");
  EXPECT_EQ(rule.subgoals[1]->goal.predicate, "big");
  // Binding pattern: big's Y is bound after small produced it.
  EXPECT_TRUE(rule.subgoals[1]->bound_vars.count(
      rule.subgoals[1]->goal.args[1].var_name()));
}

TEST(Shaper, FunctionalDependencyTightensEstimate) {
  // With an FD 0 -> 1 on person and the first argument bound, the lookup
  // is estimated as a single tuple, so it should be scheduled before an
  // unbound scan of another table of equal size.
  dbms::Database db;
  rel::Relation person("person", rel::Schema::FromNames({"id", "age"}));
  rel::Relation other("other", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 100; ++i) {
    person.AppendUnchecked({Value::Int(i), Value::Int(i % 50)});
    other.AppendUnchecked({Value::Int(i % 10), Value::Int(i)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(person)));
  BRAID_CHECK_OK(db.AddTable(std::move(other)));
  logic::KnowledgeBase kb = Kb(R"(
#base person(id, age).
#base other(a, b).
#fd person: 0 -> 1.
p(A, B) :- other(A, B), person(7, A).
)");
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("p(A, B)"));
  ASSERT_TRUE(g.ok());
  ProblemGraphShaper shaper(&kb, &db);
  ASSERT_TRUE(shaper.Shape(&g.value()).ok());
  EXPECT_EQ(g->root->alternatives[0]->subgoals[0]->goal.predicate, "person");
}

TEST(Shaper, MutexSoaMarksOrNode) {
  logic::KnowledgeBase kb = Kb(R"(
#base b(x, y).
#mutex g1, g2.
g1(X) :- b(X, Y), Y > 5.
g2(X) :- b(X, Y), Y <= 5.
p(X, Y) :- g1(X), b(X, Y).
p(X, Y) :- g2(X), b(X, Y).
top(X, Y) :- p(X, Y).
)");
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("top(X, Y)"));
  ASSERT_TRUE(g.ok());
  ProblemGraphShaper shaper(&kb, nullptr);
  ASSERT_TRUE(shaper.Shape(&g.value()).ok());
  const OrNode& p = *g->root->alternatives[0]->subgoals[0];
  EXPECT_EQ(p.goal.predicate, "p");
  EXPECT_TRUE(p.alternatives_mutex);
}

// ---------------------------------------------------------------------------
// View specifier

TEST(ViewSpecifierTest, PaperExample1ViewSpecs) {
  logic::KnowledgeBase kb = Kb(kExampleKb);
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("k1(X, Y)"));
  ASSERT_TRUE(g.ok());
  ProblemGraphShaper shaper(&kb, nullptr, ShaperConfig{true, false});
  ASSERT_TRUE(shaper.Shape(&g.value()).ok());
  ViewSpecifier vs(&kb, ViewSpecifierConfig{3});
  auto spec = vs.Specify(g.value());
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->views.size(), 3u);

  // R1's run: d(Y^) =def b1(c1, Y). Y is a producer at that point.
  const advice::ViewSpec* r1_view = nullptr;
  for (const auto& v : spec->views) {
    if (v.source_rules[0] == "R1") r1_view = &v;
  }
  ASSERT_NE(r1_view, nullptr);
  ASSERT_EQ(r1_view->head.size(), 1u);
  EXPECT_EQ(r1_view->head[0].name, "Y");
  EXPECT_EQ(r1_view->head[0].binding, advice::Binding::kProducer);

  // R2's run: d(X^, Y?) with the Z join variable internal (minimum
  // argument set excludes Z).
  const advice::ViewSpec* r2_view = nullptr;
  for (const auto& v : spec->views) {
    if (v.source_rules[0] == "R2") r2_view = &v;
  }
  ASSERT_NE(r2_view, nullptr);
  EXPECT_EQ(r2_view->body.size(), 2u);
  std::set<std::string> head_names;
  for (const auto& av : r2_view->head) head_names.insert(av.name);
  EXPECT_EQ(head_names, (std::set<std::string>{"X", "Y"}));
  for (const auto& av : r2_view->head) {
    if (av.name == "Y") {
      EXPECT_EQ(av.binding, advice::Binding::kConsumer);
    } else {
      EXPECT_EQ(av.binding, advice::Binding::kProducer);
    }
  }
}

TEST(ViewSpecifierTest, MaxConjunctionSizeSplitsRuns) {
  logic::KnowledgeBase kb = Kb(R"(
#base a(x, y).
#base b(x, y).
#base c(x, y).
p(X, W) :- a(X, Y), b(Y, Z), c(Z, W).
)");
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("p(X, W)"));
  ASSERT_TRUE(g.ok());
  ProblemGraphShaper shaper(&kb, nullptr, ShaperConfig{true, false});
  ASSERT_TRUE(shaper.Shape(&g.value()).ok());

  ViewSpecifier vs1(&kb, ViewSpecifierConfig{1});
  auto spec1 = vs1.Specify(g.value());
  ASSERT_TRUE(spec1.ok());
  EXPECT_EQ(spec1->views.size(), 3u);  // one view per atom

  ViewSpecifier vs3(&kb, ViewSpecifierConfig{3});
  auto spec3 = vs3.Specify(g.value());
  ASSERT_TRUE(spec3.ok());
  EXPECT_EQ(spec3->views.size(), 1u);  // whole body in one view
  EXPECT_EQ(spec3->views[0].body.size(), 3u);
}

TEST(ViewSpecifierTest, MinimumArgumentSetFormula) {
  // Paper §4.2.1: k9(X,Y) :- k2(X,Z) & b1(Z,W) & b2(W,U) & b3(U,V) & k3(V,Y)
  // gives d(Z,V) for the b1&b2&b3 run.
  logic::KnowledgeBase kb = Kb(R"(
#base b1(a, b).
#base b2(a, b).
#base b3(a, b).
k2(X, Z) :- b1(X, Z).
k3(V, Y) :- b2(V, Y).
k9(X, Y) :- k2(X, Z), b1(Z, W), b2(W, U), b3(U, V), k3(V, Y).
)");
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("k9(X, Y)"));
  ASSERT_TRUE(g.ok());
  ProblemGraphShaper shaper(&kb, nullptr, ShaperConfig{true, false});
  ASSERT_TRUE(shaper.Shape(&g.value()).ok());
  ViewSpecifier vs(&kb, ViewSpecifierConfig{3});
  auto spec = vs.Specify(g.value());
  ASSERT_TRUE(spec.ok());
  auto plan_it = spec->rule_plans.find("R3");  // k9's rule
  ASSERT_NE(plan_it, spec->rule_plans.end());
  const advice::ViewSpec* run_view = nullptr;
  for (const RuleItem& item : plan_it->second.items) {
    if (item.kind == RuleItem::Kind::kRun && item.run_atoms.size() == 3) {
      run_view = spec->FindView(item.view_id);
    }
  }
  ASSERT_NE(run_view, nullptr);
  std::set<std::string> args;
  for (const auto& av : run_view->head) args.insert(av.name);
  EXPECT_EQ(args, (std::set<std::string>{"Z", "V"}));
}

// ---------------------------------------------------------------------------
// Path creator

TEST(PathCreatorTest, Example1SequenceShape) {
  logic::KnowledgeBase kb = Kb(kExampleKb);
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("k1(X, Y)"));
  ASSERT_TRUE(g.ok());
  ProblemGraphShaper shaper(&kb, nullptr, ShaperConfig{true, false});
  ASSERT_TRUE(shaper.Shape(&g.value()).ok());
  ViewSpecifier vs(&kb, ViewSpecifierConfig{3});
  auto spec = vs.Specify(g.value());
  ASSERT_TRUE(spec.ok());
  PathExpressionCreator pc(&spec.value());
  auto path = pc.Create(g.value());
  ASSERT_NE(path, nullptr);
  const std::string s = path->ToString();
  // Without guards the k2 alternatives form a sequence (Example 1), with
  // the tail repeated <0,|Y|> on R1's producer.
  EXPECT_NE(s.find("<0,|Y|>"), std::string::npos) << s;
  EXPECT_EQ(s.find('['), std::string::npos) << s;  // no alternation
  EXPECT_EQ(path->MentionedViews().size(), 3u);
}

TEST(PathCreatorTest, Example2GuardedAlternation) {
  // Example 2: guards k3/k4 make the k2 alternatives conditional.
  logic::KnowledgeBase kb = Kb(R"(
#base b1(a, b).
#base b2(a, b).
#base b3(a, b, c).
#mutex k3, k4.
k3(X) :- b1(X, W).
k4(X) :- b2(X, W).
k1(X, Y) :- b1(c1, Y), k2(X, Y).
k2(X, Y) :- k3(X), b2(X, Z), b3(Z, c2, Y).
k2(X, Y) :- k4(X), b3(X, c3, Z), b1(Z, Y).
)");
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("k1(X, Y)"));
  ASSERT_TRUE(g.ok());
  ProblemGraphShaper shaper(&kb, nullptr, ShaperConfig{true, false});
  ASSERT_TRUE(shaper.Shape(&g.value()).ok());
  ViewSpecifier vs(&kb, ViewSpecifierConfig{3});
  auto spec = vs.Specify(g.value());
  ASSERT_TRUE(spec.ok());
  PathExpressionCreator pc(&spec.value());
  auto path = pc.Create(g.value());
  ASSERT_NE(path, nullptr);
  EXPECT_NE(path->ToString().find('['), std::string::npos)
      << path->ToString();
}

TEST(PathCreatorTest, RecursionWrapsInRepetition) {
  logic::KnowledgeBase kb = Kb(workload::GraphKb());
  ProblemGraphExtractor ex(&kb);
  auto g = ex.Extract(QA("reachable(X, Y)"));
  ASSERT_TRUE(g.ok());
  ProblemGraphShaper shaper(&kb, nullptr, ShaperConfig{true, false});
  ASSERT_TRUE(shaper.Shape(&g.value()).ok());
  ViewSpecifier vs(&kb, ViewSpecifierConfig{3});
  auto spec = vs.Specify(g.value());
  ASSERT_TRUE(spec.ok());
  PathExpressionCreator pc(&spec.value());
  auto path = pc.Create(g.value());
  ASSERT_NE(path, nullptr);
  EXPECT_NE(path->ToString().find("|rec|"), std::string::npos)
      << path->ToString();
}

// ---------------------------------------------------------------------------
// Advice manager (IE-side semantics validated through CMS component)

TEST(AdviceManagerTest, GeneralizationTriggersFromCrossViewSubsumption) {
  // The paper's trigger: b1(X,Y) in another view subsumes b1(c1,Y).
  cms::AdviceManager mgr;
  advice::AdviceSet advice;
  advice::ViewSpec d1;
  d1.id = "d1";
  d1.head = {advice::AnnotatedVar{"Y", advice::Binding::kProducer}};
  d1.body = {Atom("b1", {logic::Term::Str("c1"), logic::Term::Var("Y")})};
  advice::ViewSpec d3;
  d3.id = "d3";
  d3.head = {advice::AnnotatedVar{"Z", advice::Binding::kProducer},
             advice::AnnotatedVar{"Y", advice::Binding::kProducer}};
  d3.body = {Atom("b1", {logic::Term::Var("Z"), logic::Term::Var("Y")})};
  advice.view_specs = {d1, d3};
  mgr.BeginSession(advice);

  caql::CaqlQuery instance = d1.AsCaql();
  EXPECT_TRUE(mgr.ShouldGeneralize("d1", instance));
}

TEST(AdviceManagerTest, NoAdviceMeansDefaults) {
  cms::AdviceManager mgr;
  EXPECT_TRUE(mgr.ShouldCacheResult("d1"));
  EXPECT_TRUE(mgr.IndexHints("d1").empty());
  EXPECT_FALSE(mgr.LazyHint("d1"));
  EXPECT_EQ(mgr.PredictedDistance("d1"), std::nullopt);
  EXPECT_TRUE(mgr.PrefetchCandidates().empty());
}

TEST(AdviceManagerTest, NoFutureOccurrenceMeansDoNotCache) {
  cms::AdviceManager mgr;
  advice::AdviceSet advice;
  advice.path_expression = advice::PathExpr::Sequence(
      {advice::PathExpr::Pattern("d1", {}),
       advice::PathExpr::Pattern("d2", {})},
      advice::RepBound::Fixed(1), advice::RepBound::Fixed(1));
  mgr.BeginSession(advice);
  mgr.OnQuery("d1");
  // d1 cannot recur; d2 can still appear.
  EXPECT_FALSE(mgr.ShouldCacheResult("d1"));
  EXPECT_TRUE(mgr.ShouldCacheResult("d2"));
}

// ---------------------------------------------------------------------------
// Strategies

TEST(Strategies, SingleSolutionModeStopsEarly) {
  workload::GenealogyParams params;
  params.people = 200;
  dbms::RemoteDbms remote(workload::MakeGenealogyDatabase(params));
  cms::Cms cms(&remote, cms::CmsConfig{});
  logic::KnowledgeBase kb = Kb(workload::GenealogyKb());

  IeConfig all_config;
  InferenceEngine ie_all(&kb, &cms, all_config);
  auto all = ie_all.Ask("ancestor(150, Y)?");
  ASSERT_TRUE(all.ok()) << all.status().ToString();

  IeConfig one_config;
  one_config.max_solutions = 1;
  cms::Cms cms2(&remote, cms::CmsConfig{});
  InferenceEngine ie_one(&kb, &cms2, one_config);
  auto one = ie_one.Ask("ancestor(150, Y)?");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->solutions.NumTuples(), 1u);
  EXPECT_LE(one->interpreter_stats.tuples_consumed,
            all->interpreter_stats.tuples_consumed);
}

TEST(Strategies, InterpretedEmitsCaqlPerRunCompiledPerRelation) {
  workload::GenealogyParams params;
  params.people = 80;
  dbms::RemoteDbms remote(workload::MakeGenealogyDatabase(params));
  logic::KnowledgeBase kb = Kb(workload::GenealogyKb());

  cms::Cms cms_i(&remote, cms::CmsConfig{});
  InferenceEngine interp(&kb, &cms_i, IeConfig{});
  auto a = interp.Ask("grandparent(60, Y)?");
  ASSERT_TRUE(a.ok());
  EXPECT_GT(a->interpreter_stats.caql_queries, 0u);

  cms::Cms cms_c(&remote, cms::CmsConfig{});
  IeConfig comp_config;
  comp_config.strategy = StrategyKind::kCompiled;
  InferenceEngine comp(&kb, &cms_c, comp_config);
  auto b = comp.Ask("grandparent(60, Y)?");
  ASSERT_TRUE(b.ok());
  // Compiled strategy: one fetch per reachable base relation.
  EXPECT_LE(b->compiled_stats.caql_queries, 2u);

  std::set<std::string> sa, sb;
  for (const auto& t : a->solutions.tuples()) sa.insert(TupleToString(t));
  for (const auto& t : b->solutions.tuples()) sb.insert(TupleToString(t));
  EXPECT_EQ(sa, sb);
}

TEST(Strategies, CompiledUsesClosureSoaThroughCms) {
  workload::GraphParams params;
  params.nodes = 40;
  params.edges = 80;
  dbms::RemoteDbms remote(workload::MakeGraphDatabase(params));
  cms::Cms cms(&remote, cms::CmsConfig{});
  logic::KnowledgeBase kb = Kb(workload::GraphKb());
  IeConfig config;
  config.strategy = StrategyKind::kCompiled;
  InferenceEngine ie(&kb, &cms, config);
  auto out = ie.Ask("reachable(1, Y)?");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // The closure SOA routes recursion to the CMS fixed-point operator, so
  // no fixpoint iterations happen in the IE.
  EXPECT_EQ(out->compiled_stats.iterations, 0u);
  EXPECT_FALSE(out->solutions.empty());
}

TEST(Strategies, CompiledFixpointWithoutSoa) {
  // Same graph, but a KB without the #closure SOA: bottom-up iteration.
  workload::GraphParams params;
  params.nodes = 30;
  params.edges = 60;
  dbms::RemoteDbms remote(workload::MakeGraphDatabase(params));
  cms::Cms cms(&remote, cms::CmsConfig{});
  logic::KnowledgeBase kb = Kb(R"(
#base edge(src, dst).
reachable(X, Y) :- edge(X, Y).
reachable(X, Y) :- edge(X, Z), reachable(Z, Y).
)");
  IeConfig config;
  config.strategy = StrategyKind::kCompiled;
  InferenceEngine ie(&kb, &cms, config);
  auto out = ie.Ask("reachable(1, Y)?");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(out->compiled_stats.iterations, 1u);

  // Cross-check against the SOA-based run on the same database.
  cms::Cms cms2(&remote, cms::CmsConfig{});
  logic::KnowledgeBase kb2 = Kb(workload::GraphKb());
  InferenceEngine ie2(&kb2, &cms2, config);
  auto out2 = ie2.Ask("reachable(1, Y)?");
  ASSERT_TRUE(out2.ok());
  std::set<std::string> s1, s2;
  for (const auto& t : out->solutions.tuples()) s1.insert(TupleToString(t));
  for (const auto& t : out2->solutions.tuples()) s2.insert(TupleToString(t));
  EXPECT_EQ(s1, s2);
}

TEST(Strategies, InterpretedHandlesRecursionWithDepthBound) {
  workload::GraphParams params;
  params.nodes = 25;
  params.edges = 40;
  dbms::RemoteDbms remote(workload::MakeGraphDatabase(params));
  cms::Cms cms(&remote, cms::CmsConfig{});
  logic::KnowledgeBase kb = Kb(workload::GraphKb());
  InferenceEngine ie(&kb, &cms, IeConfig{});
  auto interp = ie.Ask("reachable(0, Y)?");
  ASSERT_TRUE(interp.ok()) << interp.status().ToString();

  cms::Cms cms2(&remote, cms::CmsConfig{});
  IeConfig comp_config;
  comp_config.strategy = StrategyKind::kCompiled;
  InferenceEngine comp(&kb, &cms2, comp_config);
  auto compiled = comp.Ask("reachable(0, Y)?");
  ASSERT_TRUE(compiled.ok());

  std::set<std::string> si, sc;
  for (const auto& t : interp->solutions.tuples()) {
    si.insert(TupleToString(t));
  }
  for (const auto& t : compiled->solutions.tuples()) {
    sc.insert(TupleToString(t));
  }
  // Distinct solutions agree (the interpreter may emit duplicates).
  EXPECT_EQ(si, sc);
}

TEST(Strategies, BuiltinEvaluationInRules) {
  dbms::Database db;
  rel::Relation nums("nums", rel::Schema::FromNames({"n"}));
  for (int i = 0; i < 10; ++i) nums.AppendUnchecked({Value::Int(i)});
  BRAID_CHECK_OK(db.AddTable(std::move(nums)));
  dbms::RemoteDbms remote(std::move(db));
  cms::Cms cms(&remote, cms::CmsConfig{});
  logic::KnowledgeBase kb = Kb(R"(
#base nums(n).
doubled(X, Y) :- nums(X), times(X, 2, Y).
big_doubled(X, Y) :- doubled(X, Y), Y > 10.
)");
  InferenceEngine ie(&kb, &cms, IeConfig{});
  auto out = ie.Ask("big_doubled(X, Y)?");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->solutions.NumTuples(), 4u);  // X in {6,7,8,9}
}

TEST(Strategies, FactsOnlyPredicates) {
  dbms::Database db;
  rel::Relation b("b", rel::Schema::FromNames({"x"}));
  b.AppendUnchecked({Value::Int(1)});
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  dbms::RemoteDbms remote(std::move(db));
  cms::Cms cms(&remote, cms::CmsConfig{});
  logic::KnowledgeBase kb = Kb(R"(
#base b(x).
const_fact(42).
p(X, Y) :- b(X), const_fact(Y).
)");
  InferenceEngine ie(&kb, &cms, IeConfig{});
  auto out = ie.Ask("p(X, Y)?");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->solutions.NumTuples(), 1u);
  EXPECT_EQ(out->solutions.tuple(0)[1], Value::Int(42));
}

}  // namespace
}  // namespace braid::ie
