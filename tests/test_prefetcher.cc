// Tests for the background prefetch pipeline: async execution and
// foreground install, join semantics (exact key and via view), session
// drain/cancel, admission memoization, and the measured wall-clock
// overlap the pipeline exists to produce. Runs under TSan in CI.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <tuple>

#include "advice/advice.h"
#include "cms/cms.h"
#include "cms/prefetcher.h"
#include "obs/metrics.h"
#include "testing/fault_remote.h"
#include "workload/generators.h"

namespace braid::cms {
namespace {

using caql::CaqlQuery;
using caql::ParseCaql;
using rel::Value;

CaqlQuery Q(const std::string& text) {
  auto r = ParseCaql(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status().ToString();
  return r.value();
}

dbms::Database TestDb() {
  dbms::Database db;
  rel::Relation b1("b1", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 20; ++i) {
    b1.AppendUnchecked({Value::Int(i % 5), Value::Int(i)});
  }
  rel::Relation b2("b2", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 20; ++i) {
    b2.AppendUnchecked({Value::Int(i), Value::Int(i * 10)});
  }
  // A wide filler table used by the eviction tests: big enough that
  // evicting its cached extension frees room for anything else here.
  rel::Relation b3("b3", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 60; ++i) {
    b3.AppendUnchecked({Value::Int(i), Value::Int(i + 100)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(b1)));
  BRAID_CHECK_OK(db.AddTable(std::move(b2)));
  BRAID_CHECK_OK(db.AddTable(std::move(b3)));
  return db;
}

/// Session advice: view d1 over b1, view d2 over b2, path d1 then d2 —
/// after d1 the tracker predicts d2, so the CMS prefetches d2's general
/// form.
advice::AdviceSet D1ThenD2Advice() {
  advice::AdviceSet advice;
  advice::ViewSpec d1;
  d1.id = "d1";
  d1.head = {advice::AnnotatedVar{"X", advice::Binding::kProducer},
             advice::AnnotatedVar{"Y", advice::Binding::kProducer}};
  d1.body = {logic::Atom("b1", {logic::Term::Var("X"),
                                logic::Term::Var("Y")})};
  advice.view_specs.push_back(d1);
  advice::ViewSpec d2;
  d2.id = "d2";
  d2.head = {advice::AnnotatedVar{"A", advice::Binding::kProducer},
             advice::AnnotatedVar{"B", advice::Binding::kProducer}};
  d2.body = {logic::Atom("b2", {logic::Term::Var("A"),
                                logic::Term::Var("B")})};
  advice.view_specs.push_back(d2);
  advice.path_expression = advice::PathExpr::Sequence(
      {advice::PathExpr::Pattern("d1", {}),
       advice::PathExpr::Pattern("d2", {})},
      advice::RepBound::Fixed(1), advice::RepBound::Fixed(1));
  return advice;
}

/// Like D1ThenD2Advice but the d1-d2 sequence may repeat up to three
/// times, so after observing d1 the advisor still predicts d1 itself
/// within the replacement horizon — the element is eviction-protected.
advice::AdviceSet RepeatingD1D2Advice() {
  advice::AdviceSet advice = D1ThenD2Advice();
  advice.path_expression = advice::PathExpr::Sequence(
      {advice::PathExpr::Pattern("d1", {}),
       advice::PathExpr::Pattern("d2", {})},
      advice::RepBound::Fixed(1), advice::RepBound::Fixed(3));
  return advice;
}

uint64_t Fetches() {
  return obs::MetricsRegistry::Global().CounterValue("remote.fetches");
}

TEST(Prefetcher, AsyncPrefetchInstalledAfterDrain) {
  dbms::RemoteDbms remote(TestDb());
  Cms cms(&remote, CmsConfig{});
  cms.BeginSession(D1ThenD2Advice());

  ASSERT_TRUE(cms.Query(Q("d1(X, Y) :- b1(X, Y)")).ok());
  cms.DrainPrefetches();
  EXPECT_EQ(cms.prefetches_in_flight(), 0u);
  EXPECT_EQ(cms.metrics().prefetches, 1u);
  EXPECT_GT(cms.metrics().prefetch_ms, 0);
  // The general form of d2 is now materialized: the follow-up answers
  // from the cache without another remote round trip.
  const uint64_t before = Fetches();
  auto a2 = cms.Query(Q("d2(A, B) :- b2(A, B)"));
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->outcome, CacheOutcome::kExact);
  EXPECT_EQ(Fetches(), before);
}

TEST(Prefetcher, ForegroundJoinFetchesRemoteExactlyOnce) {
  // Real sleeps make the prefetch still be in flight when the foreground
  // query for the same definition arrives: it must join, not re-fetch.
  dbms::NetworkModel net;
  net.msg_latency_ms = 60.0;
  net.wall_clock_scale = 1.0;
  dbms::RemoteDbms remote(TestDb(), net, dbms::DbmsCostModel{});
  Cms cms(&remote, CmsConfig{});
  cms.BeginSession(D1ThenD2Advice());

  const uint64_t before = Fetches();
  ASSERT_TRUE(cms.Query(Q("d1(X, Y) :- b1(X, Y)")).ok());
  auto a2 = cms.Query(Q("d2(A, B) :- b2(A, B)"));
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->outcome, CacheOutcome::kExact);
  // Exactly two remote fetches total: d1's own and the single prefetch
  // of d2 — the foreground query joined the in-flight fetch instead of
  // issuing a duplicate.
  EXPECT_EQ(Fetches(), before + 2);
  EXPECT_EQ(cms.metrics().prefetch_joins, 1u);
  EXPECT_EQ(a2->relation->NumTuples(), 20u);
}

TEST(Prefetcher, InstanceQueryJoinsGeneralFormViaView) {
  dbms::NetworkModel net;
  net.msg_latency_ms = 60.0;
  net.wall_clock_scale = 1.0;
  dbms::RemoteDbms remote(TestDb(), net, dbms::DbmsCostModel{});
  Cms cms(&remote, CmsConfig{});
  cms.BeginSession(D1ThenD2Advice());

  const uint64_t before = Fetches();
  ASSERT_TRUE(cms.Query(Q("d1(X, Y) :- b1(X, Y)")).ok());
  // A constant-bound instance of d2: its canonical key differs from the
  // in-flight general form, but the view join waits for it, and
  // subsumption then answers locally.
  auto a2 = cms.Query(Q("d2(A, 30) :- b2(A, 30)"));
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a2->outcome, CacheOutcome::kFullLocal);
  EXPECT_EQ(Fetches(), before + 2);
  EXPECT_EQ(cms.metrics().prefetch_joins, 1u);
  EXPECT_EQ(a2->relation->NumTuples(), 1u);  // b2(3, 30)
}

TEST(Prefetcher, BeginSessionDrainsAndSettlesInFlight) {
  dbms::NetworkModel net;
  net.msg_latency_ms = 40.0;
  net.wall_clock_scale = 1.0;
  dbms::RemoteDbms remote(TestDb(), net, dbms::DbmsCostModel{});
  Cms cms(&remote, CmsConfig{});
  cms.BeginSession(D1ThenD2Advice());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const uint64_t cancelled_before = reg.CounterValue("prefetch.cancelled");
  ASSERT_TRUE(cms.Query(Q("d1(X, Y) :- b1(X, Y)")).ok());
  // A new session invalidates the prediction: the pending prefetch is
  // cancelled or, if its fetch already ran, kept (the cache is
  // cross-session) — either way nothing stays in flight.
  cms.BeginSession(advice::AdviceSet{});
  EXPECT_EQ(cms.prefetches_in_flight(), 0u);
  const uint64_t settled =
      cms.metrics().prefetches +
      (reg.CounterValue("prefetch.cancelled") - cancelled_before);
  EXPECT_EQ(settled, 1u);
}

TEST(Prefetcher, DestructionWithInFlightWorkIsSafe) {
  dbms::NetworkModel net;
  net.msg_latency_ms = 40.0;
  net.wall_clock_scale = 1.0;
  dbms::RemoteDbms remote(TestDb(), net, dbms::DbmsCostModel{});
  {
    Cms cms(&remote, CmsConfig{});
    cms.BeginSession(D1ThenD2Advice());
    ASSERT_TRUE(cms.Query(Q("d1(X, Y) :- b1(X, Y)")).ok());
    EXPECT_GE(cms.prefetches_in_flight(), 0u);
    // Destroyed here with the background fetch likely still sleeping:
    // the prefetcher cancels and waits it out before the pool dies.
  }
}

TEST(Prefetcher, JudgeSpeculativeVerdicts) {
  dbms::RemoteDbms remote(TestDb());
  CacheModel model;
  QueryPlanner planner(&model, &remote, PlannerConfig{true});
  const CaqlQuery general = Q("g(X, Y) :- b1(X, Y)");
  auto small = [] { return 100.0; };

  Plan plan;
  EXPECT_EQ(JudgeSpeculative(model, planner, general, small, 1 << 20,
                             /*skip_if_fully_local=*/true, &plan),
            SpeculativeAdmission::kAdmit);
  ASSERT_EQ(plan.sources.size(), 1u);
  EXPECT_EQ(plan.sources[0].kind, PlanSource::Kind::kRemote);

  EXPECT_EQ(JudgeSpeculative(model, planner, general,
                             [] { return 1e9; }, 1 << 20, true),
            SpeculativeAdmission::kTooLarge);

  // Head variable not in the body: unplannable.
  CaqlQuery bad;
  bad.name = "bad";
  bad.head_args = {logic::Term::Var("Z")};
  bad.body = {logic::Atom("b1", {logic::Term::Var("X"),
                                 logic::Term::Var("Y")})};
  EXPECT_EQ(JudgeSpeculative(model, planner, bad, small, 1 << 20, true),
            SpeculativeAdmission::kUnplannable);

  // Cache b1's full extension: the same general form is now an exact
  // cache entry, and a narrower selection plans fully local.
  rel::Relation ext("E", rel::Schema::FromNames({"X", "Y"}));
  ext.AppendUnchecked({Value::Int(1), Value::Int(2)});
  model.Register(std::make_shared<CacheElement>(
      model.NextId(), general, std::make_shared<rel::Relation>(ext)));
  EXPECT_EQ(JudgeSpeculative(model, planner, general, small, 1 << 20, true),
            SpeculativeAdmission::kAlreadyCached);
  EXPECT_EQ(JudgeSpeculative(model, planner, Q("n(Y) :- b1(2, Y)"), small,
                             1 << 20, /*skip_if_fully_local=*/true),
            SpeculativeAdmission::kFullyLocal);
  // Generalization has no fully-local skip: the same query is admitted.
  EXPECT_EQ(JudgeSpeculative(model, planner, Q("n(Y) :- b1(2, Y)"), small,
                             1 << 20, /*skip_if_fully_local=*/false),
            SpeculativeAdmission::kAdmit);
}

TEST(Prefetcher, AdmissionRejectionsAreMemoizedUntilCacheChanges) {
  dbms::RemoteDbms remote(TestDb());
  CmsConfig config;
  // 20-tuple results neither fit the admission cap (estimate 800 bytes >
  // 250) nor the cache itself, so the cache content version stays put.
  config.cache_budget_bytes = 500;
  Cms cms(&remote, config);
  cms.BeginSession(D1ThenD2Advice());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const uint64_t rejected_before = reg.CounterValue("prefetch.rejected");
  const uint64_t memo_before = reg.CounterValue("prefetch.memo_hits");

  ASSERT_TRUE(cms.Query(Q("d1(X, Y) :- b1(X, Y)")).ok());
  EXPECT_EQ(reg.CounterValue("prefetch.rejected"), rejected_before + 1);
  EXPECT_EQ(reg.CounterValue("prefetch.memo_hits"), memo_before);

  // Same verdict next query, from the memo: no second judgement.
  ASSERT_TRUE(cms.Query(Q("d1(X, Y) :- b1(X, Y)")).ok());
  EXPECT_EQ(reg.CounterValue("prefetch.rejected"), rejected_before + 1);
  EXPECT_EQ(reg.CounterValue("prefetch.memo_hits"), memo_before + 1);

  // Any cache-content change invalidates the memo: the next admission
  // pass re-judges the candidate.
  rel::Relation tiny("t", rel::Schema::FromNames({"X"}));
  tiny.AppendUnchecked({Value::Int(1)});
  cms.cache().Insert(std::make_shared<CacheElement>(
      cms.cache().model().NextId(), Q("tiny(X) :- b1(X, 0)"),
      std::make_shared<rel::Relation>(std::move(tiny))));
  ASSERT_TRUE(cms.Query(Q("d1(X, Y) :- b1(X, Y)")).ok());
  EXPECT_EQ(reg.CounterValue("prefetch.rejected"), rejected_before + 2);
  EXPECT_EQ(reg.CounterValue("prefetch.memo_hits"), memo_before + 1);
}

TEST(Prefetcher, OverlapReducesMeasuredWallClock) {
  // The point of the pipeline: with real sleeps standing in for the
  // network, the predicted view's fetch hides behind IE think time, and
  // the follow-up query's measured latency collapses.
  dbms::NetworkModel net;
  net.msg_latency_ms = 20.0;
  net.wall_clock_scale = 1.0;
  const auto think = std::chrono::milliseconds(150);

  auto follow_up_ms = [&](bool prefetch_on) {
    dbms::RemoteDbms remote(TestDb(), net, dbms::DbmsCostModel{});
    CmsConfig config;
    config.enable_prefetch = prefetch_on;
    Cms cms(&remote, config);
    cms.BeginSession(D1ThenD2Advice());
    EXPECT_TRUE(cms.Query(Q("d1(X, Y) :- b1(X, Y)")).ok());
    std::this_thread::sleep_for(think);  // the IE "processing" window
    const auto start = std::chrono::steady_clock::now();
    auto a = cms.Query(Q("d2(A, B) :- b2(A, B)"));
    EXPECT_TRUE(a.ok());
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };

  const double off = follow_up_ms(false);
  const double on = follow_up_ms(true);
  // Without prefetching the follow-up pays the full ~40ms+ simulated
  // fetch sleep; with it the data arrived during think time. Comparative
  // bound keeps this robust under sanitizer and CI load.
  EXPECT_LT(on, off * 0.5) << "prefetch off " << off << "ms, on " << on
                           << "ms";
}

TEST(Prefetcher, HarvestAtCapacityEvictsUnadvisedKeepsAdvised) {
  // A harvested prefetch that lands at cache capacity must go through
  // MakeRoom like any other insert, and replacement must sacrifice the
  // unadvised element while the advised one (predicted again within the
  // horizon by the repeating path) survives.
  const auto q0 = Q("q0(X, Y) :- b3(X, Y)");
  const auto d1q = Q("d1(X, Y) :- b1(X, Y)");
  auto sizes_of = [](Cms& cms) {
    size_t q0_size = 0, d1_size = 0, d2_size = 0;
    for (const auto& [id, e] : cms.cache().model().elements()) {
      if (e->definition().name == "q0") q0_size = e->ByteSize();
      if (e->definition().name == "d1") d1_size = e->ByteSize();
      if (e->definition().name == "d2") d2_size = e->ByteSize();
    }
    return std::make_tuple(q0_size, d1_size, d2_size);
  };
  auto run_session = [&](Cms& cms) {
    // Session 1 has no advice: q0's cached answer is unprotected. The
    // cache persists into session 2, where d1 is advised and its query
    // launches the d2 prefetch; nothing else runs before the drain, so
    // the harvest install is the only insert that can evict.
    cms.BeginSession(advice::AdviceSet{});
    ASSERT_TRUE(cms.Query(q0).ok());
    cms.BeginSession(RepeatingD1D2Advice());
    ASSERT_TRUE(cms.Query(d1q).ok());
  };

  // Measuring pass: an effectively unbounded budget records each
  // element's real footprint so the constrained budget below is exact.
  size_t q0_size = 0, d1_size = 0, d2_size = 0;
  {
    dbms::RemoteDbms remote(TestDb());
    Cms cms(&remote, CmsConfig{});
    run_session(cms);
    cms.DrainPrefetches();
    std::tie(q0_size, d1_size, d2_size) = sizes_of(cms);
    ASSERT_GT(q0_size, 0u);
    ASSERT_GT(d1_size, 0u);
    ASSERT_GT(d2_size, 0u);
    // Evicting q0 alone must free enough for d2, so exactly one
    // eviction settles the constrained pass.
    ASSERT_GE(q0_size + 64, d2_size);
  }

  // Constrained pass: q0 and d1 fill the cache to within 64 bytes.
  CmsConfig config;
  config.cache_budget_bytes = q0_size + d1_size + 64;
  dbms::RemoteDbms remote(TestDb());
  Cms cms(&remote, config);
  run_session(cms);
  EXPECT_EQ(cms.cache().stats().evictions, 0u);

  cms.DrainPrefetches();  // harvest installs d2 at capacity
  EXPECT_EQ(cms.cache().stats().evictions, 1u);
  auto [q0_after, d1_after, d2_after] = sizes_of(cms);
  EXPECT_EQ(q0_after, 0u) << "unadvised element should be the victim";
  EXPECT_GT(d1_after, 0u) << "advised element must survive the harvest";
  EXPECT_GT(d2_after, 0u) << "harvested prefetch must be installed";
}

TEST(Prefetcher, OversizedHarvestIsCountedWastedNotInstalled) {
  // The admission estimate for a skewed join is far below the actual
  // result: d2 passes JudgeSpeculative (estimate 40 rows, well under
  // budget/2) but the fetched extension (152 rows) exceeds the whole
  // budget, so the harvest-time Insert refuses it and the pipeline
  // charges prefetch.wasted instead of evicting everything else.
  dbms::Database db;
  rel::Relation b1("b1", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 20; ++i) {
    b1.AppendUnchecked({Value::Int(i % 5), Value::Int(i)});
  }
  rel::Relation s1("s1", rel::Schema::FromNames({"a", "b"}));
  for (int i = 0; i < 20; ++i) {
    s1.AppendUnchecked({Value::Int(i), Value::Int(i < 10 ? i : 7)});
  }
  rel::Relation s2("s2", rel::Schema::FromNames({"b", "c"}));
  for (int i = 0; i < 24; ++i) {
    s2.AppendUnchecked({Value::Int(i < 12 ? i : 7), Value::Int(100 + i)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(b1)));
  BRAID_CHECK_OK(db.AddTable(std::move(s1)));
  BRAID_CHECK_OK(db.AddTable(std::move(s2)));

  advice::AdviceSet advice;
  advice::ViewSpec d1;
  d1.id = "d1";
  d1.head = {advice::AnnotatedVar{"X", advice::Binding::kProducer},
             advice::AnnotatedVar{"Y", advice::Binding::kProducer}};
  d1.body = {logic::Atom("b1", {logic::Term::Var("X"),
                                logic::Term::Var("Y")})};
  advice.view_specs.push_back(d1);
  advice::ViewSpec d2;
  d2.id = "d2";
  d2.head = {advice::AnnotatedVar{"A", advice::Binding::kProducer},
             advice::AnnotatedVar{"C", advice::Binding::kProducer}};
  d2.body = {logic::Atom("s1", {logic::Term::Var("A"),
                                logic::Term::Var("B")}),
             logic::Atom("s2", {logic::Term::Var("B"),
                                logic::Term::Var("C")})};
  advice.view_specs.push_back(d2);
  advice.path_expression = advice::PathExpr::Sequence(
      {advice::PathExpr::Pattern("d1", {}),
       advice::PathExpr::Pattern("d2", {})},
      advice::RepBound::Fixed(1), advice::RepBound::Fixed(1));

  CmsConfig config;
  config.cache_budget_bytes = 4000;
  dbms::RemoteDbms remote(std::move(db));
  Cms cms(&remote, config);
  cms.BeginSession(advice);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const uint64_t wasted_before = reg.CounterValue("prefetch.wasted");
  ASSERT_TRUE(cms.Query(Q("d1(X, Y) :- b1(X, Y)")).ok());
  cms.DrainPrefetches();

  EXPECT_EQ(reg.CounterValue("prefetch.wasted"), wasted_before + 1);
  EXPECT_EQ(cms.cache().stats().rejected_too_large, 1u);
  // The refusal happened before MakeRoom: d1 was not pointlessly
  // sacrificed for an element that could never fit.
  EXPECT_EQ(cms.cache().stats().evictions, 0u);
  bool has_d1 = false, has_d2 = false;
  for (const auto& [id, e] : cms.cache().model().elements()) {
    if (e->definition().name == "d1") has_d1 = true;
    if (e->definition().name == "d2") has_d2 = true;
  }
  EXPECT_TRUE(has_d1);
  EXPECT_FALSE(has_d2);
}

TEST(Prefetcher, FailedPrefetchIsCountedAndNeverInstalled) {
  // Regression for the swallowed-error class the [[nodiscard]] audit
  // targets, driven through the fault-injecting remote: a prefetch whose
  // fetch fails must be counted on the prefetch.errors counter and must
  // NOT install a cache element — and the follow-up foreground query for
  // the same definition re-issues the fetch and surfaces the injected
  // fault status to the caller, never an OK-but-empty answer.
  testing::FaultPlan plan;
  plan.seed = 7;
  plan.error_rate = 1.0;
  plan.warmup_calls = 1;  // d1's own fetch succeeds; everything after fails
  testing::FaultyRemoteDbms remote(TestDb(), plan);
  Cms cms(&remote, CmsConfig{});
  cms.BeginSession(D1ThenD2Advice());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const uint64_t errors_before = reg.CounterValue("prefetch.errors");
  const uint64_t installs_before = cms.metrics().prefetches;

  ASSERT_TRUE(cms.Query(Q("d1(X, Y) :- b1(X, Y)")).ok());
  cms.DrainPrefetches();
  EXPECT_EQ(reg.CounterValue("prefetch.errors"), errors_before + 1);
  EXPECT_EQ(cms.metrics().prefetches, installs_before);
  EXPECT_GE(remote.injected_errors(), 1u);

  // No d2 element was installed, so the foreground query goes remote and
  // the injected fault reaches the caller intact.
  auto a2 = cms.Query(Q("d2(A, B) :- b2(A, B)"));
  ASSERT_FALSE(a2.ok());
  EXPECT_TRUE(testing::IsInjectedFault(a2.status()))
      << a2.status().ToString();

  // d1 is still cached and still answerable: the failed speculative work
  // did not poison the session.
  auto a1 = cms.Query(Q("d1(X, Y) :- b1(X, Y)"));
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->relation->NumTuples(), 20u);
}

}  // namespace
}  // namespace braid::cms
