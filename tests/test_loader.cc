// Tests for the file loaders: CSV relations, data directories, and
// knowledge-base files — plus an end-to-end run over the bundled
// university dataset.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "braid/braid_system.h"
#include "workload/loader.h"

namespace braid::workload {
namespace {

using rel::Value;

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("braid_loader_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WriteFile(const std::string& name, const std::string& text) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path);
    out << text;
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(LoaderTest, CsvTypesAndTrimming) {
  const std::string path = WriteFile("t.csv",
                                     "id, label, score\n"
                                     "1, 'hello world', 2.5\n"
                                     "-7, plain, 3\n"
                                     "\n");
  auto r = LoadCsv(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->name(), "t");
  ASSERT_EQ(r->NumTuples(), 2u);
  EXPECT_EQ(r->schema().column(1).name, "label");
  EXPECT_EQ(r->tuple(0)[0], Value::Int(1));
  EXPECT_EQ(r->tuple(0)[1], Value::String("hello world"));
  EXPECT_EQ(r->tuple(0)[2], Value::Double(2.5));
  EXPECT_EQ(r->tuple(1)[0], Value::Int(-7));
  EXPECT_EQ(r->tuple(1)[1], Value::String("plain"));
  EXPECT_EQ(r->tuple(1)[2], Value::Int(3));
}

TEST_F(LoaderTest, CsvErrors) {
  EXPECT_EQ(LoadCsv((dir_ / "missing.csv").string()).status().code(),
            StatusCode::kNotFound);
  const std::string empty = WriteFile("empty.csv", "");
  EXPECT_EQ(LoadCsv(empty).status().code(), StatusCode::kInvalidArgument);
  const std::string ragged = WriteFile("ragged.csv", "a, b\n1\n");
  EXPECT_EQ(LoadCsv(ragged).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LoaderTest, DirectoryLoadsEveryCsv) {
  WriteFile("alpha.csv", "x\n1\n2\n");
  WriteFile("beta.csv", "y, z\n3, 4\n");
  WriteFile("notes.txt", "ignored");
  auto db = LoadDatabaseFromDir(dir_.string());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE(db->HasTable("alpha"));
  EXPECT_TRUE(db->HasTable("beta"));
  EXPECT_EQ(db->TotalTuples(), 3u);
  EXPECT_EQ(LoadDatabaseFromDir((dir_ / "nope").string()).status().code(),
            StatusCode::kNotFound);
}

TEST_F(LoaderTest, KnowledgeBaseFile) {
  const std::string path = WriteFile("kb.braid",
                                     "#base e(s, d).\n"
                                     "p(X, Y) :- e(X, Y).\n");
  auto kb = LoadKnowledgeBase(path);
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  EXPECT_TRUE(kb->IsBaseRelation("e"));
  EXPECT_TRUE(kb->IsUserDefined("p"));

  const std::string bad = WriteFile("bad.braid", "p(X :- e(X).");
  EXPECT_EQ(LoadKnowledgeBase(bad).status().code(), StatusCode::kParseError);
  EXPECT_EQ(LoadKnowledgeBase((dir_ / "no.braid").string()).status().code(),
            StatusCode::kNotFound);
}

TEST(UniversityDataset, EndToEnd) {
  // The bundled sample dataset; resolve relative to the repo root.
  const char* candidates[] = {"examples/data/university",
                              "../examples/data/university",
                              "../../examples/data/university"};
  std::string dir;
  for (const char* c : candidates) {
    if (std::filesystem::exists(std::string(c) + "/university.braid")) {
      dir = c;
      break;
    }
  }
  if (dir.empty()) GTEST_SKIP() << "sample dataset not found from cwd";

  auto db = LoadDatabaseFromDir(dir);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto kb = LoadKnowledgeBase(dir + "/university.braid");
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  BraidSystem braid(std::move(db).value(), std::move(kb).value());

  auto eligible = braid.Ask("eligible(S, 301)?");
  ASSERT_TRUE(eligible.ok()) << eligible.status().ToString();
  ASSERT_EQ(eligible->solutions.NumTuples(), 1u);
  EXPECT_EQ(eligible->solutions.tuple(0)[0], Value::Int(1));  // alice

  auto honors = braid.Ask("honors(S)?");
  ASSERT_TRUE(honors.ok());
  EXPECT_EQ(honors->solutions.NumTuples(), 2u);  // carol, erin
}

}  // namespace
}  // namespace braid::workload
