// Edge-case tests across modules: corners that the mainline suites do not
// reach — multi-way joins in the executor, subsumption multi-matches,
// tracker bounds, cache policy corners, and interpreter limits.

#include <gtest/gtest.h>

#include <set>

#include "braid/braid_system.h"
#include "caql/caql_query.h"
#include "cms/cms.h"
#include "cms/subsumption.h"
#include "common/rng.h"
#include "logic/parser.h"

namespace braid {
namespace {

using caql::ParseCaql;
using rel::Tuple;
using rel::Value;

// ---------------------------------------------------------------------------
// Executor corners

TEST(ExecutorEdge, ThreeTableChainMatchesReference) {
  Rng rng(3);
  dbms::Database db;
  for (const char* name : {"t1", "t2", "t3"}) {
    rel::Relation t(name, rel::Schema::FromNames({"a", "b"}));
    for (int i = 0; i < 30; ++i) {
      t.AppendUnchecked({Value::Int(rng.Uniform(0, 5)),
                         Value::Int(rng.Uniform(0, 5))});
    }
    BRAID_CHECK_OK(db.AddTable(std::move(t)));
  }
  // Chain: t1.b = t2.a, t2.b = t3.a — via the executor.
  dbms::Executor exec(&db);
  dbms::SqlQuery q;
  q.from = {"t1", "t2", "t3"};
  q.where.push_back(dbms::Condition{dbms::ColRef{0, 1}, rel::CompareOp::kEq,
                                    true, dbms::ColRef{1, 0}, Value()});
  q.where.push_back(dbms::Condition{dbms::ColRef{1, 1}, rel::CompareOp::kEq,
                                    true, dbms::ColRef{2, 0}, Value()});
  auto out = exec.Execute(q, nullptr);
  ASSERT_TRUE(out.ok());

  // Reference: nested loops.
  size_t expected = 0;
  const auto& t1 = db.GetTable("t1")->tuples();
  const auto& t2 = db.GetTable("t2")->tuples();
  const auto& t3 = db.GetTable("t3")->tuples();
  for (const Tuple& a : t1) {
    for (const Tuple& b : t2) {
      if (a[1] != b[0]) continue;
      for (const Tuple& c : t3) {
        if (b[1] == c[0]) ++expected;
      }
    }
  }
  EXPECT_EQ(out->NumTuples(), expected);
}

TEST(ExecutorEdge, InequalityOnlyJoin) {
  dbms::Database db;
  rel::Relation a("a", rel::Schema::FromNames({"x"}));
  rel::Relation b("b", rel::Schema::FromNames({"y"}));
  for (int i = 0; i < 5; ++i) {
    a.AppendUnchecked({Value::Int(i)});
    b.AppendUnchecked({Value::Int(i)});
  }
  BRAID_CHECK_OK(db.AddTable(std::move(a)));
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  dbms::Executor exec(&db);
  dbms::SqlQuery q;
  q.from = {"a", "b"};
  q.where.push_back(dbms::Condition{dbms::ColRef{0, 0}, rel::CompareOp::kLt,
                                    true, dbms::ColRef{1, 0}, Value()});
  auto out = exec.Execute(q, nullptr);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumTuples(), 10u);  // C(5,2) strictly-less pairs
}

// ---------------------------------------------------------------------------
// Subsumption corners

TEST(SubsumptionEdge, SelfJoinQueryYieldsTwoDistinctMatches) {
  auto def = ParseCaql("e(X, Y) :- b(X, Y)").value();
  auto query = ParseCaql("q(A, C) :- b(A, B) & b(B, C)").value();
  auto all = cms::ComputeSubsumptionAll(def, query);
  ASSERT_EQ(all.size(), 2u);
  std::set<size_t> covered;
  for (const auto& m : all) {
    ASSERT_EQ(m.covered.size(), 1u);
    covered.insert(m.covered[0]);
  }
  EXPECT_EQ(covered, (std::set<size_t>{0, 1}));
}

TEST(SubsumptionEdge, LargerElementNeverMatchesSmallerQuery) {
  auto def = ParseCaql("e(X, Z) :- b(X, Y) & b(Y, Z)").value();
  auto query = ParseCaql("q(A, B) :- b(A, B)").value();
  EXPECT_TRUE(cms::ComputeSubsumptionAll(def, query).empty());
}

TEST(SubsumptionEdge, NeInterval) {
  using logic::Atom;
  using logic::Term;
  Atom ne5("!=", {Term::Var("X"), Term::Int(5)});
  Atom ne5b("!=", {Term::Var("X"), Term::Int(5)});
  Atom ne6("!=", {Term::Var("X"), Term::Int(6)});
  Atom lt3("<", {Term::Var("X"), Term::Int(3)});
  EXPECT_TRUE(cms::ComparisonImplied({ne5}, ne5b));
  EXPECT_FALSE(cms::ComparisonImplied({ne5}, ne6));
  EXPECT_TRUE(cms::ComparisonImplied({lt3}, ne5));  // X<3 → X≠5
  EXPECT_FALSE(cms::ComparisonImplied({lt3}, Atom("!=", {Term::Var("X"),
                                                         Term::Int(2)})));
}

TEST(SubsumptionEdge, ConstantOnlyElementNeedsHeadColumn) {
  // Element selects b(3, Y) projecting only Y; query for b(3, 7) needs a
  // selection on Y which IS a head column — usable.
  auto def = ParseCaql("e(Y) :- b(3, Y)").value();
  auto q1 = ParseCaql("q(Y) :- b(3, Y)").value();
  EXPECT_TRUE(cms::ComputeSubsumption(def, q1).has_value());
  // But a query with a different first constant is not derivable.
  auto q2 = ParseCaql("q(Y) :- b(4, Y)").value();
  EXPECT_FALSE(cms::ComputeSubsumption(def, q2).has_value());
}

// ---------------------------------------------------------------------------
// Path tracker corners

TEST(PathTrackerEdge, SelectionGreaterThanOneAllowsRepeats) {
  using advice::PathExpr;
  auto alt = PathExpr::Alternation(
      {PathExpr::Pattern("a", {}), PathExpr::Pattern("b", {})}, 2);
  advice::PathTracker tracker(alt);
  EXPECT_TRUE(tracker.Advance("a"));
  EXPECT_TRUE(tracker.Advance("b"));
  EXPECT_EQ(tracker.mispredictions(), 0u);
}

TEST(PathTrackerEdge, SymbolicLowerBoundLoops) {
  using advice::PathExpr;
  using advice::RepBound;
  auto seq = PathExpr::Sequence({PathExpr::Pattern("a", {})},
                                RepBound::Cardinality("X"),
                                RepBound::Cardinality("X"));
  advice::PathTracker tracker(seq);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(tracker.Advance("a"));
}

// ---------------------------------------------------------------------------
// Cache / CMS corners

TEST(CmsEdge, ExactHitDistinguishesDistinctFlag) {
  dbms::Database db;
  rel::Relation b("b", rel::Schema::FromNames({"x", "y"}));
  b.AppendUnchecked({Value::Int(1), Value::Int(1)});
  b.AppendUnchecked({Value::Int(1), Value::Int(2)});
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  dbms::RemoteDbms remote(std::move(db));
  cms::Cms cms(&remote, cms::CmsConfig{});

  auto bag = ParseCaql("q(X) :- b(X, Y)").value();
  auto a1 = cms.Query(bag);
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(a1->relation->NumTuples(), 2u);

  caql::CaqlQuery set = bag;
  set.distinct = true;
  auto a2 = cms.Query(set);
  ASSERT_TRUE(a2.ok());
  // Must NOT be served from the bag's cached result.
  EXPECT_EQ(a2->relation->NumTuples(), 1u);
}

TEST(CmsEdge, TransitiveClosureUnderSingleRelationPolicy) {
  dbms::Database db;
  rel::Relation e("edge", rel::Schema::FromNames({"s", "d"}));
  e.AppendUnchecked({Value::Int(1), Value::Int(2)});
  e.AppendUnchecked({Value::Int(2), Value::Int(3)});
  BRAID_CHECK_OK(db.AddTable(std::move(e)));
  dbms::RemoteDbms remote(std::move(db));
  cms::CmsConfig config;
  config.single_relation_only = true;
  cms::Cms cms(&remote, config);
  auto tc = cms.TransitiveClosure("edge");
  ASSERT_TRUE(tc.ok());
  EXPECT_EQ(tc->NumTuples(), 3u);
  // The closure result is not admitted by the CERI86 policy, but the base
  // relation copy is.
  auto tc2 = cms.TransitiveClosure("edge");
  ASSERT_TRUE(tc2.ok());
  EXPECT_EQ(tc2->NumTuples(), 3u);
}

TEST(CmsEdge, AggregateRejectsUnknownGroupVariable) {
  dbms::Database db;
  rel::Relation b("b", rel::Schema::FromNames({"x", "y"}));
  b.AppendUnchecked({Value::Int(1), Value::Int(2)});
  BRAID_CHECK_OK(db.AddTable(std::move(b)));
  dbms::RemoteDbms remote(std::move(db));
  cms::Cms cms(&remote, cms::CmsConfig{});
  auto q = ParseCaql("q(X, Y) :- b(X, Y)").value();
  EXPECT_EQ(cms.Aggregate(q, {"Z"}, rel::AggFn::kCount, "Y").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cms.Aggregate(q, {"X"}, rel::AggFn::kSum, "W").status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Interpreter corners

TEST(InterpreterEdge, DepthLimitPrunesInsteadOfErroring) {
  // Left-recursive rule: classic Prolog loops; the depth bound prunes.
  dbms::Database db;
  rel::Relation e("e", rel::Schema::FromNames({"s", "d"}));
  e.AppendUnchecked({Value::Int(1), Value::Int(2)});
  BRAID_CHECK_OK(db.AddTable(std::move(e)));
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(R"(
#base e(s, d).
p(X, Y) :- p(X, Z), e(Z, Y).
p(X, Y) :- e(X, Y).
)",
                                  &kb)
                  .ok());
  BraidOptions options;
  options.ie.max_depth = 10;
  // Keep the left-recursive order: the shaper's producer-consumer
  // reordering would otherwise move the base relation first and defuse
  // the loop entirely.
  options.ie.shaper_reorder = false;
  BraidSystem braid(std::move(db), std::move(kb), options);
  auto out = braid.Ask("p(1, Y)?");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // The base case still yields the answer; the left recursion is pruned.
  bool found = false;
  for (const Tuple& t : out->solutions.tuples()) {
    if (t[0] == Value::Int(2)) found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_GT(out->interpreter_stats.depth_prunes, 0u);
}

TEST(InterpreterEdge, NafWithUnboundVariableIsExistential) {
  // not q(X) with X unbound succeeds iff q is empty.
  dbms::Database db;
  rel::Relation full("full_rel", rel::Schema::FromNames({"x"}));
  full.AppendUnchecked({Value::Int(1)});
  rel::Relation empty("empty_rel", rel::Schema::FromNames({"x"}));
  BRAID_CHECK_OK(db.AddTable(std::move(full)));
  BRAID_CHECK_OK(db.AddTable(std::move(empty)));
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(R"(
#base full_rel(x).
#base empty_rel(x).
no_full(1) :- not full_rel(X).
no_empty(1) :- not empty_rel(X).
)",
                                  &kb)
                  .ok());
  BraidSystem braid(std::move(db), std::move(kb));
  auto a = braid.Ask("no_full(Y)?");
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a->solutions.empty());  // full_rel has a row → NAF fails
  auto b = braid.Ask("no_empty(Y)?");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->solutions.NumTuples(), 1u);
}

TEST(InterpreterEdge, DuplicateSolutionsPreservedInBagMode) {
  // Two derivations of the same fact: the interpreter reports both
  // (bag semantics; BAGOF).
  dbms::Database db;
  rel::Relation b1("b1", rel::Schema::FromNames({"x"}));
  b1.AppendUnchecked({Value::Int(7)});
  rel::Relation b2("b2", rel::Schema::FromNames({"x"}));
  b2.AppendUnchecked({Value::Int(7)});
  BRAID_CHECK_OK(db.AddTable(std::move(b1)));
  BRAID_CHECK_OK(db.AddTable(std::move(b2)));
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(R"(
#base b1(x).
#base b2(x).
p(X) :- b1(X).
p(X) :- b2(X).
)",
                                  &kb)
                  .ok());
  BraidSystem braid(std::move(db), std::move(kb));
  auto out = braid.Ask("p(X)?");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->solutions.NumTuples(), 2u);
}

// ---------------------------------------------------------------------------
// Value corner

TEST(ValueEdge, LargeIntsBeyondDoublePrecision) {
  const int64_t big1 = (int64_t{1} << 60) + 1;
  const int64_t big2 = (int64_t{1} << 60) + 2;
  EXPECT_LT(Value::Int(big1), Value::Int(big2));
  EXPECT_NE(Value::Int(big1), Value::Int(big2));
  EXPECT_EQ(Value::Int(big1), Value::Int(big1));
}

}  // namespace
}  // namespace braid
