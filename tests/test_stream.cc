// Unit and property tests for the pull-based tuple streams (generators).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "relational/operators.h"
#include "stream/stream_ops.h"

namespace braid::stream {
namespace {

using rel::Tuple;
using rel::Value;

std::shared_ptr<rel::Relation> MakeRel(const std::string& name,
                                       const std::vector<std::string>& cols,
                                       std::vector<Tuple> tuples) {
  auto r = std::make_shared<rel::Relation>(name,
                                           rel::Schema::FromNames(cols));
  for (Tuple& t : tuples) r->AppendUnchecked(std::move(t));
  return r;
}

TEST(ScanStream, ProducesAllTuplesInOrder) {
  auto r = MakeRel("r", {"a"}, {{Value::Int(1)}, {Value::Int(2)}});
  ScanStream s(r);
  EXPECT_EQ(s.Next(), (Tuple{Value::Int(1)}));
  EXPECT_EQ(s.Next(), (Tuple{Value::Int(2)}));
  EXPECT_EQ(s.Next(), std::nullopt);
  EXPECT_EQ(s.Next(), std::nullopt);  // Stable at end.
  EXPECT_EQ(s.produced(), 2u);
}

TEST(SelectStream, LazyFilter) {
  auto r = MakeRel("r", {"a"},
                   {{Value::Int(1)}, {Value::Int(5)}, {Value::Int(9)}});
  SelectStream s(std::make_unique<ScanStream>(r),
                 rel::Predicate::ColumnConst(0, rel::CompareOp::kGt,
                                             Value::Int(3)));
  EXPECT_EQ(s.Next(), (Tuple{Value::Int(5)}));
  EXPECT_EQ(s.Next(), (Tuple{Value::Int(9)}));
  EXPECT_EQ(s.Next(), std::nullopt);
}

TEST(ProjectStream, ColumnsReordered) {
  auto r = MakeRel("r", {"a", "b"}, {{Value::Int(1), Value::Int(2)}});
  ProjectStream s(std::make_unique<ScanStream>(r), {1, 0});
  EXPECT_EQ(s.schema().column(0).name, "b");
  EXPECT_EQ(s.Next(), (Tuple{Value::Int(2), Value::Int(1)}));
}

TEST(IndexJoinStream, JoinsViaIndex) {
  auto left = MakeRel("l", {"k"}, {{Value::Int(1)}, {Value::Int(2)}});
  auto right = MakeRel("r", {"k", "v"},
                       {{Value::Int(1), Value::String("a")},
                        {Value::Int(1), Value::String("b")},
                        {Value::Int(3), Value::String("c")}});
  auto index = std::make_shared<rel::HashIndex>(*right, 0);
  IndexJoinStream join(std::make_unique<ScanStream>(left), right,
                       {rel::JoinKey{0, 0}}, index);
  rel::Relation out = Drain(join);
  EXPECT_EQ(out.NumTuples(), 2u);  // k=1 matches twice, k=2 none
  EXPECT_EQ(out.schema().size(), 3u);
}

TEST(IndexJoinStream, NoIndexFallsBackToScan) {
  auto left = MakeRel("l", {"k"}, {{Value::Int(1)}});
  auto right = MakeRel("r", {"k"}, {{Value::Int(1)}, {Value::Int(2)}});
  IndexJoinStream join(std::make_unique<ScanStream>(left), right,
                       {rel::JoinKey{0, 0}});
  rel::Relation out = Drain(join);
  EXPECT_EQ(out.NumTuples(), 1u);
}

TEST(IndexJoinStream, EmptyKeysIsCrossProduct) {
  auto left = MakeRel("l", {"a"}, {{Value::Int(1)}, {Value::Int(2)}});
  auto right = MakeRel("r", {"b"}, {{Value::Int(3)}, {Value::Int(4)}});
  IndexJoinStream join(std::make_unique<ScanStream>(left), right, {});
  EXPECT_EQ(Drain(join).NumTuples(), 4u);
}

TEST(DistinctStream, SuppressesDuplicates) {
  auto r = MakeRel("r", {"a"},
                   {{Value::Int(1)}, {Value::Int(1)}, {Value::Int(2)}});
  DistinctStream s(std::make_unique<ScanStream>(r));
  EXPECT_EQ(Drain(s).NumTuples(), 2u);
}

TEST(ConcatStream, ChainsInputs) {
  auto a = MakeRel("a", {"x"}, {{Value::Int(1)}});
  auto b = MakeRel("b", {"x"}, {{Value::Int(2)}, {Value::Int(3)}});
  std::vector<TupleStreamPtr> inputs;
  inputs.push_back(std::make_unique<ScanStream>(a));
  inputs.push_back(std::make_unique<ScanStream>(b));
  ConcatStream s(std::move(inputs));
  EXPECT_EQ(Drain(s).NumTuples(), 3u);
}

TEST(Laziness, EarlyStopDoesLessWork) {
  // 1000-row scan through a filter: pulling one tuple must not scan
  // everything.
  std::vector<Tuple> tuples;
  for (int i = 0; i < 1000; ++i) tuples.push_back({Value::Int(i)});
  auto r = MakeRel("big", {"a"}, std::move(tuples));
  SelectStream s(std::make_unique<ScanStream>(r),
                 rel::Predicate::ColumnConst(0, rel::CompareOp::kGe,
                                             Value::Int(10)));
  ASSERT_TRUE(s.Next().has_value());
  EXPECT_LT(s.WorkDone(), 50u);
}

// Property: a lazy pipeline (scan → select → project) equals the eager
// operator composition on random inputs.
struct PipelineCase {
  size_t rows;
  int64_t domain;
  uint64_t seed;
};

class PipelineEquivalence : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelineEquivalence, LazyEqualsEager) {
  const auto& c = GetParam();
  Rng rng(c.seed);
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < c.rows; ++i) {
    tuples.push_back({Value::Int(rng.Uniform(0, c.domain - 1)),
                      Value::Int(rng.Uniform(0, 100))});
  }
  auto r = MakeRel("r", {"k", "v"}, std::move(tuples));
  auto pred =
      rel::Predicate::ColumnConst(1, rel::CompareOp::kLt, Value::Int(50));

  rel::Relation eager = rel::Project(rel::Select(*r, *pred), {0});

  SelectStream sel(std::make_unique<ScanStream>(r), pred);
  ProjectStream proj(
      std::make_unique<SelectStream>(std::make_unique<ScanStream>(r), pred),
      {0});
  rel::Relation lazy = Drain(proj);

  ASSERT_EQ(lazy.NumTuples(), eager.NumTuples());
  for (size_t i = 0; i < lazy.NumTuples(); ++i) {
    EXPECT_EQ(lazy.tuple(i), eager.tuple(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineEquivalence,
                         ::testing::Values(PipelineCase{0, 3, 1},
                                           PipelineCase{1, 1, 2},
                                           PipelineCase{50, 5, 3},
                                           PipelineCase{200, 10, 4},
                                           PipelineCase{500, 2, 5}));

// Property: lazy index join equals eager hash join (same bag).
TEST(Property, LazyJoinEqualsEagerJoin) {
  Rng rng(77);
  std::vector<Tuple> lt, rt;
  for (int i = 0; i < 80; ++i) {
    lt.push_back({Value::Int(rng.Uniform(0, 9))});
    rt.push_back({Value::Int(rng.Uniform(0, 9)), Value::Int(i)});
  }
  auto left = MakeRel("l", {"k"}, std::move(lt));
  auto right = MakeRel("r", {"k", "v"}, std::move(rt));

  rel::Relation eager = rel::HashJoin(*left, *right, {rel::JoinKey{0, 0}});

  auto index = std::make_shared<rel::HashIndex>(*right, 0);
  IndexJoinStream join(std::make_unique<ScanStream>(left), right,
                       {rel::JoinKey{0, 0}}, index);
  rel::Relation lazy = Drain(join);

  std::multiset<std::string> e, l;
  for (const Tuple& t : eager.tuples()) e.insert(rel::TupleToString(t));
  for (const Tuple& t : lazy.tuples()) l.insert(rel::TupleToString(t));
  EXPECT_EQ(l, e);
}

}  // namespace
}  // namespace braid::stream

#include "stream/remote_stream.h"

namespace braid::stream {
namespace {

std::shared_ptr<rel::Relation> BigResult(size_t n) {
  auto r = std::make_shared<rel::Relation>("r",
                                           rel::Schema::FromNames({"a"}));
  for (size_t i = 0; i < n; ++i) {
    r->AppendUnchecked({rel::Value::Int(static_cast<int64_t>(i))});
  }
  return r;
}

TEST(BufferedRemoteStream, ArrivalTimesAreMonotonic) {
  RemoteStreamTiming timing;
  timing.server_ms = 50;
  timing.msg_latency_ms = 5;
  timing.per_tuple_ms = 0.1;
  timing.buffer_tuples = 16;
  timing.pipelining = true;
  BufferedRemoteStream s(BigResult(100), timing);
  EXPECT_EQ(s.NumBuffers(), 7u);
  for (size_t i = 1; i < 100; ++i) {
    EXPECT_LE(s.ArrivalMs(i - 1), s.ArrivalMs(i));
  }
  EXPECT_DOUBLE_EQ(s.CompletionMs(), s.ArrivalMs(99));
}

TEST(BufferedRemoteStream, PipeliningCutsTimeToFirstTuple) {
  RemoteStreamTiming pipelined;
  pipelined.server_ms = 100;
  pipelined.msg_latency_ms = 5;
  pipelined.per_tuple_ms = 0.05;
  pipelined.buffer_tuples = 8;
  pipelined.pipelining = true;
  RemoteStreamTiming serial = pipelined;
  serial.pipelining = false;

  BufferedRemoteStream fast(BigResult(64), pipelined);
  BufferedRemoteStream slow(BigResult(64), serial);
  // The paper's §5.5 claim: with pipelining "the DBMS starts returning
  // the data before the complete result ... has been processed".
  EXPECT_LT(fast.ArrivalMs(0), slow.ArrivalMs(0));
  EXPECT_LT(fast.ArrivalMs(0), pipelined.server_ms);
}

TEST(BufferedRemoteStream, TuplesAllDelivered) {
  RemoteStreamTiming timing;
  timing.buffer_tuples = 4;
  BufferedRemoteStream s(BigResult(10), timing);
  rel::Relation out = Drain(s);
  EXPECT_EQ(out.NumTuples(), 10u);
  EXPECT_EQ(s.WorkDone(), 10u);
}

TEST(BufferedRemoteStream, EmptyResultStillHasACompletionTime) {
  RemoteStreamTiming timing;
  timing.server_ms = 7;
  timing.msg_latency_ms = 3;
  BufferedRemoteStream s(BigResult(0), timing);
  EXPECT_EQ(s.Next(), std::nullopt);
  EXPECT_DOUBLE_EQ(s.CompletionMs(), 10.0);
}

}  // namespace
}  // namespace braid::stream
