// Tests for the bill-of-materials workload: the DAG generator's
// invariants, the combined recursion/negation/aggregation knowledge base,
// and the closure-SOA fallback for derived base predicates.

#include <gtest/gtest.h>

#include <set>

#include "braid/braid_system.h"
#include "logic/parser.h"
#include "workload/generators.h"

namespace braid {
namespace {

std::set<std::string> Rows(const rel::Relation& r) {
  std::set<std::string> out;
  for (const rel::Tuple& t : r.tuples()) out.insert(rel::TupleToString(t));
  return out;
}

TEST(BomGenerator, DagInvariants) {
  workload::BomParams params;
  params.items = 80;
  params.leaves = 50;
  dbms::Database db = workload::MakeBomDatabase(params);
  const rel::Relation* component = db.GetTable("component");
  ASSERT_NE(component, nullptr);
  for (const rel::Tuple& t : component->tuples()) {
    EXPECT_GT(t[0].AsInt(), t[1].AsInt());  // acyclic: asm id > part id
    EXPECT_GE(t[0].AsInt(), static_cast<int64_t>(params.leaves));
    EXPECT_GE(t[2].AsInt(), 1);  // positive quantity
  }
  EXPECT_EQ(db.GetTable("item")->NumTuples(), params.items);
}

TEST(BomGenerator, KbParses) {
  logic::KnowledgeBase kb;
  Status s = logic::ParseProgram(workload::BomKb(), &kb);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(kb.IsUserDefined("contains"));
  EXPECT_TRUE(kb.IsAggregate("direct_components"));
}

TEST(BomWorkload, StrategiesAgreeOnClosure) {
  workload::BomParams params;
  params.items = 60;
  params.leaves = 35;
  logic::KnowledgeBase kb1, kb2;
  ASSERT_TRUE(logic::ParseProgram(workload::BomKb(), &kb1).ok());
  ASSERT_TRUE(logic::ParseProgram(workload::BomKb(), &kb2).ok());

  BraidSystem interp(workload::MakeBomDatabase(params), std::move(kb1));
  BraidOptions comp_options;
  comp_options.ie.strategy = ie::StrategyKind::kCompiled;
  BraidSystem compiled(workload::MakeBomDatabase(params), std::move(kb2),
                       comp_options);

  auto a = interp.Ask("contains(59, P)?");
  auto b = compiled.Ask("contains(59, P)?");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(Rows(a->solutions), Rows(b->solutions));
  EXPECT_FALSE(b->solutions.empty());
}

TEST(BomWorkload, LeafNegationPartitionsItems) {
  workload::BomParams params;
  params.items = 60;
  params.leaves = 35;
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(workload::BomKb(), &kb).ok());
  BraidSystem braid(workload::MakeBomDatabase(params), std::move(kb));
  auto leaves = braid.Ask("leaf(P)?");
  ASSERT_TRUE(leaves.ok()) << leaves.status().ToString();
  // Exactly the ids below params.leaves are leaves (every assembly id has
  // at least one component by construction).
  std::set<std::string> expected;
  for (size_t i = 0; i < params.leaves; ++i) {
    expected.insert("(" + std::to_string(i) + ")");
  }
  EXPECT_EQ(Rows(leaves->solutions), expected);
}

TEST(BomWorkload, AggregateMatchesManualCount) {
  workload::BomParams params;
  params.items = 50;
  params.leaves = 30;
  dbms::Database db = workload::MakeBomDatabase(params);
  // Manual: direct components of the top assembly.
  size_t expected = 0;
  for (const rel::Tuple& t : db.GetTable("component")->tuples()) {
    if (t[0].AsInt() == 49) ++expected;
  }
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(workload::BomKb(), &kb).ok());
  BraidSystem braid(std::move(db), std::move(kb));
  auto out = braid.Ask("direct_components(49, N)?");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->solutions.NumTuples(), 1u);
  EXPECT_EQ(out->solutions.tuple(0)[0],
            rel::Value::Int(static_cast<int64_t>(expected)));
}

TEST(ClosureSoa, DerivedBaseFallsBackToFixpoint) {
  // A #closure SOA whose base is itself derived cannot use the CMS
  // fixed-point service; the compiled strategy must quietly fall back to
  // ordinary fixpoint iteration and still be correct.
  dbms::Database db;
  rel::Relation e("e", rel::Schema::FromNames({"s", "d", "w"}));
  e.AppendUnchecked({rel::Value::Int(1), rel::Value::Int(2),
                     rel::Value::Int(0)});
  e.AppendUnchecked({rel::Value::Int(2), rel::Value::Int(3),
                     rel::Value::Int(0)});
  BRAID_CHECK_OK(db.AddTable(std::move(e)));
  logic::KnowledgeBase kb;
  ASSERT_TRUE(logic::ParseProgram(R"(
#base e(s, d, w).
#closure tc = link.
link(X, Y) :- e(X, Y, W).
tc(X, Y) :- link(X, Y).
tc(X, Y) :- link(X, Z), tc(Z, Y).
)",
                                  &kb)
                  .ok());
  BraidOptions options;
  options.ie.strategy = ie::StrategyKind::kCompiled;
  BraidSystem braid(std::move(db), std::move(kb), options);
  auto out = braid.Ask("tc(1, Y)?");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(Rows(out->solutions), (std::set<std::string>{"(2)", "(3)"}));
  EXPECT_GT(out->compiled_stats.iterations, 0u);  // real fixpoint ran
}

}  // namespace
}  // namespace braid
