// Unit tests for the common substrate: Status/Result, string utilities,
// and the deterministic RNG.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace braid {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("widget");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "widget");
  EXPECT_EQ(s.ToString(), "NotFound: widget");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_FALSE(Status::Internal("x") == Status::Internal("y"));
  EXPECT_FALSE(Status::Internal("x") == Status::NotFound("x"));
}

TEST(Status, AllCodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  BRAID_ASSIGN_OR_RETURN(int half, HalfOf(x));
  BRAID_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(Result, ValueAndErrorPaths) {
  Result<int> ok = HalfOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 4);
  EXPECT_EQ(*ok, 4);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = HalfOf(3);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(Result, AssignOrReturnChains) {
  EXPECT_EQ(QuarterOf(16).value(), 4);
  EXPECT_FALSE(QuarterOf(2).ok());   // second division fails
  EXPECT_FALSE(QuarterOf(3).ok());   // first division fails
}

TEST(Result, MoveOnlyValues) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(7);
  };
  Result<std::unique_ptr<int>> r = make();
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(Strings, Join) {
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"a"}, ","), "a");
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Strings, Split) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim(" \t\n "), "");
  EXPECT_EQ(StrTrim("no-trim"), "no-trim");
}

TEST(Strings, StartsWithAndCat) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(rng.Uniform(5, 5), 5);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

}  // namespace
}  // namespace braid
