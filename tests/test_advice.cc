// Unit tests for advice: view specifications, path expressions, and the
// path tracker — including the paper's §4.2.2 worked tracking example.

#include <gtest/gtest.h>

#include "advice/advice.h"
#include "advice/path_tracker.h"

namespace braid::advice {
namespace {

using logic::Term;

PathExprPtr Pat(const std::string& id) { return PathExpr::Pattern(id, {}); }

TEST(ViewSpec, ToStringMatchesPaperNotation) {
  ViewSpec d2;
  d2.id = "d2";
  d2.head = {AnnotatedVar{"X", Binding::kProducer},
             AnnotatedVar{"Y", Binding::kConsumer}};
  d2.body = {logic::Atom("b2", {Term::Var("X"), Term::Var("Z")}),
             logic::Atom("b3", {Term::Var("Z"), Term::Str("c2"),
                                Term::Var("Y")})};
  d2.source_rules = {"R2"};
  EXPECT_EQ(d2.ToString(),
            "d2(X^, Y?) =def b2(X, Z) & b3(Z, c2, Y)  (R2)");
}

TEST(ViewSpec, InstantiateSubstitutesConsumers) {
  ViewSpec d2;
  d2.id = "d2";
  d2.head = {AnnotatedVar{"X", Binding::kProducer},
             AnnotatedVar{"Y", Binding::kConsumer}};
  d2.body = {logic::Atom("b2", {Term::Var("X"), Term::Var("Z")}),
             logic::Atom("b3", {Term::Var("Z"), Term::Str("c2"),
                                Term::Var("Y")})};
  caql::CaqlQuery q = d2.Instantiate({Term::Var("X"), Term::Str("c6")});
  EXPECT_EQ(q.ToString(), "d2(X, c6) :- b2(X, Z) & b3(Z, c2, c6)");
}

TEST(ViewSpec, ConsumerVariablesAndAllProducers) {
  ViewSpec v;
  v.head = {AnnotatedVar{"X", Binding::kProducer},
            AnnotatedVar{"Y", Binding::kConsumer}};
  EXPECT_EQ(v.ConsumerVariables(), (std::vector<std::string>{"Y"}));
  EXPECT_FALSE(v.AllProducers());
  v.head[1].binding = Binding::kProducer;
  EXPECT_TRUE(v.AllProducers());
}

TEST(PathExpr, ToStringPaperExample1) {
  // (d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>
  auto d1 = PathExpr::Pattern("d1", {AnnotatedVar{"Y", Binding::kProducer}});
  auto d2 = PathExpr::Pattern("d2", {AnnotatedVar{"X", Binding::kProducer},
                                     AnnotatedVar{"Y", Binding::kConsumer}});
  auto d3 = PathExpr::Pattern("d3", {AnnotatedVar{"X", Binding::kProducer},
                                     AnnotatedVar{"Y", Binding::kConsumer}});
  auto inner = PathExpr::Sequence({d2, d3}, RepBound::Fixed(0),
                                  RepBound::Cardinality("Y"));
  auto whole =
      PathExpr::Sequence({d1, inner}, RepBound::Fixed(1), RepBound::Fixed(1));
  EXPECT_EQ(whole->ToString(),
            "(d1(Y^), (d2(X^, Y?), d3(X^, Y?))<0,|Y|>)<1,1>");
}

TEST(PathExpr, AlternationWithSelectionTerm) {
  auto alt = PathExpr::Alternation({Pat("d2"), Pat("d3")}, 1);
  EXPECT_EQ(alt->ToString(), "[d2(), d3()]^1");
  EXPECT_EQ(alt->MentionedViews(),
            (std::vector<std::string>{"d2", "d3"}));
}

TEST(PathTracker, SimpleSequence) {
  auto seq = PathExpr::Sequence({Pat("a"), Pat("b"), Pat("c")},
                                RepBound::Fixed(1), RepBound::Fixed(1));
  PathTracker tracker(seq);
  EXPECT_EQ(tracker.PredictNext(), (std::set<std::string>{"a"}));
  EXPECT_FALSE(tracker.MayBeFinished());
  EXPECT_TRUE(tracker.Advance("a"));
  EXPECT_EQ(tracker.PredictNext(), (std::set<std::string>{"b"}));
  EXPECT_TRUE(tracker.Advance("b"));
  EXPECT_TRUE(tracker.Advance("c"));
  EXPECT_TRUE(tracker.MayBeFinished());
  EXPECT_EQ(tracker.mispredictions(), 0u);
}

TEST(PathTracker, MispredictionCountedAndPositionHeld) {
  auto seq = PathExpr::Sequence({Pat("a"), Pat("b")}, RepBound::Fixed(1),
                                RepBound::Fixed(1));
  PathTracker tracker(seq);
  EXPECT_FALSE(tracker.Advance("z"));  // unknown view
  EXPECT_EQ(tracker.mispredictions(), 1u);
  EXPECT_FALSE(tracker.Advance("b"));  // out of order
  EXPECT_EQ(tracker.mispredictions(), 2u);
  EXPECT_TRUE(tracker.Advance("a"));   // still at the start
}

TEST(PathTracker, RepetitionLoops) {
  // (a)<0,|Y|> — a may repeat any number of times, or not appear.
  auto seq = PathExpr::Sequence({Pat("a")}, RepBound::Fixed(0),
                                RepBound::Cardinality("Y"));
  PathTracker tracker(seq);
  EXPECT_TRUE(tracker.MayBeFinished());  // lower bound 0
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(tracker.Advance("a")) << i;
  }
  EXPECT_TRUE(tracker.MayBeFinished());
}

TEST(PathTracker, PaperTrackingExample) {
  // §4.2.2: (...(d1(X?,Y^), [(d2(Z^,Y?), d3(Z?)), (d4(U^,Y?),
  // d5(U?))]^1)<0,|X|> ...)<0,1>
  auto d1 = Pat("d1");
  auto branch1 = PathExpr::Sequence({Pat("d2"), Pat("d3")},
                                    RepBound::Fixed(1), RepBound::Fixed(1));
  auto branch2 = PathExpr::Sequence({Pat("d4"), Pat("d5")},
                                    RepBound::Fixed(1), RepBound::Fixed(1));
  auto alt = PathExpr::Alternation({branch1, branch2}, 1);
  auto inner = PathExpr::Sequence({d1, alt}, RepBound::Fixed(0),
                                  RepBound::Cardinality("X"));
  auto whole =
      PathExpr::Sequence({inner}, RepBound::Fixed(0), RepBound::Fixed(1));
  PathTracker tracker(whole);

  // After d1, the next query (if any) involves d2 or d4 (or d1 again via
  // the repetition).
  EXPECT_TRUE(tracker.Advance("d1"));
  std::set<std::string> next = tracker.PredictNext();
  EXPECT_TRUE(next.count("d2"));
  EXPECT_TRUE(next.count("d4"));

  // After d2: next involves d3, or d1 (repetition); d4/d5 are excluded by
  // the mutually exclusive selection term.
  EXPECT_TRUE(tracker.Advance("d2"));
  next = tracker.PredictNext();
  EXPECT_TRUE(next.count("d3"));
  EXPECT_TRUE(next.count("d1"));
  EXPECT_FALSE(next.count("d4"));
  EXPECT_FALSE(next.count("d5"));

  // "Thus, d1 will be required for one of the next two queries": its
  // minimum distance from here is at most 1.
  auto dist = tracker.MinDistanceTo("d1");
  ASSERT_TRUE(dist.has_value());
  EXPECT_LE(*dist, 1u);
  // d1 is therefore a poor replacement candidate relative to, say, d5.
  EXPECT_TRUE(tracker.PossibleWithin(2).count("d1"));
  EXPECT_FALSE(tracker.PossibleWithin(2).count("d5"));

  // Valid continuation from the paper: d3 then d1 then d4 then d5.
  EXPECT_TRUE(tracker.Advance("d3"));
  EXPECT_TRUE(tracker.Advance("d1"));
  EXPECT_TRUE(tracker.Advance("d4"));
  EXPECT_TRUE(tracker.Advance("d5"));
  EXPECT_EQ(tracker.mispredictions(), 0u);
}

TEST(PathTracker, AlternationWithoutSelectionAllowsMultiple) {
  auto alt = PathExpr::Alternation({Pat("a"), Pat("b")}, 0);
  PathTracker tracker(alt);
  EXPECT_TRUE(tracker.Advance("a"));
  EXPECT_TRUE(tracker.Advance("b"));
  EXPECT_TRUE(tracker.Advance("a"));  // repeatable
  EXPECT_TRUE(tracker.MayBeFinished());
}

TEST(PathTracker, MutualExclusionBlocksSecondPick) {
  auto alt = PathExpr::Alternation({Pat("a"), Pat("b")}, 1);
  PathTracker tracker(alt);
  EXPECT_TRUE(tracker.Advance("a"));
  EXPECT_FALSE(tracker.Advance("b"));  // at most one member
  EXPECT_EQ(tracker.mispredictions(), 1u);
}

TEST(PathTracker, MinDistanceAcrossSequence) {
  auto seq = PathExpr::Sequence({Pat("a"), Pat("b"), Pat("c")},
                                RepBound::Fixed(1), RepBound::Fixed(1));
  PathTracker tracker(seq);
  EXPECT_EQ(tracker.MinDistanceTo("a"), 0u);
  EXPECT_EQ(tracker.MinDistanceTo("b"), 1u);
  EXPECT_EQ(tracker.MinDistanceTo("c"), 2u);
  EXPECT_EQ(tracker.MinDistanceTo("z"), std::nullopt);
  tracker.Advance("a");
  EXPECT_EQ(tracker.MinDistanceTo("a"), std::nullopt);  // cannot recur
  EXPECT_EQ(tracker.MinDistanceTo("c"), 1u);
}

TEST(PathTracker, PossibleWithinHorizon) {
  auto seq = PathExpr::Sequence({Pat("a"), Pat("b"), Pat("c")},
                                RepBound::Fixed(1), RepBound::Fixed(1));
  PathTracker tracker(seq);
  EXPECT_EQ(tracker.PossibleWithin(1), (std::set<std::string>{"a"}));
  EXPECT_EQ(tracker.PossibleWithin(2), (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(tracker.PossibleWithin(9),
            (std::set<std::string>{"a", "b", "c"}));
}

TEST(AdviceSet, FindViewAndToString) {
  AdviceSet advice;
  advice.base_relations = {"b1", "b2"};
  ViewSpec v;
  v.id = "d1";
  v.head = {AnnotatedVar{"Y", Binding::kProducer}};
  v.body = {logic::Atom("b1", {Term::Str("c1"), Term::Var("Y")})};
  advice.view_specs.push_back(v);
  EXPECT_NE(advice.FindView("d1"), nullptr);
  EXPECT_EQ(advice.FindView("d9"), nullptr);
  EXPECT_NE(advice.ToString().find("base relations: b1, b2"),
            std::string::npos);
  EXPECT_NE(advice.ToString().find("d1(Y^)"), std::string::npos);
}

}  // namespace
}  // namespace braid::advice
